//! A custom service on the public API: the online chat from the paper's
//! introduction, with rooms and users as actors. Demonstrates how to
//! implement [`AppLogic`] for a new application and how the partitioner
//! co-locates each room with its members.
//!
//! ```sh
//! cargo run --release --example chat_service
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use actop::prelude::*;

const ROOM_BASE: u64 = 1 << 32;
const TAG_POST: u32 = 0; // Client posts a message via a user actor.
const TAG_BROADCAST: u32 = 1; // User actor asks its room to broadcast.
const TAG_DELIVER: u32 = 2; // Room delivers to one member.

/// Room membership: users `r*ROOM_SIZE..(r+1)*ROOM_SIZE` sit in room `r`.
const ROOM_SIZE: u64 = 12;

struct ChatApp {
    posts: Rc<RefCell<u64>>,
}

impl AppLogic for ChatApp {
    fn on_request(&mut self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
        match tag {
            TAG_POST => {
                *self.posts.borrow_mut() += 1;
                let room = actor.0 / ROOM_SIZE;
                Reaction::fan_out(
                    rng.exp(120_000.0),
                    vec![Call {
                        to: ActorId(ROOM_BASE + room),
                        tag: TAG_BROADCAST,
                        bytes: 400,
                    }],
                    128,
                )
            }
            TAG_BROADCAST => {
                let room = actor.0 - ROOM_BASE;
                let members = (0..ROOM_SIZE)
                    .map(|i| Call {
                        to: ActorId(room * ROOM_SIZE + i),
                        tag: TAG_DELIVER,
                        bytes: 400,
                    })
                    .collect();
                Reaction::fan_out(rng.exp(150_000.0), members, 64)
            }
            TAG_DELIVER => Reaction::reply(rng.exp(60_000.0), 32),
            other => unreachable!("unknown chat tag {other}"),
        }
    }
}

fn run(enable_actop: bool, label: &str) {
    let seed = 31;
    let users = 6_000u64;
    let posts = Rc::new(RefCell::new(0u64));
    let app = Box::new(ChatApp {
        posts: Rc::clone(&posts),
    });
    let mut cluster = Cluster::new(RuntimeConfig::paper_testbed(seed), app);
    let mut engine: Engine<Cluster> = Engine::new();

    // An open-loop stream of chat posts from clients to random users.
    fn post_tick(c: &mut Cluster, e: &mut Engine<Cluster>, mut rng: DetRng, users: u64) {
        let user = ActorId(rng.range_inclusive(0, users - 1));
        c.submit_client_request(e, user, TAG_POST, 256);
        let gap = Nanos::from_secs_f64(rng.exp(1.0 / 1_500.0));
        if e.now() + gap < Nanos::from_secs(40) {
            e.schedule_after(gap, move |c, e| post_tick(c, e, rng, users));
        }
    }
    let rng = DetRng::stream(seed, 0x99);
    engine.schedule(Nanos::ZERO, move |c: &mut Cluster, e| {
        post_tick(c, e, rng, users)
    });

    if enable_actop {
        install_actop(
            &mut engine,
            cluster.server_count(),
            &ActOpConfig {
                partition: Some(PartitionAgentConfig::with_interval(Nanos::from_secs(1))),
                threads: None,
            },
        );
    }
    let summary = run_steady_state(
        &mut engine,
        &mut cluster,
        Nanos::from_secs(15),
        Nanos::from_secs(25),
    );
    println!(
        "{label:<20} post latency p50 {:6.2} ms  p99 {:6.2} ms | remote {:4.1}% | {} posts",
        summary.p50_ms,
        summary.p99_ms,
        summary.remote_fraction * 100.0,
        posts.borrow(),
    );
}

fn main() {
    println!(
        "Chat service: {} users in rooms of {ROOM_SIZE}, 1.5K posts/s, 10 servers\n",
        6_000
    );
    run(false, "baseline");
    run(true, "ActOp partitioning");
}
