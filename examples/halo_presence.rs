//! The paper's headline workload end to end: Halo Presence with the
//! distributed partitioner, printing the convergence trace of Fig. 10a.
//!
//! ```sh
//! cargo run --release --example halo_presence
//! ```

use actop::prelude::*;

fn main() {
    let seed = 7;
    let players = 10_000;
    let request_rate = 3_000.0;
    let mut workload_cfg =
        HaloConfig::paper_scale(players, request_rate, Nanos::from_secs(80), seed);
    // Compress the game lifecycle so churn is visible in a short run.
    workload_cfg.game_duration_s = (120.0, 180.0);

    let (app, workload) = HaloWorkload::build(workload_cfg);
    let mut rt = RuntimeConfig::paper_testbed(seed);
    rt.series_bin_ns = 5_000_000_000;
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);

    install_actop(
        &mut engine,
        cluster.server_count(),
        &ActOpConfig {
            partition: Some(PartitionAgentConfig::with_interval(Nanos::from_secs(1))),
            threads: Some(ThreadAgentConfig::default()),
        },
    );

    println!(
        "Halo Presence: {players} players, {request_rate} req/s, {} servers",
        cluster.server_count()
    );
    let summary = run_steady_state(
        &mut engine,
        &mut cluster,
        Nanos::from_secs(30),
        Nanos::from_secs(50),
    );
    println!(
        "steady state: median {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, cpu {:.0}%",
        summary.p50_ms,
        summary.p95_ms,
        summary.p99_ms,
        summary.cpu_utilization * 100.0
    );
    println!(
        "lifecycle: {} games running, {} started, {} players online",
        workload.live_games(),
        workload.stats().games_started,
        workload.live_players()
    );
    println!();
    println!("remote-message share over time (5-s bins, from cold start):");
    for (i, share) in cluster
        .metrics
        .remote_share_series
        .means()
        .iter()
        .enumerate()
    {
        println!(
            "  t={:>3}s  {:>5.1}%  {}",
            i * 5,
            share * 100.0,
            bar(*share)
        );
    }
    println!(
        "\n{} actor migrations total; server sizes {:?}",
        cluster.metrics.migrations,
        cluster.server_sizes()
    );
}

fn bar(fraction: f64) -> String {
    "#".repeat((fraction * 50.0).round() as usize)
}
