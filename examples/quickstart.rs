//! Quickstart: build a cluster, run a workload, enable ActOp, compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use actop::prelude::*;

fn run(actop_config: &ActOpConfig, label: &str) {
    // The paper's testbed shape: ten 8-core servers, random placement.
    let seed = 42;
    let workload = HaloConfig::paper_scale(
        5_000,                // concurrent players
        2_000.0,              // client requests per second
        Nanos::from_secs(40), // how long clients keep arriving
        seed,
    );
    let (app, driver) = HaloWorkload::build(workload);
    let mut cluster = Cluster::new(RuntimeConfig::paper_testbed(seed), app);
    let mut engine: Engine<Cluster> = Engine::new();
    driver.install(&mut engine);
    install_actop(&mut engine, cluster.server_count(), actop_config);

    // Warm up 15 s, measure 25 s.
    let summary = run_steady_state(
        &mut engine,
        &mut cluster,
        Nanos::from_secs(15),
        Nanos::from_secs(25),
    );
    println!(
        "{label:<22} median {:6.2} ms | p99 {:6.2} ms | remote msgs {:4.1}% | cpu {:4.1}% | {} reqs",
        summary.p50_ms,
        summary.p99_ms,
        summary.remote_fraction * 100.0,
        summary.cpu_utilization * 100.0,
        summary.completed,
    );
}

fn main() {
    println!("Halo Presence on 10 simulated servers, 2K client requests/s\n");
    run(&ActOpConfig::default(), "baseline (no ActOp)");
    run(
        &ActOpConfig {
            partition: Some(PartitionAgentConfig::with_interval(Nanos::from_secs(1))),
            threads: None,
        },
        "ActOp partitioning",
    );
    run(
        &ActOpConfig {
            partition: Some(PartitionAgentConfig::with_interval(Nanos::from_secs(1))),
            threads: Some(ThreadAgentConfig::default()),
        },
        "ActOp full",
    );
}
