//! The Heartbeat service on a single server: watch the model-driven thread
//! allocator measure the stages, solve problem (*), and reconfigure —
//! versus the Orleans default of one thread per stage per core.
//!
//! ```sh
//! cargo run --release --example heartbeat
//! ```

use actop::prelude::*;

fn run(agent: Option<ThreadAgentConfig>, label: &str) {
    let seed = 9;
    let load = 14_000.0;
    let workload = actop::workloads::uniform::heartbeat(load, Nanos::from_secs(50), seed);
    let (app, driver) = UniformWorkload::build(workload);
    let mut cluster = Cluster::new(RuntimeConfig::single_server(seed), app);
    let mut engine: Engine<Cluster> = Engine::new();
    driver.install(&mut engine);
    if let Some(agent) = agent {
        install_actop(
            &mut engine,
            1,
            &ActOpConfig {
                partition: None,
                threads: Some(agent),
            },
        );
    }
    let summary = run_steady_state(
        &mut engine,
        &mut cluster,
        Nanos::from_secs(15),
        Nanos::from_secs(30),
    );
    let alloc = cluster.servers[0].thread_allocation();
    println!(
        "{label:<28} median {:6.2} ms | p99 {:7.2} ms | cpu {:4.1}% | threads R/W/SS/CS {:?}",
        summary.p50_ms,
        summary.p99_ms,
        summary.cpu_utilization * 100.0,
        alloc
    );
}

fn main() {
    println!("Heartbeat @ 14K requests/s on one 8-core server\n");
    run(None, "Orleans default (8/8/8/8)");
    run(
        Some(ThreadAgentConfig {
            interval: Nanos::from_secs(3),
            ..ThreadAgentConfig::default()
        }),
        "ActOp model-driven",
    );
}
