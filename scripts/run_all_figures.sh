#!/usr/bin/env bash
# Regenerates figures_output.txt: every table/figure bench in paper order.
#
# Usage:
#   scripts/run_all_figures.sh            # default (laptop) scale
#   ACTOP_FULL_SCALE=1 scripts/run_all_figures.sh   # paper-scale populations
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p actop-bench --bins

BENCHES=(
  bench_sec3_motivation
  bench_fig4_breakdown
  bench_fig5_heatmap
  bench_fig7_queue_controller
  bench_fig10a_convergence
  bench_fig10b_latency_cdf
  bench_fig10c_s2s_cdf
  bench_fig10d_load_sweep
  bench_fig10e_cpu
  bench_fig10f_actor_scale
  bench_fig11a_threads
  bench_fig11b_combined
  bench_throughput_peak
  bench_ablation_convergence
  bench_ablation_allocator
  bench_ablation_tails
  bench_ablation_failover
)

out=figures_output.txt
: > "$out"
for bench in "${BENCHES[@]}"; do
  echo "===== $bench =====" | tee -a "$out"
  ./target/release/"$bench" | tee -a "$out"
  echo | tee -a "$out"
done
echo "wrote $out"
