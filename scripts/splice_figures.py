#!/usr/bin/env python3
"""Splices re-run bench sections into figures_output.txt (sections are
delimited by '===== <bench name> =====' headers)."""

import re
import sys


def sections(path):
    out = {}
    current = None
    for line in open(path):
        m = re.match(r"^===== (\S+) =====$", line.strip())
        if m:
            current = m.group(1)
            out[current] = []
        if current:
            out[current].append(line)
    return out


def main():
    base = sections("figures_output.txt")
    for extra_path in sys.argv[1:]:
        for name, lines in sections(extra_path).items():
            base[name] = lines
    order = [
        "bench_sec3_motivation",
        "bench_fig4_breakdown",
        "bench_fig5_heatmap",
        "bench_fig7_queue_controller",
        "bench_fig10a_convergence",
        "bench_fig10b_latency_cdf",
        "bench_fig10c_s2s_cdf",
        "bench_fig10d_load_sweep",
        "bench_fig10e_cpu",
        "bench_fig10f_actor_scale",
        "bench_fig11a_threads",
        "bench_fig11b_combined",
        "bench_throughput_peak",
        "bench_ablation_convergence",
        "bench_ablation_allocator",
        "bench_ablation_tails",
        "bench_ablation_failover",
    ]
    with open("figures_output.txt", "w") as f:
        for name in order:
            if name in base:
                f.writelines(base[name])
                if not base[name][-1].endswith("\n"):
                    f.write("\n")
    print("spliced", [n for n in order if n in base])


if __name__ == "__main__":
    main()
