#!/usr/bin/env python3
"""Engine perf-regression gate.

Compares the merged engine throughput (``events_per_sec`` on the first
line of a ``BENCH_engine*.json`` artifact, as written by
``bench_throughput_peak``) of a fresh run against a committed baseline
and fails when the fresh run falls below ``min_ratio`` of it.

The throughput is wall-clock, so the band is deliberately wide: the gate
exists to catch order-of-magnitude regressions (an accidentally
quadratic hot path, instrumentation left on by default), not percentage
drift between machines. Event *counts* are deterministic, so those are
checked exactly when the baseline carries them for the same scenario
scale (``--check-events``).

``--mode rss`` gates memory instead: it reads ``peak_rss_bytes`` from
the trailing ``{"kind":"engine",...}`` row of a ``BENCH_scale*.json``
artifact (as written by ``bench_scale``, whose full sweep includes the
1M-player build) and fails when the fresh peak leaves the
floor/ceiling band around the committed baseline. The ceiling catches
per-player memory bloat (a 1M-player slab regression dwarfs allocator
noise); the floor catches a silently shrunken run — a population or
sweep change that makes the "1M fits" claim vacuous.

Usage:
    perf_gate.py FRESH BASELINE [--min-ratio 0.25] [--check-events]
    perf_gate.py FRESH BASELINE --mode rss [--rss-floor 0.5] [--rss-ceiling 1.5]

Stdlib only; exit code 0 = pass, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys


def first_object(path):
    """The first JSON object in a line-oriented artifact."""
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                return json.loads(line)
    raise ValueError(f"{path}: no JSON object found")


def engine_object(path):
    """The ``{"kind":"engine",...}`` row of a line-oriented artifact."""
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("kind") == "engine":
                return obj
    raise ValueError(f'{path}: no {{"kind":"engine"}} row found')


def gate_rss(args):
    try:
        fresh = engine_object(args.fresh)
        base = engine_object(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"perf gate: cannot read input: {err}", file=sys.stderr)
        return 2

    for obj, path in ((fresh, args.fresh), (base, args.baseline)):
        if int(obj.get("peak_rss_bytes", 0)) <= 0:
            print(f"perf gate: {path}: missing peak_rss_bytes", file=sys.stderr)
            return 2
    if fresh.get("smoke") != base.get("smoke"):
        print(
            "perf gate: smoke/full mismatch between fresh and baseline artifacts",
            file=sys.stderr,
        )
        return 2

    rss_fresh = int(fresh["peak_rss_bytes"])
    rss_base = int(base["peak_rss_bytes"])
    ratio = rss_fresh / rss_base
    mib = 1024.0 * 1024.0
    print(
        f"perf gate: fresh peak RSS {rss_fresh / mib:.0f} MiB vs baseline "
        f"{rss_base / mib:.0f} MiB (ratio {ratio:.2f}, "
        f"band [{args.rss_floor:.2f}, {args.rss_ceiling:.2f}])"
    )
    if ratio > args.rss_ceiling:
        print(
            f"perf gate: MEMORY REGRESSION — peak RSS above {args.rss_ceiling:.2f}x baseline",
            file=sys.stderr,
        )
        return 1
    if ratio < args.rss_floor:
        print(
            f"perf gate: SUSPICIOUS — peak RSS below {args.rss_floor:.2f}x baseline; "
            "did the sweep still build the full population?",
            file=sys.stderr,
        )
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="freshly generated BENCH_engine*.json")
    ap.add_argument("baseline", help="committed baseline BENCH_engine*.json")
    ap.add_argument(
        "--min-ratio",
        type=float,
        default=0.25,
        help="fail when fresh events_per_sec < min_ratio * baseline (default 0.25)",
    )
    ap.add_argument(
        "--check-events",
        action="store_true",
        help="also require identical events_processed (same scenario scale only)",
    )
    ap.add_argument(
        "--mode",
        choices=("throughput", "rss"),
        default="throughput",
        help="gate events_per_sec (default) or the engine row's peak_rss_bytes",
    )
    ap.add_argument(
        "--rss-floor",
        type=float,
        default=0.5,
        help="rss mode: fail when fresh peak RSS < rss_floor * baseline (default 0.5)",
    )
    ap.add_argument(
        "--rss-ceiling",
        type=float,
        default=1.5,
        help="rss mode: fail when fresh peak RSS > rss_ceiling * baseline (default 1.5)",
    )
    args = ap.parse_args()

    if args.mode == "rss":
        return gate_rss(args)

    try:
        fresh = first_object(args.fresh)
        base = first_object(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"perf gate: cannot read input: {err}", file=sys.stderr)
        return 2

    for obj, path in ((fresh, args.fresh), (base, args.baseline)):
        if "events_per_sec" not in obj:
            print(f"perf gate: {path}: missing events_per_sec", file=sys.stderr)
            return 2

    rate_fresh = float(fresh["events_per_sec"])
    rate_base = float(base["events_per_sec"])
    if rate_base <= 0:
        print(f"perf gate: baseline rate is {rate_base}; nothing to compare", file=sys.stderr)
        return 2
    ratio = rate_fresh / rate_base
    print(
        f"perf gate: fresh {rate_fresh / 1e6:.2f}M events/s vs baseline "
        f"{rate_base / 1e6:.2f}M events/s (ratio {ratio:.2f}, floor {args.min_ratio:.2f})"
    )

    ok = True
    if ratio < args.min_ratio:
        print(
            f"perf gate: REGRESSION — throughput fell below {args.min_ratio:.2f}x baseline",
            file=sys.stderr,
        )
        ok = False

    if args.check_events:
        ev_fresh = int(fresh.get("events_processed", -1))
        ev_base = int(base.get("events_processed", -2))
        if ev_fresh != ev_base:
            print(
                f"perf gate: DETERMINISM — events_processed {ev_fresh} != baseline {ev_base}",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"perf gate: events_processed {ev_fresh} matches baseline")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
