//! Cross-crate integration tests: the full ActOp stack (runtime +
//! sketches + partitioner + allocator) against the paper's workloads at
//! test scale.

use actop::prelude::*;

fn halo_cluster(
    players: u64,
    rate: f64,
    duration_s: u64,
    seed: u64,
) -> (Cluster, Engine<Cluster>, HaloWorkload) {
    let mut cfg = HaloConfig::paper_scale(players, rate, Nanos::from_secs(duration_s), seed);
    cfg.game_duration_s = (120.0, 180.0);
    let (app, workload) = HaloWorkload::build(cfg);
    let cluster = Cluster::new(RuntimeConfig::paper_testbed(seed), app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    (cluster, engine, workload)
}

fn fast_partition() -> PartitionAgentConfig {
    actop::core::controllers::PartitionAgentConfig::with_interval(Nanos::from_secs(1))
}

#[test]
fn partitioning_reduces_remote_share_and_latency() {
    let (mut base_cluster, mut base_engine, _w1) = halo_cluster(3_000, 1_500.0, 40, 1);
    let baseline = run_steady_state(
        &mut base_engine,
        &mut base_cluster,
        Nanos::from_secs(15),
        Nanos::from_secs(25),
    );

    let (mut opt_cluster, mut opt_engine, _w2) = halo_cluster(3_000, 1_500.0, 40, 1);
    install_actop(
        &mut opt_engine,
        opt_cluster.server_count(),
        &ActOpConfig {
            partition: Some(fast_partition()),
            threads: None,
        },
    );
    let optimized = run_steady_state(
        &mut opt_engine,
        &mut opt_cluster,
        Nanos::from_secs(15),
        Nanos::from_secs(25),
    );

    assert!(
        baseline.remote_fraction > 0.8,
        "baseline remote {:.2}",
        baseline.remote_fraction
    );
    assert!(
        optimized.remote_fraction < 0.3,
        "optimized remote {:.2}",
        optimized.remote_fraction
    );
    assert!(
        optimized.p50_ms < baseline.p50_ms,
        "median {:.2} vs {:.2}",
        optimized.p50_ms,
        baseline.p50_ms
    );
    assert!(
        optimized.cpu_utilization < baseline.cpu_utilization,
        "cpu {:.2} vs {:.2}",
        optimized.cpu_utilization,
        baseline.cpu_utilization
    );
    assert!(optimized.migrations > 0);
}

#[test]
fn combined_optimizations_reduce_cpu_further() {
    let (mut p_cluster, mut p_engine, _w) = halo_cluster(3_000, 1_500.0, 40, 2);
    install_actop(
        &mut p_engine,
        p_cluster.server_count(),
        &ActOpConfig {
            partition: Some(fast_partition()),
            threads: None,
        },
    );
    let partition_only = run_steady_state(
        &mut p_engine,
        &mut p_cluster,
        Nanos::from_secs(15),
        Nanos::from_secs(25),
    );

    let (mut b_cluster, mut b_engine, _w) = halo_cluster(3_000, 1_500.0, 40, 2);
    install_actop(
        &mut b_engine,
        b_cluster.server_count(),
        &ActOpConfig {
            partition: Some(fast_partition()),
            threads: Some(ThreadAgentConfig::default()),
        },
    );
    let both = run_steady_state(
        &mut b_engine,
        &mut b_cluster,
        Nanos::from_secs(15),
        Nanos::from_secs(25),
    );

    assert!(
        both.cpu_utilization < partition_only.cpu_utilization,
        "both {:.3} vs partition-only {:.3}",
        both.cpu_utilization,
        partition_only.cpu_utilization
    );
    // The thread agent must have moved off the default allocation.
    let alloc = b_cluster.servers[0].thread_allocation();
    assert_ne!(alloc, [8, 8, 8, 8], "allocation {alloc:?}");
}

#[test]
fn full_stack_is_deterministic() {
    let run = || {
        let (mut cluster, mut engine, _w) = halo_cluster(1_000, 500.0, 20, 3);
        install_actop(
            &mut engine,
            cluster.server_count(),
            &ActOpConfig {
                partition: Some(fast_partition()),
                threads: Some(ThreadAgentConfig::default()),
            },
        );
        let s = run_steady_state(
            &mut engine,
            &mut cluster,
            Nanos::from_secs(8),
            Nanos::from_secs(12),
        );
        (
            s.completed,
            s.migrations,
            cluster.metrics.e2e_latency.quantile(0.99),
            cluster.server_sizes(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn thread_agent_beats_default_on_heartbeat() {
    let run = |agent: Option<ThreadAgentConfig>| {
        let workload = actop::workloads::uniform::heartbeat(14_000.0, Nanos::from_secs(35), 4);
        let (app, driver) = UniformWorkload::build(workload);
        let mut cluster = Cluster::new(RuntimeConfig::single_server(4), app);
        let mut engine: Engine<Cluster> = Engine::new();
        driver.install(&mut engine);
        if let Some(agent) = agent {
            install_actop(
                &mut engine,
                1,
                &ActOpConfig {
                    partition: None,
                    threads: Some(agent),
                },
            );
        }
        run_steady_state(
            &mut engine,
            &mut cluster,
            Nanos::from_secs(12),
            Nanos::from_secs(20),
        )
    };
    let baseline = run(None);
    let optimized = run(Some(ThreadAgentConfig {
        interval: Nanos::from_secs(3),
        ..ThreadAgentConfig::default()
    }));
    assert!(
        optimized.p99_ms < baseline.p99_ms,
        "p99 {:.2} vs {:.2}",
        optimized.p99_ms,
        baseline.p99_ms
    );
    assert!(optimized.completed as f64 > 0.99 * optimized.submitted as f64);
}

#[test]
fn workload_sustains_population_under_full_actop() {
    let (mut cluster, mut engine, workload) = halo_cluster(2_000, 800.0, 30, 5);
    install_actop(
        &mut engine,
        cluster.server_count(),
        &ActOpConfig {
            partition: Some(fast_partition()),
            threads: Some(ThreadAgentConfig::default()),
        },
    );
    let summary = run_steady_state(
        &mut engine,
        &mut cluster,
        Nanos::from_secs(10),
        Nanos::from_secs(20),
    );
    assert_eq!(summary.rejected, 0);
    // Fault-free run: none of the fault-recovery machinery may fire.
    assert_eq!(summary.retries, 0);
    assert_eq!(summary.directory_repairs, 0);
    assert_eq!(summary.false_suspicion_repairs, 0);
    assert_eq!(summary.shed_no_live, 0);
    assert_eq!(summary.timed_out, 0);
    let live = workload.live_players();
    assert!(
        (1_500..=2_600).contains(&live),
        "population drifted: {live}"
    );
    // Actors stay balanced across servers despite heavy migration.
    let sizes = cluster.server_sizes();
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(max - min < 600, "sizes {sizes:?}");
}

#[test]
fn fault_free_run_has_zero_fault_counters_and_a_clean_trace() {
    // No fault plan, no detector: every fault-recovery counter must stay
    // at zero, and the fully sampled trace must satisfy every lifecycle
    // invariant under a default (fault-free) checker config.
    let workload = actop::workloads::uniform::counter(1_000.0, Nanos::from_secs(10), 21);
    let (app, driver) = UniformWorkload::build(workload);
    let mut rt = RuntimeConfig::paper_testbed(21);
    rt.request_timeout = Some(Nanos::from_secs(1));
    rt.trace = Some(actop::runtime::TraceConfig {
        sample_rate: 1.0,
        seed: 21,
        ..actop::runtime::TraceConfig::default()
    });
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    driver.install(&mut engine);
    let summary = run_steady_state(
        &mut engine,
        &mut cluster,
        Nanos::from_secs(3),
        Nanos::from_secs(7),
    );
    assert!(summary.completed > 1_000);
    assert_eq!(summary.rejected, 0);
    assert_eq!(summary.timed_out, 0);
    assert_eq!(summary.retries, 0);
    assert!(summary.retry_backoff_ms == 0.0);
    assert_eq!(summary.directory_repairs, 0);
    assert_eq!(summary.false_suspicion_repairs, 0);
    assert_eq!(summary.shed_no_live, 0);
    assert_eq!(summary.stale_responses, 0);

    let cfg = actop::verify::CheckerConfig {
        open_at_end_grace: Nanos::from_secs(2),
        ..actop::verify::CheckerConfig::default()
    };
    let report = actop::verify::check_events(cluster.trace.spans(), &cfg);
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert_eq!(report.kind_count("retry"), 0);
    assert_eq!(report.kind_count("shed"), 0);
}

#[test]
fn facade_prelude_exposes_the_api() {
    // Compile-time check that the facade re-exports everything a user
    // needs; exercised lightly at runtime.
    let model = actop::seda::model::SedaModel::new(
        vec![actop::seda::model::StageParams::cpu_bound(100.0, 1000.0)],
        4,
        1e-4,
    )
    .unwrap();
    let threads = actop::seda::allocate_threads(&model).unwrap();
    assert!(threads[0] >= 1);

    let mut sketch = actop::sketch::SpaceSaving::new(4);
    sketch.offer("edge", 3);
    assert_eq!(sketch.estimate(&"edge"), Some((3, 0)));

    let mut hist = actop::metrics::LatencyHistogram::new();
    hist.record(1_000);
    assert_eq!(hist.count(), 1);
}
