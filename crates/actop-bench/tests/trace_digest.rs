//! Golden trace digest: a pinned fingerprint of a fully instrumented
//! smoke run. Any change to what the runtime records — a new hop kind on
//! the request path, a lost event, a sampling change — shows up as a
//! digest diff and must be re-pinned deliberately.

use actop_bench::run_uniform;
use actop_runtime::{RuntimeConfig, TraceConfig};
use actop_sim::Nanos;
use actop_verify::TraceDigest;
use actop_workloads::uniform;

/// The pinned digest of the smoke run below. Re-pin (and say why in the
/// commit) when the trace schema intentionally changes.
const GOLDEN: &str = "events=72796 servers=2 requests=6010 admit=6010 queue=22262 \
     service=22262 net=12020 forward=4232 done=6010";

#[test]
fn instrumented_smoke_run_digest_is_pinned() {
    let measure = Nanos::from_secs(3);
    let cfg = uniform::counter(2_000.0, measure, 42);
    let mut rt = RuntimeConfig::single_server(42);
    rt.trace = Some(TraceConfig {
        sample_rate: 1.0,
        seed: 42,
        ..TraceConfig::default()
    });
    let (summary, _report, cluster) = run_uniform(cfg, rt, None, None, Nanos::ZERO, measure);
    assert!(summary.completed > 3_000, "run too small to fingerprint");
    assert_eq!(
        cluster.trace.dropped_spans(),
        0,
        "digest of a truncated trace"
    );
    let digest = TraceDigest::of(cluster.trace.spans());
    assert_eq!(
        digest.to_string(),
        GOLDEN,
        "trace fingerprint drifted; if the change is intentional, re-pin GOLDEN"
    );
}
