//! Replication consistency on the scale workload: the replicated path
//! must stay byte-identical across repeated runs and shard splits, a
//! split → drop round-trip must leave the hot actor with exactly one
//! activation, and a fully sampled replicated run must pass every
//! lifecycle invariant (replica reads only inside split → drop windows,
//! one primary per actor, no migration while replicated).
//!
//! Uses the shipped `scale_runtime` replication thresholds verbatim — the
//! point is to pin the bench configuration's behavior, not a synthetic
//! one — so the population sits at 250K players, the smallest sweep point
//! whose top celebrity (~30% of one server) clears the 20% split trigger.

use actop_bench::{run_scale, scale_runtime};
use actop_core::experiment::run_steady_state;
use actop_core::RunSummary;
use actop_runtime::{Cluster, ClusterMetrics, TraceConfig};
use actop_sim::{Engine, Nanos};
use actop_verify::{check_events, CheckerConfig};
use actop_workloads::{ScaleConfig, ScaleWorkload};

const PLAYERS: u64 = 250_000;

/// Every `RunSummary` field as exact bits, so float equality is checked
/// bit-for-bit rather than within an epsilon.
fn summary_bits(s: &RunSummary) -> Vec<u64> {
    vec![
        s.p50_ms.to_bits(),
        s.p95_ms.to_bits(),
        s.p99_ms.to_bits(),
        s.mean_ms.to_bits(),
        s.remote_fraction.to_bits(),
        s.cpu_utilization.to_bits(),
        s.completed,
        s.submitted,
        s.rejected,
        s.timed_out,
        s.forwarded_messages,
        s.stale_responses,
        s.migrations,
        s.throughput_per_s.to_bits(),
        s.retries,
        s.retry_backoff_ms.to_bits(),
        s.directory_repairs,
        s.false_suspicion_repairs,
        s.shed_no_live,
        s.slo_alerts_opened,
        s.slo_alerts_closed,
    ]
}

/// The replication-specific counters a divergence would hide in even when
/// the latency summary happens to agree.
fn rep_counters(m: &ClusterMetrics) -> [u64; 4] {
    [m.splits, m.replica_drops, m.replica_reads, m.replica_writes]
}

fn celebrity_run(seed: u64, shards: usize) -> (RunSummary, Cluster) {
    let duration = Nanos::from_secs(24);
    let warmup = Nanos::from_secs(10);
    let cfg = ScaleConfig::celebrity(PLAYERS, duration, seed);
    let (summary, _, shell, _) = run_scale(cfg, warmup, scale_runtime(seed, true), shards);
    (summary, shell)
}

#[test]
fn replicated_celebrity_identical_across_runs_and_shard_counts() {
    let (base, base_shell) = celebrity_run(91, 1);
    assert!(
        base_shell.metrics.splits > 0,
        "celebrity never split; the determinism claim would be vacuous"
    );
    assert!(
        base_shell.metrics.replica_reads > 0,
        "splits fired but no read was replica-routed"
    );
    let base_ctr = rep_counters(&base_shell.metrics);

    // Same seed, same shard count: byte-identical.
    let (again, again_shell) = celebrity_run(91, 1);
    assert_eq!(summary_bits(&base), summary_bits(&again), "re-run diverged");
    assert_eq!(base_ctr, rep_counters(&again_shell.metrics));

    // The shard split must not change what happened. 7 clamps to the 8
    // servers unevenly — still a distinct split from 2 and 4.
    for shards in [2usize, 4, 7] {
        let (s, shell) = celebrity_run(91, shards);
        assert_eq!(
            summary_bits(&base),
            summary_bits(&s),
            "RunSummary diverged at shards={shards}"
        );
        assert_eq!(
            base_ctr,
            rep_counters(&shell.metrics),
            "replication counters diverged at shards={shards}"
        );
    }
}

#[test]
fn flash_crowd_split_then_drop_leaves_one_activation() {
    // Flash peaks at duration/4 = 12 s (past the 6 s warmup, so the split
    // is counted) and decays with a 6 s constant, leaving the replicas
    // idle long enough for the drop hysteresis to shed every one of them
    // before the run ends.
    let duration = Nanos::from_secs(48);
    let warmup = Nanos::from_secs(6);
    let cfg = ScaleConfig::flash_crowd(PLAYERS, duration, 92);
    let (_, _, shell, _) = run_scale(cfg, warmup, scale_runtime(92, true), 2);
    let m = &shell.metrics;
    assert!(m.splits > 0, "flash crowd never split");
    assert!(
        m.replica_drops > 0,
        "decayed flash never dropped its replicas"
    );
    assert_eq!(
        m.splits, m.replica_drops,
        "every split must be matched by a drop once the flash decays"
    );
    // Round trip complete: no replica survives anywhere, so every actor —
    // including the flash target — is back to exactly one activation.
    assert_eq!(
        shell.directory.replica_count(),
        0,
        "directory still holds replicas after the flash decayed"
    );
}

#[test]
fn replicated_scale_trace_passes_lifecycle_checks() {
    // Full-sample trace of a replicated celebrity run, fed through the
    // lifecycle checker: proves on a real scale trace (not just synthetic
    // event streams) that reads never land outside a split → drop window,
    // no actor ever has two primaries, and replicated actors never
    // migrate. Runs the legacy single-process backend because its tracer
    // records spans in per-server monotone order, which the checker's
    // stream-order rules require (the sharded backend flushes a request's
    // spans at completion); this is also the only scale-workload coverage
    // the legacy replication path gets.
    let duration = Nanos::from_secs(20);
    let warmup = Nanos::from_secs(6);
    let cfg = ScaleConfig::celebrity(PLAYERS, duration, 93);
    let mut rt = scale_runtime(93, true);
    rt.trace = Some(TraceConfig {
        sample_rate: 1.0,
        seed: 93,
        ..TraceConfig::default()
    });
    let (app, workload) = ScaleWorkload::build(cfg);
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    cluster.install_heartbeats(&mut engine, duration);
    cluster.install_replication(&mut engine, duration);
    let summary = run_steady_state(&mut engine, &mut cluster, warmup, duration - warmup);
    assert!(summary.completed > 0);
    assert_eq!(
        cluster.trace.dropped_spans(),
        0,
        "checking a truncated trace would report phantom violations"
    );
    let report = check_events(cluster.trace.spans(), &CheckerConfig::default());
    assert!(
        report.kind_count("split") > 0,
        "no split recorded; lifecycle coverage would be vacuous"
    );
    assert!(
        report.kind_count("replica-read") > 0,
        "no replica-routed read recorded"
    );
    assert!(
        report.violations.is_empty(),
        "replicated scale trace violated invariants: {:?}",
        &report.violations[..report.violations.len().min(5)]
    );
}
