//! Snapshot latency tax: the acceptance bound on the snapshot subsystem's
//! overhead. Asynchronous rounds plus per-write journaling must cost the
//! fig10a Halo workload at most 5% of p50/p99 end-to-end latency — the
//! "non-blocking" claim, measured rather than asserted.
//!
//! The comparison run is constructed directly (no `ACTOP_SNAPSHOT` env
//! plumbing) so the test is hermetic under parallel test threads.

use actop_bench::HaloScenario;
use actop_core::controllers::install_actop;
use actop_core::experiment::{run_steady_state, RunSummary};
use actop_runtime::{Cluster, RuntimeConfig, SnapshotConfig};
use actop_sim::{Engine, Nanos};
use actop_workloads::halo::HaloConfig;
use actop_workloads::HaloWorkload;

/// A scaled-down fig10a cell: the ActOp-optimized Halo runtime (partition
/// agent on, thread agent off — the figure's "optimized" arm).
fn scenario() -> HaloScenario {
    HaloScenario {
        players: 1_000,
        request_rate: 400.0,
        servers: 4,
        warmup: Nanos::from_secs(2),
        measure: Nanos::from_secs(8),
        seed: 110,
        game_duration_s: Some((60.0, 90.0)),
    }
}

/// One legacy-engine run with snapshots on or off; everything else held
/// identical.
fn run(snapshot: Option<SnapshotConfig>) -> (RunSummary, u64, u64) {
    let sc = scenario();
    let mut cfg = HaloConfig::paper_scale(sc.players, sc.request_rate, sc.duration(), sc.seed);
    cfg.game_duration_s = sc.game_duration_s.unwrap();
    let (app, workload) = HaloWorkload::build(cfg);
    let mut rt = RuntimeConfig::paper_testbed(sc.seed);
    rt.servers = sc.servers;
    rt.snapshot = snapshot;
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    install_actop(&mut engine, sc.servers, &sc.actop(true, false));
    cluster.install_snapshots(&mut engine, sc.duration());
    let summary = run_steady_state(&mut engine, &mut cluster, sc.warmup, sc.measure);
    (
        summary,
        cluster.metrics.state_writes,
        cluster.metrics.snap_captures,
    )
}

#[test]
fn snapshot_tax_stays_under_five_percent_on_fig10a() {
    let (base, base_writes, _) = run(None);
    let (snap, writes, captures) = run(Some(SnapshotConfig::default()));

    // The baseline must be snapshot-free and the instrumented run must
    // actually be doing snapshot work, or the bound is vacuous.
    assert_eq!(base_writes, 0, "snapshot-off run journaled writes");
    assert!(
        writes > 0,
        "no write-tagged traffic reached the state cells"
    );
    assert!(captures > 0, "no snapshot round captured state");
    assert!(base.completed > 1_000, "completed {}", base.completed);

    for (name, b, s) in [
        ("p50", base.p50_ms, snap.p50_ms),
        ("p99", base.p99_ms, snap.p99_ms),
    ] {
        assert!(
            s <= b * 1.05,
            "snapshot {name} tax exceeds 5%: {s:.3} ms vs baseline {b:.3} ms"
        );
    }
    // Goodput must not degrade either: same load, same completions
    // within a 1% band.
    assert!(
        (snap.completed as f64) >= 0.99 * base.completed as f64,
        "snapshot run lost goodput: {} vs {}",
        snap.completed,
        base.completed
    );
}
