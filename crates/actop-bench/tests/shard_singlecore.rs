//! Regression for the single-core shard ladder: `BENCH_engine.json` once
//! showed 2 shards at 0.20x and 8 shards at 0.03x of 1-shard throughput
//! on a one-core box, because barrier waiters burned scheduler quanta in
//! a yield loop while the straggler starved. With the park-mode barrier
//! and the runner's inline single-core fallback, sharding a run must cost
//! (nearly) nothing when there is no parallelism to buy.

use actop_bench::{run_halo_sharded, HaloScenario};
use actop_sim::Nanos;

/// A 1/10-scale fig10a operating point: the partitioning-convergence
/// scenario (partition agent on, thread agent off), shrunk so two runs
/// fit in a test budget.
fn fig10a_scaled() -> HaloScenario {
    HaloScenario {
        players: 2_000,
        request_rate: 600.0,
        servers: 10,
        warmup: Nanos::from_secs(4),
        measure: Nanos::from_secs(6),
        seed: 110,
        game_duration_s: None,
    }
}

#[test]
fn two_shard_fig10a_wall_time_within_1_5x_of_one_shard() {
    let scenario = fig10a_scaled();
    let actop = scenario.actop(true, false);
    let (base, one, _) = run_halo_sharded(&scenario, &actop, 1);
    let (split, two, _) = run_halo_sharded(&scenario, &actop, 2);
    // The runs must agree regardless of the box (shard-count
    // determinism); the timing bound is asserted only where the
    // pathology lived — a single-core machine, where both runs now take
    // the inline sequential path and should be near-identical.
    assert_eq!(base.completed, split.completed);
    assert_eq!(one.events_processed, two.events_processed);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores == 1 {
        assert!(
            (two.wall_ns as f64) < (one.wall_ns as f64) * 1.5,
            "2-shard fig10a wall {:.0} ms vs 1-shard {:.0} ms exceeds 1.5x",
            two.wall_ns as f64 / 1e6,
            one.wall_ns as f64 / 1e6,
        );
    }
}
