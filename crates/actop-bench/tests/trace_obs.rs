//! Observability acceptance tests: the breakdown accounting identity, the
//! trace-vs-breakdown cross-check, deterministic Chrome export, and the
//! flight recorder's timeout trigger.

use actop_bench::run_uniform;
use actop_runtime::{Cluster, RuntimeConfig, TraceConfig};
use actop_sim::Nanos;
use actop_trace::{chrome_trace, decompose, validate_chrome_trace, HopKind};
use actop_workloads::uniform;

/// A short fig10b-style single-server run; `trace` optionally activates
/// the tracer (sampling seed tied to the run seed, like the benches).
/// Warmup is zero so the breakdown and the trace cover the same window.
fn short_run(seed: u64, trace: Option<TraceConfig>) -> Cluster {
    let measure = Nanos::from_secs(3);
    let cfg = uniform::counter(2_000.0, measure, seed);
    let mut rt = RuntimeConfig::single_server(seed);
    rt.trace = trace;
    let (_summary, _report, cluster) = run_uniform(cfg, rt, None, None, Nanos::ZERO, measure);
    cluster
}

fn full_trace(seed: u64) -> TraceConfig {
    TraceConfig {
        sample_rate: 1.0,
        seed,
        ..TraceConfig::default()
    }
}

/// Accounting identity: summed breakdown components (queue waits, stage
/// processing, network, "Other" residual) must reproduce the summed
/// end-to-end latency of completed requests. Tolerance covers the
/// requests still in flight at the measurement cutoff, whose partial
/// accounting has no matching end-to-end record.
#[test]
fn breakdown_components_sum_to_e2e_latency() {
    let cluster = short_run(11, None);
    let hist = &cluster.metrics.e2e_latency;
    assert!(hist.count() > 3_000, "run too small: {}", hist.count());
    let sum_e2e = hist.mean() * hist.count() as f64;
    let accounted = cluster.metrics.breakdown.total_ns();
    let rel = (accounted - sum_e2e).abs() / sum_e2e;
    assert!(
        rel < 0.01,
        "breakdown total {accounted} vs e2e total {sum_e2e} (rel err {rel})"
    );
    // The residual is a minor component, not the accounting's backbone.
    let other = cluster
        .metrics
        .breakdown
        .averages_ns()
        .iter()
        .find(|(n, _)| *n == "Other")
        .map(|&(_, v)| v)
        .expect("Other component present");
    let per_request = sum_e2e / hist.count() as f64;
    assert!(
        other < 0.3 * per_request,
        "Other {other} ns dominates the {per_request} ns request"
    );
}

/// The trace-derived latency decomposition must agree with the runtime's
/// independent `Breakdown` accounting component by component: both record
/// the same hops at the same code points, so at sample rate 1.0 any gap
/// means one of the two paths lost events.
#[test]
fn trace_decomposition_matches_breakdown() {
    let cluster = short_run(12, Some(full_trace(12)));
    assert_eq!(cluster.trace.dropped_spans(), 0, "span buffer overflowed");
    let requests = cluster.metrics.breakdown.requests() as f64;
    let traced = decompose(cluster.trace.spans());
    assert!(
        traced.len() >= 5,
        "expected a full decomposition: {traced:?}"
    );
    for (label, avg) in cluster.metrics.breakdown.averages_ns() {
        if label == "Other" {
            continue; // Derived residual; not a recorded hop.
        }
        let breakdown_sum = avg * requests;
        let trace_sum = traced
            .iter()
            .find(|(l, _)| *l == label)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("component {label} missing from trace"));
        let rel = (trace_sum - breakdown_sum).abs() / breakdown_sum.max(1.0);
        assert!(
            rel < 0.01,
            "{label}: trace {trace_sum} vs breakdown {breakdown_sum} (rel err {rel})"
        );
    }
}

/// Same seed, same trace config — byte-identical Chrome trace files, and
/// the file passes the CI validator (well-formed, non-empty, monotone ts
/// per track).
#[test]
fn chrome_export_is_deterministic_and_valid() {
    let a = short_run(13, Some(full_trace(13)));
    let b = short_run(13, Some(full_trace(13)));
    let json_a = chrome_trace(&a.trace);
    let json_b = chrome_trace(&b.trace);
    assert!(!a.trace.spans().is_empty());
    assert_eq!(json_a, json_b, "same-seed exports must be byte-identical");
    let stats = validate_chrome_trace(&json_a).expect("export must validate");
    assert!(stats.complete_spans > 1_000, "stats: {stats:?}");
    assert!(
        stats.counters > 0,
        "timeline sampler produced no counter tracks"
    );
    // A different seed really changes the trace.
    let c = short_run(14, Some(full_trace(14)));
    assert_ne!(json_a, chrome_trace(&c.trace));
}

/// A forced request timeout trips the flight recorder: the dump is
/// annotated with the timeout trigger, names the abandoned request, and
/// its final ring entry is the timeout event itself at the request's
/// gateway server.
#[test]
fn forced_timeout_produces_flight_dump_naming_the_request() {
    let measure = Nanos::from_secs(1);
    let cfg = uniform::counter(1_000.0, measure, 15);
    let mut rt = RuntimeConfig::single_server(15);
    rt.trace = Some(full_trace(15));
    // Far below the ~hundreds-of-microseconds service path: every request
    // that is not already complete at +40 µs is abandoned.
    rt.request_timeout = Some(Nanos::from_micros(40));
    let (summary, _report, cluster) = run_uniform(cfg, rt, None, None, Nanos::ZERO, measure);
    assert!(summary.timed_out > 0, "no timeouts fired");
    let dumps = cluster.trace.flight_dumps();
    assert!(!dumps.is_empty(), "timeout produced no flight dump");
    let dump = &dumps[0];
    assert_eq!(dump.trigger, HopKind::Timeout);
    let last = dump.events.last().expect("dump has ring contents");
    assert_eq!(last.kind, HopKind::Timeout, "last entry names the anomaly");
    assert_eq!(last.request, dump.request);
    assert_eq!(last.server, dump.server);
    // The abandoned request's earlier hops are in the same ring snapshot.
    assert!(
        dump.events
            .iter()
            .any(|e| e.request == dump.request && !matches!(e.kind, HopKind::Timeout)),
        "dump should contain the request's earlier lifecycle"
    );
}
