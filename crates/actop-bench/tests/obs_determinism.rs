//! Telemetry artifacts are a pure function of the simulation.
//!
//! Two properties with teeth:
//!
//! 1. Same seed, two runs: the scrape JSONL document, its Prometheus
//!    exposition, and the rendered HTML report are byte-identical.
//! 2. Same seed, different shard counts: the sharded backend's exported
//!    artifacts are byte-identical too, and the merged registry (frames
//!    and final counter values) does not depend on the shard split —
//!    including the satellite counters (rejected / timed out / forwarded
//!    / stale) that ride on the merged shard metrics.
//!
//! The first test injects `ObsConfig` directly and builds the document
//! in-process via [`actop_bench::obs_document`], so it needs no
//! environment. The second drives the real `ACTOP_OBS` export path (this
//! integration-test binary is its own process, and that test is the only
//! one here that touches the environment).

use actop_bench::{obs_document, run_halo_sharded, HaloScenario};
use actop_core::controllers::install_actop;
use actop_core::experiment::run_steady_state;
use actop_obs::{parse_scrape_jsonl, render_html, validate_exposition, FrameValue, MetricKind};
use actop_runtime::{Cluster, ObsConfig, RuntimeConfig};
use actop_sim::{Engine, Nanos};
use actop_workloads::halo::HaloConfig;
use actop_workloads::HaloWorkload;

fn scenario() -> HaloScenario {
    HaloScenario {
        players: 1_500,
        request_rate: 500.0,
        servers: 4,
        warmup: Nanos::from_secs(4),
        measure: Nanos::from_secs(10),
        seed: 77,
        game_duration_s: Some((60.0, 90.0)),
    }
}

/// One telemetry-enabled legacy-engine run, reduced to its exported
/// artifact strings (scrape JSONL, Prometheus exposition).
fn legacy_run() -> (String, String) {
    let sc = scenario();
    let mut cfg = HaloConfig::paper_scale(sc.players, sc.request_rate, sc.duration(), sc.seed);
    cfg.game_duration_s = sc.game_duration_s.unwrap();
    let (app, workload) = HaloWorkload::build(cfg);
    let mut rt = RuntimeConfig::paper_testbed(sc.seed);
    rt.servers = sc.servers;
    rt.series_bin_ns = 1_000_000_000;
    rt.obs = Some(ObsConfig::default());
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    install_actop(&mut engine, sc.servers, &sc.actop(true, true));
    cluster.install_scraper(&mut engine, sc.duration());
    let summary = run_steady_state(&mut engine, &mut cluster, sc.warmup, sc.measure);
    let report = engine.report();
    obs_document(&cluster, &summary, &report, &[]).expect("telemetry was configured on")
}

#[test]
fn two_runs_export_byte_identical_artifacts() {
    let (jsonl_a, prom_a) = legacy_run();
    let (jsonl_b, prom_b) = legacy_run();
    assert_eq!(jsonl_a, jsonl_b, "scrape JSONL diverged across two runs");
    assert_eq!(
        prom_a, prom_b,
        "Prometheus exposition diverged across two runs"
    );

    // The artifact round-trips through the report pipeline, the
    // exposition validates, and the rendered HTML is byte-identical too.
    let doc_a = parse_scrape_jsonl(&jsonl_a).expect("export must parse");
    let doc_b = parse_scrape_jsonl(&jsonl_b).expect("export must parse");
    let stats = validate_exposition(&prom_a).expect("exposition must validate");
    assert!(stats.families > 0, "empty exposition");
    let html_a = render_html(&doc_a, None);
    let html_b = render_html(&doc_b, None);
    assert!(!html_a.is_empty());
    assert_eq!(html_a, html_b, "HTML report diverged across two runs");
    assert!(!doc_a.frames.is_empty(), "no frames exported");
}

#[test]
fn sharded_artifacts_are_shard_count_invariant() {
    // Drive the real `ACTOP_OBS` export path: the first export in this
    // process lands at `<base>`, the second at `<base>.2`.
    let base = std::env::temp_dir().join(format!("actop-obs-det-{}.jsonl", std::process::id()));
    let base = base.to_str().expect("temp path is utf-8").to_string();
    std::env::set_var("ACTOP_OBS", &base);
    let sc = scenario();
    let actop = sc.actop(true, true);
    let (s1, r1, shell1) = run_halo_sharded(&sc, &actop, 1);
    let (s2, r2, shell2) = run_halo_sharded(&sc, &actop, 2);
    std::env::remove_var("ACTOP_OBS");

    let second = format!("{base}.2");
    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("{p}: {e}"));
    assert_eq!(
        read(&base),
        read(&second),
        "exported scrape JSONL differs between 1 and 2 shards"
    );
    assert_eq!(
        read(&format!("{base}.prom")),
        read(&format!("{second}.prom")),
        "exported exposition differs between 1 and 2 shards"
    );
    for p in [&base, &second] {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(format!("{p}.prom"));
    }

    // The merged registries agree frame-for-frame, and the satellite
    // counters both exist and carry the same final values.
    let obs1 = shell1.obs.as_ref().expect("sharded run had telemetry on");
    let obs2 = shell2.obs.as_ref().expect("sharded run had telemetry on");
    let (reg1, reg2) = (obs1.registry(), obs2.registry());
    assert_eq!(reg1, reg2, "merged registry depends on the shard split");
    assert!(reg1.frame_count() > 0, "no frames scraped");

    let final_counter = |name: &str| -> u64 {
        let idx = reg1
            .defs()
            .iter()
            .position(|d| d.name == name && d.kind == MetricKind::Counter)
            .unwrap_or_else(|| panic!("counter {name} not registered"));
        let frame = reg1.frames().last().expect("at least one frame");
        match frame.values[idx] {
            FrameValue::Counter(v) => v,
            ref other => panic!("{name}: expected a counter, got {other:?}"),
        }
    };
    // Counters accumulate over the whole run (warmup included, resets
    // folded in losslessly), so they bound the window-only summary
    // counts from above.
    for (name, window_count) in [
        ("requests_rejected_total", s1.rejected),
        ("requests_timed_out_total", s1.timed_out),
        ("messages_forwarded_total", s1.forwarded_messages),
        ("responses_stale_total", s1.stale_responses),
    ] {
        assert!(
            final_counter(name) >= window_count,
            "{name} fell below the window count"
        );
    }
    assert!(
        final_counter("requests_completed_total") >= s1.completed,
        "completed counter fell below the window count"
    );

    // And the summaries/engine counts agree across the split (the full
    // bit-level property lives in tests/shard_determinism.rs).
    assert_eq!(s1.completed, s2.completed);
    assert_eq!(s1.rejected, s2.rejected);
    assert_eq!(s1.timed_out, s2.timed_out);
    assert_eq!(s1.forwarded_messages, s2.forwarded_messages);
    assert_eq!(s1.stale_responses, s2.stale_responses);
    assert_eq!(r1.events_processed, r2.events_processed);
}
