//! Golden-summary determinism test: a fixed-seed Halo run must reproduce
//! byte-identical results on every machine and after every refactor of the
//! event kernel.
//!
//! The golden values were recorded from this scenario at the introduction
//! of the indexed event queue; any change to event ordering, RNG streams,
//! or the runtime's scheduling semantics shows up here as a diff. If a
//! change is *intentional* (e.g. a new RNG), re-record by running with
//! `GOLDEN_PRINT=1`:
//!
//! ```sh
//! GOLDEN_PRINT=1 cargo test -p actop-bench --test golden_halo -- --nocapture
//! ```

use actop_bench::{run_halo, HaloScenario};
use actop_core::controllers::ActOpConfig;
use actop_sim::Nanos;

fn scenario() -> HaloScenario {
    HaloScenario {
        players: 800,
        request_rate: 300.0,
        servers: 4,
        warmup: Nanos::from_secs(4),
        measure: Nanos::from_secs(8),
        seed: 42,
        game_duration_s: Some((30.0, 60.0)),
    }
}

fn fingerprint(actop: &ActOpConfig) -> String {
    let s = scenario();
    let (summary, report, cluster) = run_halo(&s, actop);
    format!(
        "submitted={} completed={} rejected={} migrations={} remote={:.6} \
         p50={:.6} p95={:.6} p99={:.6} mean={:.6} events={} final_now={}",
        summary.submitted,
        summary.completed,
        summary.rejected,
        summary.migrations,
        summary.remote_fraction,
        summary.p50_ms,
        summary.p95_ms,
        summary.p99_ms,
        summary.mean_ms,
        report.events_processed,
        cluster.metrics.migrations,
    )
}

#[test]
fn golden_baseline_and_optimized() {
    let base = fingerprint(&ActOpConfig::default());
    let opt = fingerprint(&scenario().actop(true, false));
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN base: {base}");
        println!("GOLDEN opt:  {opt}");
        return;
    }
    assert_eq!(
        base,
        "submitted=2422 completed=2420 rejected=0 migrations=0 remote=0.737308 \
         p50=4.915200 p95=6.225920 p99=6.750208 mean=4.862224 events=227646 final_now=0",
        "baseline fingerprint drifted; if intentional, re-record with GOLDEN_PRINT=1"
    );
    assert_eq!(
        opt,
        "submitted=2422 completed=2421 rejected=0 migrations=636 remote=0.042474 \
         p50=3.047424 p95=4.653056 p99=5.570560 mean=3.173947 events=127976 final_now=636",
        "optimized fingerprint drifted; if intentional, re-record with GOLDEN_PRINT=1"
    );
}

#[test]
fn run_is_reproducible_within_process() {
    // Same scenario twice in one process: the engine, RNG streams, and
    // runtime must not leak state between runs.
    let a = fingerprint(&ActOpConfig::default());
    let b = fingerprint(&ActOpConfig::default());
    assert_eq!(a, b);
}
