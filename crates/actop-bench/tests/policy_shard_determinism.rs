//! The sharded half of the policy differential story: every selectable
//! repartitioning policy must be deterministic in the shard count. The
//! in-vitro half (placement invariants, replay determinism on a
//! [`GraphHost`]) lives in `actop-partition/tests/policy_differential.rs`;
//! this test drives the live sharded runtime and pins that splitting the
//! cluster across conservative-parallel shards never changes what any
//! policy decided — the full [`RunSummary`] stays bit-identical between
//! the sequential oracle (`shards = 1`) and a genuine multi-shard split.
//!
//! [`GraphHost`]: actop_partition::GraphHost

use actop_bench::{run_halo_sharded, HaloScenario};
use actop_core::RunSummary;
use actop_partition::RepartitionPolicyKind;
use actop_sim::Nanos;

/// Every `RunSummary` field as exact bits, so float equality is checked
/// bit-for-bit rather than within an epsilon.
fn summary_bits(s: &RunSummary) -> Vec<u64> {
    vec![
        s.p50_ms.to_bits(),
        s.p95_ms.to_bits(),
        s.p99_ms.to_bits(),
        s.mean_ms.to_bits(),
        s.remote_fraction.to_bits(),
        s.cpu_utilization.to_bits(),
        s.completed,
        s.submitted,
        s.rejected,
        s.timed_out,
        s.forwarded_messages,
        s.stale_responses,
        s.migrations,
        s.throughput_per_s.to_bits(),
        s.retries,
        s.retry_backoff_ms.to_bits(),
        s.directory_repairs,
        s.false_suspicion_repairs,
        s.shed_no_live,
        s.slo_alerts_opened,
        s.slo_alerts_closed,
    ]
}

#[test]
fn every_policy_is_shard_count_invariant() {
    let scenario = HaloScenario {
        players: 300,
        request_rate: 250.0,
        servers: 6,
        warmup: Nanos::from_secs(1),
        measure: Nanos::from_secs(2),
        seed: 21,
        game_duration_s: Some((10.0, 20.0)),
    };
    for kind in RepartitionPolicyKind::ALL {
        let mut actop = scenario.actop(true, false);
        actop
            .partition
            .as_mut()
            .expect("partition agent enabled")
            .policy = kind;
        let (base, base_report, _) = run_halo_sharded(&scenario, &actop, 1);
        assert!(
            base.completed > 200,
            "{kind:?}: completed {}",
            base.completed
        );
        // 7 shards clamp to the 6 servers — still a distinct split from 3.
        for shards in [3usize, 7] {
            let (s, report, _) = run_halo_sharded(&scenario, &actop, shards);
            assert_eq!(
                summary_bits(&base),
                summary_bits(&s),
                "{kind:?}: RunSummary diverged at shards={shards}"
            );
            assert_eq!(
                base_report.events_processed, report.events_processed,
                "{kind:?}: event count diverged at shards={shards}"
            );
        }
    }
}
