//! Shard-count determinism: the acceptance property of the sharded
//! conservative-parallel backend. One seed must produce **byte-identical**
//! results no matter how many shards the cluster is split into or how many
//! worker threads execute them — across healthy runs, full steady-state
//! measurement, and crash/recovery chaos.
//!
//! Two layers:
//!
//! * [`run_halo_sharded_summary_is_shard_count_invariant`] exercises the
//!   public bench entry point and compares the full [`RunSummary`]
//!   bit-for-bit (f64 fields via `to_bits`).
//! * The proptest and the chaos test drive the runner directly with
//!   tracing on and compare merged metrics *and* the [`TraceDigest`]
//!   fingerprint of every recorded span.

use actop_bench::{run_halo_sharded, HaloScenario};
use actop_core::RunSummary;
use actop_runtime::sharded::{
    build_sharded, fail_server_sharded, install_sharded_hooks, recover_server_sharded,
    sharded_lookahead,
};
use actop_runtime::{ClusterMetrics, RuntimeConfig, TraceConfig};
use actop_sim::{ConservativeRunner, Nanos};
use actop_verify::{diff_digests, TraceDigest};
use actop_workloads::halo::HaloConfig;
use actop_workloads::ShardedHaloWorkload;
use proptest::prelude::*;

/// Every `RunSummary` field as exact bits, so float equality is checked
/// bit-for-bit rather than within an epsilon.
fn summary_bits(s: &RunSummary) -> Vec<u64> {
    vec![
        s.p50_ms.to_bits(),
        s.p95_ms.to_bits(),
        s.p99_ms.to_bits(),
        s.mean_ms.to_bits(),
        s.remote_fraction.to_bits(),
        s.cpu_utilization.to_bits(),
        s.completed,
        s.submitted,
        s.rejected,
        s.timed_out,
        s.forwarded_messages,
        s.stale_responses,
        s.migrations,
        s.throughput_per_s.to_bits(),
        s.retries,
        s.retry_backoff_ms.to_bits(),
        s.directory_repairs,
        s.false_suspicion_repairs,
        s.shed_no_live,
        s.slo_alerts_opened,
        s.slo_alerts_closed,
    ]
}

#[test]
fn run_halo_sharded_summary_is_shard_count_invariant() {
    let scenario = HaloScenario {
        players: 300,
        request_rate: 250.0,
        servers: 6,
        warmup: Nanos::from_secs(1),
        measure: Nanos::from_secs(2),
        seed: 21,
        game_duration_s: Some((10.0, 20.0)),
    };
    let actop = scenario.actop(true, true);
    let (base, base_report, _) = run_halo_sharded(&scenario, &actop, 1);
    assert!(base.completed > 200, "completed {}", base.completed);
    assert!(base.migrations > 0, "partition agent must engage");
    // 7 shards clamp to the 6 servers — still a distinct split from 4.
    for shards in [2usize, 4, 7] {
        let (s, report, _) = run_halo_sharded(&scenario, &actop, shards);
        assert_eq!(
            summary_bits(&base),
            summary_bits(&s),
            "RunSummary diverged at shards={shards}"
        );
        assert_eq!(
            base_report.events_processed, report.events_processed,
            "event count diverged at shards={shards}"
        );
    }
}

/// One fault to inject: fail `server` at `at`, recover it at `until`
/// (`None` = stays dead).
#[derive(Debug, Clone, Copy)]
struct Fault {
    server: usize,
    at: Nanos,
    until: Option<Nanos>,
}

/// What one direct run produces: merged steady metrics and the trace
/// fingerprint.
struct Outcome {
    metrics: ClusterMetrics,
    digest: TraceDigest,
}

/// Runs the Halo workload on the sharded backend with tracing on,
/// returning merged metrics and the digest of every span across shards.
fn run_traced(seed: u64, rate: f64, faults: &[Fault], shards: usize, threads: usize) -> Outcome {
    let duration = Nanos::from_secs(2);
    let cfg = HaloConfig::fast_churn(200, rate, duration, seed);
    let (app, workload) = ShardedHaloWorkload::build(cfg);
    let mut rt = RuntimeConfig::paper_testbed(seed);
    rt.servers = 6;
    rt.record_remote_call_latency = true;
    rt.trace = Some(TraceConfig {
        sample_rate: 1.0,
        seed,
        ..TraceConfig::default()
    });
    let series_bin = rt.series_bin_ns;
    let lookahead = sharded_lookahead(&rt);
    let worlds = build_sharded(rt, app, shards);
    let mut runner = ConservativeRunner::new(worlds, lookahead);
    install_sharded_hooks(&mut runner);
    workload.install(&mut runner);
    for f in faults {
        let server = f.server;
        runner.schedule_global(f.at, move |ctx| fail_server_sharded(ctx, server));
        if let Some(until) = f.until {
            runner.schedule_global(until, move |ctx| recover_server_sharded(ctx, server));
        }
    }
    // Run past the request stream's end so in-flight work drains.
    runner.run_until(duration + Nanos::from_millis(100), threads);
    let mut metrics = ClusterMetrics::new(series_bin);
    let mut spans = Vec::new();
    for cell in runner.cells() {
        metrics.merge_from(cell.world.metrics());
        assert_eq!(
            cell.world.trace().dropped_spans(),
            0,
            "digest of a truncated trace"
        );
        spans.extend_from_slice(cell.world.trace().spans());
    }
    Outcome {
        metrics,
        digest: TraceDigest::of(&spans),
    }
}

/// Asserts two outcomes are identical, naming the run pair and the first
/// divergent component.
fn assert_same(base: &Outcome, other: &Outcome, label: &str) {
    if let Some(diff) = diff_digests(&base.digest, &other.digest) {
        panic!("trace digest diverged at {label}: {diff}");
    }
    let (a, b) = (&base.metrics, &other.metrics);
    assert_eq!(a.completed, b.completed, "{label}");
    assert_eq!(a.submitted, b.submitted, "{label}");
    assert_eq!(a.rejected, b.rejected, "{label}");
    assert_eq!(a.remote_messages, b.remote_messages, "{label}");
    assert_eq!(a.local_messages, b.local_messages, "{label}");
    assert_eq!(a.forwarded_messages, b.forwarded_messages, "{label}");
    assert_eq!(a.stale_responses, b.stale_responses, "{label}");
    assert_eq!(a.migrations, b.migrations, "{label}");
    assert_eq!(a.retries, b.retries, "{label}");
    assert_eq!(a.retry_backoff_ns, b.retry_backoff_ns, "{label}");
    assert_eq!(a.lost_in_flight, b.lost_in_flight, "{label}");
    assert_eq!(a.shed_no_live, b.shed_no_live, "{label}");
    assert_eq!(a.e2e_latency.summary(), b.e2e_latency.summary(), "{label}");
    assert_eq!(
        a.e2e_latency.mean().to_bits(),
        b.e2e_latency.mean().to_bits(),
        "{label}"
    );
    assert_eq!(
        a.remote_call_latency.summary(),
        b.remote_call_latency.summary(),
        "{label}"
    );
    assert_eq!(a.latency_series.bins(), b.latency_series.bins(), "{label}");
    assert_eq!(
        a.remote_share_series.bins(),
        b.remote_share_series.bins(),
        "{label}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random seeds and load levels: the shard split {1, 2, 4, 7} and the
    /// thread count never change what happened.
    #[test]
    fn random_runs_identical_across_shard_and_thread_counts(
        seed in 0u64..1_000,
        rate in 150.0f64..350.0,
    ) {
        let base = run_traced(seed, rate, &[], 1, 1);
        prop_assert!(base.metrics.completed > 100, "completed {}", base.metrics.completed);
        for (shards, threads) in [(2usize, 2usize), (4, 3), (7, 7)] {
            let run = run_traced(seed, rate, &[], shards, threads);
            assert_same(&base, &run, &format!("seed={seed} shards={shards} threads={threads}"));
        }
        // Threaded execution of the *same* split matches its sequential oracle.
        let seq = run_traced(seed, rate, &[], 4, 1);
        let par = run_traced(seed, rate, &[], 4, 4);
        assert_same(&seq, &par, &format!("seed={seed} shards=4 sequential-vs-threaded"));
    }
}

#[test]
fn chaos_runs_identical_across_shard_counts() {
    // Servers 2 and 3 land on different shards at every split below, so
    // the crash/recovery machinery (flight dumps, retries, directory
    // repair, re-placement) crosses shard boundaries.
    let faults = [
        Fault {
            server: 2,
            at: Nanos::from_millis(300),
            until: Some(Nanos::from_millis(800)),
        },
        Fault {
            server: 3,
            at: Nanos::from_millis(400),
            until: None,
        },
    ];
    let base = run_traced(77, 800.0, &faults, 1, 1);
    let m = &base.metrics;
    assert!(m.completed > 100);
    assert_eq!(m.server_failures, 2);
    // Requests whose in-flight work died with a server never resolve (the
    // sharded backend has no request timeouts), so the crash shows up as
    // unresolved requests, retries, or stale/lost messages.
    let unresolved = m.submitted - m.completed - m.rejected;
    assert!(
        m.retries + m.lost_in_flight + m.stale_responses + unresolved > 0,
        "faults must actually disturb traffic (retries {}, lost {}, stale {}, unresolved {unresolved})",
        m.retries,
        m.lost_in_flight,
        m.stale_responses,
    );
    for (shards, threads) in [(2usize, 2usize), (5, 3), (6, 6)] {
        let run = run_traced(77, 800.0, &faults, shards, threads);
        assert_same(
            &base,
            &run,
            &format!("chaos shards={shards} threads={threads}"),
        );
    }
}
