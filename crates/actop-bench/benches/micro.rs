//! Criterion microbenchmarks of the hot paths underneath every experiment:
//! the event engine, the processor-sharing CPU, the Space-Saving sketch,
//! the latency histogram, the exchange-subset selection, and the
//! closed-form thread allocator.

use actop_metrics::LatencyHistogram;
use actop_partition::score::ScoredVertex;
use actop_partition::{
    select_exchange, DenseDirectory, ExchangeRequest, Partition, PartitionConfig,
};
use actop_runtime::table::SlabTable;
use actop_seda::allocate_threads;
use actop_seda::model::{SedaModel, StageParams, ETA_CALIBRATED};
use actop_sim::{DetRng, Engine, Nanos, PsCpu};
use actop_sketch::SpaceSaving;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A faithful copy of the event queue the engine had before the indexed
/// heap: a reversed-`Ord` `BinaryHeap` of boxed closures plus a tombstone
/// set for cancellation (cancelled events stay queued and are skipped at
/// pop time). Kept here so the `engine_*_old` benches report honest
/// old-vs-new numbers from a single binary.
mod legacy {
    use actop_sim::Nanos;
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet};

    type EventFn<W> = Box<dyn FnOnce(&mut W, &mut LegacyEngine<W>)>;

    struct Scheduled<W> {
        at: Nanos,
        seq: u64,
        f: EventFn<W>,
    }

    impl<W> PartialEq for Scheduled<W> {
        fn eq(&self, other: &Self) -> bool {
            (self.at, self.seq) == (other.at, other.seq)
        }
    }
    impl<W> Eq for Scheduled<W> {}
    impl<W> PartialOrd for Scheduled<W> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<W> Ord for Scheduled<W> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest first.
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    pub struct LegacyEngine<W> {
        now: Nanos,
        seq: u64,
        queue: BinaryHeap<Scheduled<W>>,
        cancelled: HashSet<u64>,
        processed: u64,
    }

    impl<W> LegacyEngine<W> {
        pub fn new() -> Self {
            LegacyEngine {
                now: Nanos::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                cancelled: HashSet::new(),
                processed: 0,
            }
        }

        pub fn schedule(
            &mut self,
            at: Nanos,
            f: impl FnOnce(&mut W, &mut LegacyEngine<W>) + 'static,
        ) -> u64 {
            let at = at.max(self.now);
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Scheduled {
                at,
                seq,
                f: Box::new(f),
            });
            seq
        }

        pub fn cancel(&mut self, id: u64) {
            self.cancelled.insert(id);
        }

        pub fn run(&mut self, world: &mut W) {
            while let Some(ev) = self.queue.pop() {
                if self.cancelled.remove(&ev.seq) {
                    continue;
                }
                self.now = ev.at;
                self.processed += 1;
                (ev.f)(world, self);
            }
        }

        pub fn events_processed(&self) -> u64 {
            self.processed
        }
    }
}

/// The steady-state pattern under the processor-sharing CPU model: a fixed
/// set of provisional completion events, each retargeted many times before
/// any fires. Old kernel: cancel + box + push (tombstones pile up). New
/// kernel: `reschedule` in place.
const RETARGET_SERVERS: u64 = 64;
const RETARGET_OPS: u64 = 50_000;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_schedule_run_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                engine.schedule(Nanos(i), |w, _| *w += 1);
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box(world)
        })
    });

    // Interleaved schedule/pop churn at a steady queue depth, the generic
    // DES workload shape.
    c.bench_function("engine_churn_interleaved_20k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            fn chain(w: &mut u64, e: &mut Engine<u64>, hops: u64) {
                *w += 1;
                if hops > 0 {
                    let delay = Nanos(1 + (*w * 2_654_435_761) % 1_000);
                    e.schedule_tick_after(delay, chain, hops - 1);
                }
            }
            for i in 0..200u64 {
                engine.schedule_tick(Nanos(i), chain, 99);
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box(world)
        })
    });

    c.bench_function("engine_cancel_heavy_old", |b| {
        b.iter(|| {
            let mut engine: legacy::LegacyEngine<u64> = legacy::LegacyEngine::new();
            let mut rng = DetRng::new(99);
            let mut ids: Vec<u64> = (0..RETARGET_SERVERS)
                .map(|s| engine.schedule(Nanos(1_000 + s), |w, _| *w += 1))
                .collect();
            let mut horizon = 1_000u64;
            for op in 0..RETARGET_OPS {
                let server = (op % RETARGET_SERVERS) as usize;
                horizon += rng.below(32) as u64;
                engine.cancel(ids[server]);
                ids[server] = engine.schedule(Nanos(horizon), |w, _| *w += 1);
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box((world, engine.events_processed()))
        })
    });

    c.bench_function("engine_cancel_heavy_new", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            fn fire(w: &mut u64, _e: &mut Engine<u64>, _payload: u64) {
                *w += 1;
            }
            let mut rng = DetRng::new(99);
            let ids: Vec<_> = (0..RETARGET_SERVERS)
                .map(|s| engine.schedule_tick(Nanos(1_000 + s), fire, s))
                .collect();
            let mut horizon = 1_000u64;
            for op in 0..RETARGET_OPS {
                let server = (op % RETARGET_SERVERS) as usize;
                horizon += rng.below(32) as u64;
                engine.reschedule(ids[server], Nanos(horizon));
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box((world, engine.events_processed()))
        })
    });

    // The reschedule fast path in isolation: small time nudges, so the
    // sift distance stays short.
    c.bench_function("engine_reschedule_nudge_50k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            fn fire(w: &mut u64, _e: &mut Engine<u64>, _payload: u64) {
                *w += 1;
            }
            let ids: Vec<_> = (0..1_000u64)
                .map(|i| engine.schedule_tick(Nanos(10_000 + i * 100), fire, i))
                .collect();
            for op in 0..50_000u64 {
                let idx = ((op * 2_654_435_761) % 1_000) as usize;
                let nudge = 10_000 + (op % 97) * 100;
                engine.reschedule(ids[idx], Nanos(nudge + idx as u64));
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box(world)
        })
    });
}

/// A faithful copy of the `BTreeSet<(count, slot)>` Space-Saving sketch
/// the runtime had before the lazy-min fast path, for honest old-vs-new
/// `routing_sketch_*` numbers (same role as [`legacy`] for the engine).
mod legacy_sketch {
    use std::collections::{BTreeSet, HashMap};
    use std::hash::Hash;

    pub struct SpaceSaving<T> {
        capacity: usize,
        counts: Vec<u64>,
        items: Vec<T>,
        index: HashMap<T, usize>,
        by_count: BTreeSet<(u64, usize)>,
    }

    impl<T: Eq + Hash + Clone> SpaceSaving<T> {
        pub fn new(capacity: usize) -> Self {
            SpaceSaving {
                capacity,
                counts: Vec::new(),
                items: Vec::new(),
                index: HashMap::new(),
                by_count: BTreeSet::new(),
            }
        }

        pub fn len(&self) -> usize {
            self.items.len()
        }

        pub fn offer(&mut self, item: T, weight: u64) {
            if let Some(&slot) = self.index.get(&item) {
                let old = self.counts[slot];
                self.by_count.remove(&(old, slot));
                self.counts[slot] = old + weight;
                self.by_count.insert((old + weight, slot));
                return;
            }
            if self.items.len() < self.capacity {
                let slot = self.items.len();
                self.items.push(item.clone());
                self.counts.push(weight);
                self.index.insert(item, slot);
                self.by_count.insert((weight, slot));
                return;
            }
            let &(min_count, slot) = self.by_count.iter().next().expect("full");
            self.by_count.remove(&(min_count, slot));
            let evicted = std::mem::replace(&mut self.items[slot], item.clone());
            self.counts[slot] = min_count + weight;
            self.index.remove(&evicted);
            self.index.insert(item, slot);
            self.by_count.insert((min_count + weight, slot));
        }
    }
}

/// The per-message routing structures, old vs new: directory lookups
/// (`HashMap` partition vs dense region table), join-table churn
/// (counter-keyed `HashMap` vs generation-tagged slab), and sketch offers
/// (`BTreeSet` min-tracking vs the lazy-min fast path).
fn bench_routing(c: &mut Criterion) {
    // Two id bands, the Halo shape: players dense at 0.., games at 2^40.
    const PLAYERS: u64 = 20_000;
    const GAME_BASE: u64 = 1 << 40;
    const GAMES: u64 = 1_500;
    let mut rng = DetRng::new(11);
    let lookups: Vec<u64> = (0..50_000)
        .map(|_| {
            if rng.chance(0.8) {
                rng.below(PLAYERS as usize) as u64
            } else {
                GAME_BASE + rng.below(GAMES as usize) as u64
            }
        })
        .collect();

    // The pre-overhaul directory: `Partition`'s assignment map with the
    // standard library's SipHash hasher (today's `Partition` already uses
    // the fx hasher, so a plain `HashMap` is the faithful baseline).
    c.bench_function("routing_directory_lookup_old", |b| {
        let mut dir: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for v in (0..PLAYERS).chain((0..GAMES).map(|g| GAME_BASE + g)) {
            dir.insert(v, (v % 8) as usize);
        }
        b.iter(|| {
            let mut acc = 0usize;
            for v in &lookups {
                acc += dir.get(v).copied().unwrap_or(0);
            }
            black_box(acc)
        })
    });

    // The fx-hashed map the rest of the refactor would have settled for:
    // isolates how much of the directory win is the hasher vs the table.
    c.bench_function("routing_directory_lookup_fx", |b| {
        let mut dir: Partition<u64> = Partition::new(8);
        for v in (0..PLAYERS).chain((0..GAMES).map(|g| GAME_BASE + g)) {
            dir.place(v, (v % 8) as usize);
        }
        b.iter(|| {
            let mut acc = 0usize;
            for v in &lookups {
                acc += dir.server_of(v).unwrap_or(0);
            }
            black_box(acc)
        })
    });

    c.bench_function("routing_directory_lookup_new", |b| {
        let mut dir = DenseDirectory::new(8);
        for v in (0..PLAYERS).chain((0..GAMES).map(|g| GAME_BASE + g)) {
            dir.place(v, (v % 8) as usize);
        }
        b.iter(|| {
            let mut acc = 0usize;
            for v in &lookups {
                acc += dir.server_of(*v).unwrap_or(0);
            }
            black_box(acc)
        })
    });

    // Join-table lifecycle at a steady in-flight population, the cluster's
    // request/join churn shape: insert, resolve a few times, remove.
    const INFLIGHT: usize = 512;
    const CHURN: usize = 20_000;

    c.bench_function("routing_join_resolve_old", |b| {
        b.iter(|| {
            let mut table: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
            let mut next_id = 0u64;
            let mut live: Vec<u64> = Vec::with_capacity(INFLIGHT);
            for _ in 0..INFLIGHT {
                table.insert(next_id, next_id * 3);
                live.push(next_id);
                next_id += 1;
            }
            let mut acc = 0u64;
            for i in 0..CHURN {
                let victim = live[i % INFLIGHT];
                acc += *table.get(&victim).unwrap();
                *table.get_mut(&victim).unwrap() += 1;
                table.remove(&victim);
                table.insert(next_id, next_id * 3);
                live[i % INFLIGHT] = next_id;
                next_id += 1;
            }
            black_box(acc)
        })
    });

    c.bench_function("routing_join_resolve_new", |b| {
        b.iter(|| {
            let mut table: SlabTable<u64> = SlabTable::new();
            let mut next_val = 0u64;
            let mut live: Vec<u64> = Vec::with_capacity(INFLIGHT);
            for _ in 0..INFLIGHT {
                live.push(table.insert(next_val * 3));
                next_val += 1;
            }
            let mut acc = 0u64;
            for i in 0..CHURN {
                let victim = live[i % INFLIGHT];
                acc += *table.get(victim).unwrap();
                *table.get_mut(victim).unwrap() += 1;
                table.remove(victim);
                live[i % INFLIGHT] = table.insert(next_val * 3);
                next_val += 1;
            }
            black_box(acc)
        })
    });

    // Sketch offers on the note_actor_message shape: a capacity-bounded
    // sample under a heavy-tailed edge stream (mostly monitored hits,
    // steady eviction pressure from the tail).
    let mut rng = DetRng::new(13);
    let stream: Vec<u64> = (0..50_000)
        .map(|_| {
            if rng.chance(0.75) {
                rng.below(512) as u64 // hot edges, monitored
            } else {
                rng.below(1 << 20) as u64 // tail, mostly evictions
            }
        })
        .collect();

    c.bench_function("routing_sketch_offer_old", |b| {
        b.iter(|| {
            let mut sketch: legacy_sketch::SpaceSaving<u64> = legacy_sketch::SpaceSaving::new(1024);
            for &item in &stream {
                sketch.offer(item, 1);
            }
            black_box(sketch.len())
        })
    });

    c.bench_function("routing_sketch_offer_new", |b| {
        b.iter(|| {
            let mut sketch: SpaceSaving<u64> = SpaceSaving::new(1024);
            for &item in &stream {
                sketch.offer(item, 1);
            }
            black_box(sketch.len())
        })
    });
}

fn bench_cpu(c: &mut Criterion) {
    c.bench_function("pscpu_1k_tasks", |b| {
        b.iter(|| {
            let mut cpu = PsCpu::new(8, 0.018);
            cpu.set_configured_threads(Nanos::ZERO, 32);
            let mut t = Nanos::ZERO;
            for _ in 0..1_000u64 {
                cpu.add(t, 50_000.0);
                t += Nanos(10_000);
                cpu.advance(t);
            }
            while let Some(next) = cpu.next_completion() {
                cpu.advance(next);
                t = next;
            }
            black_box(cpu.take_completed(t).len())
        })
    });
}

fn bench_sketch(c: &mut Criterion) {
    c.bench_function("space_saving_offer_10k", |b| {
        let mut rng = DetRng::new(5);
        let stream: Vec<(u64, u64)> = (0..10_000).map(|_| (rng.below(4096) as u64, 1)).collect();
        b.iter(|| {
            let mut sketch: SpaceSaving<u64> = SpaceSaving::new(1024);
            for &(item, w) in &stream {
                sketch.offer(item, w);
            }
            black_box(sketch.len())
        })
    });
}

fn bench_hist(c: &mut Criterion) {
    c.bench_function("histogram_record_and_quantile_10k", |b| {
        let mut rng = DetRng::new(6);
        let values: Vec<u64> = (0..10_000).map(|_| (rng.exp(5e6)) as u64).collect();
        b.iter(|| {
            let mut hist = LatencyHistogram::new();
            for &v in &values {
                hist.record(v);
            }
            black_box((hist.quantile(0.5), hist.quantile(0.99)))
        })
    });
}

fn bench_exchange(c: &mut Criterion) {
    c.bench_function("select_exchange_128_candidates", |b| {
        let mut rng = DetRng::new(7);
        let make_cands = |rng: &mut DetRng, base: u32| -> Vec<ScoredVertex<u32>> {
            (0..128)
                .map(|i| ScoredVertex {
                    vertex: base + i,
                    score: rng.below(100) as i64 + 1,
                    edges: (0..8)
                        .map(|_| (rng.below(4096) as u32, rng.below(20) as u64 + 1))
                        .collect(),
                })
                .collect()
        };
        let incoming = make_cands(&mut rng, 0);
        let own = make_cands(&mut rng, 10_000);
        let request = ExchangeRequest {
            from: 0,
            from_size: 2_000,
            candidates: incoming,
        };
        let config = PartitionConfig {
            candidate_set_size: 128,
            imbalance_tolerance: 64,
            exchange_cooldown_ns: 0,
            min_total_score: 1,
        };
        b.iter(|| black_box(select_exchange(&request, 2_000, &own, &config).moves()))
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("allocate_threads_4_stages", |b| {
        let model = SedaModel::new(
            vec![
                StageParams::cpu_bound(4_000.0, 7_000.0),
                StageParams::cpu_bound(11_000.0, 6_000.0),
                StageParams::cpu_bound(3_500.0, 7_000.0),
                StageParams::cpu_bound(600.0, 9_000.0),
            ],
            8,
            ETA_CALIBRATED,
        )
        .unwrap();
        b.iter(|| black_box(allocate_threads(&model).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_engine,
    bench_routing,
    bench_cpu,
    bench_sketch,
    bench_hist,
    bench_exchange,
    bench_allocator
);
criterion_main!(benches);
