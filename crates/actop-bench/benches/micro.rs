//! Criterion microbenchmarks of the hot paths underneath every experiment:
//! the event engine, the processor-sharing CPU, the Space-Saving sketch,
//! the latency histogram, the exchange-subset selection, and the
//! closed-form thread allocator.

use actop_metrics::LatencyHistogram;
use actop_partition::score::ScoredVertex;
use actop_partition::{select_exchange, ExchangeRequest, PartitionConfig};
use actop_seda::allocate_threads;
use actop_seda::model::{SedaModel, StageParams, ETA_CALIBRATED};
use actop_sim::{DetRng, Engine, Nanos, PsCpu};
use actop_sketch::SpaceSaving;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_schedule_run_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                engine.schedule(Nanos(i), |w, _| *w += 1);
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box(world)
        })
    });
}

fn bench_cpu(c: &mut Criterion) {
    c.bench_function("pscpu_1k_tasks", |b| {
        b.iter(|| {
            let mut cpu = PsCpu::new(8, 0.018);
            cpu.set_configured_threads(Nanos::ZERO, 32);
            let mut t = Nanos::ZERO;
            for _ in 0..1_000u64 {
                cpu.add(t, 50_000.0);
                t = t + Nanos(10_000);
                cpu.advance(t);
            }
            while let Some(next) = cpu.next_completion() {
                cpu.advance(next);
                t = next;
            }
            black_box(cpu.take_completed(t).len())
        })
    });
}

fn bench_sketch(c: &mut Criterion) {
    c.bench_function("space_saving_offer_10k", |b| {
        let mut rng = DetRng::new(5);
        let stream: Vec<(u64, u64)> = (0..10_000)
            .map(|_| (rng.below(4096) as u64, 1))
            .collect();
        b.iter(|| {
            let mut sketch: SpaceSaving<u64> = SpaceSaving::new(1024);
            for &(item, w) in &stream {
                sketch.offer(item, w);
            }
            black_box(sketch.len())
        })
    });
}

fn bench_hist(c: &mut Criterion) {
    c.bench_function("histogram_record_and_quantile_10k", |b| {
        let mut rng = DetRng::new(6);
        let values: Vec<u64> = (0..10_000)
            .map(|_| (rng.exp(5e6)) as u64)
            .collect();
        b.iter(|| {
            let mut hist = LatencyHistogram::new();
            for &v in &values {
                hist.record(v);
            }
            black_box((hist.quantile(0.5), hist.quantile(0.99)))
        })
    });
}

fn bench_exchange(c: &mut Criterion) {
    c.bench_function("select_exchange_128_candidates", |b| {
        let mut rng = DetRng::new(7);
        let make_cands = |rng: &mut DetRng, base: u32| -> Vec<ScoredVertex<u32>> {
            (0..128)
                .map(|i| ScoredVertex {
                    vertex: base + i,
                    score: rng.below(100) as i64 + 1,
                    edges: (0..8)
                        .map(|_| (rng.below(4096) as u32, rng.below(20) as u64 + 1))
                        .collect(),
                })
                .collect()
        };
        let incoming = make_cands(&mut rng, 0);
        let own = make_cands(&mut rng, 10_000);
        let request = ExchangeRequest {
            from: 0,
            from_size: 2_000,
            candidates: incoming,
        };
        let config = PartitionConfig {
            candidate_set_size: 128,
            imbalance_tolerance: 64,
            exchange_cooldown_ns: 0,
            min_total_score: 1,
        };
        b.iter(|| black_box(select_exchange(&request, 2_000, &own, &config).moves()))
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("allocate_threads_4_stages", |b| {
        let model = SedaModel::new(
            vec![
                StageParams::cpu_bound(4_000.0, 7_000.0),
                StageParams::cpu_bound(11_000.0, 6_000.0),
                StageParams::cpu_bound(3_500.0, 7_000.0),
                StageParams::cpu_bound(600.0, 9_000.0),
            ],
            8,
            ETA_CALIBRATED,
        )
        .unwrap();
        b.iter(|| black_box(allocate_threads(&model).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_engine,
    bench_cpu,
    bench_sketch,
    bench_hist,
    bench_exchange,
    bench_allocator
);
criterion_main!(benches);
