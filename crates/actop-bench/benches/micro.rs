//! Criterion microbenchmarks of the hot paths underneath every experiment:
//! the event engine, the processor-sharing CPU, the Space-Saving sketch,
//! the latency histogram, the exchange-subset selection, and the
//! closed-form thread allocator.

use actop_metrics::LatencyHistogram;
use actop_partition::score::ScoredVertex;
use actop_partition::{select_exchange, ExchangeRequest, PartitionConfig};
use actop_seda::allocate_threads;
use actop_seda::model::{SedaModel, StageParams, ETA_CALIBRATED};
use actop_sim::{DetRng, Engine, Nanos, PsCpu};
use actop_sketch::SpaceSaving;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A faithful copy of the event queue the engine had before the indexed
/// heap: a reversed-`Ord` `BinaryHeap` of boxed closures plus a tombstone
/// set for cancellation (cancelled events stay queued and are skipped at
/// pop time). Kept here so the `engine_*_old` benches report honest
/// old-vs-new numbers from a single binary.
mod legacy {
    use actop_sim::Nanos;
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet};

    type EventFn<W> = Box<dyn FnOnce(&mut W, &mut LegacyEngine<W>)>;

    struct Scheduled<W> {
        at: Nanos,
        seq: u64,
        f: EventFn<W>,
    }

    impl<W> PartialEq for Scheduled<W> {
        fn eq(&self, other: &Self) -> bool {
            (self.at, self.seq) == (other.at, other.seq)
        }
    }
    impl<W> Eq for Scheduled<W> {}
    impl<W> PartialOrd for Scheduled<W> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<W> Ord for Scheduled<W> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest first.
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    pub struct LegacyEngine<W> {
        now: Nanos,
        seq: u64,
        queue: BinaryHeap<Scheduled<W>>,
        cancelled: HashSet<u64>,
        processed: u64,
    }

    impl<W> LegacyEngine<W> {
        pub fn new() -> Self {
            LegacyEngine {
                now: Nanos::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                cancelled: HashSet::new(),
                processed: 0,
            }
        }

        pub fn schedule(
            &mut self,
            at: Nanos,
            f: impl FnOnce(&mut W, &mut LegacyEngine<W>) + 'static,
        ) -> u64 {
            let at = at.max(self.now);
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Scheduled {
                at,
                seq,
                f: Box::new(f),
            });
            seq
        }

        pub fn cancel(&mut self, id: u64) {
            self.cancelled.insert(id);
        }

        pub fn run(&mut self, world: &mut W) {
            while let Some(ev) = self.queue.pop() {
                if self.cancelled.remove(&ev.seq) {
                    continue;
                }
                self.now = ev.at;
                self.processed += 1;
                (ev.f)(world, self);
            }
        }

        pub fn events_processed(&self) -> u64 {
            self.processed
        }
    }
}

/// The steady-state pattern under the processor-sharing CPU model: a fixed
/// set of provisional completion events, each retargeted many times before
/// any fires. Old kernel: cancel + box + push (tombstones pile up). New
/// kernel: `reschedule` in place.
const RETARGET_SERVERS: u64 = 64;
const RETARGET_OPS: u64 = 50_000;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_schedule_run_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                engine.schedule(Nanos(i), |w, _| *w += 1);
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box(world)
        })
    });

    // Interleaved schedule/pop churn at a steady queue depth, the generic
    // DES workload shape.
    c.bench_function("engine_churn_interleaved_20k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            fn chain(w: &mut u64, e: &mut Engine<u64>, hops: u64) {
                *w += 1;
                if hops > 0 {
                    let delay = Nanos(1 + (*w * 2_654_435_761) % 1_000);
                    e.schedule_tick_after(delay, chain, hops - 1);
                }
            }
            for i in 0..200u64 {
                engine.schedule_tick(Nanos(i), chain, 99);
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box(world)
        })
    });

    c.bench_function("engine_cancel_heavy_old", |b| {
        b.iter(|| {
            let mut engine: legacy::LegacyEngine<u64> = legacy::LegacyEngine::new();
            let mut rng = DetRng::new(99);
            let mut ids: Vec<u64> = (0..RETARGET_SERVERS)
                .map(|s| engine.schedule(Nanos(1_000 + s), |w, _| *w += 1))
                .collect();
            let mut horizon = 1_000u64;
            for op in 0..RETARGET_OPS {
                let server = (op % RETARGET_SERVERS) as usize;
                horizon += rng.below(32) as u64;
                engine.cancel(ids[server]);
                ids[server] = engine.schedule(Nanos(horizon), |w, _| *w += 1);
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box((world, engine.events_processed()))
        })
    });

    c.bench_function("engine_cancel_heavy_new", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            fn fire(w: &mut u64, _e: &mut Engine<u64>, _payload: u64) {
                *w += 1;
            }
            let mut rng = DetRng::new(99);
            let ids: Vec<_> = (0..RETARGET_SERVERS)
                .map(|s| engine.schedule_tick(Nanos(1_000 + s), fire, s))
                .collect();
            let mut horizon = 1_000u64;
            for op in 0..RETARGET_OPS {
                let server = (op % RETARGET_SERVERS) as usize;
                horizon += rng.below(32) as u64;
                engine.reschedule(ids[server], Nanos(horizon));
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box((world, engine.events_processed()))
        })
    });

    // The reschedule fast path in isolation: small time nudges, so the
    // sift distance stays short.
    c.bench_function("engine_reschedule_nudge_50k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            fn fire(w: &mut u64, _e: &mut Engine<u64>, _payload: u64) {
                *w += 1;
            }
            let ids: Vec<_> = (0..1_000u64)
                .map(|i| engine.schedule_tick(Nanos(10_000 + i * 100), fire, i))
                .collect();
            for op in 0..50_000u64 {
                let idx = ((op * 2_654_435_761) % 1_000) as usize;
                let nudge = 10_000 + (op % 97) * 100;
                engine.reschedule(ids[idx], Nanos(nudge + idx as u64));
            }
            let mut world = 0u64;
            engine.run(&mut world);
            black_box(world)
        })
    });
}

fn bench_cpu(c: &mut Criterion) {
    c.bench_function("pscpu_1k_tasks", |b| {
        b.iter(|| {
            let mut cpu = PsCpu::new(8, 0.018);
            cpu.set_configured_threads(Nanos::ZERO, 32);
            let mut t = Nanos::ZERO;
            for _ in 0..1_000u64 {
                cpu.add(t, 50_000.0);
                t += Nanos(10_000);
                cpu.advance(t);
            }
            while let Some(next) = cpu.next_completion() {
                cpu.advance(next);
                t = next;
            }
            black_box(cpu.take_completed(t).len())
        })
    });
}

fn bench_sketch(c: &mut Criterion) {
    c.bench_function("space_saving_offer_10k", |b| {
        let mut rng = DetRng::new(5);
        let stream: Vec<(u64, u64)> = (0..10_000).map(|_| (rng.below(4096) as u64, 1)).collect();
        b.iter(|| {
            let mut sketch: SpaceSaving<u64> = SpaceSaving::new(1024);
            for &(item, w) in &stream {
                sketch.offer(item, w);
            }
            black_box(sketch.len())
        })
    });
}

fn bench_hist(c: &mut Criterion) {
    c.bench_function("histogram_record_and_quantile_10k", |b| {
        let mut rng = DetRng::new(6);
        let values: Vec<u64> = (0..10_000).map(|_| (rng.exp(5e6)) as u64).collect();
        b.iter(|| {
            let mut hist = LatencyHistogram::new();
            for &v in &values {
                hist.record(v);
            }
            black_box((hist.quantile(0.5), hist.quantile(0.99)))
        })
    });
}

fn bench_exchange(c: &mut Criterion) {
    c.bench_function("select_exchange_128_candidates", |b| {
        let mut rng = DetRng::new(7);
        let make_cands = |rng: &mut DetRng, base: u32| -> Vec<ScoredVertex<u32>> {
            (0..128)
                .map(|i| ScoredVertex {
                    vertex: base + i,
                    score: rng.below(100) as i64 + 1,
                    edges: (0..8)
                        .map(|_| (rng.below(4096) as u32, rng.below(20) as u64 + 1))
                        .collect(),
                })
                .collect()
        };
        let incoming = make_cands(&mut rng, 0);
        let own = make_cands(&mut rng, 10_000);
        let request = ExchangeRequest {
            from: 0,
            from_size: 2_000,
            candidates: incoming,
        };
        let config = PartitionConfig {
            candidate_set_size: 128,
            imbalance_tolerance: 64,
            exchange_cooldown_ns: 0,
            min_total_score: 1,
        };
        b.iter(|| black_box(select_exchange(&request, 2_000, &own, &config).moves()))
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("allocate_threads_4_stages", |b| {
        let model = SedaModel::new(
            vec![
                StageParams::cpu_bound(4_000.0, 7_000.0),
                StageParams::cpu_bound(11_000.0, 6_000.0),
                StageParams::cpu_bound(3_500.0, 7_000.0),
                StageParams::cpu_bound(600.0, 9_000.0),
            ],
            8,
            ETA_CALIBRATED,
        )
        .unwrap();
        b.iter(|| black_box(allocate_threads(&model).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_engine,
    bench_cpu,
    bench_sketch,
    bench_hist,
    bench_exchange,
    bench_allocator
);
criterion_main!(benches);
