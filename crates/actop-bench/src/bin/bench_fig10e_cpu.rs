//! Fig. 10e: CPU utilization at different loads, baseline vs partitioned.
//!
//! The paper reports that partitioning cuts per-server CPU utilization by
//! 25% at 2K requests/s up to 45% at 6K — locality removes serialization
//! work, which is what later doubles peak throughput.

use actop_bench::{print_engine_line, run_halo, HaloScenario};
use actop_core::controllers::ActOpConfig;

fn main() {
    println!("== Fig. 10e: mean CPU utilization vs load ==");
    println!("paper: baseline ~55/70/80%; partitioned reduction 25% -> 45% as load grows");
    println!();
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "load", "baseline", "partitioned", "reduction"
    );
    let mut reports = Vec::new();
    for (i, load) in [2_000.0, 4_000.0, 6_000.0].into_iter().enumerate() {
        let scenario = HaloScenario::paper(load, 150 + i as u64);
        let (baseline, base_report, _) = run_halo(&scenario, &ActOpConfig::default());
        let (optimized, opt_report, _) = run_halo(&scenario, &scenario.actop(true, false));
        reports.extend([base_report, opt_report]);
        println!(
            "{load:>8} {:>11.1}% {:>13.1}% {:>11.1}%",
            baseline.cpu_utilization * 100.0,
            optimized.cpu_utilization * 100.0,
            100.0 * (1.0 - optimized.cpu_utilization / baseline.cpu_utilization)
        );
    }
    print_engine_line(&reports);
}
