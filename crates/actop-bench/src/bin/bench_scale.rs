//! The players-vs-p99 headline: million-player scale with and without
//! hot-actor replication.
//!
//! Sweeps the celebrity workload over populations of 100K to 1M players
//! (aggregate rate scales with the population), with replication off and
//! on, and writes one JSON row per cell to `BENCH_scale.json`. At 1M the
//! top celebrity alone draws ~37% of all traffic — ~1.2x one server's
//! capacity — so the single-activation model melts (queue-bound p50 in
//! the seconds) while replication spreads the reads across replicas and
//! holds the p99 near the uncontended baseline. Ablation rows run the
//! flash-crowd, diurnal and rotating-hotspot shapes at a fixed
//! population.
//!
//! `ACTOP_SCALE_SMOKE=1` shrinks the sweep to the CI probe (100K players,
//! replication on, short windows) and writes `BENCH_scale_smoke.json`.
//! All JSON rows are deterministic; wall-clock and peak-RSS truth goes to
//! the trailing `{"kind":"engine",...}` row (and the `engine:` stdout
//! line), which determinism diffs must exclude.

use actop_bench::{env_shards, run_scale, scale_runtime};
use actop_core::RunSummary;
use actop_runtime::Cluster;
use actop_sim::Nanos;
use actop_workloads::scale::peak_rss_bytes;
use actop_workloads::{MemoryAudit, ScaleConfig};

fn scale_smoke() -> bool {
    std::env::var("ACTOP_SCALE_SMOKE").is_ok_and(|v| v == "1")
}

struct Windows {
    warmup: Nanos,
    measure: Nanos,
}

fn windows() -> Windows {
    if scale_smoke() {
        Windows {
            warmup: Nanos::from_secs(6),
            measure: Nanos::from_secs(8),
        }
    } else {
        // 45 s warmup: the 1M celebrity ladder takes ~15 s of 2 s-cooldown
        // split decisions to converge, and the pre-split queue backlog
        // needs several more seconds to drain before steady state.
        Windows {
            warmup: Nanos::from_secs(45),
            measure: Nanos::from_secs(60),
        }
    }
}

/// One bench cell: runs it and renders the deterministic JSON row.
fn run_cell(
    scenario: &str,
    cfg: ScaleConfig,
    warmup: Nanos,
    replication: bool,
    shards: usize,
) -> (RunSummary, Cluster, MemoryAudit, String) {
    let rt = scale_runtime(cfg.seed, replication);
    let (summary, _, shell, audit) = run_scale(cfg, warmup, rt, shards);
    let m = &shell.metrics;
    println!(
        "{scenario:>9} {:>9} players rep={} | p50 {:>8.2}ms p99 {:>9.2}ms | done {:>7} shed {:>6} | splits {:>2} drops {:>2} rep-reads {:>7}",
        cfg.players,
        if replication { "on " } else { "off" },
        summary.p50_ms,
        summary.p99_ms,
        summary.completed,
        summary.rejected,
        m.splits,
        m.replica_drops,
        m.replica_reads,
    );
    let row = format!(
        "{{\"scenario\":\"{scenario}\",\"players\":{},\"replication\":{replication},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},\"mean_ms\":{:.3},\"completed\":{},\"submitted\":{},\"rejected\":{},\"shed_no_live\":{},\"forward_loop_drops\":{},\"forwarded\":{},\"splits\":{},\"replica_drops\":{},\"replica_reads\":{},\"replica_writes\":{},\"migrations\":{},\"slab_bytes\":{}}}\n",
        cfg.players,
        summary.p50_ms,
        summary.p95_ms,
        summary.p99_ms,
        summary.mean_ms,
        summary.completed,
        summary.submitted,
        summary.rejected,
        summary.shed_no_live,
        m.forward_loop_drops,
        summary.forwarded_messages,
        m.splits,
        m.replica_drops,
        m.replica_reads,
        m.replica_writes,
        summary.migrations,
        audit.slab_bytes,
    );
    (summary, shell, audit, row)
}

fn main() {
    let smoke = scale_smoke();
    let w = windows();
    let duration = w.warmup + w.measure;
    let shards = env_shards().unwrap_or(1);
    let wall_start = std::time::Instant::now();
    println!("== Players vs p99: hot-actor replication at scale ==");
    println!(
        "celebrity workload, 8 servers x 4 cores, shards={shards}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!();

    let populations: &[u64] = if smoke {
        &[100_000]
    } else {
        &[100_000, 250_000, 500_000, 1_000_000]
    };
    let variants: &[bool] = if smoke { &[true] } else { &[false, true] };

    let mut json = String::new();
    let mut headline: Vec<(u64, bool, f64)> = Vec::new();
    for &players in populations {
        for &replication in variants {
            let cfg = ScaleConfig::celebrity(players, duration, 77);
            let (summary, _, _, row) = run_cell("celebrity", cfg, w.warmup, replication, shards);
            headline.push((players, replication, summary.p99_ms));
            json.push_str(&row);
        }
    }

    if !smoke {
        println!();
        println!("-- ablation: time-varying shapes at 250K players, replication on --");
        let players = 250_000;
        let flash_cfg = ScaleConfig::flash_crowd(players, duration, 78);
        let (flash, flash_shell, _, row) = run_cell("flash", flash_cfg, w.warmup, true, shards);
        json.push_str(&row);
        // Acceptance: the flash crowd rides through without shedding to a
        // dead end or tripping the forward-loop cap.
        assert_eq!(flash.shed_no_live, 0, "flash crowd hit shed_no_live");
        assert_eq!(
            flash_shell.metrics.forward_loop_drops, 0,
            "flash crowd hit the forward-loop cap"
        );
        for (scenario, cfg) in [
            ("diurnal", ScaleConfig::diurnal(players, duration, 79)),
            ("rotating", ScaleConfig::rotating(players, duration, 80)),
        ] {
            let (_, _, _, row) = run_cell(scenario, cfg, w.warmup, true, shards);
            json.push_str(&row);
        }

        // The headline claim: at 1M players under the celebrity skew,
        // replication must strictly beat the single-activation model.
        let p99_at = |players: u64, rep: bool| {
            headline
                .iter()
                .find(|(p, r, _)| *p == players && *r == rep)
                .map(|(_, _, p99)| *p99)
                .expect("headline cell missing")
        };
        let off = p99_at(1_000_000, false);
        let on = p99_at(1_000_000, true);
        println!();
        println!("1M-player p99: replication off {off:.1}ms vs on {on:.1}ms");
        assert!(
            on < off,
            "replication-on p99 ({on:.1}ms) must beat off ({off:.1}ms) at 1M players"
        );
    }

    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let rss = peak_rss_bytes().unwrap_or(0);
    println!();
    println!(
        "engine: wall {:.2}s, peak RSS {:.0} MiB",
        wall_ns as f64 / 1e9,
        rss as f64 / (1024.0 * 1024.0)
    );
    json.push_str(&format!(
        "{{\"kind\":\"engine\",\"wall_ns\":{wall_ns},\"peak_rss_bytes\":{rss},\"smoke\":{smoke}}}\n"
    ));
    let out = if smoke {
        "BENCH_scale_smoke.json"
    } else {
        "BENCH_scale.json"
    };
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("could not write {out}: {e}");
    }
    println!("wrote {out}");
}
