//! Fig. 5: median request latency under different thread allocations.
//!
//! The paper varies worker threads and sender threads from 2 to 8 on an
//! 8-core server running the counter application and finds a 4× spread:
//! best ≈9.9 ms at (2 workers, 3 senders), worst ≈38.2 ms at (8, 6), with
//! Orleans' default (8, 8) among the worst. Rows are worker threads, columns
//! sender threads; the receiver keeps 2 threads and the (unused) server
//! sender 1, as the single-server flow never crosses servers.

use actop_bench::{full_scale, parallel_map, print_engine_line, run_uniform};
use actop_runtime::RuntimeConfig;
use actop_sim::Nanos;
use actop_workloads::uniform;

fn main() {
    let (warmup, measure) = if full_scale() {
        (Nanos::from_secs(30), Nanos::from_secs(120))
    } else {
        (Nanos::from_secs(5), Nanos::from_secs(20))
    };
    println!("== Fig. 5: median latency (ms) vs (worker, sender) threads; counter near receiver saturation ==");
    println!("paper: best 9.9 ms at (2,3); worst 38.2 ms at (8,6); ~4x spread");
    println!();
    print!("      ");
    for senders in 2..=8 {
        print!("   s={senders}  ");
    }
    println!();
    // The 49 grid cells are independent runs: fan them across cores and
    // print in grid order.
    let grid: Vec<(usize, usize)> = (2..=8)
        .flat_map(|workers| (2..=8).map(move |senders| (workers, senders)))
        .collect();
    let results = parallel_map(grid.clone(), |(workers, senders)| {
        let workload = uniform::counter(16_000.0, warmup + measure, 555);
        let rt = RuntimeConfig::single_server(555);
        let threads = [2, workers, 1, senders];
        let (summary, report, _) = run_uniform(workload, rt, Some(threads), None, warmup, measure);
        (summary.p50_ms, report)
    });
    let mut best = (f64::INFINITY, (0, 0));
    let mut worst = (0.0f64, (0, 0));
    for (&(workers, senders), (p50_ms, _)) in grid.iter().zip(&results) {
        if senders == 2 {
            print!("w={workers}   ");
        }
        print!(" {p50_ms:6.2} ");
        if *p50_ms < best.0 {
            best = (*p50_ms, (workers, senders));
        }
        if *p50_ms > worst.0 {
            worst = (*p50_ms, (workers, senders));
        }
        if senders == 8 {
            println!();
        }
    }
    println!();
    println!(
        "best {:.2} ms at (w={}, s={}); worst {:.2} ms at (w={}, s={}); spread {:.1}x",
        best.0,
        best.1 .0,
        best.1 .1,
        worst.0,
        worst.1 .0,
        worst.1 .1,
        worst.0 / best.0
    );
    print_engine_line(&results.iter().map(|(_, r)| *r).collect::<Vec<_>>());
}
