//! Ablation: the closed-form allocator vs its alternatives.
//!
//! Compares, over random feasible SEDA models:
//!
//! * Theorem 2's closed form (with KKT bisection when the budget binds),
//! * the projected-gradient solver (the generic convex-optimization route),
//! * exhaustive integer search (the quality ceiling, exponential cost).
//!
//! Reported: objective gap and wall-clock solve time — the closed form's
//! point is that it is cheap enough to re-solve online every few seconds.

use std::time::Instant;

use actop_seda::model::{SedaModel, StageParams};
use actop_seda::{allocate_threads, continuous_allocation, gradient_allocation};
use actop_sim::DetRng;

fn random_model(rng: &mut DetRng) -> SedaModel {
    loop {
        let stages: Vec<StageParams> = (0..4)
            .map(|_| StageParams {
                lambda: rng.uniform(100.0, 4000.0),
                service_rate: rng.uniform(500.0, 8000.0),
                beta: rng.uniform(0.3, 1.0),
            })
            .collect();
        if let Ok(model) = SedaModel::new(stages, 8, 1e-4) {
            let int_min: f64 = model
                .stages
                .iter()
                .map(|s| ((s.lambda / s.service_rate).floor() + 1.0) * s.beta)
                .sum();
            if model.is_feasible() && int_min < 6.0 {
                return model;
            }
        }
    }
}

fn brute_force(model: &SedaModel) -> (Vec<usize>, f64) {
    let mut best = (vec![], f64::INFINITY);
    for a in 1..=8 {
        for b in 1..=8 {
            for c in 1..=8 {
                for d in 1..=8 {
                    let t = [a as f64, b as f64, c as f64, d as f64];
                    if model.allocation_cpu(&t) > model.processors {
                        continue;
                    }
                    if let Some(obj) = model.objective(&t) {
                        if obj < best.1 {
                            best = (vec![a, b, c, d], obj);
                        }
                    }
                }
            }
        }
    }
    best
}

fn main() {
    let mut rng = DetRng::new(99);
    let trials = 200;
    println!("== Ablation: thread-allocation solvers over {trials} random models ==");
    println!();
    let mut closed_gap = 0.0f64;
    let mut grad_gap = 0.0f64;
    let mut worst_closed: f64 = 0.0;
    let mut t_closed = std::time::Duration::ZERO;
    let mut t_grad = std::time::Duration::ZERO;
    let mut t_brute = std::time::Duration::ZERO;
    for _ in 0..trials {
        let model = random_model(&mut rng);

        let start = Instant::now();
        let ours = allocate_threads(&model).expect("feasible");
        t_closed += start.elapsed();
        let ours_obj = model
            .objective(&ours.iter().map(|&x| x as f64).collect::<Vec<_>>())
            .unwrap();

        let start = Instant::now();
        let grad = gradient_allocation(&model, 5_000).expect("feasible");
        t_grad += start.elapsed();
        let grad_obj = model.objective(&grad).unwrap();
        let cont_obj = model
            .objective(&continuous_allocation(&model).unwrap())
            .unwrap();

        let start = Instant::now();
        let (_, brute_obj) = brute_force(&model);
        t_brute += start.elapsed();

        let gap = (ours_obj - brute_obj) / brute_obj * 100.0;
        closed_gap += gap;
        worst_closed = worst_closed.max(gap);
        grad_gap += (grad_obj - cont_obj) / cont_obj * 100.0;
    }
    println!(
        "closed form + hill climb: mean gap to exhaustive integer optimum {:.3}% (worst {:.2}%), total solve time {:?}",
        closed_gap / trials as f64,
        worst_closed,
        t_closed
    );
    println!(
        "projected gradient (5000 iters, continuous): mean gap to closed-form continuous {:.3}%, total time {:?}",
        grad_gap / trials as f64,
        t_grad
    );
    println!("exhaustive integer search: total time {t_brute:?}");
    println!();
    println!(
        "per-solve: closed form {:?} vs exhaustive {:?} — cheap enough to re-solve online",
        t_closed / trials,
        t_brute / trials
    );
}
