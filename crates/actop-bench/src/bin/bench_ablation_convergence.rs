//! Ablation: the pairwise protocol vs the §4.2 design alternatives.
//!
//! On a static clustered graph (the Theorem 1 setting) this compares:
//!
//! * the paper's pairwise coordination protocol,
//! * unilateral one-sided migration (no responder coordination) — the
//!   alternative the paper rules out for racing and imbalance,
//! * centralized greedy refinement with full graph knowledge — the
//!   quality ceiling a METIS-class partitioner represents.
//!
//! Reported: cut cost per sweep, final balance, and migrations used.

use actop_partition::baselines::{centralized_refine, one_sided_sweep, random_partition};
use actop_partition::driver::run_to_convergence;
use actop_partition::{CommGraph, PartitionConfig};
use actop_sim::DetRng;

/// A Halo-like clustered graph: `clusters` cliques of 9 vertices (one hub
/// plus 8 members, mirroring a game with its players).
fn clustered_graph(clusters: u32) -> CommGraph<u32> {
    let mut g = CommGraph::new();
    for c in 0..clusters {
        let hub = c * 16;
        for m in 1..=8 {
            g.add_edge(hub, hub + m, 10);
        }
    }
    let mut rng = DetRng::new(7);
    // Sparse random background edges.
    for _ in 0..clusters {
        let a = rng.below(clusters as usize) as u32 * 16 + rng.below(9) as u32;
        let b = rng.below(clusters as usize) as u32 * 16 + rng.below(9) as u32;
        g.add_edge(a, b, 1);
    }
    g
}

fn main() {
    let servers = 8;
    let graph = clustered_graph(400);
    let vertices = graph.vertices();
    let mut rng = DetRng::new(11);
    let config = PartitionConfig {
        candidate_set_size: 64,
        imbalance_tolerance: 18,
        exchange_cooldown_ns: 0,
        min_total_score: 1,
    };
    println!("== Ablation: partitioning algorithms on a static clustered graph ==");
    println!(
        "{} vertices, {} total edge weight, {} servers",
        graph.vertex_count(),
        graph.total_weight(),
        servers
    );
    println!();

    // Pairwise protocol.
    let mut pairwise = random_partition(&vertices, servers, &mut rng);
    let start_cost = graph.cut_cost(&pairwise);
    let report = run_to_convergence(&graph, &mut pairwise, &config, 60);
    println!("pairwise protocol:");
    println!("  cost per sweep: {:?}", report.cost_history);
    println!(
        "  final cost {} ({:.1}% of start), moves {}, imbalance {}, converged: {}",
        graph.cut_cost(&pairwise),
        100.0 * graph.cut_cost(&pairwise) as f64 / start_cost as f64,
        report.total_moves(),
        pairwise.max_imbalance(),
        report.converged
    );
    println!();

    // One-sided unilateral migration.
    let mut rng = DetRng::new(11);
    let mut one_sided = random_partition(&vertices, servers, &mut rng);
    let mut costs = vec![graph.cut_cost(&one_sided)];
    let mut moves = 0;
    for _ in 0..60 {
        let m = one_sided_sweep(&graph, &mut one_sided, &config);
        moves += m;
        costs.push(graph.cut_cost(&one_sided));
        if m == 0 {
            break;
        }
    }
    println!("one-sided unilateral migration (ruled out in §4.2):");
    println!("  cost per sweep: {costs:?}");
    println!(
        "  final cost {}, moves {}, imbalance {} (no balance guarantee)",
        graph.cut_cost(&one_sided),
        moves,
        one_sided.max_imbalance()
    );
    println!();

    // Centralized greedy refinement.
    let mut rng = DetRng::new(11);
    let mut central = random_partition(&vertices, servers, &mut rng);
    let applied = centralized_refine(&graph, &mut central, config.imbalance_tolerance, 1_000_000);
    println!("centralized greedy refinement (full graph knowledge):");
    println!(
        "  final cost {}, moves {}, imbalance {}",
        graph.cut_cost(&central),
        applied,
        central.max_imbalance()
    );
    println!();
    println!(
        "summary: pairwise {} vs one-sided {} vs centralized {} (lower cut is better)",
        graph.cut_cost(&pairwise),
        graph.cut_cost(&one_sided),
        graph.cut_cost(&central)
    );
}
