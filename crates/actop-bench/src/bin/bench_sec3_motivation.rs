//! §3 motivation numbers: the baseline (random placement) versus the
//! co-located variant of Halo Presence at the highest load.
//!
//! The paper reports, for 100K concurrent players at 6K requests/s on ten
//! servers: baseline median/p95/p99 of 41/450/736 ms with ≈90% of
//! actor-to-actor messages remote and 80% CPU; co-locating communicating
//! players cuts this to 24/100/225 ms. The co-located variant here uses
//! `Local` placement with the workload's call pattern, which activates each
//! game cluster on one server.

use actop_bench::{full_scale, print_engine_line, print_row, HaloScenario};
use actop_core::experiment::run_steady_state;
use actop_runtime::{Cluster, PlacementPolicy, RuntimeConfig};
use actop_sim::Engine;
use actop_workloads::halo::HaloConfig;
use actop_workloads::HaloWorkload;

fn run(
    placement: PlacementPolicy,
    scenario: &HaloScenario,
) -> (actop_core::RunSummary, actop_sim::EngineReport) {
    let mut cfg = HaloConfig::paper_scale(
        scenario.players,
        scenario.request_rate,
        scenario.duration(),
        scenario.seed,
    );
    if !full_scale() {
        cfg.game_duration_s = (120.0, 180.0);
    }
    let (app, workload) = HaloWorkload::build(cfg);
    let mut rt = RuntimeConfig::paper_testbed(scenario.seed);
    rt.servers = scenario.servers;
    rt.placement = placement;
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    let summary = run_steady_state(&mut engine, &mut cluster, scenario.warmup, scenario.measure);
    (summary, engine.report())
}

fn main() {
    let scenario = HaloScenario::paper(6_000.0, 101);
    println!(
        "== §3 motivation: Halo Presence at 6K req/s, {} servers ==",
        scenario.servers
    );
    println!("paper: baseline 41/450/736 ms (med/p95/p99), ~90% remote, 80% CPU");
    println!("paper: co-located 24/100/225 ms");
    println!();
    let (baseline, r0) = run(PlacementPolicy::Random, &scenario);
    print_row("random placement", &baseline);
    let (colocated, r1) = run(PlacementPolicy::Local, &scenario);
    print_row("co-located (local)", &colocated);
    println!();
    println!(
        "static placement is insufficient: even the co-located run drifts to {:.1}% remote as the graph churns",
        colocated.remote_fraction * 100.0
    );
    print_engine_line(&[r0, r1]);
}
