//! §6.1 peak throughput: partitioning doubles the sustainable load.
//!
//! The paper saturates the cluster by raising the request rate until
//! servers start rejecting: the random baseline starts dropping at ~6K
//! requests/s (80% CPU) while ActOp reaches ~12K — a 2× peak-throughput
//! gain from the CPU freed by locality.

use actop_bench::{full_scale, run_halo_sweep, HaloCell, HaloScenario};
use actop_core::controllers::ActOpConfig;
use actop_sim::{EngineReport, Nanos};

/// `ACTOP_PEAK_SMOKE=1` shrinks the ladder to a CI-sized probe (two load
/// levels, short windows, small population) and writes
/// `BENCH_engine_smoke.json` instead of `BENCH_engine.json` — the input
/// of the `scripts/perf_gate.py` regression gate.
fn peak_smoke() -> bool {
    std::env::var("ACTOP_PEAK_SMOKE").is_ok_and(|v| v == "1")
}

/// A load level is sustained when overload shedding stays negligible,
/// goodput tracks the offered rate (neither starving nor draining a
/// backlog), and queueing has not gone pathological.
fn sustained(summary: &actop_core::RunSummary, offered: f64) -> bool {
    let shed = summary.rejected as f64 / summary.submitted.max(1) as f64;
    shed < 0.01
        && summary.throughput_per_s > 0.95 * offered
        && summary.throughput_per_s < 1.05 * offered
        && summary.p99_ms < 1_000.0
}

fn main() {
    println!("== Peak throughput: raise load until servers reject ==");
    println!("paper: baseline saturates ~6K req/s; ActOp sustains ~12K (2x)");
    println!();
    let loads: Vec<f64> = if peak_smoke() {
        vec![2_000.0, 4_000.0]
    } else {
        (1..=9).map(|i| i as f64 * 2_000.0).collect()
    };
    // The whole (variant × load) ladder runs in parallel; the sequential
    // early-break at the first saturated level becomes an early break in
    // the in-order printing walk below, so the output is identical.
    let mut cells = Vec::new();
    for kind in 0..2 {
        for (i, &load) in loads.iter().enumerate() {
            let mut scenario = HaloScenario::paper(load, 190 + i as u64);
            // Saturation probes can be shorter than latency measurements.
            if !full_scale() {
                scenario.warmup = Nanos::from_secs(30);
                scenario.measure = Nanos::from_secs(30);
            }
            if peak_smoke() {
                scenario.players = 2_000;
                scenario.warmup = Nanos::from_secs(5);
                scenario.measure = Nanos::from_secs(10);
            }
            let actop = if kind == 0 {
                ActOpConfig::default()
            } else {
                scenario.actop(true, true)
            };
            cells.push(HaloCell {
                label: format!("{kind}@{load}"),
                scenario,
                actop,
            });
        }
    }
    let results = run_halo_sweep(cells);
    let mut engine_total = EngineReport::default();
    for r in &results {
        engine_total.merge(&r.report);
    }
    let mut peaks = [0.0f64; 2];
    for (kind, label) in [(0, "baseline"), (1, "ActOp (partition+threads)")] {
        println!("--- {label} ---");
        for (i, &load) in loads.iter().enumerate() {
            let summary = &results[kind * loads.len() + i].summary;
            let ok = sustained(summary, load);
            println!(
                "offered {load:>6}/s: goodput {:>6.0}/s shed {:>5.2}% cpu {:>5.1}% p99 {:>8.1}ms {}",
                summary.throughput_per_s,
                100.0 * summary.rejected as f64 / summary.submitted.max(1) as f64,
                summary.cpu_utilization * 100.0,
                summary.p99_ms,
                if ok { "SUSTAINED" } else { "SATURATED" }
            );
            if ok {
                peaks[kind] = load;
            } else {
                break;
            }
        }
        println!();
    }
    println!(
        "peak sustained: baseline {:.0}/s vs ActOp {:.0}/s ({:.1}x)",
        peaks[0],
        peaks[1],
        peaks[1] / peaks[0].max(1.0)
    );
    println!("{}", engine_total.line());
    let mut json = format!(
        "{{\"events_processed\":{},\"cancels\":{},\"reschedules\":{},\"peak_pending\":{},\"wall_ns\":{},\"cpu_ns\":{},\"events_per_sec\":{:.1}}}\n",
        engine_total.events_processed,
        engine_total.cancels,
        engine_total.reschedules,
        engine_total.peak_pending,
        engine_total.wall_ns,
        engine_total.cpu_ns,
        engine_total.events_per_sec(),
    );
    json.push_str(&shard_scaling_rows());
    let out = if peak_smoke() {
        "BENCH_engine_smoke.json"
    } else {
        "BENCH_engine.json"
    };
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("could not write {out}: {e}");
    }
}

/// The headline shard-scaling A/B: one fixed Halo cell run on the sharded
/// conservative-parallel backend at increasing shard counts, one JSON row
/// per count. Shard workers use the whole machine, so the ladder runs
/// sequentially (one run at a time) for honest wall-clock numbers.
fn shard_scaling_rows() -> String {
    use actop_bench::run_halo_sharded;
    let mut out = String::new();
    println!();
    println!("-- sharded engine scaling (same scenario per row) --");
    let mut scenario = HaloScenario::paper(6_000.0, 42);
    if !full_scale() {
        scenario.warmup = Nanos::from_secs(30);
        scenario.measure = Nanos::from_secs(30);
    }
    let ladder: &[usize] = if peak_smoke() {
        scenario.players = 2_000;
        scenario.warmup = Nanos::from_secs(5);
        scenario.measure = Nanos::from_secs(10);
        &[1, 2]
    } else {
        &[1, 2, 4, 8]
    };
    let actop = scenario.actop(true, true);
    let mut base_rate = 0.0f64;
    for &shards in ladder {
        let (_, report, _) = run_halo_sharded(&scenario, &actop, shards);
        let rate = report.events_per_sec();
        if shards == 1 {
            base_rate = rate;
        }
        let speedup = rate / base_rate.max(1.0);
        println!(
            "shards={shards}: {:.2}M events in {:.2}s wall ({:.2}s cpu) = {:.2}M events/s ({speedup:.2}x)",
            report.events_processed as f64 / 1e6,
            report.wall_ns as f64 / 1e9,
            report.cpu_ns as f64 / 1e9,
            rate / 1e6,
        );
        out.push_str(&format!(
            "{{\"shards\":{shards},\"events_processed\":{},\"wall_ns\":{},\"cpu_ns\":{},\"events_per_sec\":{rate:.1},\"speedup_vs_1shard\":{speedup:.2}}}\n",
            report.events_processed, report.wall_ns, report.cpu_ns,
        ));
    }
    out
}
