//! §6.1 peak throughput: partitioning doubles the sustainable load.
//!
//! The paper saturates the cluster by raising the request rate until
//! servers start rejecting: the random baseline starts dropping at ~6K
//! requests/s (80% CPU) while ActOp reaches ~12K — a 2× peak-throughput
//! gain from the CPU freed by locality.

use actop_bench::{full_scale, run_halo, HaloScenario};
use actop_core::controllers::ActOpConfig;
use actop_sim::Nanos;

/// A load level is sustained when overload shedding stays negligible,
/// goodput tracks the offered rate (neither starving nor draining a
/// backlog), and queueing has not gone pathological.
fn sustained(summary: &actop_core::RunSummary, offered: f64) -> bool {
    let shed = summary.rejected as f64 / summary.submitted.max(1) as f64;
    shed < 0.01
        && summary.throughput_per_s > 0.95 * offered
        && summary.throughput_per_s < 1.05 * offered
        && summary.p99_ms < 1_000.0
}

fn main() {
    println!("== Peak throughput: raise load until servers reject ==");
    println!("paper: baseline saturates ~6K req/s; ActOp sustains ~12K (2x)");
    println!();
    let loads: Vec<f64> = (1..=9).map(|i| i as f64 * 2_000.0).collect();
    let mut peaks = [0.0f64; 2];
    for (kind, label) in [(0, "baseline"), (1, "ActOp (partition+threads)")] {
        println!("--- {label} ---");
        for (i, &load) in loads.iter().enumerate() {
            let mut scenario = HaloScenario::paper(load, 190 + i as u64);
            // Saturation probes can be shorter than latency measurements.
            if !full_scale() {
                scenario.warmup = Nanos::from_secs(30);
                scenario.measure = Nanos::from_secs(30);
            }
            let actop = if kind == 0 {
                ActOpConfig::default()
            } else {
                scenario.actop(true, true)
            };
            let (summary, _) = run_halo(&scenario, &actop);
            let ok = sustained(&summary, load);
            println!(
                "offered {load:>6}/s: goodput {:>6.0}/s shed {:>5.2}% cpu {:>5.1}% p99 {:>8.1}ms {}",
                summary.throughput_per_s,
                100.0 * summary.rejected as f64 / summary.submitted.max(1) as f64,
                summary.cpu_utilization * 100.0,
                summary.p99_ms,
                if ok { "SUSTAINED" } else { "SATURATED" }
            );
            if ok {
                peaks[kind] = load;
            } else {
                break;
            }
        }
        println!();
    }
    println!(
        "peak sustained: baseline {:.0}/s vs ActOp {:.0}/s ({:.1}x)",
        peaks[0],
        peaks[1],
        peaks[1] / peaks[0].max(1.0)
    );
}
