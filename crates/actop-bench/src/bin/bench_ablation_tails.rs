//! Ablation: latency tails with a GC-pause model.
//!
//! The calibrated simulator deliberately omits stop-the-world pauses, so
//! its tail-to-median ratios are tighter than the paper's (their baseline:
//! p99 736 ms over a 41 ms median, ≈18×). This bench re-runs the Fig. 10b
//! comparison with a .NET-era GC profile (a 20–80 ms pause every ~2 s per
//! server) to show where the paper's heavy tails come from and that
//! ActOp's relative tail gains survive — and grow — once pauses exist:
//! a loaded baseline takes far longer to drain a pause backlog than the
//! partitioned system running at half the utilization.

use actop_bench::{full_scale, print_engine_line, print_row, HaloScenario};
use actop_core::controllers::{install_actop, ActOpConfig};
use actop_core::experiment::run_steady_state;
use actop_runtime::config::HiccupModel;
use actop_runtime::{Cluster, RuntimeConfig};
use actop_sim::Engine;
use actop_workloads::halo::HaloConfig;
use actop_workloads::HaloWorkload;

fn run(
    scenario: &HaloScenario,
    actop: &ActOpConfig,
    gc: bool,
) -> (actop_core::RunSummary, actop_sim::EngineReport) {
    let mut cfg = HaloConfig::paper_scale(
        scenario.players,
        scenario.request_rate,
        scenario.duration(),
        scenario.seed,
    );
    if !full_scale() {
        cfg.game_duration_s = (120.0, 180.0);
    }
    let (app, workload) = HaloWorkload::build(cfg);
    let mut rt = RuntimeConfig::paper_testbed(scenario.seed);
    rt.servers = scenario.servers;
    if gc {
        rt.hiccups = Some(HiccupModel::dotnet_gc());
    }
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    cluster.install_hiccups(&mut engine, scenario.duration());
    workload.install(&mut engine);
    install_actop(&mut engine, scenario.servers, actop);
    let summary = run_steady_state(&mut engine, &mut cluster, scenario.warmup, scenario.measure);
    (summary, engine.report())
}

fn main() {
    let scenario = HaloScenario::paper(6_000.0, 220);
    println!("== Tails ablation: Fig. 10b with and without a GC-pause model ==");
    println!("paper baseline p99/p50 = 736/41 ~ 18x; ours without pauses ~ 1.8x");
    println!();
    let (base_plain, r0) = run(&scenario, &ActOpConfig::default(), false);
    let (opt_plain, r1) = run(&scenario, &scenario.actop(true, false), false);
    print_row("baseline, no pauses", &base_plain);
    print_row("partitioned, no pauses", &opt_plain);
    let (base_gc, r2) = run(&scenario, &ActOpConfig::default(), true);
    let (opt_gc, r3) = run(&scenario, &scenario.actop(true, false), true);
    print_row("baseline, GC pauses", &base_gc);
    print_row("partitioned, GC pauses", &opt_gc);
    println!();
    println!(
        "tail ratio p99/p50: baseline {:.1}x -> {:.1}x with pauses; partitioned {:.1}x -> {:.1}x",
        base_plain.p99_ms / base_plain.p50_ms,
        base_gc.p99_ms / base_gc.p50_ms,
        opt_plain.p99_ms / opt_plain.p50_ms,
        opt_gc.p99_ms / opt_gc.p50_ms,
    );
    println!(
        "p99 improvement from partitioning: {:.0}% without pauses, {:.0}% with pauses",
        100.0 * (1.0 - opt_plain.p99_ms / base_plain.p99_ms),
        100.0 * (1.0 - opt_gc.p99_ms / base_gc.p99_ms),
    );
    print_engine_line(&[r0, r1, r2, r3]);
}
