//! Fig. 7: queue-length-based thread control oscillates.
//!
//! The paper's six-stage SEDA emulator with a queue-threshold controller
//! (`Th = 100`, `Tl = 10`, 30-second sampling) never settles: queues sit
//! empty until a stage saturates, then explode; adding a thread flips the
//! bottleneck elsewhere. The same emulator driven by ActOp's model-based
//! allocator settles after the first measurement window. This bench prints
//! both traces plus an oscillation measure (peak-to-trough thread swing
//! after warmup).

use actop_seda::controller::ModelDrivenController;
use actop_seda::emulator::{run_emulator, EmuController, EmulatorConfig};
use actop_seda::model::ETA_CALIBRATED;

fn print_trace(label: &str, result: &actop_seda::emulator::EmulatorResult) {
    println!("--- {label} ---");
    println!(
        "completed {} of {} arrivals; pipeline p99 {:.1} ms",
        result.completed,
        result.arrived,
        result.latency.quantile(0.99) as f64 / 1e6
    );
    for (i, trace) in result.traces.iter().enumerate() {
        let threads: Vec<String> = trace.iter().map(|s| format!("{:>3}", s.threads)).collect();
        println!("stage {i} threads: {}", threads.join(" "));
    }
    for (i, trace) in result.traces.iter().enumerate() {
        let queues: Vec<String> = trace
            .iter()
            .map(|s| format!("{:>5}", s.queue_len))
            .collect();
        println!("stage {i} queue:   {}", queues.join(" "));
    }
    let swing = result.thread_swing(4);
    println!("thread swing after warmup (per stage): {swing:?}");
    println!(
        "queue spikes over Th=100 (per stage): {:?}",
        result.queue_spikes(100)
    );
    println!();
}

fn main() {
    println!("== Fig. 7: six-stage SEDA emulator, queue-length controller vs model-driven ==");
    println!("paper: queue controller oscillates indefinitely (Fig. 7a/7b)");
    println!();
    let queue_cfg = EmulatorConfig::fig7(1_000.0, 77);
    let queue = run_emulator(&queue_cfg);
    print_trace(
        "queue-length controller (Th=100, Tl=10, 30 s sampling)",
        &queue,
    );

    let model_cfg = EmulatorConfig {
        controller: EmuController::ModelDriven(ModelDrivenController::new(ETA_CALIBRATED, 64)),
        ..EmulatorConfig::fig7(1_000.0, 77)
    };
    let model = run_emulator(&model_cfg);
    print_trace("ActOp model-driven allocator", &model);

    let queue_swing: usize = queue.thread_swing(4).iter().sum();
    let model_swing: usize = model.thread_swing(4).iter().sum();
    println!(
        "total thread swing: queue-length {queue_swing} vs model-driven {model_swing} (lower is steadier)"
    );
}
