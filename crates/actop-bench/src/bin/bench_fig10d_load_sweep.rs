//! Fig. 10d: latency improvement of partitioning at different loads.
//!
//! The paper sweeps 2K / 4K / 6K requests/s and reports the improvement
//! `100% × (1 − optimized/baseline)` for the median, 95th, and 99th
//! percentiles; the gains grow with load because queuing in the RPC
//! serialization stages amplifies the benefit of locality.

use actop_bench::{print_improvement, print_row, run_halo, HaloScenario};
use actop_core::controllers::ActOpConfig;

fn main() {
    println!("== Fig. 10d: latency improvement vs load (partitioning only) ==");
    println!("paper: improvements grow with load; e.g. at 6K: median ~41%, p99 ~69%");
    println!();
    let mut rows = Vec::new();
    for (i, load) in [2_000.0, 4_000.0, 6_000.0].into_iter().enumerate() {
        let scenario = HaloScenario::paper(load, 140 + i as u64);
        let (baseline, _) = run_halo(&scenario, &ActOpConfig::default());
        let (optimized, _) = run_halo(&scenario, &scenario.actop(true, false));
        print_row(&format!("baseline @{load}"), &baseline);
        print_row(&format!("partitioned @{load}"), &optimized);
        rows.push((load, baseline, optimized));
    }
    println!();
    for (load, baseline, optimized) in &rows {
        print_improvement(&format!("improvement @{load}"), baseline, optimized);
    }
}
