//! Fig. 10d: latency improvement of partitioning at different loads.
//!
//! The paper sweeps 2K / 4K / 6K requests/s and reports the improvement
//! `100% × (1 − optimized/baseline)` for the median, 95th, and 99th
//! percentiles; the gains grow with load because queuing in the RPC
//! serialization stages amplifies the benefit of locality.

use actop_bench::{
    print_engine_line, print_improvement, print_row, run_halo_sweep, HaloCell, HaloScenario,
};
use actop_core::controllers::ActOpConfig;

fn main() {
    println!("== Fig. 10d: latency improvement vs load (partitioning only) ==");
    println!("paper: improvements grow with load; e.g. at 6K: median ~41%, p99 ~69%");
    println!();
    let loads = [2_000.0, 4_000.0, 6_000.0];
    // Each (load × variant) cell is an independent deterministic run;
    // fan them all out across cores and print in input order.
    let mut cells = Vec::new();
    for (i, load) in loads.into_iter().enumerate() {
        let scenario = HaloScenario::paper(load, 140 + i as u64);
        cells.push(HaloCell {
            label: format!("baseline @{load}"),
            scenario,
            actop: ActOpConfig::default(),
        });
        cells.push(HaloCell {
            label: format!("partitioned @{load}"),
            scenario,
            actop: scenario.actop(true, false),
        });
    }
    let results = run_halo_sweep(cells);
    for r in &results {
        print_row(&r.label, &r.summary);
    }
    println!();
    for (pair, load) in results.chunks(2).zip(loads) {
        print_improvement(
            &format!("improvement @{load}"),
            &pair[0].summary,
            &pair[1].summary,
        );
    }
    print_engine_line(&results.iter().map(|r| r.report).collect::<Vec<_>>());
}
