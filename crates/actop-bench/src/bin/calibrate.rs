//! Calibration check: does the simulated baseline land near the paper's
//! §3 operating point (≈80% CPU at 6K req/s on ten servers, median in the
//! tens of milliseconds, ~90% remote messages), and does partitioning
//! recover the co-located numbers?

use actop_bench::{print_engine_line, print_row, run_halo, HaloScenario};
use actop_core::controllers::ActOpConfig;

fn main() {
    let start = std::time::Instant::now();
    let scenario = HaloScenario::paper(6_000.0, 42);
    println!(
        "calibration at {} players, {} req/s, {} servers",
        scenario.players, scenario.request_rate, scenario.servers
    );
    let (baseline, r0, _) = run_halo(&scenario, &ActOpConfig::default());
    print_row("baseline (random)", &baseline);
    println!("  [{}s wall]", start.elapsed().as_secs());
    let (optimized, r1, cluster) = run_halo(&scenario, &scenario.actop(true, false));
    print_row("ActOp partitioning", &optimized);
    let remote_over_time: Vec<String> = cluster
        .metrics
        .remote_share_series
        .means()
        .iter()
        .map(|m| format!("{:.2}", m))
        .collect();
    println!("  remote share/bin: {}", remote_over_time.join(" "));
    println!("  migrations: {}", cluster.metrics.migrations);
    println!("  [{}s wall]", start.elapsed().as_secs());
    let mut frozen = scenario;
    frozen.game_duration_s = Some((100_000.0, 100_001.0));
    let (nochurn, r2, cluster) = run_halo(&frozen, &frozen.actop(true, false));
    print_row("partitioning, zero churn", &nochurn);
    let remote_over_time: Vec<String> = cluster
        .metrics
        .remote_share_series
        .means()
        .iter()
        .map(|m| format!("{:.2}", m))
        .collect();
    println!("  remote share/bin: {}", remote_over_time.join(" "));
    println!("  [{}s wall]", start.elapsed().as_secs());
    let (both, r3, cluster) = run_halo(&scenario, &scenario.actop(true, true));
    print_row("ActOp both", &both);
    for s in 0..3 {
        println!(
            "  server {s}: threads {:?} queues {:?}",
            cluster.servers[s].thread_allocation(),
            cluster.servers[s].queue_lengths()
        );
    }
    println!("  [{}s wall]", start.elapsed().as_secs());
    print_engine_line(&[r0, r1, r2, r3]);
}
