//! Validation sweep: the DES against closed-form queueing theory.
//!
//! Not a paper figure — this is the repro's credibility check. The SEDA
//! emulator is an open Jackson network, so the paper's Eq. 1 model (pooled
//! M/M/1 per stage, the same form the thread allocator optimizes) and the
//! exact M/M/c form predict it analytically. Three single-thread pipeline
//! shapes are held to the strict band (per-stage and end-to-end within 10%
//! of M/M/1 ≡ M/M/c for ρ ≤ 0.7); a multi-thread pipeline is swept toward
//! saturation to chart where the approximation leaves the exact form and
//! where any finite run leaves both — the divergence curve lands in
//! `BENCH_validate.json`.
//!
//! Deterministic: fixed seeds, byte-identical output.
//! `ACTOP_VERIFY_SMOKE=1` shortens the runs for CI.

use std::fmt::Write as _;

use actop_seda::EmuStageConfig;
use actop_verify::{divergence_curve, ValidationPoint};

/// Agreement band for ρ ≤ 0.7.
const BAND: f64 = 0.10;

fn smoke() -> bool {
    std::env::var("ACTOP_VERIFY_SMOKE").is_ok_and(|v| v == "1")
}

struct Pipeline {
    name: &'static str,
    stages: Vec<EmuStageConfig>,
    /// Utilizations to sweep.
    rhos: Vec<f64>,
    /// Hold this pipeline to the strict band (single-thread stages only:
    /// there Eq. 1 is exact, so disagreement means a simulator bug).
    strict: bool,
}

fn stage(service_rate: f64, initial_threads: usize) -> EmuStageConfig {
    EmuStageConfig {
        service_rate,
        initial_threads,
    }
}

fn pipelines() -> Vec<Pipeline> {
    let strict_rhos = vec![0.3, 0.5, 0.7];
    let sweep_rhos = vec![0.3, 0.5, 0.7, 0.8, 0.9, 0.95];
    vec![
        Pipeline {
            name: "tandem-3",
            stages: vec![stage(900.0, 1), stage(1_100.0, 1), stage(1_000.0, 1)],
            rhos: strict_rhos.clone(),
            strict: true,
        },
        Pipeline {
            name: "tandem-4",
            stages: vec![
                stage(1_500.0, 1),
                stage(2_000.0, 1),
                stage(1_800.0, 1),
                stage(1_600.0, 1),
            ],
            rhos: strict_rhos.clone(),
            strict: true,
        },
        Pipeline {
            name: "tandem-2",
            stages: vec![stage(700.0, 1), stage(950.0, 1)],
            rhos: strict_rhos,
            strict: true,
        },
        Pipeline {
            name: "pooled-3x4x2",
            stages: vec![stage(500.0, 3), stage(400.0, 4), stage(800.0, 2)],
            rhos: sweep_rhos,
            strict: false,
        },
    ]
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

fn point_json(p: &ValidationPoint) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"rho\":{:.3},\"arrival_rate\":{:.3},\"completed\":{},\"e2e_measured_s\":{},\"e2e_mm1_s\":{},\"e2e_mmc_s\":{},\"e2e_model_s\":{},\"err_vs_mm1\":{},\"err_vs_mmc\":{},\"stages\":[",
        p.rho_max,
        p.arrival_rate,
        p.completed,
        json_num(p.measured_e2e_secs),
        json_num(p.mm1_e2e_secs),
        json_num(p.mmc_e2e_secs),
        json_num(p.model_e2e_secs),
        json_num(((p.measured_e2e_secs - p.mm1_e2e_secs) / p.mm1_e2e_secs).abs()),
        json_num(p.e2e_rel_err()),
    );
    for (i, s) in p.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"stage\":{},\"threads\":{},\"rho\":{:.4},\"measured_rho\":{:.4},\"mm1_s\":{},\"mmc_s\":{},\"measured_s\":{},\"wait_s\":{},\"service_s\":{}}}",
            s.stage,
            s.threads,
            s.rho,
            s.measured_rho,
            json_num(s.mm1_secs),
            json_num(s.mmc_secs),
            json_num(s.measured_secs),
            json_num(s.measured_wait_secs),
            json_num(s.measured_service_secs),
        );
    }
    out.push_str("]}");
    out
}

fn main() {
    let duration_secs = if smoke() { 60.0 } else { 200.0 };
    let pipes = pipelines();
    println!(
        "== Validation sweep: DES vs M/M/1 (Eq. 1) and M/M/c, {} pipelines, T={duration_secs}s ==",
        pipes.len()
    );
    println!(
        "strict band: per-stage and e2e within {:.0}% for rho <= 0.7",
        BAND * 100.0
    );
    println!();

    let mut json = String::from("{\"duration_secs\":");
    let _ = write!(json, "{duration_secs},\"band\":{BAND},\"pipelines\":[");
    for (pi, pipe) in pipes.iter().enumerate() {
        let curve = divergence_curve(&pipe.stages, &pipe.rhos, duration_secs, 0xBA5E + pi as u64);
        let threads: Vec<String> = pipe
            .stages
            .iter()
            .map(|s| format!("{:.0}/s x{}", s.service_rate, s.initial_threads))
            .collect();
        println!(
            "{} [{}]{}:",
            pipe.name,
            threads.join(", "),
            if pipe.strict { " (strict)" } else { "" }
        );
        for p in &curve {
            let err_mm1 = ((p.measured_e2e_secs - p.mm1_e2e_secs) / p.mm1_e2e_secs).abs();
            println!(
                "  rho={:.2}  lambda={:7.1}/s  e2e measured={:8.3}ms  mm1={:8.3}ms  mmc={:8.3}ms  err(mm1)={:6.2}%  err(mmc)={:6.2}%  n={}",
                p.rho_max,
                p.arrival_rate,
                p.measured_e2e_secs * 1e3,
                p.mm1_e2e_secs * 1e3,
                p.mmc_e2e_secs * 1e3,
                100.0 * err_mm1,
                100.0 * p.e2e_rel_err(),
                p.completed,
            );
            // Eq. 1 through SedaModel is the same number as the direct sum:
            // the oracle validates the allocator's own model code path.
            assert!(
                (p.model_e2e_secs - p.mm1_e2e_secs).abs() < 1e-9,
                "SedaModel path diverged from the closed form"
            );
            if p.rho_max <= 0.7 + 1e-9 {
                for s in &p.stages {
                    let (err, form) = if pipe.strict {
                        (s.mm1_rel_err(), "M/M/1")
                    } else {
                        (s.mmc_rel_err(), "M/M/c")
                    };
                    assert!(
                        err < BAND,
                        "{} rho={:.2} stage {}: {form} predicted {:.6}s, measured {:.6}s ({:.1}% off)",
                        pipe.name,
                        p.rho_max,
                        s.stage,
                        if pipe.strict { s.mm1_secs } else { s.mmc_secs },
                        s.measured_secs,
                        100.0 * err
                    );
                }
                let e2e_err = if pipe.strict {
                    err_mm1
                } else {
                    p.e2e_rel_err()
                };
                assert!(
                    e2e_err < BAND,
                    "{} rho={:.2}: e2e {:.1}% off",
                    pipe.name,
                    p.rho_max,
                    100.0 * e2e_err
                );
            }
        }
        println!();
        if pi > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"name\":\"{}\",\"strict\":{},\"points\":[",
            pipe.name, pipe.strict
        );
        for (i, p) in curve.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&point_json(p));
        }
        json.push_str("]}");
    }
    json.push_str("]}\n");
    if let Err(e) = std::fs::write("BENCH_validate.json", &json) {
        eprintln!("could not write BENCH_validate.json: {e}");
    }
    println!("wrote BENCH_validate.json");
}
