//! Fig. 11b: combining actor partitioning with thread allocation.
//!
//! The paper runs Halo Presence (100K players, 6K requests/s) and compares
//! partitioning alone against partitioning plus the thread allocator,
//! both relative to the untouched baseline. Partitioning is the primary
//! factor; the allocator adds a further 21% median / 9% p99 on top, for
//! totals of −55% median and −75% p99. After partitioning the allocator
//! shifts threads toward application logic (6 workers, 1 server sender,
//! 1 client sender instead of 5/2/1 under random placement).

use actop_bench::{print_engine_line, print_improvement, print_row, run_halo, HaloScenario};
use actop_core::controllers::ActOpConfig;

fn main() {
    let scenario = HaloScenario::paper(6_000.0, 180);
    println!("== Fig. 11b: partitioning alone vs both optimizations, Halo @ 6K req/s ==");
    println!("paper: partitioning is primary; both together reach -55% median, -75% p99");
    println!();
    let (baseline, r0, _) = run_halo(&scenario, &ActOpConfig::default());
    let (partition_only, r1, _) = run_halo(&scenario, &scenario.actop(true, false));
    let (both, r2, cluster) = run_halo(&scenario, &scenario.actop(true, true));
    print_row("baseline", &baseline);
    print_row("partitioning only", &partition_only);
    print_row("partitioning + threads", &both);
    println!();
    print_improvement("partitioning only", &baseline, &partition_only);
    print_improvement("partitioning + threads", &baseline, &both);
    println!();
    println!(
        "thread allocation chosen after partitioning (R/W/SS/CS): {:?}",
        cluster.servers[0].thread_allocation()
    );
    println!("paper's counterpart: 6 workers, 1 server sender, 1 client sender");
    print_engine_line(&[r0, r1, r2]);
}
