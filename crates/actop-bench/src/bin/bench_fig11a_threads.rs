//! Fig. 11a: latency improvement from optimized thread allocation alone.
//!
//! The paper runs the Heartbeat service on a single server at 10K, 12.5K,
//! and 15K requests/s. The baseline is Orleans' default allocation (one
//! thread per stage per core); ActOp's model-driven allocator reduces the
//! 99th-percentile latency by up to 68% and the median by up to 58% at the
//! highest load, allocating 2 client senders and 3–4 workers.

use actop_bench::{full_scale, print_engine_line, run_uniform};
use actop_core::controllers::ThreadAgentConfig;
use actop_metrics::stats::improvement_pct;
use actop_runtime::RuntimeConfig;
use actop_sim::Nanos;
use actop_workloads::uniform;

fn main() {
    let (warmup, measure) = if full_scale() {
        (Nanos::from_secs(60), Nanos::from_secs(300))
    } else {
        (Nanos::from_secs(15), Nanos::from_secs(45))
    };
    println!("== Fig. 11a: thread allocation, Heartbeat on 1 server ==");
    println!("paper: at 15K req/s, median -58%, p99 -68%; allocations 2 CS, 3-4 workers");
    println!();
    let mut reports = Vec::new();
    for (i, load) in [10_000.0, 12_500.0, 15_000.0].into_iter().enumerate() {
        let seed = 170 + i as u64;
        let workload = uniform::heartbeat(load, warmup + measure, seed);
        let rt = RuntimeConfig::single_server(seed);
        let (baseline, base_report, _) =
            run_uniform(workload, rt.clone(), None, None, warmup, measure);
        let agent = ThreadAgentConfig {
            interval: Nanos::from_secs(3),
            ..ThreadAgentConfig::default()
        };
        let (optimized, opt_report, cluster) =
            run_uniform(workload, rt, None, Some(agent), warmup, measure);
        reports.extend([base_report, opt_report]);
        let alloc = cluster.servers[0].thread_allocation();
        println!(
            "load {load:>7}: baseline p50={:7.2}ms p99={:8.2}ms | actop p50={:6.2}ms p99={:7.2}ms | median -{:.0}% p95 -{:.0}% p99 -{:.0}% | alloc R/W/SS/CS = {:?}",
            baseline.p50_ms,
            baseline.p99_ms,
            optimized.p50_ms,
            optimized.p99_ms,
            improvement_pct(baseline.p50_ms, optimized.p50_ms),
            improvement_pct(baseline.p95_ms, optimized.p95_ms),
            improvement_pct(baseline.p99_ms, optimized.p99_ms),
            alloc
        );
    }
    print_engine_line(&reports);
}
