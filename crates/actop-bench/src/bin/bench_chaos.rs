//! Chaos sweep: the fault-recovery machinery under seed-derived fault
//! plans.
//!
//! Not a paper figure — the paper assumes Orleans' fault tolerance and
//! never injects faults in the evaluation. This bench closes that gap: it
//! drives the Halo workload through a vocabulary of fault plans (single
//! crash + recovery, rolling crashes, a straggler, a gray failure, a soft
//! partition) with the heartbeat failure detector switched on, and reports
//! what an operator would ask about each: goodput over time, tail latency,
//! SLO-violation windows, retry/repair work, and detector accuracy
//! (suspicion vs ground truth, sampled every 100 ms).
//!
//! Everything is deterministic: same seed, same plan, byte-identical
//! output and `BENCH_chaos.json` (the trailing `engine:` line carries wall
//! time and is excluded from determinism diffs). `ACTOP_CHAOS_SMOKE=1`
//! shrinks the sweep to seconds for CI.

use std::fmt::Write as _;

use actop_bench::{
    full_scale, maybe_export_obs, maybe_export_trace, print_engine_line, print_row,
    snapshot_config_from_env, trace_config_from_env, HaloScenario,
};
use actop_chaos::{install_plan, FaultPlan};
use actop_core::controllers::install_actop;
use actop_core::experiment::{run_steady_state, RunSummary};
use actop_obs::{SloKind, SloSpec};
use actop_runtime::sharded::{fail_server_sharded, install_sharded_hooks, recover_server_sharded};
use actop_runtime::{
    build_sharded, install_snapshots_sharded, sharded_lookahead, Cluster, DetectorAccuracy,
    DetectorConfig, ObsConfig, RuntimeConfig,
};
use actop_sim::{ConservativeRunner, Engine, EngineReport, Nanos};
use actop_workloads::halo::HaloConfig;
use actop_workloads::{HaloWorkload, ShardedHaloWorkload};

/// Bin-mean end-to-end latency above this marks an SLO-violation window.
const SLO_MS: f64 = 100.0;

/// The declarative SLO the sweep evaluates (via the runtime's telemetry
/// layer, which replaced this bench's hand-rolled window scan).
fn chaos_slo() -> SloSpec {
    SloSpec::new("latency_mean_100ms", SloKind::MeanLatencyBelowMs(SLO_MS))
}

fn smoke() -> bool {
    std::env::var("ACTOP_CHAOS_SMOKE").is_ok_and(|v| v == "1")
}

/// One plan's results, reduced to plain data for reporting.
struct PlanResult {
    name: String,
    summary: RunSummary,
    accuracy: DetectorAccuracy,
    /// `[start_s, end_s)` SLO-violation windows relative to measurement
    /// start, from the telemetry layer's SLO engine.
    windows: Vec<(usize, usize)>,
    /// Per-measurement-bin (goodput_per_s, mean_latency_ms), 1 s bins.
    bins: Vec<(f64, f64)>,
    flight_dumps: usize,
    report: EngineReport,
    /// Recovery-cost columns, present only under `ACTOP_SNAPSHOT=1`.
    snapshot: Option<SnapshotColumns>,
}

/// The snapshot subsystem's state-loss and recovery-cost columns for one
/// plan (`ACTOP_SNAPSHOT=1` runs only). `state_loss` is the in-memory vs
/// durable version delta — zero when the WAL lost nothing and no restore
/// served duplicated transitions — while `restores`/`replayed`/`deferred`
/// price the rehydration work the crashes induced.
#[derive(Debug, PartialEq, Eq)]
struct SnapshotColumns {
    state_writes: u64,
    journal_len: u64,
    durable_versions: u64,
    state_loss: i64,
    restores: u64,
    replayed: u64,
    deferred: u64,
    rounds_completed: u64,
    rounds_aborted: u64,
    rounds_skipped: u64,
    captures: u64,
    bytes: u64,
}

impl SnapshotColumns {
    fn of(m: &actop_runtime::ClusterMetrics, journal_len: u64, durable: u64, loss: i64) -> Self {
        SnapshotColumns {
            state_writes: m.state_writes,
            journal_len,
            durable_versions: durable,
            state_loss: loss,
            restores: m.restores,
            replayed: m.restore_replayed,
            deferred: m.restores_deferred,
            rounds_completed: m.snap_rounds_completed,
            rounds_aborted: m.snap_rounds_aborted,
            rounds_skipped: m.snap_rounds_skipped,
            captures: m.snap_captures,
            bytes: m.snap_bytes,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"state_writes\":{},\"journal_len\":{},\"durable_versions\":{},\"state_loss\":{},\"restores\":{},\"replayed\":{},\"deferred\":{},\"rounds_completed\":{},\"rounds_aborted\":{},\"rounds_skipped\":{},\"captures\":{},\"bytes\":{}}}",
            self.state_writes,
            self.journal_len,
            self.durable_versions,
            self.state_loss,
            self.restores,
            self.replayed,
            self.deferred,
            self.rounds_completed,
            self.rounds_aborted,
            self.rounds_skipped,
            self.captures,
            self.bytes,
        )
    }
}

fn run_plan(scenario: &HaloScenario, plan: &FaultPlan) -> PlanResult {
    let mut cfg = HaloConfig::paper_scale(
        scenario.players,
        scenario.request_rate,
        scenario.duration(),
        scenario.seed,
    );
    if !full_scale() {
        cfg.game_duration_s = (120.0, 180.0);
    }
    let (app, workload) = HaloWorkload::build(cfg);
    let mut rt = RuntimeConfig::paper_testbed(scenario.seed);
    rt.servers = scenario.servers;
    rt.request_timeout = Some(Nanos::from_secs(2));
    rt.detector = Some(DetectorConfig::default());
    rt.migration_transfer = Some(Nanos::from_millis(2));
    rt.series_bin_ns = 1_000_000_000; // 1 s bins for SLO windows.
    rt.snapshot = snapshot_config_from_env();
    rt.trace = trace_config_from_env(scenario.seed);
    rt.obs = Some(ObsConfig {
        slos: vec![chaos_slo()],
        ..ObsConfig::default()
    });
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    workload.install(&mut engine);
    install_actop(&mut engine, scenario.servers, &scenario.actop(true, true));
    cluster.install_heartbeats(&mut engine, scenario.duration());
    cluster.install_timeline_sampler(&mut engine, scenario.duration());
    cluster.install_scraper(&mut engine, scenario.duration());
    cluster.install_snapshots(&mut engine, scenario.duration());
    // Plans are authored relative to the measurement window.
    install_plan(&mut engine, &cluster, plan, scenario.warmup);
    cluster.install_accuracy_sampler(
        &mut engine,
        scenario.warmup,
        scenario.duration(),
        Nanos::from_millis(100),
    );

    let summary = run_steady_state(&mut engine, &mut cluster, scenario.warmup, scenario.measure);

    // The measurement-relative violation windows, straight from the SLO
    // engine (`run_steady_state` finalized it).
    let width = 1_000_000_000u64;
    let first = (scenario.warmup.as_nanos() / width) as usize;
    let last = (scenario.duration().as_nanos() / width) as usize;
    let windows: Vec<(usize, usize)> = cluster
        .obs
        .as_ref()
        .expect("chaos runs have telemetry on")
        .slo_engine()
        .windows_in(0, first, last)
        .iter()
        .map(|w| (w.start_bin, w.end_bin))
        .collect();
    // Goodput-over-time bins for the recovery assertions.
    let bins: Vec<(f64, f64)> = cluster
        .metrics
        .latency_series
        .bins()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i >= first && *i < last)
        .map(|(_, b)| (b.count as f64, b.mean() / 1e6))
        .collect();
    let flight_dumps = cluster.trace.flight_dumps().len();
    let report = engine.report();
    maybe_export_trace(&cluster);
    maybe_export_obs(
        &cluster,
        &summary,
        &report,
        &plan.fault_notes(scenario.servers, scenario.warmup, scenario.duration()),
    );
    // Loss is the live-cell vs durable-image delta: zero means no
    // transition was lost or duplicated anywhere (the same invariant the
    // `crash_restore` plan audits mid-run).
    let divergence = cluster
        .state_divergence()
        .map_or(0, |(_, mem, durable)| mem as i64 - durable as i64);
    let snapshot = cluster.snapshot_store().map(|store| {
        SnapshotColumns::of(
            &cluster.metrics,
            store.total_journal_len(),
            store.total_durable_versions(),
            divergence,
        )
    });
    PlanResult {
        name: plan.name.clone(),
        summary,
        accuracy: cluster.detector_accuracy,
        windows,
        bins,
        flight_dumps,
        report,
        snapshot,
    }
}

/// Mean goodput (completions/s) over a bin range.
fn mean_goodput(bins: &[(f64, f64)]) -> f64 {
    if bins.is_empty() {
        return 0.0;
    }
    bins.iter().map(|b| b.0).sum::<f64>() / bins.len() as f64
}

/// Snapshot recovery counters from a sharded Halo chaos run: an ordinary
/// server and then the snapshot store's own host crash across live
/// rounds, and both recover. The acceptance gate asserts the returned
/// vector is identical at shard counts 1 and 4 — recovery cost must be a
/// property of the fault schedule, not of the thread layout.
fn sharded_recovery_counters(shards: usize) -> (SnapshotColumns, u64, u64) {
    let duration = Nanos::from_secs(12);
    let mut cfg = HaloConfig::paper_scale(1_000, 400.0, duration, 231);
    cfg.game_duration_s = (60.0, 90.0);
    let mut rt = RuntimeConfig::paper_testbed(231);
    rt.servers = 4;
    rt.request_timeout = None; // the sharded runtime rejects timeouts
                               // 1 s rounds so the 12 s run sees completes, an abort, and skips.
    rt.snapshot = snapshot_config_from_env().map(|mut s| {
        s.interval = Nanos::from_secs(1);
        s.capture_window = Nanos::from_millis(300);
        s
    });
    let series_bin = rt.series_bin_ns;
    let lookahead = sharded_lookahead(&rt);
    let (app, workload) = ShardedHaloWorkload::build(cfg);
    let worlds = build_sharded(rt, app, shards);
    let threads = worlds.len();
    let mut runner = ConservativeRunner::new(worlds, lookahead);
    install_sharded_hooks(&mut runner);
    workload.install(&mut runner);
    install_snapshots_sharded(&mut runner, duration);
    runner.schedule_global(Nanos::from_millis(4_200), |ctx| {
        fail_server_sharded(ctx, 2);
    });
    runner.schedule_global(Nanos::from_millis(5_500), |ctx| {
        recover_server_sharded(ctx, 2);
    });
    // The store's host: rounds skip and restores defer until recovery.
    runner.schedule_global(Nanos::from_millis(7_200), |ctx| {
        fail_server_sharded(ctx, 0);
    });
    runner.schedule_global(Nanos::from_millis(8_500), |ctx| {
        recover_server_sharded(ctx, 0);
    });
    runner.run_until(duration, threads);
    let mut m = actop_runtime::ClusterMetrics::new(series_bin);
    for cell in runner.cells() {
        m.merge_from(cell.world.metrics());
    }
    let (journal, durable) = runner.cells()[0]
        .world
        .with_snapshot_store(|store| (store.total_journal_len(), store.total_durable_versions()))
        .expect("snapshots on");
    // No steady-state reset here, so the executed-writes counter spans
    // the whole run and must equal the durable version sum exactly.
    let loss = m.state_writes as i64 - durable as i64;
    (
        SnapshotColumns::of(&m, journal, durable, loss),
        m.completed,
        m.server_failures,
    )
}

fn main() {
    let scenario = if smoke() {
        HaloScenario {
            players: 2_000,
            request_rate: 600.0,
            servers: 4,
            warmup: Nanos::from_secs(5),
            measure: Nanos::from_secs(20),
            seed: 230,
            game_duration_s: Some((60.0, 90.0)),
        }
    } else {
        HaloScenario::paper(4_000.0, 230)
    };
    let m = scenario.measure;
    let quarter = Nanos(m.as_nanos() / 4);
    let half = Nanos(m.as_nanos() / 2);
    let n = scenario.servers as u32;
    let snapshots_on = snapshot_config_from_env().is_some();
    let mut plans: Vec<FaultPlan> = vec![
        FaultPlan::new("baseline"),
        FaultPlan::single_crash(2, quarter, half),
        FaultPlan::rolling(
            &[0, 1, 2],
            Nanos(m.as_nanos() / 5),
            Nanos(m.as_nanos() / 6),
            Nanos(m.as_nanos() / 10),
        ),
        FaultPlan::straggler(1, 0.25, quarter, Nanos(m.as_nanos() * 3 / 4)),
        FaultPlan::gray(1, quarter, half),
        FaultPlan::partition(n / 2, n, Nanos::from_micros(500), 0.05, quarter, half),
    ];
    if snapshots_on {
        // The named crash_restore shape: crash, recover, and let the
        // plan's own audit event panic the run if state failed to
        // rehydrate from the snapshot store.
        plans.push(FaultPlan::crash_restore(
            2,
            quarter,
            half,
            Nanos(m.as_nanos() * 3 / 4),
        ));
    }

    println!(
        "== Chaos sweep: Halo @ {:.0} req/s on {} servers, detector on, {} plans ==",
        scenario.request_rate,
        scenario.servers,
        plans.len()
    );
    println!(
        "SLO: bin-mean latency <= {SLO_MS:.0} ms over 1 s bins; detector sampled every 100 ms"
    );
    println!();

    let mut results: Vec<PlanResult> = Vec::new();
    for plan in &plans {
        results.push(run_plan(&scenario, plan));
    }

    let mut json = String::from("{\"plans\":[");
    for (i, r) in results.iter().enumerate() {
        let s = &r.summary;
        print_row(&r.name, s);
        let windows = &r.windows;
        let win_str: Vec<String> = windows.iter().map(|&(a, b)| format!("{a}-{b}s")).collect();
        let a = &r.accuracy;
        println!(
            "  slo_violation_windows={} [{}]  detector: samples={} true_suspect={} false_suspect={} missed={} flight_dumps={}",
            windows.len(),
            win_str.join(","),
            a.samples,
            a.true_suspect,
            a.false_suspect,
            a.missed_failure,
            r.flight_dumps,
        );
        if let Some(snap) = &r.snapshot {
            println!(
                "  snapshot: writes={} journal={} durable={} loss={} restores={} replayed={} deferred={} rounds={}c/{}a/{}s captures={} bytes={}",
                snap.state_writes,
                snap.journal_len,
                snap.durable_versions,
                snap.state_loss,
                snap.restores,
                snap.replayed,
                snap.deferred,
                snap.rounds_completed,
                snap.rounds_aborted,
                snap.rounds_skipped,
                snap.captures,
                snap.bytes,
            );
            assert_eq!(
                snap.state_loss, 0,
                "plan {:?} lost or duplicated state: a live cell diverges from its durable image",
                r.name
            );
        }
        if i > 0 {
            json.push(',');
        }
        let windows_json: Vec<String> = windows
            .iter()
            .map(|&(w0, w1)| format!("[{w0},{w1}]"))
            .collect();
        let _ = write!(
            json,
            "{{\"name\":\"{}\",\"submitted\":{},\"completed\":{},\"timed_out\":{},\"rejected\":{},\"goodput_per_s\":{:.1},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"retries\":{},\"retry_backoff_ms\":{:.3},\"directory_repairs\":{},\"false_suspicion_repairs\":{},\"shed_no_live\":{},\"migrations\":{},\"slo_ms\":{SLO_MS},\"slo_violation_windows\":[{}],\"detector\":{{\"samples\":{},\"true_suspect\":{},\"false_suspect\":{},\"missed_failure\":{},\"true_clear\":{}}},\"flight_dumps\":{}{}}}",
            r.name,
            s.submitted,
            s.completed,
            s.timed_out,
            s.rejected,
            s.throughput_per_s,
            s.p50_ms,
            s.p99_ms,
            s.retries,
            s.retry_backoff_ms,
            s.directory_repairs,
            s.false_suspicion_repairs,
            s.shed_no_live,
            s.migrations,
            windows_json.join(","),
            a.samples,
            a.true_suspect,
            a.false_suspect,
            a.missed_failure,
            a.true_clear,
            r.flight_dumps,
            r.snapshot
                .as_ref()
                .map(|snap| format!(",\"snapshot\":{}", snap.json()))
                .unwrap_or_default(),
        );
    }
    json.push(']');
    if snapshots_on {
        // Recovery cost must be a property of the fault schedule, not of
        // the thread layout: the sharded backend's counters at 1 shard
        // (the sequential oracle) and 4 shards must match exactly.
        let (one, completed_1, failures_1) = sharded_recovery_counters(1);
        let (four, completed_4, failures_4) = sharded_recovery_counters(4);
        println!();
        println!(
            "sharded recovery (1 vs 4 shards): completed={completed_1}/{completed_4} failures={failures_1}/{failures_4}"
        );
        println!(
            "  writes={} journal={} durable={} loss={} restores={} replayed={} deferred={} rounds={}c/{}a/{}s",
            one.state_writes,
            one.journal_len,
            one.durable_versions,
            one.state_loss,
            one.restores,
            one.replayed,
            one.deferred,
            one.rounds_completed,
            one.rounds_aborted,
            one.rounds_skipped,
        );
        assert_eq!(
            one, four,
            "snapshot recovery counters diverged across shard counts"
        );
        assert_eq!(
            (completed_1, failures_1),
            (completed_4, failures_4),
            "workload counters diverged across shard counts"
        );
        assert_eq!(one.state_loss, 0, "sharded chaos run lost state");
        let _ = write!(json, ",\"sharded_recovery\":{}", one.json());
    }
    json.push_str("}\n");
    if let Err(e) = std::fs::write("BENCH_chaos.json", &json) {
        eprintln!("could not write BENCH_chaos.json: {e}");
    }

    // Acceptance: the single-crash plan degrades boundedly and recovers
    // fully — goodput over the final fifth of the window (well after the
    // recovery at measure/2) returns to the baseline's level.
    let baseline = &results[0];
    let crash = &results[1];
    let tail = crash.bins.len() - crash.bins.len() / 5;
    let crash_tail = mean_goodput(&crash.bins[tail..]);
    let base_tail = mean_goodput(&baseline.bins[tail..]);
    println!();
    println!(
        "single-crash recovery: tail goodput {crash_tail:.0}/s vs baseline {base_tail:.0}/s ({:.0}% recovered)",
        100.0 * crash_tail / base_tail.max(1.0)
    );
    assert!(
        crash_tail >= 0.8 * base_tail,
        "goodput failed to recover after the crash window: {crash_tail:.0}/s vs baseline {base_tail:.0}/s"
    );
    let conserved = crash.summary.completed + crash.summary.rejected + crash.summary.timed_out;
    let in_flight = crash.summary.submitted.saturating_sub(conserved);
    assert!(
        in_flight < 200,
        "unaccounted requests beyond the in-flight residue: {in_flight}"
    );

    print_engine_line(&results.iter().map(|r| r.report).collect::<Vec<_>>());
}
