//! Fig. 10f: latency improvement as the actor population grows.
//!
//! The paper runs 10K / 100K / 1M live players at 4K requests/s and shows
//! the distributed partitioner keeps delivering its latency gains at every
//! scale — the point of avoiding any centralized graph store. At the
//! default bench scale the sweep is 2K / 20K / 100K players (1M with
//! `ACTOP_FULL_SCALE=1`).

use actop_bench::{
    full_scale, print_engine_line, print_improvement, print_row, run_halo_sweep, HaloCell,
    HaloScenario,
};
use actop_core::controllers::ActOpConfig;
use actop_sim::Nanos;

fn main() {
    let populations: &[u64] = if full_scale() {
        &[10_000, 100_000, 1_000_000]
    } else {
        &[2_000, 20_000, 100_000]
    };
    println!("== Fig. 10f: latency improvement vs live players @ 4K req/s ==");
    println!("paper: significant reductions sustained from 10K up to 1M actors");
    println!();
    let mut cells = Vec::new();
    for (i, &players) in populations.iter().enumerate() {
        let mut scenario = HaloScenario::paper(4_000.0, 160 + i as u64);
        scenario.players = players;
        // The initial migration wave is proportional to the population;
        // give the partitioner a warmup that scales with it (the paper's
        // hour-long runs always exclude the first ~10 minutes).
        if !full_scale() && players > 20_000 {
            scenario.warmup = Nanos::from_secs(40 * players / 20_000);
        }
        cells.push(HaloCell {
            label: format!("baseline {players} players"),
            scenario,
            actop: ActOpConfig::default(),
        });
        cells.push(HaloCell {
            label: format!("partitioned {players}"),
            scenario,
            actop: scenario.actop(true, false),
        });
    }
    let results = run_halo_sweep(cells);
    for r in &results {
        print_row(&r.label, &r.summary);
    }
    println!();
    for (pair, &players) in results.chunks(2).zip(populations) {
        print_improvement(
            &format!("improvement @{players}"),
            &pair[0].summary,
            &pair[1].summary,
        );
    }
    print_engine_line(&results.iter().map(|r| r.report).collect::<Vec<_>>());
}
