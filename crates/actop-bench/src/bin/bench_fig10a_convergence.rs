//! Fig. 10a: convergence of the distributed partitioning algorithm.
//!
//! The paper plots, over the run, the proportion of actor-to-actor messages
//! that are remote and the number of actor movements per minute: remote
//! messaging stabilizes around 12% within ~10 minutes (vs ~90% for the
//! random baseline) and movements settle at ~1K/minute — matching the
//! workload's ~1%/minute graph churn.

use actop_bench::{print_engine_line, print_row, run_halo, HaloScenario};
use actop_core::controllers::ActOpConfig;

fn main() {
    let scenario = HaloScenario::paper(6_000.0, 110);
    println!("== Fig. 10a: partitioning convergence, Halo @ 6K req/s ==");
    println!("paper: remote share ~0.9 -> ~0.12; movements settle at ~1%/min of actors");
    println!();
    let (baseline, base_report, base_cluster) = run_halo(&scenario, &ActOpConfig::default());
    let (optimized, opt_report, cluster) = run_halo(&scenario, &scenario.actop(true, false));
    print_row("baseline", &baseline);
    print_row("ActOp partitioning", &optimized);
    println!();
    let bin_s = cluster.metrics.remote_share_series.bin_width_ns() as f64 / 1e9;
    println!("remote share per {bin_s:.0}-s bin (optimized run, from t=0):");
    let shares: Vec<String> = cluster
        .metrics
        .remote_share_series
        .means()
        .iter()
        .map(|m| format!("{m:.3}"))
        .collect();
    println!("  {}", shares.join(" "));
    println!("baseline remote share per bin:");
    let base: Vec<String> = base_cluster
        .metrics
        .remote_share_series
        .means()
        .iter()
        .map(|m| format!("{m:.3}"))
        .collect();
    println!("  {}", base.join(" "));
    println!();
    println!("actor movements per bin (optimized run):");
    let moves: Vec<String> = cluster
        .metrics
        .migration_series
        .bins()
        .iter()
        .map(|b| format!("{}", b.count))
        .collect();
    println!("  {}", moves.join(" "));
    let actors = cluster.directory.vertex_count();
    let steady_moves = cluster
        .metrics
        .migration_series
        .bins()
        .iter()
        .rev()
        .take(4)
        .map(|b| b.count)
        .sum::<u64>() as f64
        / 4.0;
    println!(
        "steady-state movements: {:.0}/bin = {:.2}% of {} active actors per bin",
        steady_moves,
        100.0 * steady_moves / actors as f64,
        actors
    );
    print_engine_line(&[base_report, opt_report]);
}
