//! Fig. 4: average latency breakdown of a request on one server.
//!
//! The paper runs the counter application (8K actors) at 15K requests/s on
//! a single server with Orleans' default thread allocation (one thread per
//! stage per core) and finds that queuing — not processing, not the
//! network — dominates end-to-end latency: ≈33% receive queue, ≈24% worker
//! queue, ≈31% sender queue, with every processing share below 0.3% and
//! network ≈1%.

use actop_bench::{full_scale, print_engine_line, run_uniform};
use actop_runtime::RuntimeConfig;
use actop_sim::Nanos;
use actop_workloads::uniform;

fn main() {
    let (warmup, measure) = if full_scale() {
        (Nanos::from_secs(60), Nanos::from_secs(300))
    } else {
        (Nanos::from_secs(10), Nanos::from_secs(40))
    };
    // The paper runs 15K req/s, which put its Orleans server at heavy
    // queuing (Fig. 4 shows ~88% of latency in queues). Our simulated
    // per-message costs differ from Orleans', so we run at the same
    // *relative* operating point instead: ~95% of the server's effective
    // capacity under the default thread allocation.
    let workload = uniform::counter(19_800.0, warmup + measure, 401);
    let rt = RuntimeConfig::single_server(401);
    let (summary, report, cluster) = run_uniform(workload, rt, None, None, warmup, measure);

    println!(
        "== Fig. 4: latency breakdown, counter at ~95% capacity, 1 server, default threads =="
    );
    println!("paper shares: Recv q 32.9%, Recv proc 0.2%, Worker q 24.2%, Worker proc 0.3%,");
    println!("              Sender q 31.3%, Sender proc 0.2%, Network 0.9%, Other 10.1%");
    println!();
    println!(
        "measured: {} requests, mean latency {:.2} ms, cpu {:.0}%",
        cluster.metrics.breakdown.requests(),
        summary.mean_ms,
        summary.cpu_utilization * 100.0
    );
    for (name, pct) in cluster.metrics.breakdown.shares_pct() {
        let avg = cluster
            .metrics
            .breakdown
            .averages_ns()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v / 1e6)
            .unwrap_or(0.0);
        println!("{name:<18} {pct:5.1}%   ({avg:.3} ms/request)");
    }
    print_engine_line(&[report]);
}
