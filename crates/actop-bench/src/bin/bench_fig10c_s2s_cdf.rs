//! Fig. 10c: server-to-server (actor-to-actor remote call) latency CDF.
//!
//! The paper measures the latency of calls between game and player actors
//! at 6K requests/s: medians 3 vs 5 ms and 99th percentiles 56 vs 297 ms
//! (partitioned vs baseline). The runtime records, for every call that
//! crossed servers, the time from call issue to reply processed.

use actop_bench::{print_engine_line, run_halo, HaloScenario};
use actop_core::controllers::ActOpConfig;
use actop_metrics::LatencyHistogram;

fn line(hist: &LatencyHistogram, label: &str) {
    println!(
        "{label:<22} calls={:>9}  p50={:.2}ms  p95={:.2}ms  p99={:.2}ms",
        hist.count(),
        hist.quantile(0.5) as f64 / 1e6,
        hist.quantile(0.95) as f64 / 1e6,
        hist.quantile(0.99) as f64 / 1e6,
    );
}

fn main() {
    let scenario = HaloScenario::paper(6_000.0, 130);
    println!("== Fig. 10c: remote actor-to-actor call latency, Halo @ 6K req/s ==");
    println!("paper: medians 3 vs 5 ms; p99 56 vs 297 ms");
    println!();
    let (_, base_report, base_cluster) = run_halo(&scenario, &ActOpConfig::default());
    let (_, opt_report, opt_cluster) = run_halo(&scenario, &scenario.actop(true, false));
    line(&base_cluster.metrics.remote_call_latency, "baseline");
    line(
        &opt_cluster.metrics.remote_call_latency,
        "ActOp partitioning",
    );
    println!();
    println!(
        "{:>10} {:>14} {:>14}",
        "fraction", "baseline (ms)", "actop (ms)"
    );
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        println!(
            "{q:>10.2} {:>14.2} {:>14.2}",
            base_cluster.metrics.remote_call_latency.quantile(q) as f64 / 1e6,
            opt_cluster.metrics.remote_call_latency.quantile(q) as f64 / 1e6,
        );
    }
    println!();
    println!(
        "note: with partitioning, far fewer calls are remote at all ({} vs {});",
        opt_cluster.metrics.remote_call_latency.count(),
        base_cluster.metrics.remote_call_latency.count()
    );
    println!("the CDF covers only the calls that stayed remote.");
    print_engine_line(&[base_report, opt_report]);
}
