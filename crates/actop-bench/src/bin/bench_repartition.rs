//! The online-repartitioning bake-off: every selectable policy against
//! the Halo workload and the three adversarial demand families.
//!
//! Each cell runs one `{policy} x {workload}` pair on the legacy engine
//! with a 10 ms migration transfer window, so migrating has a real,
//! measurable price (the transfer-window stall the cost-aware objective
//! charges). The JSON rows record the measurement-window communication
//! (remote/local messages), the migrations and their stall time, the
//! request tail, and a single `total_cost` figure — remote messages plus
//! the stall expressed in remote-message equivalents, the same currency
//! `move_penalty` uses. Two claims are asserted, not just printed:
//!
//! * On repeated-pair churn, the cost-aware exchange must strictly beat
//!   the cost-oblivious one on `total_cost`: the pairs dissolve before a
//!   10 ms transfer amortizes, so the right move is to sit still.
//! * On Halo, the two must land within a few percent of each other: the
//!   Halo graph is stable enough that good moves repay their tax, so the
//!   veto should rarely fire.
//!
//! `ACTOP_REPARTITION_SMOKE=1` shrinks the sweep to the CI probe
//! (exchange policies only, halo + churn, short windows) and writes
//! `BENCH_repartition_smoke.json`. All JSON rows are deterministic; the
//! trailing `{"kind":"engine",...}` row carries wall-clock truth and is
//! excluded from determinism diffs. The smoke probe also writes
//! `BENCH_repartition_gate.json` — the default-policy Halo cell's engine
//! report — which CI feeds to `perf_gate.py` against
//! `scripts/repartition_halo_baseline.json`: the policy plumbing must
//! add no overhead (and change no event count) when the default policy
//! is selected.

use actop_bench::{parallel_map, print_engine_line};
use actop_core::controllers::{install_actop, ActOpConfig, PartitionAgentConfig};
use actop_core::experiment::run_steady_state;
use actop_partition::{MigrationCostConfig, PartitionConfig, RepartitionPolicyKind};
use actop_runtime::{Cluster, RuntimeConfig};
use actop_sim::{Engine, EngineReport, Nanos};
use actop_workloads::halo::HaloConfig;
use actop_workloads::{AdversarialConfig, AdversarialWorkload, DemandPattern, HaloWorkload};

fn repartition_smoke() -> bool {
    std::env::var("ACTOP_REPARTITION_SMOKE").is_ok_and(|v| v == "1")
}

/// One bake-off workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Work {
    Halo,
    Adversarial(DemandPattern),
}

impl Work {
    fn name(&self) -> &'static str {
        match self {
            Work::Halo => "halo",
            Work::Adversarial(p) => p.name(),
        }
    }
}

/// The adversary's rotation period: 2.5 agent intervals, so a policy
/// that chases the demand is always one migration wave behind.
const PERIOD: Nanos = Nanos(2_500_000_000);

fn works(smoke: bool) -> Vec<Work> {
    let hotspot = Work::Adversarial(DemandPattern::RotatingHotspot {
        clique: 64,
        period: PERIOD,
    });
    let churn = Work::Adversarial(DemandPattern::PairChurn { period: PERIOD });
    if smoke {
        vec![Work::Halo, churn]
    } else {
        vec![
            Work::Halo,
            Work::Adversarial(DemandPattern::Ring),
            hotspot,
            churn,
        ]
    }
}

fn policies(smoke: bool) -> Vec<RepartitionPolicyKind> {
    if smoke {
        vec![
            RepartitionPolicyKind::Exchange,
            RepartitionPolicyKind::ExchangeCostAware,
        ]
    } else {
        RepartitionPolicyKind::ALL.to_vec()
    }
}

/// One cell's deterministic outcome.
struct Row {
    policy: RepartitionPolicyKind,
    work: Work,
    json: String,
    total_cost: f64,
    p99_ms: f64,
}

fn run_cell(policy: RepartitionPolicyKind, work: Work, smoke: bool) -> (Row, EngineReport) {
    // Warmup must outlast the cost-aware policy's demand ramp: the aged
    // edge sketches take ~5 intervals to reach steady-state scores, the
    // veto holds until scores clear the migration tax, and the deferred
    // consolidation takes a few more intervals. Measuring before that
    // completes would charge the policy's one-off convergence burst to
    // the steady-state window.
    let (warmup, measure) = if smoke {
        (Nanos::from_secs(12), Nanos::from_secs(8))
    } else {
        (Nanos::from_secs(12), Nanos::from_secs(20))
    };
    let seed = 4242;
    let duration = warmup + measure;

    let mut rt = RuntimeConfig::paper_testbed(seed);
    rt.servers = 8;
    rt.repartition = policy;
    // Migration has a price in this bake-off: the actor is pinned at its
    // source for the transfer window, and every in-window message stalls.
    rt.migration_transfer = Some(Nanos::from_millis(10));
    if !smoke {
        rt.series_bin_ns = 5_000_000_000;
    }

    let (app, halo_workload, adv_workload) = match work {
        Work::Halo => {
            let mut cfg = HaloConfig::paper_scale(2_000, 600.0, duration, seed);
            cfg.game_duration_s = (300.0, 400.0);
            let (app, workload) = HaloWorkload::build(cfg);
            (app, Some(workload), None)
        }
        Work::Adversarial(pattern) => {
            let (app, workload) =
                AdversarialWorkload::build(AdversarialConfig::bakeoff(pattern, duration, seed));
            (app, None, Some(workload))
        }
    };
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    if let Some(w) = &halo_workload {
        w.install(&mut engine);
    }
    if let Some(w) = &adv_workload {
        w.install(&mut engine);
    }
    let agent = PartitionAgentConfig {
        protocol: PartitionConfig {
            candidate_set_size: 64,
            imbalance_tolerance: 32,
            exchange_cooldown_ns: 500_000_000,
            min_total_score: 1,
        },
        interval: Nanos::from_secs(1),
        sketch_age_factor: 0.8,
        policy,
        // A 10 ms transfer is ~55 remote-message equivalents, so the
        // default 8-interval horizon prices a move at ~7 messages per
        // interval: above a churn pair's ~2-message-per-interval savings
        // (veto) and below a Halo game-mate's co-location score (allow).
        cost: MigrationCostConfig::default(),
    };
    install_actop(
        &mut engine,
        8,
        &ActOpConfig {
            partition: Some(agent),
            threads: None,
        },
    );

    // Warm up outside `run_steady_state` so the lifecycle migration
    // counters can be snapshotted at the boundary: `migrations` and
    // `migration_stall_ns` survive the steady-state reset by design.
    engine.run_until(&mut cluster, warmup);
    let warm_migrations = cluster.metrics.migrations;
    let warm_stall_ns = cluster.metrics.migration_stall_ns;
    let summary = run_steady_state(&mut engine, &mut cluster, Nanos::ZERO, measure);
    let report = engine.report();

    let m = &cluster.metrics;
    let migrations = m.migrations - warm_migrations;
    let stall_ns = m.migration_stall_ns - warm_stall_ns;
    // The stall in remote-message equivalents: the same currency the
    // cost-aware objective scores in, so comm and migration tax add.
    let remote_cost_ns = cluster.config.costs.remote_overhead_ns(600).max(1.0);
    let stall_msg_equiv = stall_ns as f64 / remote_cost_ns;
    let total_cost = m.remote_messages as f64 + stall_msg_equiv;

    println!(
        "{:<12} {:<8} | remote {:>8} local {:>8} | migr {:>5} stall {:>8.1}ms | cost {:>10.0} | p99 {:>8.2}ms",
        policy.name(),
        work.name(),
        m.remote_messages,
        m.local_messages,
        migrations,
        stall_ns as f64 / 1e6,
        total_cost,
        summary.p99_ms,
    );
    let json = format!(
        "{{\"policy\":\"{}\",\"workload\":\"{}\",\"remote_msgs\":{},\"local_msgs\":{},\"migrations\":{},\"migration_stall_ms\":{:.3},\"stall_msg_equiv\":{:.1},\"total_cost\":{:.1},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"completed\":{},\"submitted\":{},\"timed_out\":{}}}\n",
        policy.name(),
        work.name(),
        m.remote_messages,
        m.local_messages,
        migrations,
        stall_ns as f64 / 1e6,
        stall_msg_equiv,
        total_cost,
        summary.p50_ms,
        summary.p99_ms,
        summary.completed,
        summary.submitted,
        summary.timed_out,
    );
    (
        Row {
            policy,
            work,
            json,
            total_cost,
            p99_ms: summary.p99_ms,
        },
        report,
    )
}

fn main() {
    let smoke = repartition_smoke();
    let wall_start = std::time::Instant::now();
    println!("== Online repartitioning bake-off ==");
    println!(
        "8 servers, 10ms transfer window, 1s agent interval{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!();

    let cells: Vec<(RepartitionPolicyKind, Work)> = policies(smoke)
        .into_iter()
        .flat_map(|p| works(smoke).into_iter().map(move |w| (p, w)))
        .collect();
    let results = parallel_map(cells, |(policy, work)| run_cell(policy, work, smoke));
    let (rows, reports): (Vec<Row>, Vec<EngineReport>) = results.into_iter().unzip();

    let cost_of = |policy: RepartitionPolicyKind, name: &str| {
        rows.iter()
            .find(|r| r.policy == policy && r.work.name() == name)
            .map(|r| r.total_cost)
            .expect("bake-off cell missing")
    };

    // The headline: against repeated-pair churn the migration tax never
    // amortizes, so the cost-aware exchange must strictly beat the
    // cost-oblivious one on total cost by sitting still.
    let oblivious = cost_of(RepartitionPolicyKind::Exchange, "churn");
    let aware = cost_of(RepartitionPolicyKind::ExchangeCostAware, "churn");
    println!();
    println!("churn total cost: actop {oblivious:.0} vs actop-cost {aware:.0}");
    assert!(
        aware < oblivious,
        "cost-aware exchange must beat cost-oblivious on churn: {aware:.0} vs {oblivious:.0}"
    );

    // On Halo the graph is stable enough for moves to amortize, so the
    // veto should rarely fire and the two must stay within a few percent.
    // The smoke probe's 8 s window leaves both cells with only tens of
    // residual migrations, where a handful of moves swings the ratio, so
    // it gets a proportionally looser bound than the full 20 s window.
    let halo_oblivious = cost_of(RepartitionPolicyKind::Exchange, "halo");
    let halo_aware = cost_of(RepartitionPolicyKind::ExchangeCostAware, "halo");
    let drift = (halo_aware - halo_oblivious).abs() / halo_oblivious.max(1.0);
    let bound = if smoke { 0.5 } else { 0.15 };
    println!(
        "halo total cost: actop {halo_oblivious:.0} vs actop-cost {halo_aware:.0} (drift {:.1}%)",
        drift * 100.0
    );
    assert!(
        drift < bound,
        "cost-aware exchange must stay within noise of cost-oblivious on Halo: drift {:.1}% (bound {:.0}%)",
        drift * 100.0,
        bound * 100.0
    );
    // And both assertions are about cost, not correctness: every cell
    // must still have completed its traffic without timeouts piling up.
    for row in &rows {
        assert!(
            row.p99_ms.is_finite(),
            "{}/{} produced no latency samples",
            row.policy.name(),
            row.work.name()
        );
    }

    let mut json = String::new();
    for row in &rows {
        json.push_str(&row.json);
    }
    println!();
    print_engine_line(&reports);
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    json.push_str(&format!(
        "{{\"kind\":\"engine\",\"wall_ns\":{wall_ns},\"smoke\":{smoke}}}\n"
    ));
    let out = if smoke {
        "BENCH_repartition_smoke.json"
    } else {
        "BENCH_repartition.json"
    };
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("could not write {out}: {e}");
    }
    println!("wrote {out}");

    if smoke {
        // The perf-gate probe: the default policy's Halo cell, alone, in
        // the first-object shape `perf_gate.py` reads. `events_processed`
        // is deterministic (gated exactly with --check-events);
        // `events_per_sec` is wall-clock and gated with the wide
        // order-of-magnitude floor.
        let (i, _) = rows
            .iter()
            .enumerate()
            .find(|(_, r)| r.policy == RepartitionPolicyKind::Exchange && r.work == Work::Halo)
            .expect("smoke sweep always runs the default-policy Halo cell");
        let report = &reports[i];
        let gate = format!(
            "{{\"policy\":\"actop\",\"workload\":\"halo\",\"events_processed\":{},\"wall_ns\":{},\"cpu_ns\":{},\"events_per_sec\":{:.1}}}\n",
            report.events_processed,
            report.wall_ns,
            report.cpu_ns,
            report.events_per_sec(),
        );
        let gate_out = "BENCH_repartition_gate.json";
        if let Err(e) = std::fs::write(gate_out, &gate) {
            eprintln!("could not write {gate_out}: {e}");
        }
        println!("wrote {gate_out}");
    }
}
