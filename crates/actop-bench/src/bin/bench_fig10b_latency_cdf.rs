//! Fig. 10b: end-to-end latency CDF at 6K requests/s.
//!
//! The paper reports medians of 24 ms (partitioned) vs 41 ms (baseline)
//! and 99th percentiles of 225 ms vs 736 ms — a >3× tail reduction that
//! "eliminates the perception of a sluggish server". This bench prints
//! both CDFs (sampled at round fractions) and the headline percentiles.

use actop_bench::{print_engine_line, print_row, run_halo, HaloScenario};
use actop_core::controllers::ActOpConfig;
use actop_metrics::LatencyHistogram;

fn cdf_samples(hist: &LatencyHistogram) -> Vec<(f64, f64)> {
    [
        0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 0.999,
    ]
    .iter()
    .map(|&q| (hist.quantile(q) as f64 / 1e6, q))
    .collect()
}

fn main() {
    let scenario = HaloScenario::paper(6_000.0, 120);
    println!("== Fig. 10b: end-to-end latency CDF, Halo @ 6K req/s ==");
    println!("paper: medians 24 vs 41 ms; p99 225 vs 736 ms");
    println!();
    let (baseline, base_report, base_cluster) = run_halo(&scenario, &ActOpConfig::default());
    let (optimized, opt_report, opt_cluster) = run_halo(&scenario, &scenario.actop(true, false));
    print_row("baseline", &baseline);
    print_row("ActOp partitioning", &optimized);
    println!();
    println!(
        "{:>10} {:>14} {:>14}",
        "fraction", "baseline (ms)", "actop (ms)"
    );
    let base_cdf = cdf_samples(&base_cluster.metrics.e2e_latency);
    let opt_cdf = cdf_samples(&opt_cluster.metrics.e2e_latency);
    for ((b_ms, q), (o_ms, _)) in base_cdf.iter().zip(&opt_cdf) {
        println!("{q:>10.3} {b_ms:>14.2} {o_ms:>14.2}");
    }
    println!();
    println!(
        "median improvement {:.0}%  p99 improvement {:.0}%",
        100.0 * (1.0 - optimized.p50_ms / baseline.p50_ms),
        100.0 * (1.0 - optimized.p99_ms / baseline.p99_ms)
    );
    print_engine_line(&[base_report, opt_report]);
}
