//! Ablation: ActOp under server failure.
//!
//! Not a paper figure — the paper relies on Orleans' fault tolerance but
//! never crashes a server in the evaluation. This bench shows the pieces
//! composing: mid-run, one of the ten servers dies. Its actors re-activate
//! across the cluster (losing locality), the remote-message share spikes,
//! and the partition agent pulls it back down; requests resident on the
//! dead server time out, everything else completes.

use actop_bench::{
    full_scale, maybe_export_trace, print_engine_line, trace_config_from_env, HaloScenario,
};
use actop_core::controllers::install_actop;
use actop_core::experiment::run_steady_state;
use actop_runtime::{Cluster, RuntimeConfig};
use actop_sim::{Engine, Nanos};
use actop_workloads::halo::HaloConfig;
use actop_workloads::HaloWorkload;

fn main() {
    let scenario = HaloScenario::paper(4_000.0, 210);
    let mut cfg = HaloConfig::paper_scale(
        scenario.players,
        scenario.request_rate,
        scenario.duration(),
        scenario.seed,
    );
    if !full_scale() {
        cfg.game_duration_s = (120.0, 180.0);
    }
    let (app, workload) = HaloWorkload::build(cfg);
    let mut rt = RuntimeConfig::paper_testbed(scenario.seed);
    rt.servers = scenario.servers;
    rt.request_timeout = Some(Nanos::from_secs(5));
    rt.series_bin_ns = 5_000_000_000;
    rt.trace = trace_config_from_env(scenario.seed);
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    cluster.install_timeline_sampler(&mut engine, scenario.duration());
    workload.install(&mut engine);
    install_actop(&mut engine, scenario.servers, &scenario.actop(true, true));

    // Crash server 3 a third into the measurement window; recover it later.
    let crash_at = scenario.warmup + scenario.measure / 3;
    let recover_at = scenario.warmup + scenario.measure * 2 / 3;
    engine.schedule(crash_at, |c: &mut Cluster, e| {
        c.fail_server(e, 3);
        println!("  !! server 3 crashed at t={:.0}s", e.now().as_secs_f64());
    });
    engine.schedule(recover_at, |c: &mut Cluster, e| {
        c.recover_server(e.now(), 3);
        println!("  !! server 3 recovered at t={:.0}s", e.now().as_secs_f64());
    });

    println!(
        "== Failover ablation: Halo @ 4K req/s, crash + recovery of 1 of {} servers ==",
        scenario.servers
    );
    let summary = run_steady_state(&mut engine, &mut cluster, scenario.warmup, scenario.measure);
    println!();
    println!(
        "submitted {}  completed {}  timed out {}  rejected {}  stale responses {}",
        summary.submitted,
        summary.completed,
        cluster.metrics.timed_out,
        summary.rejected,
        cluster.metrics.stale_responses
    );
    println!(
        "availability: {:.3}% of requests completed; p50 {:.1} ms p99 {:.1} ms",
        100.0 * summary.completed as f64 / summary.submitted.max(1) as f64,
        summary.p50_ms,
        summary.p99_ms
    );
    println!();
    println!("remote-message share per 5-s bin (watch the crash spike and re-convergence):");
    let shares: Vec<String> = cluster
        .metrics
        .remote_share_series
        .means()
        .iter()
        .map(|m| format!("{m:.2}"))
        .collect();
    println!("  {}", shares.join(" "));
    println!("final server sizes: {:?}", cluster.server_sizes());
    // Requests still in flight when the measurement window closes are
    // neither completed nor lost; conservation holds modulo that residue.
    let accounted = summary.completed + summary.rejected + cluster.metrics.timed_out;
    let in_flight = summary.submitted - accounted;
    println!("in flight at window close: {in_flight}");
    assert!(
        in_flight < 100,
        "unaccounted requests beyond the in-flight residue: {in_flight}"
    );
    maybe_export_trace(&cluster);
    print_engine_line(&[engine.report()]);
}
