//! Shared scaffolding for the figure/table benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation; this library holds the scenario builders and the
//! row printers they share. The default scale is chosen so each bench
//! finishes in tens of seconds on a laptop; set `ACTOP_FULL_SCALE=1` to
//! run at the paper's full population and durations.

use actop_core::controllers::{
    install_actop, install_actop_sharded, ActOpConfig, PartitionAgentConfig, ThreadAgentConfig,
};
use actop_core::experiment::{run_steady_state, RunSummary};
use actop_obs::{exposition, FaultNote, ScrapeWriter};
use actop_partition::{MigrationCostConfig, RepartitionPolicyKind, SplitThresholds};
use actop_runtime::sharded::install_sharded_hooks;
use actop_runtime::{
    build_sharded, install_replication_sharded, install_sharded_scrapers,
    install_snapshots_sharded, sharded_lookahead, Cluster, ObsConfig, Observability,
    ReplicationConfig, RuntimeConfig, SnapshotConfig, TraceConfig,
};
use actop_sim::{ConservativeRunner, Engine, EngineReport, Nanos};
use actop_workloads::halo::HaloConfig;
use actop_workloads::{
    HaloWorkload, MemoryAudit, ScaleConfig, ScaleWorkload, ShardedHaloWorkload,
    ShardedScaleWorkload,
};

/// Scale knobs for a Halo scenario run.
#[derive(Debug, Clone, Copy)]
pub struct HaloScenario {
    /// Concurrent players.
    pub players: u64,
    /// Cluster-wide client request rate, req/s.
    pub request_rate: f64,
    /// Number of servers.
    pub servers: usize,
    /// Warmup excluded from measurement.
    pub warmup: Nanos,
    /// Measurement window.
    pub measure: Nanos,
    /// Seed.
    pub seed: u64,
    /// Game-duration override in seconds (`None` = the scale default:
    /// 1200–1800 s at full scale, 80–120 s scaled).
    pub game_duration_s: Option<(f64, f64)>,
}

impl HaloScenario {
    /// The paper's headline operating point, at the default bench scale
    /// (or full scale with `ACTOP_FULL_SCALE=1`).
    pub fn paper(request_rate: f64, seed: u64) -> Self {
        if full_scale() {
            HaloScenario {
                players: 100_000,
                request_rate,
                servers: 10,
                warmup: Nanos::from_secs(600),
                measure: Nanos::from_secs(1200),
                seed,
                game_duration_s: None,
            }
        } else {
            HaloScenario {
                players: 20_000,
                request_rate,
                servers: 10,
                warmup: Nanos::from_secs(40),
                measure: Nanos::from_secs(60),
                seed,
                game_duration_s: None,
            }
        }
    }

    /// Total run duration.
    pub fn duration(&self) -> Nanos {
        self.warmup + self.measure
    }

    /// Partition-agent settings scaled to this scenario: the agent must
    /// complete its initial migration wave within the warmup (the paper's
    /// system converges in ~10 minutes of its 60-minute runs; scaled runs
    /// shrink the control intervals proportionally).
    pub fn partition_agent(&self) -> PartitionAgentConfig {
        let interval = Nanos((self.warmup.as_nanos() / 40).max(1_000_000_000));
        PartitionAgentConfig {
            protocol: actop_partition::PartitionConfig {
                candidate_set_size: 128,
                imbalance_tolerance: 64,
                exchange_cooldown_ns: interval.as_nanos() / 2,
                min_total_score: 1,
            },
            interval,
            sketch_age_factor: 0.8,
            policy: env_policy().unwrap_or_default(),
            cost: MigrationCostConfig::default(),
        }
    }

    /// Thread-agent settings scaled to this scenario.
    pub fn thread_agent(&self) -> ThreadAgentConfig {
        ThreadAgentConfig {
            interval: Nanos((self.warmup.as_nanos() / 10).max(1_000_000_000)),
            ..ThreadAgentConfig::default()
        }
    }

    /// The ActOp configuration for this scenario with either optimization
    /// enabled independently.
    pub fn actop(&self, partition: bool, threads: bool) -> ActOpConfig {
        ActOpConfig {
            partition: partition.then(|| self.partition_agent()),
            threads: threads.then(|| self.thread_agent()),
        }
    }
}

/// Whether benches run at the paper's full population and durations.
pub fn full_scale() -> bool {
    std::env::var("ACTOP_FULL_SCALE").is_ok_and(|v| v == "1")
}

// ---------------------------------------------------------------------
// Concurrency knobs. Two independent axes, one story:
//
//  * `ACTOP_WORKERS` — how many *runs* execute concurrently in a sweep
//    ([`parallel_map`]): between-run parallelism. Default: one worker per
//    available core.
//  * `ACTOP_SHARDS` — how many worker threads the conservative-parallel
//    engine uses *inside* one run (the sharded backend): within-run
//    parallelism. Unset means the legacy single-threaded engine;
//    `ACTOP_SHARDS=1` selects the sharded backend's sequential oracle.
//    Applies to the Halo scenario runs ([`run_halo`] routes to
//    [`run_halo_sharded`] when set); the uniform microbenchmarks record
//    per-stage latency breakdowns, which the sharded backend rejects,
//    and always use the legacy engine.
//
// Both are validated the same way: a value that is not a positive
// integer is a configuration error and aborts with a clear message
// (silently ignoring it would run the wrong experiment).
// ---------------------------------------------------------------------

/// Parses one concurrency knob: `None` when unset, `Some(n)` for a
/// positive integer, and a descriptive error otherwise. Pure, for tests;
/// the env-reading wrappers exit on error.
pub fn parse_concurrency(name: &str, raw: Option<&str>) -> Result<Option<usize>, String> {
    match raw {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            Ok(_) => Err(format!("{name}={v:?}: must be a positive integer, not 0")),
            Err(_) => Err(format!("{name}={v:?}: must be a positive integer")),
        },
    }
}

fn concurrency_from_env(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok();
    match parse_concurrency(name, raw.as_deref()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// The `ACTOP_WORKERS` sweep-parallelism override, validated.
pub fn env_workers() -> Option<usize> {
    concurrency_from_env("ACTOP_WORKERS")
}

/// The `ACTOP_SHARDS` within-run shard count, validated. `None` selects
/// the legacy single-threaded engine.
pub fn env_shards() -> Option<usize> {
    concurrency_from_env("ACTOP_SHARDS")
}

/// Parses the `ACTOP_POLICY` repartitioning-policy knob: `None` when
/// unset (the bench's configured policy applies — the paper's exchange
/// protocol unless the bench says otherwise), a policy kind for a valid
/// name, and a descriptive error for anything else. Pure, for tests; the
/// env-reading wrapper exits on error.
pub fn parse_policy(raw: Option<&str>) -> Result<Option<RepartitionPolicyKind>, String> {
    match raw {
        None => Ok(None),
        Some(v) => RepartitionPolicyKind::parse(v)
            .map(Some)
            .map_err(|e| format!("ACTOP_POLICY: {e}")),
    }
}

/// The `ACTOP_POLICY` repartitioning-policy override, validated.
pub fn env_policy() -> Option<RepartitionPolicyKind> {
    let raw = std::env::var("ACTOP_POLICY").ok();
    match parse_policy(raw.as_deref()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// The env-configured tracer for a run: `ACTOP_TRACE=<path>` turns
/// tracing on (the run's spans are exported to `<path>` as Chrome trace
/// JSON), `ACTOP_TRACE_SAMPLE=<rate>` sets the head-sampling rate
/// (default 1.0). The sampling seed is tied to the run seed, so the same
/// seed samples the same requests — and emits byte-identical trace files
/// — on every run.
pub fn trace_config_from_env(seed: u64) -> Option<TraceConfig> {
    std::env::var("ACTOP_TRACE").ok()?;
    let sample_rate = match std::env::var("ACTOP_TRACE_SAMPLE") {
        Err(_) => 1.0,
        Ok(v) => v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("warning: ACTOP_TRACE_SAMPLE={v:?} is not a number; tracing all requests");
            1.0
        }),
    };
    Some(TraceConfig {
        sample_rate,
        seed,
        ..TraceConfig::default()
    })
}

/// Exports a traced run's artifacts if `ACTOP_TRACE` is set and the
/// cluster's tracer is active: Chrome trace JSON at the configured path,
/// a JSONL span dump at `<path>.spans.jsonl`, and the flight-recorder
/// dumps at `<path>.flight.json` (only when any anomaly fired). When one
/// process runs several traced simulations (sweeps), the second and later
/// exports go to `<path>.2`, `<path>.3`, ... — under a parallel sweep
/// that numbering follows completion order, so set `ACTOP_WORKERS=1` when
/// exact file names matter.
pub fn maybe_export_trace(cluster: &Cluster) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static EXPORTS: AtomicUsize = AtomicUsize::new(0);

    let Ok(base) = std::env::var("ACTOP_TRACE") else {
        return;
    };
    if !cluster.trace.enabled() {
        return;
    }
    let nth = EXPORTS.fetch_add(1, Ordering::SeqCst);
    let path = if nth == 0 {
        base.clone()
    } else {
        format!("{base}.{}", nth + 1)
    };
    let write = |path: &str, content: String| {
        if let Err(err) = std::fs::write(path, content) {
            eprintln!("trace export failed for {path}: {err}");
        }
    };
    write(&path, actop_trace::chrome_trace(&cluster.trace));
    write(
        &format!("{path}.spans.jsonl"),
        actop_trace::spans_jsonl(&cluster.trace),
    );
    let dumps = cluster.trace.flight_dumps().len();
    if dumps > 0 {
        write(
            &format!("{path}.flight.json"),
            actop_trace::flight_json(&cluster.trace),
        );
    }
    println!(
        "trace: {path} spans={} dropped={} flight_dumps={} timeline_samples={}",
        cluster.trace.spans().len(),
        cluster.trace.dropped_spans(),
        dumps,
        cluster.trace.timeline.len(),
    );
}

/// The env-configured telemetry for a run: `ACTOP_OBS=<path>` switches on
/// metric scraping + SLO burn-rate alerting (the scrape JSONL and a
/// Prometheus-exposition sibling are exported to `<path>` and `<path>.prom`
/// by [`maybe_export_obs`]); `ACTOP_OBS_INTERVAL_MS=<ms>` overrides the
/// 1 s scrape cadence.
pub fn obs_config_from_env() -> Option<ObsConfig> {
    std::env::var("ACTOP_OBS").ok()?;
    let mut cfg = ObsConfig::default();
    if let Ok(v) = std::env::var("ACTOP_OBS_INTERVAL_MS") {
        match v.parse::<u64>() {
            Ok(ms) if ms > 0 => cfg.scrape_interval = Nanos::from_millis(ms),
            _ => eprintln!(
                "warning: ACTOP_OBS_INTERVAL_MS={v:?} is not a positive integer; scraping every 1 s"
            ),
        }
    }
    Some(cfg)
}

/// Whether `ACTOP_COST=1` switched on per-subsystem cost attribution (the
/// `cost:` table printed by [`print_engine_line`]).
pub fn cost_from_env() -> bool {
    std::env::var("ACTOP_COST").is_ok_and(|v| v == "1")
}

/// The env-configured snapshot subsystem: `ACTOP_SNAPSHOT=1` switches on
/// asynchronous actor snapshots with the kernel defaults (2 s rounds,
/// write tag 1 — Halo's `TAG_POLL`, the scale workload's `TAG_WRITE`);
/// `ACTOP_SNAPSHOT_INTERVAL_MS=<ms>` overrides the round interval, with
/// the capture window scaled to half of it. Unset leaves the subsystem
/// off and every run byte-identical to a build without it.
pub fn snapshot_config_from_env() -> Option<SnapshotConfig> {
    if !std::env::var("ACTOP_SNAPSHOT").is_ok_and(|v| v == "1") {
        return None;
    }
    let mut cfg = SnapshotConfig::default();
    if let Ok(v) = std::env::var("ACTOP_SNAPSHOT_INTERVAL_MS") {
        match v.parse::<u64>() {
            Ok(ms) if ms > 0 => {
                cfg.interval = Nanos::from_millis(ms);
                cfg.capture_window = Nanos::from_millis((ms / 2).max(1));
            }
            _ => eprintln!(
                "warning: ACTOP_SNAPSHOT_INTERVAL_MS={v:?} is not a positive integer; using 2 s rounds"
            ),
        }
    }
    Some(cfg)
}

/// Exports a telemetry-enabled run's artifacts if `ACTOP_OBS` is set: the
/// scrape JSONL document (header, frames, alert/fault/SLO annotations,
/// run summary, engine line) at `<path>` and the Prometheus exposition of
/// the final scrape at `<path>.prom`. Everything written is a pure
/// function of the simulation — same seed, byte-identical files (render
/// the HTML report with `cargo run --bin report -- <path>`). Like
/// [`maybe_export_trace`], a process running several simulations numbers
/// the second and later exports `<path>.2`, `<path>.3`, ...
pub fn maybe_export_obs(
    cluster: &Cluster,
    summary: &RunSummary,
    report: &EngineReport,
    faults: &[FaultNote],
) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static EXPORTS: AtomicUsize = AtomicUsize::new(0);

    let Ok(base) = std::env::var("ACTOP_OBS") else {
        return;
    };
    let Some((jsonl, prom)) = obs_document(cluster, summary, report, faults) else {
        return;
    };
    let obs = cluster.obs.as_ref().expect("obs_document checked");
    let nth = EXPORTS.fetch_add(1, Ordering::SeqCst);
    let path = if nth == 0 {
        base.clone()
    } else {
        format!("{base}.{}", nth + 1)
    };
    let write = |path: &str, content: &str| {
        if let Err(err) = std::fs::write(path, content) {
            eprintln!("obs export failed for {path}: {err}");
        }
    };
    write(&path, &jsonl);
    write(&format!("{path}.prom"), &prom);
    println!(
        "obs: {path} frames={} alerts={} slos={}",
        obs.registry().frames().count(),
        obs.alerts().len(),
        obs.slo_notes().len(),
    );
}

/// Builds a telemetry-enabled run's artifacts in memory: the scrape JSONL
/// document and the Prometheus exposition of the final scrape. `None`
/// when the run had telemetry off. Pure function of the simulation —
/// same seed, byte-identical strings (the property
/// `tests/obs_determinism.rs` pins).
pub fn obs_document(
    cluster: &Cluster,
    summary: &RunSummary,
    report: &EngineReport,
    faults: &[FaultNote],
) -> Option<(String, String)> {
    let obs = cluster.obs.as_ref()?;
    let reg = obs.registry();
    let mut w = ScrapeWriter::new(cluster.config.seed, obs.interval().as_nanos(), reg.defs());
    w.frames(reg);
    for a in obs.alerts() {
        w.alert(a);
    }
    for f in faults {
        w.fault(f);
    }
    for n in obs.slo_notes() {
        w.slo(&n);
    }
    w.summary(&[
        ("p50_ms", summary.p50_ms),
        ("p95_ms", summary.p95_ms),
        ("p99_ms", summary.p99_ms),
        ("mean_ms", summary.mean_ms),
        ("remote_fraction", summary.remote_fraction),
        ("cpu_utilization", summary.cpu_utilization),
        ("completed", summary.completed as f64),
        ("submitted", summary.submitted as f64),
        ("rejected", summary.rejected as f64),
        ("timed_out", summary.timed_out as f64),
        ("forwarded_messages", summary.forwarded_messages as f64),
        ("stale_responses", summary.stale_responses as f64),
        ("migrations", summary.migrations as f64),
        ("throughput_per_s", summary.throughput_per_s),
        ("retries", summary.retries as f64),
        ("retry_backoff_ms", summary.retry_backoff_ms),
        ("directory_repairs", summary.directory_repairs as f64),
        (
            "false_suspicion_repairs",
            summary.false_suspicion_repairs as f64,
        ),
        ("shed_no_live", summary.shed_no_live as f64),
        ("slo_alerts_opened", summary.slo_alerts_opened as f64),
        ("slo_alerts_closed", summary.slo_alerts_closed as f64),
    ]);
    // Only deterministic engine quantities belong in the artifact; wall
    // times and sampled costs are machine-dependent and stay on stdout.
    w.engine(&[("events_processed", report.events_processed as f64)]);
    Some((w.finish(), exposition(reg)))
}

/// The Halo workload configuration for a scenario, shared by both engine
/// backends.
fn halo_config(scenario: &HaloScenario) -> HaloConfig {
    let mut cfg = HaloConfig::paper_scale(
        scenario.players,
        scenario.request_rate,
        scenario.duration(),
        scenario.seed,
    );
    if let Some(duration) = scenario.game_duration_s {
        cfg.game_duration_s = duration;
    } else if !full_scale() {
        // Scaled runs shrink the lifecycle with the control intervals so
        // the churn-to-reaction-time ratio matches the paper's: 20–30 min
        // games against a one-minute exchange cooldown become ~150 s games
        // against a one-second cooldown.
        cfg.game_duration_s = (120.0, 180.0);
    }
    cfg
}

/// The runtime configuration for a scenario, shared by both engine
/// backends.
fn halo_runtime(scenario: &HaloScenario) -> RuntimeConfig {
    let mut rt = RuntimeConfig::paper_testbed(scenario.seed);
    rt.servers = scenario.servers;
    rt.record_remote_call_latency = true;
    rt.repartition = env_policy().unwrap_or_default();
    rt.trace = trace_config_from_env(scenario.seed);
    rt.obs = obs_config_from_env();
    rt.cost_attr = cost_from_env();
    rt.snapshot = snapshot_config_from_env();
    if !full_scale() {
        rt.series_bin_ns = 5_000_000_000; // 5 s bins for the short runs.
    }
    rt
}

/// Runs one Halo scenario under the given ActOp configuration and returns
/// the steady-state summary, the engine's self-metrics, and the cluster
/// for follow-up inspection.
///
/// `ACTOP_SHARDS=<n>` reroutes the run to the sharded
/// conservative-parallel backend ([`run_halo_sharded`]); results are then
/// deterministic in the shard count but not comparable event-for-event
/// with the legacy engine.
pub fn run_halo(
    scenario: &HaloScenario,
    actop: &ActOpConfig,
) -> (RunSummary, EngineReport, Cluster) {
    if let Some(shards) = env_shards() {
        return run_halo_sharded(scenario, actop, shards);
    }
    let (app, workload) = HaloWorkload::build(halo_config(scenario));
    let rt = halo_runtime(scenario);
    let cost = rt.cost_attr;
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    engine.set_cost_attr(cost);
    workload.install(&mut engine);
    install_actop(&mut engine, scenario.servers, actop);
    cluster.install_timeline_sampler(&mut engine, scenario.duration());
    cluster.install_scraper(&mut engine, scenario.duration());
    cluster.install_snapshots(&mut engine, scenario.duration());
    let summary = run_steady_state(&mut engine, &mut cluster, scenario.warmup, scenario.measure);
    let mut report = engine.report();
    report.attr.merge(cluster.cost_attr());
    maybe_export_trace(&cluster);
    maybe_export_obs(&cluster, &summary, &report, &[]);
    (summary, report, cluster)
}

/// Runs one Halo scenario on the sharded conservative-parallel backend
/// with `shards` shards (and as many worker threads; `1` selects the
/// sequential oracle). The steady-state protocol mirrors
/// [`run_steady_state`]: run the warmup, reset every shard's counters,
/// run the measurement window, summarize.
///
/// The returned [`Cluster`] is a read-only shell for follow-up
/// inspection: it carries the merged per-shard metrics and traces and a
/// snapshot of the shared directory, but its servers never ran.
pub fn run_halo_sharded(
    scenario: &HaloScenario,
    actop: &ActOpConfig,
    shards: usize,
) -> (RunSummary, EngineReport, Cluster) {
    let cfg = halo_config(scenario);
    let rt = halo_runtime(scenario);
    let cost = rt.cost_attr;
    let lookahead = sharded_lookahead(&rt);
    let (app, workload) = ShardedHaloWorkload::build(cfg);
    let worlds = build_sharded(rt, app, shards);
    let threads = worlds.len(); // `build_sharded` clamps to [1, servers].
    let mut runner = ConservativeRunner::new(worlds, lookahead);
    for cell in runner.cells_mut() {
        // Sharded attribution covers the engines' heap buckets; the
        // runtime-subsystem buckets are a legacy-engine instrument.
        cell.engine.set_cost_attr(cost);
    }
    install_sharded_hooks(&mut runner);
    workload.install(&mut runner);
    install_actop_sharded(&mut runner, scenario.servers, actop);
    install_sharded_scrapers(&mut runner, scenario.duration());
    install_snapshots_sharded(&mut runner, scenario.duration());

    runner.run_until(scenario.warmup, threads);
    for cell in runner.cells_mut() {
        cell.world.reset_steady_state();
    }
    let start = scenario.warmup;
    let end = scenario.duration();
    runner.run_until(end, threads);

    // Merge the per-shard measurements into a shell cluster so callers can
    // inspect them exactly as they would a legacy run's.
    let mut shell = Cluster::new(
        halo_runtime(scenario),
        HaloWorkload::build(halo_config(scenario)).0,
    );
    for cell in runner.cells() {
        shell.metrics.merge_from(cell.world.metrics());
        shell.trace.merge_from(cell.world.trace());
    }
    shell.directory = runner.cells()[0].world.directory_snapshot();

    // Per-server utilizations reduced in global server order, so the
    // cluster mean is bit-identical across shard splits (a float sum in
    // shard order would differ in the last ulp).
    let mut per_server_util = vec![0.0f64; scenario.servers];
    for cell in runner.cells() {
        for (server, util) in cell.world.utilizations(start, end) {
            per_server_util[server] = util;
        }
    }
    let util_sum: f64 = per_server_util.iter().sum();

    // Merge the per-shard telemetry registries and evaluate the SLOs once
    // over the merged series — bin-aligned alert timestamps make this
    // byte-identical to the legacy engine's online alerting.
    let mut merged_obs: Option<Observability> = None;
    for cell in runner.cells_mut() {
        if let Some(obs) = cell.world.take_obs() {
            match merged_obs.as_mut() {
                Some(m) => m.merge_from(&obs),
                None => merged_obs = Some(obs),
            }
        }
    }
    if let Some(obs) = merged_obs {
        shell.adopt_merged_obs(obs, end);
    }
    let hist = &shell.metrics.e2e_latency;
    let quantiles = hist.summary();
    let summary = RunSummary {
        p50_ms: quantiles.p50 as f64 / 1e6,
        p95_ms: quantiles.p95 as f64 / 1e6,
        p99_ms: quantiles.p99 as f64 / 1e6,
        mean_ms: hist.mean() / 1e6,
        remote_fraction: shell.metrics.remote_fraction(),
        cpu_utilization: util_sum / scenario.servers as f64,
        completed: shell.metrics.completed,
        submitted: shell.metrics.submitted,
        rejected: shell.metrics.rejected,
        timed_out: shell.metrics.timed_out,
        forwarded_messages: shell.metrics.forwarded_messages,
        stale_responses: shell.metrics.stale_responses,
        migrations: shell.metrics.migrations,
        throughput_per_s: shell.metrics.completed as f64 / scenario.measure.as_secs_f64().max(1e-9),
        retries: shell.metrics.retries,
        retry_backoff_ms: shell.metrics.retry_backoff_ns as f64 / 1e6,
        directory_repairs: shell.metrics.directory_repairs,
        false_suspicion_repairs: shell.metrics.false_suspicion_repairs,
        shed_no_live: shell.metrics.shed_no_live,
        slo_alerts_opened: shell.metrics.slo_alerts_opened,
        slo_alerts_closed: shell.metrics.slo_alerts_closed,
    };
    let report = runner.report();
    maybe_export_trace(&shell);
    maybe_export_obs(&shell, &summary, &report, &[]);
    (summary, report, shell)
}

/// The cluster shape of the million-player scale bench: eight 4-core
/// servers, so a single celebrity actor's demand can exceed one server's
/// capacity while the cluster as a whole has headroom.
///
/// Replication (when on) splits past 20% of one server rather than the
/// kernel default 50%, for two reasons. First, the sketch observes
/// *executed* work, and a saturated server executes at most its capacity
/// — so when celebrities co-locate on a melting server, each one's
/// executed share sits well below 50% even though its offered demand
/// exceeds a whole server. Second, any actor holding more than ~20% of
/// one server is an indivisible chunk that placement cannot balance
/// around once the cluster runs warm. The trigger still clears every
/// non-celebrity actor by two orders of magnitude (the heaviest uniform
/// actor executes well under 1% of a window). The 2 s cooldown (vs the
/// 3 s default) lets a celebrity ladder to its steady replica count
/// within the warmup window; the 100 ms candidate floor keeps ordinary
/// players out of the decision loop entirely.
pub fn scale_runtime(seed: u64, replication: bool) -> RuntimeConfig {
    let mut rt = RuntimeConfig::paper_testbed(seed);
    rt.servers = 8;
    rt.costs.cores_per_server = 4;
    rt.initial_threads_per_stage = 4;
    rt.series_bin_ns = 5_000_000_000;
    rt.trace = trace_config_from_env(seed);
    rt.obs = obs_config_from_env();
    rt.snapshot = snapshot_config_from_env();
    if replication {
        rt.replication = Some(ReplicationConfig {
            thresholds: SplitThresholds {
                capacity_fraction: 0.2,
                // At the replica cap a past-one-server celebrity leaves
                // each replica ~1/8 of the total, which the default 0.6
                // hysteresis would drop (and the primary would immediately
                // re-split — churn that melts the tail). 0.3 keeps the
                // steady per-replica share inside the hold band while idle
                // replicas (flash decay, rotated-away hotspots) still shed.
                drop_fraction: 0.3,
                ..SplitThresholds::default()
            },
            cooldown: Nanos::from_secs(2),
            min_load_ns: 100_000_000,
            ..ReplicationConfig::default()
        });
    }
    rt
}

/// Runs one scale workload on the sharded backend and returns the
/// steady-state summary, the engine report, the merged shell cluster
/// (for replication counters), and the per-player memory audit.
///
/// `cfg.duration` is the total run; the first `warmup` of it is excluded
/// from measurement (counters reset at the warmup boundary, so detection
/// state — replicas, cooldowns — carries over, as it should).
pub fn run_scale(
    cfg: ScaleConfig,
    warmup: Nanos,
    rt: RuntimeConfig,
    shards: usize,
) -> (RunSummary, EngineReport, Cluster, MemoryAudit) {
    assert!(warmup < cfg.duration, "warmup must leave a measure window");
    let measure = cfg.duration - warmup;
    let servers = rt.servers;
    let lookahead = sharded_lookahead(&rt);
    let shell_rt = rt.clone();
    let (app, workload) = ShardedScaleWorkload::build(cfg);
    let worlds = build_sharded(rt, app, shards);
    let threads = worlds.len();
    let mut runner = ConservativeRunner::new(worlds, lookahead);
    install_sharded_hooks(&mut runner);
    workload.install(&mut runner);
    install_replication_sharded(&mut runner, cfg.duration);
    install_sharded_scrapers(&mut runner, cfg.duration);
    install_snapshots_sharded(&mut runner, cfg.duration);

    runner.run_until(warmup, threads);
    for cell in runner.cells_mut() {
        cell.world.reset_steady_state();
    }
    let end = cfg.duration;
    runner.run_until(end, threads);
    let audit = workload.memory_audit();

    // Merge per-shard measurements into a shell cluster, as
    // [`run_halo_sharded`] does (the shell's app never runs, so it gets a
    // one-player slab instead of another full-population one).
    let mut shell_cfg = cfg;
    shell_cfg.players = 1;
    shell_cfg.shape = actop_workloads::TrafficShape::Uniform;
    let mut shell = Cluster::new(shell_rt, ScaleWorkload::build(shell_cfg).0);
    for cell in runner.cells() {
        shell.metrics.merge_from(cell.world.metrics());
        shell.trace.merge_from(cell.world.trace());
    }
    shell.directory = runner.cells()[0].world.directory_snapshot();

    let mut per_server_util = vec![0.0f64; servers];
    for cell in runner.cells() {
        for (server, util) in cell.world.utilizations(warmup, end) {
            per_server_util[server] = util;
        }
    }
    let util_sum: f64 = per_server_util.iter().sum();

    let mut merged_obs: Option<Observability> = None;
    for cell in runner.cells_mut() {
        if let Some(obs) = cell.world.take_obs() {
            match merged_obs.as_mut() {
                Some(m) => m.merge_from(&obs),
                None => merged_obs = Some(obs),
            }
        }
    }
    if let Some(obs) = merged_obs {
        shell.adopt_merged_obs(obs, end);
    }
    let hist = &shell.metrics.e2e_latency;
    let quantiles = hist.summary();
    let summary = RunSummary {
        p50_ms: quantiles.p50 as f64 / 1e6,
        p95_ms: quantiles.p95 as f64 / 1e6,
        p99_ms: quantiles.p99 as f64 / 1e6,
        mean_ms: hist.mean() / 1e6,
        remote_fraction: shell.metrics.remote_fraction(),
        cpu_utilization: util_sum / servers as f64,
        completed: shell.metrics.completed,
        submitted: shell.metrics.submitted,
        rejected: shell.metrics.rejected,
        timed_out: shell.metrics.timed_out,
        forwarded_messages: shell.metrics.forwarded_messages,
        stale_responses: shell.metrics.stale_responses,
        migrations: shell.metrics.migrations,
        throughput_per_s: shell.metrics.completed as f64 / measure.as_secs_f64().max(1e-9),
        retries: shell.metrics.retries,
        retry_backoff_ms: shell.metrics.retry_backoff_ns as f64 / 1e6,
        directory_repairs: shell.metrics.directory_repairs,
        false_suspicion_repairs: shell.metrics.false_suspicion_repairs,
        shed_no_live: shell.metrics.shed_no_live,
        slo_alerts_opened: shell.metrics.slo_alerts_opened,
        slo_alerts_closed: shell.metrics.slo_alerts_closed,
    };
    let report = runner.report();
    maybe_export_trace(&shell);
    maybe_export_obs(&shell, &summary, &report, &[]);
    (summary, report, shell, audit)
}

/// Runs a single-actor-type workload (counter / heartbeat) on a cluster.
///
/// `threads` fixes the per-stage allocation for the whole run (`None`
/// keeps the Orleans default of one thread per stage per core);
/// `agent` optionally installs a thread-allocation agent.
pub fn run_uniform(
    workload: actop_workloads::UniformConfig,
    mut rt: RuntimeConfig,
    threads: Option<[usize; 4]>,
    agent: Option<ThreadAgentConfig>,
    warmup: Nanos,
    measure: Nanos,
) -> (RunSummary, EngineReport, Cluster) {
    rt.record_breakdown = true;
    if rt.trace.is_none() {
        rt.trace = trace_config_from_env(rt.seed);
    }
    if rt.obs.is_none() {
        rt.obs = obs_config_from_env();
    }
    rt.cost_attr = rt.cost_attr || cost_from_env();
    if rt.snapshot.is_none() {
        rt.snapshot = snapshot_config_from_env();
    }
    let cost = rt.cost_attr;
    let servers = rt.servers;
    let (app, driver) = actop_workloads::UniformWorkload::build(workload);
    let mut cluster = Cluster::new(rt, app);
    let mut engine: Engine<Cluster> = Engine::new();
    engine.set_cost_attr(cost);
    driver.install(&mut engine);
    cluster.install_timeline_sampler(&mut engine, warmup + measure);
    cluster.install_scraper(&mut engine, warmup + measure);
    cluster.install_snapshots(&mut engine, warmup + measure);
    if let Some(alloc) = threads {
        engine.schedule(Nanos::ZERO, move |c: &mut Cluster, e| {
            for server in 0..c.server_count() {
                c.set_stage_threads(e, server, alloc);
            }
        });
    }
    if let Some(agent) = agent {
        install_actop(
            &mut engine,
            servers,
            &ActOpConfig {
                partition: None,
                threads: Some(agent),
            },
        );
    }
    let summary = run_steady_state(&mut engine, &mut cluster, warmup, measure);
    let mut report = engine.report();
    report.attr.merge(cluster.cost_attr());
    maybe_export_trace(&cluster);
    maybe_export_obs(&cluster, &summary, &report, &[]);
    (summary, report, cluster)
}

/// One (variant × seed) cell of a parallel sweep: everything a worker
/// thread needs to run a Halo scenario. Plain data, hence `Send`.
#[derive(Debug, Clone)]
pub struct HaloCell {
    /// Row label carried through to the merged output.
    pub label: String,
    pub scenario: HaloScenario,
    pub actop: ActOpConfig,
}

/// The `Send` outcome of one sweep cell (the cluster, which is not
/// `Send`, is dropped on the worker thread).
#[derive(Debug, Clone)]
pub struct CellResult {
    pub label: String,
    pub summary: RunSummary,
    pub report: EngineReport,
}

/// Fans `jobs` across `std::thread::scope` workers (one per core, capped
/// by job count) and returns results **in input order**, regardless of
/// completion order — so sweep output is identical to a sequential run.
pub fn parallel_map<I, O, F>(jobs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Mutex};

    let n = jobs.len();
    // ACTOP_WORKERS caps (or forces) the pool size; default is one worker
    // per available core. Bad values abort with a clear message.
    let workers = env_workers()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        .min(n.max(1));
    if workers <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    // Workers claim job indices from a shared cursor and send back
    // (index, result); the collector reassembles by index.
    let cells: Vec<Mutex<Option<I>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (cells, cursor, f) = (&cells, &cursor, &f);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = cells[i]
                    .lock()
                    .expect("job cell poisoned")
                    .take()
                    .expect("job claimed twice");
                if tx.send((i, f(job))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
        for (i, result) in rx {
            out[i] = Some(result);
        }
        out.into_iter()
            .map(|o| o.expect("worker completed every job"))
            .collect()
    })
}

/// Runs every sweep cell in parallel across cores and returns the merged
/// rows in input order. This is the multi-seed harness the figure benches
/// share: simulations are single-threaded and deterministic, so (variant ×
/// seed) cells are embarrassingly parallel.
pub fn run_halo_sweep(cells: Vec<HaloCell>) -> Vec<CellResult> {
    parallel_map(cells, |cell| {
        let (summary, report, _cluster) = run_halo(&cell.scenario, &cell.actop);
        CellResult {
            label: cell.label,
            summary,
            report,
        }
    })
}

/// Prints a labeled summary row in a fixed format shared by the benches.
/// The trailing counters surface the previously-silent anomaly paths:
/// shed requests, timeouts, post-migration forwards, stale responses, and
/// the fault-recovery machinery (retries, directory repairs, false
/// suspicion, total-loss sheds) — all zero on a fault-free run.
pub fn print_row(label: &str, s: &RunSummary) {
    println!(
        "{label:<28} p50={:8.1}ms p95={:8.1}ms p99={:8.1}ms mean={:7.1}ms remote={:5.1}% cpu={:5.1}% thr={:7.0}/s rej={} tmo={} fwd={} stale={} retry={} rep={} fsusp={} shed={}",
        s.p50_ms,
        s.p95_ms,
        s.p99_ms,
        s.mean_ms,
        s.remote_fraction * 100.0,
        s.cpu_utilization * 100.0,
        s.throughput_per_s,
        s.rejected,
        s.timed_out,
        s.forwarded_messages,
        s.stale_responses,
        s.retries,
        s.directory_repairs,
        s.false_suspicion_repairs,
        s.shed_no_live,
    );
}

/// Prints the paper-vs-measured improvement block used by Fig. 10d/10f/11.
pub fn print_improvement(label: &str, baseline: &RunSummary, optimized: &RunSummary) {
    let med = RunSummary::improvement_pct(baseline, optimized, |s| s.p50_ms);
    let p95 = RunSummary::improvement_pct(baseline, optimized, |s| s.p95_ms);
    let p99 = RunSummary::improvement_pct(baseline, optimized, |s| s.p99_ms);
    println!("{label:<28} median={med:6.1}%  p95={p95:6.1}%  p99={p99:6.1}%");
}

/// Merges per-run engine reports and prints the one-line kernel summary
/// every bench binary ends with: total events over the longest run's wall
/// span, with summed CPU time alongside (see [`EngineReport::merge`]).
pub fn print_engine_line(reports: &[EngineReport]) {
    let mut total = EngineReport::default();
    for r in reports {
        total.merge(r);
    }
    println!("{}", total.line());
    // Under `ACTOP_COST=1` the merged per-subsystem attribution follows
    // (all-zero otherwise, in which case `table` stays silent).
    if let Some(table) = total.attr.table() {
        print!("{table}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_durations() {
        let s = HaloScenario::paper(6_000.0, 1);
        assert_eq!(s.duration(), s.warmup + s.measure);
        assert_eq!(s.servers, 10);
    }

    #[test]
    fn concurrency_parsing_accepts_positive_and_rejects_garbage() {
        assert_eq!(parse_concurrency("ACTOP_WORKERS", None), Ok(None));
        assert_eq!(parse_concurrency("ACTOP_WORKERS", Some("4")), Ok(Some(4)));
        assert!(parse_concurrency("ACTOP_WORKERS", Some("0")).is_err());
        assert!(parse_concurrency("ACTOP_SHARDS", Some("-2")).is_err());
        assert!(parse_concurrency("ACTOP_SHARDS", Some("eight")).is_err());
        let err = parse_concurrency("ACTOP_SHARDS", Some("eight")).unwrap_err();
        assert!(err.contains("ACTOP_SHARDS"), "error names the knob: {err}");
    }

    #[test]
    fn policy_parsing_accepts_known_names_and_rejects_garbage() {
        assert_eq!(parse_policy(None), Ok(None));
        assert_eq!(
            parse_policy(Some("actop")),
            Ok(Some(RepartitionPolicyKind::Exchange))
        );
        assert_eq!(
            parse_policy(Some("actop-cost")),
            Ok(Some(RepartitionPolicyKind::ExchangeCostAware))
        );
        assert_eq!(
            parse_policy(Some("dynamic")),
            Ok(Some(RepartitionPolicyKind::DynamicBalanced))
        );
        let err = parse_policy(Some("metis")).unwrap_err();
        assert!(err.contains("ACTOP_POLICY"), "error names the knob: {err}");
        assert!(err.contains("stream"), "error lists the names: {err}");
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        // Early jobs sleep longest, so completion order inverts input
        // order; the output must still match the input.
        let jobs: Vec<u64> = (0..32).collect();
        let out = parallel_map(jobs, |j| {
            std::thread::sleep(std::time::Duration::from_millis(32 - j));
            j * 10
        });
        assert_eq!(out, (0..32).map(|j| j * 10).collect::<Vec<_>>());
    }

    /// The acceptance criterion for the harness: a parallel sweep must
    /// produce byte-identical rows to running the same cells sequentially.
    #[test]
    fn sweep_matches_sequential() {
        let tiny = HaloScenario {
            players: 300,
            request_rate: 120.0,
            servers: 3,
            warmup: Nanos::from_secs(2),
            measure: Nanos::from_secs(4),
            seed: 7,
            game_duration_s: Some((20.0, 30.0)),
        };
        let cells: Vec<HaloCell> = [7u64, 8, 9]
            .iter()
            .map(|&seed| HaloCell {
                label: format!("seed{seed}"),
                scenario: HaloScenario { seed, ..tiny },
                actop: ActOpConfig::default(),
            })
            .collect();
        let sequential: Vec<(RunSummary, u64)> = cells
            .iter()
            .map(|c| {
                let (s, r, _) = run_halo(&c.scenario, &c.actop);
                (s, r.events_processed)
            })
            .collect();
        let parallel = run_halo_sweep(cells);
        assert_eq!(parallel.len(), sequential.len());
        for (p, (s, events)) in parallel.iter().zip(&sequential) {
            assert_eq!(p.summary.completed, s.completed);
            assert_eq!(p.summary.submitted, s.submitted);
            assert_eq!(p.summary.p99_ms.to_bits(), s.p99_ms.to_bits());
            assert_eq!(p.summary.mean_ms.to_bits(), s.mean_ms.to_bits());
            assert_eq!(p.report.events_processed, *events);
        }
        assert_eq!(parallel[0].label, "seed7");
        assert_eq!(parallel[2].label, "seed9");
    }
}
