//! Integerization vs ground truth: on models small enough to enumerate
//! every integer allocation, the hill-climbed integerization must land on
//! (or within one thread-swap of) the true integer optimum — and always be
//! stable and within the CPU budget.

use actop_seda::model::{SedaModel, StageParams};
use actop_seda::{continuous_allocation, integerize};
use proptest::prelude::*;

/// Per-stage thread ceiling for the exhaustive search.
const MAX_THREADS: usize = 12;

/// Small feasible models: 2-4 stages, a budget the search space covers.
fn arb_small_model() -> impl Strategy<Value = SedaModel> {
    let stage = (50.0f64..3_000.0, 400.0f64..8_000.0, 0.2f64..=1.0).prop_map(
        |(lambda, service_rate, beta)| StageParams {
            lambda,
            service_rate,
            beta,
        },
    );
    (
        proptest::collection::vec(stage, 2..5),
        4usize..=MAX_THREADS,
        1e-6f64..1e-3,
    )
        .prop_filter_map("feasible small models only", |(stages, p, eta)| {
            let model = SedaModel::new(stages, p, eta).ok()?;
            let int_min: f64 = model
                .stages
                .iter()
                .map(|s| ((s.lambda / s.service_rate).floor() + 1.0) * s.beta)
                .sum();
            (model.is_feasible() && int_min < model.processors * 0.9).then_some(model)
        })
}

/// Exhaustively minimizes the objective over `{1..=MAX_THREADS}^n` valid
/// allocations. Small models only: the space is `MAX_THREADS^n`.
fn brute_force_optimum(model: &SedaModel) -> (Vec<usize>, f64) {
    let n = model.stages.len();
    let mut t = vec![1usize; n];
    let mut best: Option<(Vec<usize>, f64)> = None;
    loop {
        let t_f: Vec<f64> = t.iter().map(|&x| x as f64).collect();
        if model.is_valid_allocation(&t_f) {
            if let Some(obj) = model.objective(&t_f) {
                if best.as_ref().is_none_or(|(_, b)| obj < *b) {
                    best = Some((t.clone(), obj));
                }
            }
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            t[i] += 1;
            if t[i] <= MAX_THREADS {
                break;
            }
            t[i] = 1;
            i += 1;
            if i == n {
                let (alloc, obj) = best.expect("feasible model has a valid allocation");
                return (alloc, obj);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Integerization matches exhaustive search: identical objective up to
    /// float noise, or an allocation within one thread-swap (L1 distance
    /// <= 2) of the argmin when the objective landscape has near-ties.
    #[test]
    fn integerize_matches_exhaustive_search(model in arb_small_model()) {
        let continuous = continuous_allocation(&model).expect("feasible");
        let ours = integerize(&model, &continuous).expect("feasible");
        let ours_f: Vec<f64> = ours.iter().map(|&x| x as f64).collect();

        // Always: stable per stage and within the CPU budget.
        prop_assert!(model.is_valid_allocation(&ours_f), "invalid: {ours:?}");
        for (i, stage) in model.stages.iter().enumerate() {
            prop_assert!(ours[i] as f64 * stage.service_rate > stage.lambda);
        }

        let ours_obj = model.objective(&ours_f).expect("valid implies stable");
        let (brute, brute_obj) = brute_force_optimum(&model);
        prop_assert!(
            ours_obj + 1e-12 >= brute_obj,
            "hill climb beat the exhaustive optimum: {ours_obj} < {brute_obj}"
        );
        let l1: usize = ours
            .iter()
            .zip(&brute)
            .map(|(&a, &b)| a.abs_diff(b))
            .sum();
        prop_assert!(
            ours_obj <= brute_obj * (1.0 + 1e-9) || l1 <= 2,
            "integerization missed the optimum by more than one swap: \
             ours {ours:?} (obj {ours_obj}) vs brute {brute:?} (obj {brute_obj}), L1 {l1}"
        );
    }
}
