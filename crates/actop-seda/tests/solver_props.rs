//! Property tests for the thread-allocation solvers.

use actop_seda::model::{SedaModel, StageParams};
use actop_seda::{allocate_threads, continuous_allocation, integerize};
use proptest::prelude::*;

/// Strategy for a random feasible model: 2-6 stages, moderate utilization.
fn arb_model() -> impl Strategy<Value = SedaModel> {
    let stage = (10.0f64..5000.0, 100.0f64..10_000.0, 0.1f64..=1.0).prop_map(
        |(lambda, service_rate, beta)| StageParams {
            lambda,
            service_rate,
            beta,
        },
    );
    (
        proptest::collection::vec(stage, 2..6),
        4usize..32,
        1e-6f64..1e-3,
    )
        .prop_filter_map("feasible models only", |(stages, p, eta)| {
            let model = SedaModel::new(stages, p, eta).ok()?;
            // Keep clear of the feasibility boundary so integer minima fit.
            let int_min: f64 = model
                .stages
                .iter()
                .map(|s| ((s.lambda / s.service_rate).floor() + 1.0) * s.beta)
                .sum();
            (model.is_feasible() && int_min < model.processors * 0.9).then_some(model)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The continuous solution satisfies both constraints of (*).
    #[test]
    fn continuous_solution_is_always_valid(model in arb_model()) {
        let t = continuous_allocation(&model).expect("feasible by construction");
        prop_assert!(model.is_valid_allocation(&t), "allocation {:?}", t);
    }

    /// First-order optimality: random single-coordinate perturbations never
    /// improve the objective (the problem is convex, so local implies
    /// global).
    #[test]
    fn continuous_solution_is_locally_optimal(
        model in arb_model(),
        idx_frac in 0.0f64..1.0,
        delta in -0.2f64..0.2,
    ) {
        let t = continuous_allocation(&model).unwrap();
        let obj = model.objective(&t).unwrap();
        let i = ((idx_frac * model.stages.len() as f64) as usize)
            .min(model.stages.len() - 1);
        let mut perturbed = t.clone();
        perturbed[i] = (perturbed[i] + delta).max(0.0);
        if model.is_valid_allocation(&perturbed) {
            if let Some(obj_p) = model.objective(&perturbed) {
                prop_assert!(
                    obj_p >= obj - 1e-7,
                    "perturbation improved objective: {} -> {} (stage {}, delta {})",
                    obj, obj_p, i, delta
                );
            }
        }
    }

    /// The integer allocation is stable, within budget, and no worse than
    /// doubling every stage's minimum (a sanity upper bound).
    #[test]
    fn integer_allocation_is_valid(model in arb_model()) {
        let t = allocate_threads(&model).expect("feasible");
        let t_f: Vec<f64> = t.iter().map(|&x| x as f64).collect();
        prop_assert!(model.is_valid_allocation(&t_f), "allocation {:?}", t);
        for (i, stage) in model.stages.iter().enumerate() {
            prop_assert!(t[i] >= 1);
            prop_assert!(
                t[i] as f64 * stage.service_rate > stage.lambda,
                "stage {i} unstable: {} threads", t[i]
            );
        }
    }

    /// Integerization never loses more than the discretization must: the
    /// integer objective is within the objective of ceil(continuous), which
    /// is itself a valid integer point when it fits the budget.
    #[test]
    fn integerization_beats_naive_ceiling(model in arb_model()) {
        let continuous = continuous_allocation(&model).unwrap();
        let ours = integerize(&model, &continuous).expect("feasible");
        let ours_f: Vec<f64> = ours.iter().map(|&x| x as f64).collect();
        let ours_obj = model.objective(&ours_f).unwrap();

        let ceil: Vec<f64> = continuous.iter().map(|c| c.ceil().max(1.0)).collect();
        if model.is_valid_allocation(&ceil) {
            if let Some(ceil_obj) = model.objective(&ceil) {
                prop_assert!(
                    ours_obj <= ceil_obj + 1e-9,
                    "hill climb worse than ceiling: {} vs {}",
                    ours_obj, ceil_obj
                );
            }
        }
    }
}
