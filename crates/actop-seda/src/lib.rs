//! Latency-optimized SEDA thread allocation (§5 of the ActOp paper).
//!
//! A SEDA server splits request processing into stages, each with a queue
//! and a dedicated thread pool. This crate implements the paper's
//! model-driven allocator end to end:
//!
//! * [`model`] — the Jackson-network latency proxy (Eq. 1), the regularized
//!   optimization problem (*), feasibility, and the `zeta` threshold.
//! * [`closed_form`] — Theorem 2's closed-form solution, the general KKT
//!   solution when the capacity constraint binds (`eta < zeta`), a
//!   projected-gradient cross-check solver, and integerization.
//! * [`estimator`] — §5.4's estimation of per-thread service rate `s_i` and
//!   CPU fraction `beta_i` from wallclock/CPU samples via the shared
//!   ready-time ratio `alpha`.
//! * [`controller`] — the ActOp model-driven controller and the
//!   queue-length threshold controller it is compared against (Fig. 7).
//! * [`emulator`] — the standalone six-stage SEDA emulator used by the
//!   paper to demonstrate queue-length-controller oscillation (Fig. 7).

pub mod closed_form;
pub mod controller;
pub mod emulator;
pub mod estimator;
pub mod model;

pub use closed_form::{allocate_threads, continuous_allocation, gradient_allocation, integerize};
pub use controller::{ModelDrivenController, QueueLengthController};
pub use emulator::{
    run_emulator, EmuController, EmuStageConfig, EmulatorConfig, EmulatorResult, StageSojourn,
};
pub use estimator::{ParamEstimator, StageObservation};
pub use model::{mm1_latency, mmc_latency, SedaError, SedaModel, StageParams};
