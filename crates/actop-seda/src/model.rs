//! The SEDA queuing model and the latency-minimization problem (*).
//!
//! Each stage `i` is modeled as an M/M/1 queue with arrival rate `lambda_i`
//! and service rate `mu_i = t_i * s_i`, where `t_i` is the stage's thread
//! count and `s_i` the per-thread service rate. The end-to-end latency proxy
//! is the expected packet delay of a Jackson network (Eq. 1):
//!
//! ```text
//! L(t) = (1 / lambda_tot) * sum_i lambda_i / (mu_i - lambda_i)
//! ```
//!
//! and the optimization problem (*) adds a thread-count regularizer
//! `eta * sum_i t_i` capturing multithreading overhead, subject to
//! stability (`mu_i > lambda_i`) and the CPU budget
//! `sum_i t_i * beta_i <= p`.

use std::fmt;

/// Workload parameters of one SEDA stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageParams {
    /// Event arrival rate, events per second.
    pub lambda: f64,
    /// Service rate per thread, events per second (`s_i = 1 / (x_i + w_i)`).
    pub service_rate: f64,
    /// Fraction of a processor one thread consumes while processing
    /// (`beta_i = x_i / (x_i + w_i)`; 1.0 for a stage with no blocking).
    pub beta: f64,
}

impl StageParams {
    /// A fully CPU-bound stage (`beta = 1`).
    pub fn cpu_bound(lambda: f64, service_rate: f64) -> Self {
        StageParams {
            lambda,
            service_rate,
            beta: 1.0,
        }
    }

    /// Minimum (fractional) threads for stability: `lambda / s`.
    pub fn min_threads(&self) -> f64 {
        self.lambda / self.service_rate
    }

    /// CPU cores this stage inherently consumes: `lambda * beta / s`.
    pub fn cpu_demand(&self) -> f64 {
        self.lambda * self.beta / self.service_rate
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), SedaError> {
        if !(self.lambda.is_finite() && self.lambda >= 0.0) {
            return Err(SedaError::InvalidParameter("lambda"));
        }
        if !(self.service_rate.is_finite() && self.service_rate > 0.0) {
            return Err(SedaError::InvalidParameter("service_rate"));
        }
        if !(self.beta.is_finite() && self.beta > 0.0 && self.beta <= 1.0) {
            return Err(SedaError::InvalidParameter("beta"));
        }
        Ok(())
    }
}

/// Errors from the SEDA model and solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SedaError {
    /// A stage parameter is out of range.
    InvalidParameter(&'static str),
    /// The total CPU demand exceeds the processor budget; no allocation can
    /// stabilize every queue.
    Infeasible,
    /// The model has no stages with positive arrival rate.
    NoLoad,
}

impl fmt::Display for SedaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SedaError::InvalidParameter(p) => write!(f, "invalid stage parameter: {p}"),
            SedaError::Infeasible => {
                write!(f, "CPU demand exceeds processors; system is infeasible")
            }
            SedaError::NoLoad => write!(f, "no stage has positive arrival rate"),
        }
    }
}

impl std::error::Error for SedaError {}

/// The full model: per-stage parameters, processor count, and the thread
/// regularizer `eta`.
#[derive(Debug, Clone, PartialEq)]
pub struct SedaModel {
    /// Per-stage workload parameters.
    pub stages: Vec<StageParams>,
    /// Number of processors `p` at the server.
    pub processors: f64,
    /// Thread-count penalty `eta`, in seconds per thread. The paper
    /// calibrates 100 µs/thread on its testbed.
    pub eta: f64,
}

/// The paper's calibrated thread penalty: 100 µs per thread.
pub const ETA_CALIBRATED: f64 = 100e-6;

impl SedaModel {
    /// Creates and validates a model.
    pub fn new(stages: Vec<StageParams>, processors: usize, eta: f64) -> Result<Self, SedaError> {
        if !(eta.is_finite() && eta > 0.0) {
            return Err(SedaError::InvalidParameter("eta"));
        }
        if processors == 0 {
            return Err(SedaError::InvalidParameter("processors"));
        }
        for stage in &stages {
            stage.validate()?;
        }
        Ok(SedaModel {
            stages,
            processors: processors as f64,
            eta,
        })
    }

    /// Total arrival rate `lambda_tot` across stages.
    pub fn lambda_tot(&self) -> f64 {
        self.stages.iter().map(|s| s.lambda).sum()
    }

    /// Total inherent CPU demand `sum_i lambda_i beta_i / s_i`.
    pub fn cpu_demand(&self) -> f64 {
        self.stages.iter().map(StageParams::cpu_demand).sum()
    }

    /// Feasibility condition of Theorem 2: `sum_i lambda_i beta_i / s_i < p`.
    pub fn is_feasible(&self) -> bool {
        self.cpu_demand() < self.processors
    }

    /// The `zeta` threshold of Theorem 2: when `eta >= zeta` the CPU budget
    /// is slack at the optimum and the closed form applies directly.
    pub fn zeta(&self) -> f64 {
        let lambda_tot = self.lambda_tot();
        if lambda_tot == 0.0 {
            return 0.0;
        }
        let headroom = self.processors - self.cpu_demand();
        if headroom <= 0.0 {
            return f64::INFINITY;
        }
        let numer: f64 = self
            .stages
            .iter()
            .map(|s| s.beta * (s.lambda / s.service_rate).sqrt())
            .sum();
        (numer / headroom).powi(2) / lambda_tot
    }

    /// The Jackson-network latency proxy (Eq. 1) in seconds for a
    /// (fractional) thread allocation, or `None` when some stage is
    /// unstable (`mu_i <= lambda_i`).
    pub fn jackson_latency(&self, threads: &[f64]) -> Option<f64> {
        assert_eq!(threads.len(), self.stages.len(), "allocation length");
        let lambda_tot = self.lambda_tot();
        if lambda_tot == 0.0 {
            return Some(0.0);
        }
        let mut sum = 0.0;
        for (stage, &t) in self.stages.iter().zip(threads) {
            if stage.lambda == 0.0 {
                continue;
            }
            let mu = t * stage.service_rate;
            if mu <= stage.lambda {
                return None;
            }
            sum += stage.lambda / (mu - stage.lambda);
        }
        Some(sum / lambda_tot)
    }

    /// The regularized objective of problem (*): Jackson latency plus
    /// `eta * sum_i t_i`. `None` when unstable.
    pub fn objective(&self, threads: &[f64]) -> Option<f64> {
        let latency = self.jackson_latency(threads)?;
        let total: f64 = threads.iter().sum();
        Some(latency + self.eta * total)
    }

    /// CPU cores consumed by an allocation: `sum_i t_i beta_i`.
    pub fn allocation_cpu(&self, threads: &[f64]) -> f64 {
        self.stages
            .iter()
            .zip(threads)
            .map(|(s, &t)| t * s.beta)
            .sum()
    }

    /// True when the allocation satisfies both the stability and CPU-budget
    /// constraints of (*).
    pub fn is_valid_allocation(&self, threads: &[f64]) -> bool {
        if threads.len() != self.stages.len() {
            return false;
        }
        let stable = self
            .stages
            .iter()
            .zip(threads)
            .all(|(s, &t)| s.lambda == 0.0 || t * s.service_rate > s.lambda);
        stable && self.allocation_cpu(threads) <= self.processors + 1e-9
    }
}

/// The M/M/1 mean latency `1 / (mu - lambda)` in seconds; `None` when
/// unstable.
pub fn mm1_latency(lambda: f64, mu: f64) -> Option<f64> {
    if mu > lambda {
        Some(1.0 / (mu - lambda))
    } else {
        None
    }
}

/// The M/M/c mean sojourn time (Erlang C): arrival rate `lambda`, `c`
/// servers of rate `s` each. `None` when unstable (`lambda >= c * s`).
///
/// The paper's Eq. 1 approximates each stage as M/M/1 with pooled rate
/// `mu = t * s`; the exact per-stage model of a thread pool is M/M/t.
/// This function quantifies the gap (small at the utilizations the
/// optimizer targets) and lets tests validate the emulator against the
/// Jackson product form exactly.
pub fn mmc_latency(lambda: f64, s: f64, c: usize) -> Option<f64> {
    if c == 0 || s <= 0.0 {
        return None;
    }
    let a = lambda / s; // Offered load in Erlangs.
    let c_f = c as f64;
    if a >= c_f {
        return None;
    }
    if lambda == 0.0 {
        return Some(1.0 / s);
    }
    let rho = a / c_f;
    // Erlang C probability of waiting.
    let mut term = 1.0; // a^k / k!, k = 0.
    let mut sum = term;
    for k in 1..c {
        term *= a / k as f64;
        sum += term;
    }
    let top = term * a / c_f / (1.0 - rho); // a^c / c! / (1 - rho).
    let p_wait = top / (sum + top);
    let wq = p_wait / (c_f * s - lambda);
    Some(wq + 1.0 / s)
}

/// The M/M/1 mean queue length `rho / (1 - rho)`; `None` when unstable.
/// This is the nonlinearity behind queue-length-controller oscillation
/// (§5.1).
pub fn mm1_queue_len(lambda: f64, mu: f64) -> Option<f64> {
    if mu > lambda && mu > 0.0 {
        let rho = lambda / mu;
        Some(rho / (1.0 - rho))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage_model() -> SedaModel {
        SedaModel::new(
            vec![
                StageParams::cpu_bound(1000.0, 2000.0),
                StageParams::cpu_bound(500.0, 1000.0),
            ],
            8,
            ETA_CALIBRATED,
        )
        .expect("valid model")
    }

    #[test]
    fn lambda_tot_and_cpu_demand() {
        let m = two_stage_model();
        assert_eq!(m.lambda_tot(), 1500.0);
        assert!((m.cpu_demand() - 1.0).abs() < 1e-12); // 0.5 + 0.5 cores.
        assert!(m.is_feasible());
    }

    #[test]
    fn jackson_latency_matches_hand_computation() {
        let m = two_stage_model();
        // t = [1, 1]: mu = [2000, 1000], waits = 1000/(1000) and 500/(500).
        let latency = m.jackson_latency(&[1.0, 1.0]).expect("stable");
        let expect = (1000.0 / 1000.0 + 500.0 / 500.0) / 1500.0;
        assert!((latency - expect).abs() < 1e-12);
    }

    #[test]
    fn unstable_allocation_is_none() {
        let m = two_stage_model();
        assert_eq!(m.jackson_latency(&[0.5, 1.0]), None); // mu_0 = 1000 = lambda_0.
        assert_eq!(m.objective(&[0.4, 1.0]), None);
    }

    #[test]
    fn more_threads_lower_latency_higher_penalty() {
        let m = two_stage_model();
        let low = m.jackson_latency(&[1.0, 1.0]).unwrap();
        let high = m.jackson_latency(&[4.0, 4.0]).unwrap();
        assert!(high < low);
        // But the objective eventually punishes thread count.
        let obj_many = m.objective(&[40.0, 40.0]);
        // 80 threads * beta 1 > 8 cores: not valid, though objective still
        // computes (the solver enforces the budget separately).
        assert!(obj_many.is_some());
        assert!(!m.is_valid_allocation(&[40.0, 40.0]));
    }

    #[test]
    fn zeta_threshold_properties() {
        let m = two_stage_model();
        let zeta = m.zeta();
        assert!(zeta > 0.0 && zeta.is_finite());
        // Shrinking the headroom (fewer processors) raises zeta.
        let tight = SedaModel::new(m.stages.clone(), 2, m.eta).unwrap();
        assert!(tight.zeta() > zeta);
    }

    #[test]
    fn zeta_infinite_when_infeasible() {
        let m = SedaModel::new(vec![StageParams::cpu_bound(10_000.0, 1000.0)], 8, 1e-4).unwrap();
        assert!(!m.is_feasible());
        assert_eq!(m.zeta(), f64::INFINITY);
    }

    #[test]
    fn blocking_stage_consumes_less_cpu() {
        let blocking = StageParams {
            lambda: 1000.0,
            service_rate: 500.0,
            beta: 0.25,
        };
        // 2 threads of inherent demand but only 0.5 core of CPU.
        assert!((blocking.min_threads() - 2.0).abs() < 1e-12);
        assert!((blocking.cpu_demand() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(StageParams {
            lambda: -1.0,
            service_rate: 10.0,
            beta: 1.0
        }
        .validate()
        .is_err());
        assert!(StageParams {
            lambda: 1.0,
            service_rate: 0.0,
            beta: 1.0
        }
        .validate()
        .is_err());
        assert!(StageParams {
            lambda: 1.0,
            service_rate: 10.0,
            beta: 1.5
        }
        .validate()
        .is_err());
        assert!(SedaModel::new(vec![], 0, 1e-4).is_err());
        assert!(SedaModel::new(vec![], 8, 0.0).is_err());
    }

    #[test]
    fn mm1_helpers() {
        assert_eq!(mm1_latency(10.0, 10.0), None);
        assert!((mm1_latency(0.0, 10.0).unwrap() - 0.1).abs() < 1e-12);
        // rho = 0.9 -> queue length 9.
        assert!((mm1_queue_len(9.0, 10.0).unwrap() - 9.0).abs() < 1e-9);
        assert_eq!(mm1_queue_len(10.0, 10.0), None);
    }

    #[test]
    fn queue_length_nonlinearity() {
        // The Fig. 7 explanation: queue length is flat at low rho and
        // explodes near 1.
        let q_low = mm1_queue_len(1.0, 10.0).unwrap();
        let q_mid = mm1_queue_len(5.0, 10.0).unwrap();
        let q_high = mm1_queue_len(9.9, 10.0).unwrap();
        assert!(q_low < 0.2);
        assert!(q_mid < 1.5);
        assert!(q_high > 90.0);
    }

    #[test]
    fn mmc_reduces_to_mm1_for_one_server() {
        let lambda = 700.0;
        let s = 1000.0;
        let mmc = mmc_latency(lambda, s, 1).unwrap();
        let mm1 = mm1_latency(lambda, s).unwrap();
        assert!((mmc - mm1).abs() < 1e-12, "mmc {mmc} vs mm1 {mm1}");
    }

    #[test]
    fn mmc_pooling_beats_mm1_approximation() {
        // At the same total capacity, c pooled servers wait less than the
        // paper's single-fast-server approximation predicts... actually the
        // single fast server (M/M/1 at mu = c*s) is the *lower* bound; the
        // M/M/c sojourn sits between it and the per-thread service time.
        let lambda = 3000.0;
        let s = 1000.0;
        let c = 4;
        let mmc = mmc_latency(lambda, s, c).unwrap();
        let pooled = mm1_latency(lambda, c as f64 * s).unwrap();
        assert!(mmc >= pooled, "mmc {mmc} < pooled bound {pooled}");
        assert!(mmc <= 1.0 / s + pooled, "mmc {mmc} too large");
    }

    #[test]
    fn mmc_unstable_and_edge_cases() {
        assert_eq!(mmc_latency(4000.0, 1000.0, 4), None);
        assert_eq!(mmc_latency(100.0, 0.0, 4), None);
        assert_eq!(mmc_latency(100.0, 1000.0, 0), None);
        assert!((mmc_latency(0.0, 1000.0, 4).unwrap() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn zero_load_model() {
        let m = SedaModel::new(vec![StageParams::cpu_bound(0.0, 100.0)], 4, 1e-4).unwrap();
        assert_eq!(m.lambda_tot(), 0.0);
        assert_eq!(m.jackson_latency(&[1.0]), Some(0.0));
        assert_eq!(m.zeta(), 0.0);
    }
}
