//! Thread-allocation controllers.
//!
//! Two controllers, matching the paper's comparison in §5.1:
//!
//! * [`QueueLengthController`] — the Welsh-style threshold heuristic the
//!   paper argues against: sample each stage's queue length; above `Th`
//!   add a thread, below `Tl` remove one. Prone to oscillation because the
//!   M/M/1 queue length responds extremely non-linearly to capacity.
//! * [`ModelDrivenController`] — ActOp's approach: estimate the queuing
//!   model online and re-solve problem (*) for all stages jointly.

use crate::closed_form::allocate_threads;
use crate::estimator::ParamEstimator;
use crate::model::{SedaError, SedaModel, StageParams};

/// The queue-length threshold controller (baseline, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueLengthController {
    /// Add a thread to any stage whose sampled queue exceeds this.
    pub high_watermark: usize,
    /// Remove a thread from any stage whose sampled queue is below this.
    pub low_watermark: usize,
    /// Lower bound per stage (the paper's controller never goes below one
    /// thread).
    pub min_threads: usize,
    /// Upper bound per stage.
    pub max_threads: usize,
}

impl QueueLengthController {
    /// The configuration used in Fig. 7: `Th = 100`, `Tl = 10`.
    pub fn paper_config() -> Self {
        QueueLengthController {
            high_watermark: 100,
            low_watermark: 10,
            min_threads: 1,
            max_threads: 64,
        }
    }

    /// One control step: given sampled queue lengths and the current
    /// allocation, returns the new allocation.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn step(&self, queue_lengths: &[usize], current: &[usize]) -> Vec<usize> {
        assert_eq!(queue_lengths.len(), current.len(), "stage count mismatch");
        queue_lengths
            .iter()
            .zip(current)
            .map(|(&q, &t)| {
                if q > self.high_watermark {
                    (t + 1).min(self.max_threads)
                } else if q < self.low_watermark {
                    t.saturating_sub(1).max(self.min_threads)
                } else {
                    t
                }
            })
            .collect()
    }
}

/// ActOp's model-driven controller: solve (*) for all stages jointly.
#[derive(Debug, Clone)]
pub struct ModelDrivenController {
    /// Thread-count penalty `eta` (seconds per thread).
    pub eta: f64,
    /// Processor count `p` of the server.
    pub processors: usize,
}

impl ModelDrivenController {
    /// Creates a controller with the given penalty and processor count.
    pub fn new(eta: f64, processors: usize) -> Self {
        ModelDrivenController { eta, processors }
    }

    /// Computes the latency-optimal integer allocation for the estimated
    /// stage parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`SedaError::Infeasible`] when the measured load cannot be
    /// stabilized with the available processors — the caller should keep the
    /// previous allocation (the server is saturated and sheds load).
    pub fn allocate(&self, stages: &[StageParams]) -> Result<Vec<usize>, SedaError> {
        let model = SedaModel::new(stages.to_vec(), self.processors, self.eta)?;
        allocate_threads(&model)
    }

    /// Convenience: allocate directly from an estimator, returning `None`
    /// while the estimator lacks data or the load is infeasible.
    pub fn allocate_from(&self, estimator: &ParamEstimator) -> Option<Vec<usize>> {
        let stages = estimator.estimate()?;
        // Stages with zero estimated arrivals are legal; the solver pins
        // them at one thread.
        self.allocate(&stages).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{StageKind, StageObservation};
    use crate::model::ETA_CALIBRATED;

    #[test]
    fn queue_controller_moves_one_thread_at_a_time() {
        let c = QueueLengthController::paper_config();
        let next = c.step(&[500, 50, 3], &[4, 4, 4]);
        assert_eq!(next, vec![5, 4, 3]);
    }

    #[test]
    fn queue_controller_respects_bounds() {
        let c = QueueLengthController {
            high_watermark: 10,
            low_watermark: 5,
            min_threads: 1,
            max_threads: 6,
        };
        assert_eq!(c.step(&[1000], &[6]), vec![6], "capped at max");
        assert_eq!(c.step(&[0], &[1]), vec![1], "floored at min");
    }

    #[test]
    fn queue_controller_oscillates_on_nonlinear_plant() {
        // A single M/M/1 stage at rho near 1: with t threads the queue is
        // long, with t+1 threads it is nearly empty. The controller must
        // bounce between the two forever — the Fig. 7 pathology in
        // miniature.
        let c = QueueLengthController::paper_config();
        let lambda = 995.0;
        let s = 500.0; // Per-thread rate: needs just under 2 threads.
        let queue_for = |threads: usize| -> usize {
            crate::model::mm1_queue_len(lambda, threads as f64 * s)
                .map(|q| q.round() as usize)
                .unwrap_or(10_000)
        };
        let mut t = 2; // rho = 0.995 -> queue ~199, above Th = 100.
        let mut seen = Vec::new();
        for _ in 0..20 {
            let q = queue_for(t);
            t = c.step(&[q], &[t])[0];
            seen.push(t);
        }
        let min = *seen.iter().min().unwrap();
        let max = *seen.iter().max().unwrap();
        assert!(max > min, "controller should oscillate, got steady {min}");
        // And it never settles: the last few samples still differ.
        let tail = &seen[seen.len() - 4..];
        assert!(tail.iter().any(|&x| x != tail[0]));
    }

    #[test]
    fn model_controller_allocates_jointly() {
        let c = ModelDrivenController::new(ETA_CALIBRATED, 8);
        let stages = vec![
            StageParams::cpu_bound(3000.0, 2000.0), // Needs ~1.5 cores.
            StageParams::cpu_bound(1000.0, 2000.0),
            StageParams::cpu_bound(500.0, 4000.0),
        ];
        let t = c.allocate(&stages).unwrap();
        assert_eq!(t.len(), 3);
        // The heavy stage gets the most threads.
        assert!(t[0] >= t[1] && t[1] >= t[2], "allocation {t:?}");
        // Valid under the model.
        let m = SedaModel::new(stages, 8, ETA_CALIBRATED).unwrap();
        let t_f: Vec<f64> = t.iter().map(|&x| x as f64).collect();
        assert!(m.is_valid_allocation(&t_f));
    }

    #[test]
    fn model_controller_propagates_infeasibility() {
        let c = ModelDrivenController::new(ETA_CALIBRATED, 2);
        let stages = vec![StageParams::cpu_bound(10_000.0, 1000.0)];
        assert_eq!(c.allocate(&stages), Err(SedaError::Infeasible));
    }

    #[test]
    fn allocate_from_estimator_waits_for_data() {
        let c = ModelDrivenController::new(ETA_CALIBRATED, 8);
        let mut est = ParamEstimator::new(vec![StageKind { blocking: false }], 1.0);
        assert_eq!(c.allocate_from(&est), None);
        est.observe(
            0,
            StageObservation {
                arrivals: 1000,
                completions: 1000,
                window_secs: 1.0,
                sum_wallclock_secs: 1.0,
                sum_cpu_secs: 1.0,
            },
        );
        let t = c.allocate_from(&est).expect("has data now");
        assert_eq!(t.len(), 1);
        assert!(t[0] >= 2, "lambda 1000 at s 1000 needs > 1 thread: {t:?}");
    }
}
