//! Online estimation of the queuing-model parameters (§5.4).
//!
//! The solver needs, per stage: the arrival rate `lambda_i`, the per-thread
//! service rate `s_i = 1 / (x_i + w_i)` and the CPU fraction
//! `beta_i = x_i / (x_i + w_i)`. Only the wallclock time `z_i` and the CPU
//! time `x_i` of event processing are measurable; the OS ready time `r_i`
//! and the synchronous-blocking time `w_i` are not (`z = x + w + r`).
//!
//! The paper's scheme: assume the ready-to-compute ratio `alpha = r_i / x_i`
//! is the same for every stage (true under fair OS scheduling — and true by
//! construction under our processor-sharing CPU model). Estimate `alpha`
//! from the stages known to perform no blocking calls (`w = 0`, so
//! `r = z - x`), then for every blocking stage take `r_j = alpha * x_j`,
//! `s_j = 1 / (z_j - r_j)` and `beta_j = x_j / (z_j - r_j)`.

use actop_metrics::Ewma;

use crate::model::StageParams;

/// One observation window for a single stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageObservation {
    /// Events that arrived during the window.
    pub arrivals: u64,
    /// Events fully processed during the window.
    pub completions: u64,
    /// Window length in seconds.
    pub window_secs: f64,
    /// Sum of per-event wallclock processing time `z`, in seconds.
    pub sum_wallclock_secs: f64,
    /// Sum of per-event CPU time `x`, in seconds.
    pub sum_cpu_secs: f64,
}

/// Per-stage static configuration for the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageKind {
    /// Whether this stage may block on synchronous calls (`w > 0`). Stages
    /// with `blocking == false` form the set `S0` used to estimate `alpha`.
    pub blocking: bool,
}

/// Estimates `lambda_i`, `s_i`, `beta_i` for every stage from a stream of
/// windowed observations.
#[derive(Debug, Clone)]
pub struct ParamEstimator {
    kinds: Vec<StageKind>,
    lambda: Vec<Ewma>,
    z: Vec<Ewma>,
    x: Vec<Ewma>,
}

impl ParamEstimator {
    /// Creates an estimator for the given stage kinds with EWMA smoothing
    /// factor `alpha_smoothing`.
    pub fn new(kinds: Vec<StageKind>, alpha_smoothing: f64) -> Self {
        let n = kinds.len();
        ParamEstimator {
            kinds,
            lambda: vec![Ewma::new(alpha_smoothing); n],
            z: vec![Ewma::new(alpha_smoothing); n],
            x: vec![Ewma::new(alpha_smoothing); n],
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.kinds.len()
    }

    /// Feeds one window of observations for stage `idx`.
    ///
    /// Windows with no completions update only the arrival rate (there is
    /// no service-time information in them).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the window length is not positive.
    pub fn observe(&mut self, idx: usize, obs: StageObservation) {
        assert!(obs.window_secs > 0.0, "window must be positive");
        self.lambda[idx].observe(obs.arrivals as f64 / obs.window_secs);
        if obs.completions > 0 {
            let z = obs.sum_wallclock_secs / obs.completions as f64;
            let x = obs.sum_cpu_secs / obs.completions as f64;
            // Wallclock can never be shorter than CPU time; guard against
            // measurement noise.
            self.z[idx].observe(z.max(x));
            self.x[idx].observe(x.max(1e-12));
        }
    }

    /// The estimated ready-time ratio `alpha`, from the non-blocking stages
    /// that have data. `None` until at least one such stage has been
    /// observed.
    pub fn alpha(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u32;
        for (i, kind) in self.kinds.iter().enumerate() {
            if kind.blocking {
                continue;
            }
            let (Some(z), Some(x)) = (self.z[i].value(), self.x[i].value()) else {
                continue;
            };
            sum += (z - x) / x;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some((sum / n as f64).max(0.0))
        }
    }

    /// Current per-stage parameter estimates, or `None` while a *loaded*
    /// stage still lacks service-time data. A stage that has never
    /// completed an event **and** has (near-)zero arrivals is idle — e.g.
    /// the server-sender stage of a single-server deployment — and gets a
    /// placeholder service rate; with `lambda = 0` the solver pins it at
    /// its one-thread minimum regardless of the placeholder.
    pub fn estimate(&self) -> Option<Vec<StageParams>> {
        let alpha = self.alpha()?;
        let mut out = Vec::with_capacity(self.kinds.len());
        for (i, kind) in self.kinds.iter().enumerate() {
            let lambda = self.lambda[i].value_or(0.0);
            let (Some(z), Some(x)) = (self.z[i].value(), self.x[i].value()) else {
                if lambda < 1.0 {
                    out.push(StageParams {
                        lambda: 0.0,
                        service_rate: 1_000.0,
                        beta: 1.0,
                    });
                    continue;
                }
                return None;
            };
            let r = if kind.blocking { alpha * x } else { z - x };
            // The busy span x + w = z - r; it can never be below x.
            let busy = (z - r).max(x);
            out.push(StageParams {
                lambda,
                service_rate: 1.0 / busy,
                beta: (x / busy).clamp(0.0, 1.0),
            });
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(arrivals: u64, completions: u64, z_each: f64, x_each: f64) -> StageObservation {
        StageObservation {
            arrivals,
            completions,
            window_secs: 1.0,
            sum_wallclock_secs: z_each * completions as f64,
            sum_cpu_secs: x_each * completions as f64,
        }
    }

    #[test]
    fn non_blocking_stage_recovers_exact_params() {
        // One non-blocking stage; z = x means no ready time, so s = 1/x and
        // beta = 1.
        let mut est = ParamEstimator::new(vec![StageKind { blocking: false }], 1.0);
        est.observe(0, obs(1000, 1000, 2e-3, 2e-3));
        assert_eq!(est.alpha(), Some(0.0));
        let params = est.estimate().unwrap();
        assert!((params[0].lambda - 1000.0).abs() < 1e-9);
        assert!((params[0].service_rate - 500.0).abs() < 1e-6);
        assert!((params[0].beta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blocking_stage_recovers_wait_time() {
        // Ground truth: x = 1 ms, w = 3 ms, ready time r = 0.5 * x for all
        // stages (alpha = 0.5).
        let alpha = 0.5;
        let x0 = 2e-3; // Non-blocking stage: z = x + r = x (1 + alpha).
        let z0 = x0 * (1.0 + alpha);
        let x1 = 1e-3;
        let w1 = 3e-3;
        let z1 = x1 + w1 + alpha * x1;
        let mut est = ParamEstimator::new(
            vec![StageKind { blocking: false }, StageKind { blocking: true }],
            1.0,
        );
        est.observe(0, obs(500, 500, z0, x0));
        est.observe(1, obs(800, 800, z1, x1));
        let got_alpha = est.alpha().unwrap();
        assert!((got_alpha - alpha).abs() < 1e-9, "alpha {got_alpha}");
        let params = est.estimate().unwrap();
        // Stage 1: s = 1/(x+w) = 250, beta = x/(x+w) = 0.25.
        assert!((params[1].service_rate - 250.0).abs() < 1e-6);
        assert!((params[1].beta - 0.25).abs() < 1e-9);
        assert!((params[1].lambda - 800.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_waits_for_loaded_stages() {
        let mut est = ParamEstimator::new(
            vec![StageKind { blocking: false }, StageKind { blocking: true }],
            0.5,
        );
        assert_eq!(est.estimate(), None, "no alpha source yet");
        est.observe(0, obs(10, 10, 1e-3, 1e-3));
        // Stage 1 has arrivals but no completions: loaded without data.
        est.observe(
            1,
            StageObservation {
                arrivals: 10,
                completions: 0,
                window_secs: 1.0,
                sum_wallclock_secs: 0.0,
                sum_cpu_secs: 0.0,
            },
        );
        assert_eq!(est.estimate(), None);
        est.observe(1, obs(10, 10, 2e-3, 1e-3));
        assert!(est.estimate().is_some());
    }

    #[test]
    fn idle_stage_gets_placeholder_params() {
        // A stage that never sees traffic (e.g. the server sender on a
        // single-server deployment) must not block estimation forever.
        let mut est = ParamEstimator::new(
            vec![StageKind { blocking: false }, StageKind { blocking: false }],
            0.5,
        );
        est.observe(0, obs(10, 10, 1e-3, 1e-3));
        let params = est.estimate().expect("idle stage defaults");
        assert_eq!(params[1].lambda, 0.0);
        assert!(params[1].service_rate > 0.0);
    }

    #[test]
    fn alpha_needs_a_nonblocking_stage() {
        let mut est = ParamEstimator::new(vec![StageKind { blocking: true }], 0.5);
        est.observe(0, obs(10, 10, 2e-3, 1e-3));
        assert_eq!(est.alpha(), None);
        assert_eq!(est.estimate(), None);
    }

    #[test]
    fn negative_wait_is_clamped() {
        // A blocking stage whose measured z is *less* than alpha would
        // imply: the busy span clamps at x, so beta = 1.
        let mut est = ParamEstimator::new(
            vec![StageKind { blocking: false }, StageKind { blocking: true }],
            1.0,
        );
        // Non-blocking stage implies alpha = 1.0.
        est.observe(0, obs(100, 100, 2e-3, 1e-3));
        // Blocking stage: z = 1.5 ms, x = 1 ms; alpha * x = 1 ms, so
        // z - r = 0.5 ms < x, which must clamp to x.
        est.observe(1, obs(100, 100, 1.5e-3, 1e-3));
        let params = est.estimate().unwrap();
        assert!((params[1].beta - 1.0).abs() < 1e-12);
        assert!((params[1].service_rate - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_smooths_noisy_windows() {
        let mut est = ParamEstimator::new(vec![StageKind { blocking: false }], 0.2);
        for i in 0..200 {
            let lambda = if i % 2 == 0 { 900 } else { 1100 };
            est.observe(0, obs(lambda, lambda, 1e-3, 1e-3));
        }
        let params = est.estimate().unwrap();
        assert!(
            (params[0].lambda - 1000.0).abs() < 50.0,
            "lambda {}",
            params[0].lambda
        );
    }

    #[test]
    fn empty_window_updates_only_lambda() {
        let mut est = ParamEstimator::new(vec![StageKind { blocking: false }], 1.0);
        est.observe(
            0,
            StageObservation {
                arrivals: 50,
                completions: 0,
                window_secs: 1.0,
                sum_wallclock_secs: 0.0,
                sum_cpu_secs: 0.0,
            },
        );
        assert_eq!(est.estimate(), None, "no service data yet");
        est.observe(0, obs(50, 50, 1e-3, 1e-3));
        let params = est.estimate().unwrap();
        assert!((params[0].lambda - 50.0).abs() < 1e-9);
    }
}
