//! The standalone multi-stage SEDA emulator (Fig. 7).
//!
//! The paper builds a six-stage SEDA emulator to show that a queue-length
//! threshold controller oscillates: queues sit empty until a stage nears
//! saturation, then explode; adding a thread flips the bottleneck to another
//! stage and the allocations never settle. This module reproduces that
//! emulator: a linear pipeline of stages, Poisson arrivals, exponential
//! per-thread service, a pluggable controller sampled on a fixed interval,
//! and per-sample traces of queue lengths and thread counts.

use actop_metrics::LatencyHistogram;
use actop_sim::{DetRng, Engine, Nanos, StagePool, StageStats};

use crate::controller::{ModelDrivenController, QueueLengthController};
use crate::estimator::{ParamEstimator, StageKind, StageObservation};

/// Configuration of one emulated stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmuStageConfig {
    /// Per-thread service rate, events per second.
    pub service_rate: f64,
    /// Threads at start.
    pub initial_threads: usize,
}

/// Which controller adjusts the thread allocation during the run.
#[derive(Debug, Clone)]
pub enum EmuController {
    /// Fixed allocation for the whole run.
    Fixed,
    /// The queue-length threshold heuristic (the Fig. 7 baseline).
    QueueLength(QueueLengthController),
    /// ActOp's model-driven allocator.
    ModelDriven(ModelDrivenController),
}

/// Emulator run configuration.
#[derive(Debug, Clone)]
pub struct EmulatorConfig {
    /// The pipeline stages, in order.
    pub stages: Vec<EmuStageConfig>,
    /// Poisson arrival rate into the first stage, events per second.
    pub arrival_rate: f64,
    /// Total simulated duration in seconds.
    pub duration_secs: f64,
    /// Controller sampling interval in seconds (the paper samples every
    /// 30 s).
    pub control_interval_secs: f64,
    /// The controller under test.
    pub controller: EmuController,
    /// Run seed.
    pub seed: u64,
}

impl EmulatorConfig {
    /// The paper's Fig. 7 setup: six stages, queue-length controller with
    /// `Th = 100`, `Tl = 10`, sampled every 30 seconds.
    ///
    /// Stage rates are chosen so several stages are near saturation at the
    /// given arrival rate, which is what makes the controller oscillate.
    pub fn fig7(arrival_rate: f64, seed: u64) -> Self {
        let rates = [
            arrival_rate / 2.6,
            arrival_rate / 2.4,
            arrival_rate / 2.8,
            arrival_rate / 2.5,
            arrival_rate / 2.7,
            arrival_rate / 2.3,
        ];
        EmulatorConfig {
            stages: rates
                .iter()
                .map(|&service_rate| EmuStageConfig {
                    service_rate,
                    initial_threads: 3,
                })
                .collect(),
            arrival_rate,
            duration_secs: 450.0,
            control_interval_secs: 30.0,
            controller: EmuController::QueueLength(QueueLengthController::paper_config()),
            seed,
        }
    }
}

/// One controller sample for one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample time in seconds.
    pub at_secs: f64,
    /// Queue length at the sample.
    pub queue_len: usize,
    /// Thread allocation after the controller acted.
    pub threads: usize,
}

/// Whole-run per-stage sojourn accounting, independent of the controller's
/// windowed statistics. This is what the analytic oracle (`actop-verify`)
/// compares against the M/M/1 / M/M/c closed forms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageSojourn {
    /// Sum of queue waits of started items, nanoseconds.
    pub total_wait_ns: f64,
    /// Sum of service times of completed items, nanoseconds.
    pub total_service_ns: f64,
    /// Items handed to a thread over the run.
    pub started: u64,
    /// Items that finished service over the run.
    pub completions: u64,
}

impl StageSojourn {
    /// Mean queue wait per started item, seconds.
    pub fn mean_wait_secs(&self) -> f64 {
        if self.started == 0 {
            0.0
        } else {
            self.total_wait_ns / self.started as f64 / 1e9
        }
    }

    /// Mean service time per completed item, seconds.
    pub fn mean_service_secs(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.total_service_ns / self.completions as f64 / 1e9
        }
    }

    /// Mean sojourn (wait + service), seconds.
    pub fn mean_sojourn_secs(&self) -> f64 {
        self.mean_wait_secs() + self.mean_service_secs()
    }
}

/// Result of an emulator run.
#[derive(Debug)]
pub struct EmulatorResult {
    /// Per-stage traces of `(time, queue length, threads)` samples.
    pub traces: Vec<Vec<Sample>>,
    /// End-to-end pipeline latency of completed events, nanoseconds.
    pub latency: LatencyHistogram,
    /// Events that left the pipeline.
    pub completed: u64,
    /// Events that entered the pipeline.
    pub arrived: u64,
    /// Whole-run per-stage wait/service sums (never reset by controllers).
    pub stage_sojourn: Vec<StageSojourn>,
    /// Per-stage statistics drained at the end of the run. With the `Fixed`
    /// controller nothing drains mid-run, so these cover the whole run and
    /// `mean_busy() / threads` is the measured utilization; the
    /// `ModelDriven` controller drains every control tick, leaving only the
    /// final window here.
    pub final_stats: Vec<StageStats>,
}

impl EmulatorResult {
    /// Peak-to-trough thread swing per stage — an oscillation measure used
    /// by the Fig. 7 bench (steady controllers have swing 0 after warmup).
    pub fn thread_swing(&self, warmup_samples: usize) -> Vec<usize> {
        self.traces
            .iter()
            .map(|trace| {
                let tail: Vec<usize> = trace
                    .iter()
                    .skip(warmup_samples)
                    .map(|s| s.threads)
                    .collect();
                match (tail.iter().max(), tail.iter().min()) {
                    (Some(&max), Some(&min)) => max - min,
                    _ => 0,
                }
            })
            .collect()
    }

    /// Number of controller samples whose queue exceeded `threshold`, per
    /// stage.
    pub fn queue_spikes(&self, threshold: usize) -> Vec<usize> {
        self.traces
            .iter()
            .map(|t| t.iter().filter(|s| s.queue_len > threshold).count())
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    created: Nanos,
}

struct EmuWorld {
    stages: Vec<StagePool<Job>>,
    service_rates: Vec<f64>,
    rng: DetRng,
    arrival_rate: f64,
    end: Nanos,
    latency: LatencyHistogram,
    completed: u64,
    arrived: u64,
    controller: EmuController,
    estimator: ParamEstimator,
    /// Per-stage service-time sums for the current controller window.
    win_service_secs: Vec<f64>,
    win_completions: Vec<u64>,
    /// Whole-run per-stage accounting for the analytic oracle.
    sojourn: Vec<StageSojourn>,
    traces: Vec<Vec<Sample>>,
}

fn service_time(world: &mut EmuWorld, stage: usize) -> Nanos {
    let mean = 1.0 / world.service_rates[stage];
    Nanos::from_secs_f64(world.rng.exp(mean))
}

/// Starts as many queued jobs as the stage's free threads allow.
fn dispatch(world: &mut EmuWorld, engine: &mut Engine<EmuWorld>, stage: usize) {
    let now = engine.now();
    while let Some((job, wait)) = world.stages[stage].try_start(now) {
        world.sojourn[stage].total_wait_ns += wait.as_nanos() as f64;
        world.sojourn[stage].started += 1;
        let dur = service_time(world, stage);
        engine.schedule_after(dur, move |w: &mut EmuWorld, eng| {
            complete(w, eng, stage, job, dur);
        });
    }
}

fn complete(
    world: &mut EmuWorld,
    engine: &mut Engine<EmuWorld>,
    stage: usize,
    job: Job,
    dur: Nanos,
) {
    let now = engine.now();
    world.stages[stage].finish(now);
    world.win_service_secs[stage] += dur.as_secs_f64();
    world.win_completions[stage] += 1;
    world.sojourn[stage].total_service_ns += dur.as_nanos() as f64;
    world.sojourn[stage].completions += 1;
    let next = stage + 1;
    if next < world.stages.len() {
        world.stages[next].push(now, job);
        dispatch(world, engine, next);
    } else {
        world.completed += 1;
        world.latency.record((now - job.created).as_nanos());
    }
    dispatch(world, engine, stage);
}

fn arrival(world: &mut EmuWorld, engine: &mut Engine<EmuWorld>) {
    let now = engine.now();
    world.arrived += 1;
    world.stages[0].push(now, Job { created: now });
    dispatch(world, engine, 0);
    let gap = Nanos::from_secs_f64(world.rng.exp(1.0 / world.arrival_rate));
    if now + gap < world.end {
        engine.schedule_after(gap, arrival);
    }
}

fn control_tick(world: &mut EmuWorld, engine: &mut Engine<EmuWorld>, interval: Nanos) {
    let now = engine.now();
    let queue_lens: Vec<usize> = world.stages.iter().map(StagePool::queue_len).collect();
    let current: Vec<usize> = world.stages.iter().map(StagePool::threads).collect();

    let next_alloc = match &world.controller {
        EmuController::Fixed => current.clone(),
        EmuController::QueueLength(c) => c.step(&queue_lens, &current),
        EmuController::ModelDriven(c) => {
            // Feed this window's observations, then re-solve.
            for i in 0..world.stages.len() {
                let stats = world.stages[i].drain_stats(now);
                let completions = world.win_completions[i];
                world.estimator.observe(
                    i,
                    StageObservation {
                        arrivals: stats.arrivals,
                        completions,
                        window_secs: stats.window.as_secs_f64().max(1e-9),
                        sum_wallclock_secs: world.win_service_secs[i],
                        sum_cpu_secs: world.win_service_secs[i],
                    },
                );
            }
            c.allocate_from(&world.estimator).unwrap_or(current.clone())
        }
    };
    world.win_service_secs.iter_mut().for_each(|v| *v = 0.0);
    world.win_completions.iter_mut().for_each(|v| *v = 0);

    for (i, (&threads, trace)) in next_alloc.iter().zip(world.traces.iter_mut()).enumerate() {
        world.stages[i].set_threads(now, threads);
        trace.push(Sample {
            at_secs: now.as_secs_f64(),
            queue_len: queue_lens[i],
            threads,
        });
    }
    // New threads may unblock queued work immediately.
    for i in 0..world.stages.len() {
        dispatch(world, engine, i);
    }
    if now + interval < world.end {
        engine.schedule_after(interval, move |w: &mut EmuWorld, eng| {
            control_tick(w, eng, interval);
        });
    }
}

/// Runs the emulator to completion and returns the traces.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no stages, non-positive
/// rates or durations).
pub fn run_emulator(config: &EmulatorConfig) -> EmulatorResult {
    assert!(!config.stages.is_empty(), "emulator needs stages");
    assert!(config.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(config.duration_secs > 0.0, "duration must be positive");
    assert!(
        config.control_interval_secs > 0.0,
        "control interval must be positive"
    );
    let n = config.stages.len();
    let mut world = EmuWorld {
        stages: config
            .stages
            .iter()
            .map(|s| StagePool::new("emu", s.initial_threads))
            .collect(),
        service_rates: config.stages.iter().map(|s| s.service_rate).collect(),
        rng: DetRng::stream(config.seed, 0xE5),
        arrival_rate: config.arrival_rate,
        end: Nanos::from_secs_f64(config.duration_secs),
        latency: LatencyHistogram::new(),
        completed: 0,
        arrived: 0,
        controller: config.controller.clone(),
        estimator: ParamEstimator::new(vec![StageKind { blocking: false }; n], 0.5),
        win_service_secs: vec![0.0; n],
        win_completions: vec![0; n],
        sojourn: vec![StageSojourn::default(); n],
        traces: vec![Vec::new(); n],
    };
    let mut engine: Engine<EmuWorld> = Engine::new();
    let interval = Nanos::from_secs_f64(config.control_interval_secs);
    engine.schedule(Nanos::ZERO, arrival);
    engine.schedule(interval, move |w: &mut EmuWorld, eng| {
        control_tick(w, eng, interval);
    });
    let end = world.end;
    engine.run_until(&mut world, end);
    let final_stats = world
        .stages
        .iter_mut()
        .map(|s| s.drain_stats(end))
        .collect();
    EmulatorResult {
        traces: world.traces,
        latency: world.latency,
        completed: world.completed,
        arrived: world.arrived,
        stage_sojourn: world.sojourn,
        final_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ETA_CALIBRATED;

    fn short_config(controller: EmuController) -> EmulatorConfig {
        EmulatorConfig {
            stages: vec![
                EmuStageConfig {
                    service_rate: 400.0,
                    initial_threads: 3,
                },
                EmuStageConfig {
                    service_rate: 450.0,
                    initial_threads: 3,
                },
                EmuStageConfig {
                    service_rate: 380.0,
                    initial_threads: 3,
                },
            ],
            arrival_rate: 1000.0,
            duration_secs: 120.0,
            control_interval_secs: 5.0,
            controller,
            seed: 42,
        }
    }

    #[test]
    fn fixed_run_completes_events() {
        let result = run_emulator(&short_config(EmuController::Fixed));
        assert!(result.arrived > 100_000, "arrived {}", result.arrived);
        assert!(result.completed > 0);
        assert!(result.completed <= result.arrived);
        assert!(result.latency.count() == result.completed);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_emulator(&short_config(EmuController::Fixed));
        let b = run_emulator(&short_config(EmuController::Fixed));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
    }

    #[test]
    fn traces_are_recorded_per_interval() {
        let result = run_emulator(&short_config(EmuController::Fixed));
        assert_eq!(result.traces.len(), 3);
        // 120 s at 5 s interval: samples at 5..115 -> 23 samples.
        assert_eq!(result.traces[0].len(), 23);
        assert!(result.traces[0][0].at_secs > 4.9);
    }

    #[test]
    fn queue_controller_oscillates_model_driven_settles() {
        // Under-provisioned start: the queue controller chases the moving
        // bottleneck; the model-driven controller computes one joint
        // allocation and sticks close to it.
        let queue = run_emulator(&short_config(EmuController::QueueLength(
            QueueLengthController::paper_config(),
        )));
        let model = run_emulator(&short_config(EmuController::ModelDriven(
            ModelDrivenController::new(ETA_CALIBRATED, 64),
        )));
        let queue_swing: usize = queue.thread_swing(6).iter().sum();
        let model_swing: usize = model.thread_swing(6).iter().sum();
        assert!(
            model_swing < queue_swing,
            "model-driven should be steadier: {model_swing} vs {queue_swing}"
        );
        // And it should actually keep up with the load.
        assert!(model.completed as f64 > 0.9 * model.arrived as f64);
    }

    #[test]
    fn model_driven_achieves_lower_latency_than_undersized_fixed() {
        let fixed = run_emulator(&short_config(EmuController::Fixed));
        let model = run_emulator(&short_config(EmuController::ModelDriven(
            ModelDrivenController::new(ETA_CALIBRATED, 64),
        )));
        assert!(
            model.latency.quantile(0.99) < fixed.latency.quantile(0.99),
            "model p99 {} vs fixed p99 {}",
            model.latency.quantile(0.99),
            fixed.latency.quantile(0.99)
        );
    }

    #[test]
    fn emulator_matches_jackson_product_form() {
        // The emulator *is* a Jackson network (Poisson arrivals,
        // exponential service, probabilistic-free tandem routing), so its
        // measured mean pipeline latency must match the sum of per-stage
        // M/M/c sojourn times. This validates both the emulator and the
        // paper's Eq. 1 modeling choice.
        let lambda = 800.0;
        let config = EmulatorConfig {
            stages: vec![
                EmuStageConfig {
                    service_rate: 500.0,
                    initial_threads: 3,
                },
                EmuStageConfig {
                    service_rate: 300.0,
                    initial_threads: 4,
                },
                EmuStageConfig {
                    service_rate: 1_000.0,
                    initial_threads: 2,
                },
            ],
            arrival_rate: lambda,
            duration_secs: 300.0,
            control_interval_secs: 60.0,
            controller: EmuController::Fixed,
            seed: 123,
        };
        let result = run_emulator(&config);
        let measured = result.latency.mean() / 1e9;
        let analytic: f64 = [(500.0, 3), (300.0, 4), (1_000.0, 2)]
            .iter()
            .map(|&(s, c)| crate::model::mmc_latency(lambda, s, c).expect("stable"))
            .sum();
        let err = (measured - analytic).abs() / analytic;
        assert!(
            err < 0.05,
            "measured {measured:.6}s vs analytic {analytic:.6}s (err {err:.3})"
        );
        // The per-stage sojourn decomposition must sum back to the
        // end-to-end mean (small slack: in-flight jobs at the horizon).
        let per_stage: f64 = result
            .stage_sojourn
            .iter()
            .map(StageSojourn::mean_sojourn_secs)
            .sum();
        let decomp_err = (per_stage - measured).abs() / measured;
        assert!(
            decomp_err < 0.02,
            "sojourn decomposition {per_stage:.6}s vs e2e {measured:.6}s"
        );
        // Measured utilization from the busy integral: lambda/(s*c).
        for (i, &(s, c)) in [(500.0f64, 3usize), (300.0, 4), (1_000.0, 2)]
            .iter()
            .enumerate()
        {
            let rho = result.final_stats[i].mean_busy() / c as f64;
            let want = lambda / (s * c as f64);
            assert!(
                (rho - want).abs() < 0.03,
                "stage {i}: measured rho {rho:.3} vs analytic {want:.3}"
            );
        }
    }

    #[test]
    fn fig7_config_shape() {
        let cfg = EmulatorConfig::fig7(1000.0, 7);
        assert_eq!(cfg.stages.len(), 6);
        assert!(matches!(cfg.controller, EmuController::QueueLength(_)));
        assert_eq!(cfg.control_interval_secs, 30.0);
    }
}
