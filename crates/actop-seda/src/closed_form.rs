//! Solvers for the latency-minimization problem (*).
//!
//! Theorem 2: when the system is feasible and `eta >= zeta`, the optimum of
//! (*) is
//!
//! ```text
//! t_i = lambda_i / s_i + sqrt(lambda_i / (lambda_tot * eta * s_i))
//! ```
//!
//! When `eta < zeta` the CPU budget binds. The problem stays convex; the
//! first-order (KKT) conditions give the same form with `eta` replaced by
//! `eta + nu * beta_i` for the budget multiplier `nu >= 0`, and `nu` is
//! found by bisection on the (monotone) budget residual. A
//! projected-gradient solver is included as an independent cross-check used
//! by the test suite and the solver-ablation bench.
//!
//! Real servers need whole threads: [`integerize`] converts the continuous
//! optimum into an integer allocation with a deterministic local search
//! that preserves stability and the CPU budget.

use crate::model::{SedaError, SedaModel};

/// Continuous thread allocation for a given budget multiplier `nu`.
fn allocation_for_nu(model: &SedaModel, nu: f64) -> Vec<f64> {
    let lambda_tot = model.lambda_tot();
    model
        .stages
        .iter()
        .map(|s| {
            if s.lambda == 0.0 {
                0.0
            } else {
                s.lambda / s.service_rate
                    + (s.lambda / (lambda_tot * (model.eta + nu * s.beta) * s.service_rate)).sqrt()
            }
        })
        .collect()
}

/// The continuous optimum of (*): Theorem 2's closed form when the CPU
/// budget is slack (`eta >= zeta`), otherwise the KKT solution with the
/// budget multiplier found by bisection.
///
/// # Errors
///
/// Returns [`SedaError::Infeasible`] when `sum_i lambda_i beta_i / s_i >= p`
/// and [`SedaError::NoLoad`] when every stage has zero arrivals.
pub fn continuous_allocation(model: &SedaModel) -> Result<Vec<f64>, SedaError> {
    for stage in &model.stages {
        stage.validate()?;
    }
    if !model.is_feasible() {
        return Err(SedaError::Infeasible);
    }
    if model.lambda_tot() == 0.0 {
        return Err(SedaError::NoLoad);
    }
    // Theorem 2 case: budget slack at nu = 0.
    let unconstrained = allocation_for_nu(model, 0.0);
    if model.allocation_cpu(&unconstrained) <= model.processors {
        return Ok(unconstrained);
    }
    // Budget binds: bisect nu so that sum_i beta_i t_i(nu) = p. The budget
    // usage is strictly decreasing in nu and tends to the inherent CPU
    // demand (< p by feasibility) as nu -> infinity.
    let mut lo = 0.0;
    let mut hi = model.eta.max(1e-12);
    while model.allocation_cpu(&allocation_for_nu(model, hi)) > model.processors {
        hi *= 2.0;
        assert!(hi.is_finite(), "budget bisection diverged");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if model.allocation_cpu(&allocation_for_nu(model, mid)) > model.processors {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(allocation_for_nu(model, hi))
}

/// Projected-gradient solver for (*); an independent cross-check of
/// [`continuous_allocation`]. Converges to the same optimum (the problem is
/// convex) but much more slowly, which is exactly the paper's argument for
/// deriving the closed form.
pub fn gradient_allocation(model: &SedaModel, iterations: usize) -> Result<Vec<f64>, SedaError> {
    if !model.is_feasible() {
        return Err(SedaError::Infeasible);
    }
    let lambda_tot = model.lambda_tot();
    if lambda_tot == 0.0 {
        return Err(SedaError::NoLoad);
    }
    let n = model.stages.len();
    // Stability lower bounds with a safety margin.
    let lower: Vec<f64> = model
        .stages
        .iter()
        .map(|s| {
            if s.lambda == 0.0 {
                0.0
            } else {
                s.lambda / s.service_rate * 1.000_001 + 1e-9
            }
        })
        .collect();

    // Start from a feasible interior point: spread the headroom evenly.
    let headroom = model.processors - model.allocation_cpu(&lower);
    let beta_sum: f64 = model.stages.iter().map(|s| s.beta).sum();
    let mut t: Vec<f64> = lower
        .iter()
        .zip(&model.stages)
        .map(|(&lb, _s)| lb + 0.5 * headroom / beta_sum.max(1e-12))
        .collect();
    project(model, &lower, &mut t);

    for iter in 0..iterations {
        let step = 1e-3 / (1.0 + iter as f64).sqrt();
        let grad: Vec<f64> = model
            .stages
            .iter()
            .zip(&t)
            .map(|(s, &ti)| {
                if s.lambda == 0.0 {
                    model.eta
                } else {
                    let mu = ti * s.service_rate;
                    -(s.lambda * s.service_rate) / (lambda_tot * (mu - s.lambda).powi(2))
                        + model.eta
                }
            })
            .collect();
        // Normalized gradient step to make step sizes scale-free.
        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt().max(1e-12);
        for i in 0..n {
            t[i] -= step * grad[i] / norm * model.processors;
        }
        project(model, &lower, &mut t);
    }
    Ok(t)
}

/// Euclidean projection onto `{t : t >= lower, sum_i beta_i t_i <= p}`.
fn project(model: &SedaModel, lower: &[f64], t: &mut [f64]) {
    for (ti, &lb) in t.iter_mut().zip(lower) {
        *ti = ti.max(lb);
    }
    if model.allocation_cpu(t) <= model.processors {
        return;
    }
    // Water-filling: t_i' = max(lower_i, t_i - mu * beta_i) with mu chosen
    // by bisection so the budget is met with equality.
    let betas: Vec<f64> = model.stages.iter().map(|s| s.beta).collect();
    let usage = |mu: f64, t: &[f64]| -> f64 {
        t.iter()
            .zip(lower)
            .zip(&betas)
            .map(|((&ti, &lb), &b)| (ti - mu * b).max(lb) * b)
            .sum()
    };
    let mut lo = 0.0;
    let mut hi = 1.0;
    while usage(hi, t) > model.processors {
        hi *= 2.0;
        if hi > 1e18 {
            break; // Lower bounds alone exceed the budget; nothing to do.
        }
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if usage(mid, t) > model.processors {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    for ((ti, &lb), &b) in t.iter_mut().zip(lower).zip(&betas) {
        *ti = (*ti - hi * b).max(lb);
    }
}

/// Converts a continuous allocation into whole threads.
///
/// Starts from the rounded continuous optimum clamped to per-stage
/// stability minima, restores the CPU budget by removing the threads whose
/// loss hurts least, then hill-climbs with single-thread moves (add, drop,
/// and shift between stages) until no move improves the objective. The
/// search is deterministic.
///
/// # Errors
///
/// Returns [`SedaError::Infeasible`] when even the per-stage minimum
/// allocation exceeds the CPU budget.
pub fn integerize(model: &SedaModel, continuous: &[f64]) -> Result<Vec<usize>, SedaError> {
    assert_eq!(continuous.len(), model.stages.len(), "allocation length");
    let n = model.stages.len();
    // Integer stability minima: smallest t with t * s > lambda, at least 1.
    let minima: Vec<usize> = model
        .stages
        .iter()
        .map(|s| {
            let mut t = (s.lambda / s.service_rate).floor() as usize + 1;
            if (t as f64) * s.service_rate <= s.lambda {
                t += 1;
            }
            t.max(1)
        })
        .collect();
    let as_f64 = |t: &[usize]| t.iter().map(|&x| x as f64).collect::<Vec<f64>>();
    if model.allocation_cpu(&as_f64(&minima)) > model.processors + 1e-9 {
        return Err(SedaError::Infeasible);
    }

    let mut t: Vec<usize> = continuous
        .iter()
        .zip(&minima)
        .map(|(&c, &lb)| (c.round() as usize).max(lb))
        .collect();

    // Shed threads (cheapest first) until the budget holds.
    while model.allocation_cpu(&as_f64(&t)) > model.processors + 1e-9 {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            if t[i] <= minima[i] {
                continue;
            }
            t[i] -= 1;
            let obj = model.objective(&as_f64(&t)).unwrap_or(f64::INFINITY);
            t[i] += 1;
            if best.is_none_or(|(_, b)| obj < b) {
                best = Some((i, obj));
            }
        }
        match best {
            Some((i, _)) => t[i] -= 1,
            None => return Err(SedaError::Infeasible),
        }
    }

    // Hill-climb: single-thread add/drop/shift moves.
    let mut current = model
        .objective(&as_f64(&t))
        .expect("stable by construction");
    loop {
        let mut best: Option<(Vec<usize>, f64)> = None;
        let consider = |cand: Vec<usize>, best: &mut Option<(Vec<usize>, f64)>| {
            if model.allocation_cpu(&as_f64(&cand)) > model.processors + 1e-9 {
                return;
            }
            if let Some(obj) = model.objective(&as_f64(&cand)) {
                if obj < current - 1e-15 && best.as_ref().is_none_or(|(_, b)| obj < *b) {
                    *best = Some((cand, obj));
                }
            }
        };
        for i in 0..n {
            let mut add = t.clone();
            add[i] += 1;
            consider(add, &mut best);
            if t[i] > minima[i] {
                let mut drop = t.clone();
                drop[i] -= 1;
                consider(drop, &mut best);
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let mut shift = t.clone();
                    shift[i] -= 1;
                    shift[j] += 1;
                    consider(shift, &mut best);
                }
            }
        }
        match best {
            Some((cand, obj)) => {
                t = cand;
                current = obj;
            }
            None => break,
        }
    }
    Ok(t)
}

/// End-to-end solve: continuous optimum (Theorem 2 / KKT) followed by
/// integerization. This is what the runtime controller calls.
pub fn allocate_threads(model: &SedaModel) -> Result<Vec<usize>, SedaError> {
    let continuous = continuous_allocation(model)?;
    integerize(model, &continuous)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StageParams, ETA_CALIBRATED};

    fn model(stages: Vec<StageParams>, p: usize, eta: f64) -> SedaModel {
        SedaModel::new(stages, p, eta).expect("valid model")
    }

    #[test]
    fn theorem2_formula_when_budget_slack() {
        let m = model(
            vec![
                StageParams::cpu_bound(1000.0, 4000.0),
                StageParams::cpu_bound(2000.0, 5000.0),
            ],
            16,
            ETA_CALIBRATED,
        );
        assert!(m.eta >= m.zeta(), "test intends the slack-budget case");
        let t = continuous_allocation(&m).unwrap();
        let lambda_tot = m.lambda_tot();
        for (i, s) in m.stages.iter().enumerate() {
            let expect = s.lambda / s.service_rate
                + (s.lambda / (lambda_tot * m.eta * s.service_rate)).sqrt();
            assert!(
                (t[i] - expect).abs() < 1e-12,
                "stage {i}: got {} expect {expect}",
                t[i]
            );
        }
    }

    #[test]
    fn kkt_case_meets_budget_exactly() {
        // Tiny eta forces enormous unconstrained allocations, so the CPU
        // budget must bind.
        let m = model(
            vec![
                StageParams::cpu_bound(1000.0, 2000.0),
                StageParams::cpu_bound(1500.0, 2500.0),
            ],
            4,
            1e-9,
        );
        assert!(m.eta < m.zeta());
        let t = continuous_allocation(&m).unwrap();
        let used = m.allocation_cpu(&t);
        assert!(
            (used - m.processors).abs() < 1e-6,
            "budget should bind: used {used} of {}",
            m.processors
        );
        assert!(m.is_valid_allocation(&t));
    }

    #[test]
    fn infeasible_model_is_rejected() {
        let m = model(vec![StageParams::cpu_bound(10_000.0, 1000.0)], 4, 1e-4);
        assert_eq!(continuous_allocation(&m), Err(SedaError::Infeasible));
        assert_eq!(allocate_threads(&m), Err(SedaError::Infeasible));
    }

    #[test]
    fn no_load_is_rejected() {
        let m = model(vec![StageParams::cpu_bound(0.0, 1000.0)], 4, 1e-4);
        assert_eq!(continuous_allocation(&m), Err(SedaError::NoLoad));
    }

    #[test]
    fn gradient_agrees_with_closed_form() {
        let m = model(
            vec![
                StageParams::cpu_bound(800.0, 3000.0),
                StageParams::cpu_bound(1200.0, 2500.0),
                StageParams {
                    lambda: 400.0,
                    service_rate: 900.0,
                    beta: 0.4,
                },
            ],
            8,
            ETA_CALIBRATED,
        );
        let closed = continuous_allocation(&m).unwrap();
        let grad = gradient_allocation(&m, 20_000).unwrap();
        let obj_closed = m.objective(&closed).unwrap();
        let obj_grad = m.objective(&grad).unwrap();
        assert!(
            obj_grad >= obj_closed - 1e-9,
            "closed form should be optimal: {obj_closed} vs {obj_grad}"
        );
        assert!(
            (obj_grad - obj_closed) / obj_closed < 0.02,
            "gradient should approach the optimum: {obj_closed} vs {obj_grad}"
        );
    }

    #[test]
    fn gradient_agrees_in_kkt_case() {
        let m = model(
            vec![
                StageParams::cpu_bound(1000.0, 2000.0),
                StageParams::cpu_bound(1500.0, 2500.0),
            ],
            4,
            1e-9,
        );
        let closed = continuous_allocation(&m).unwrap();
        let grad = gradient_allocation(&m, 20_000).unwrap();
        let obj_closed = m.objective(&closed).unwrap();
        let obj_grad = m.objective(&grad).unwrap();
        assert!((obj_grad - obj_closed).abs() / obj_closed < 0.05);
    }

    #[test]
    fn integer_allocation_is_valid_and_near_brute_force() {
        let m = model(
            vec![
                StageParams::cpu_bound(900.0, 1000.0),
                StageParams::cpu_bound(400.0, 800.0),
                StageParams::cpu_bound(900.0, 1500.0),
            ],
            8,
            ETA_CALIBRATED,
        );
        let t = allocate_threads(&m).unwrap();
        let t_f: Vec<f64> = t.iter().map(|&x| x as f64).collect();
        assert!(m.is_valid_allocation(&t_f), "allocation {t:?}");
        let ours = m.objective(&t_f).unwrap();

        // Brute force over all integer allocations within the budget.
        let mut best = f64::INFINITY;
        for a in 1..=8usize {
            for b in 1..=8usize {
                for c in 1..=8usize {
                    let cand = [a as f64, b as f64, c as f64];
                    if m.allocation_cpu(&cand) > m.processors {
                        continue;
                    }
                    if let Some(obj) = m.objective(&cand) {
                        best = best.min(obj);
                    }
                }
            }
        }
        assert!(
            ours <= best * 1.001,
            "local search {ours} vs brute force {best}"
        );
    }

    #[test]
    fn higher_eta_allocates_fewer_threads() {
        let stages = vec![
            StageParams::cpu_bound(500.0, 2000.0),
            StageParams::cpu_bound(700.0, 2500.0),
        ];
        let lean = continuous_allocation(&model(stages.clone(), 8, 1e-3)).unwrap();
        let rich = continuous_allocation(&model(stages, 8, 1e-5)).unwrap();
        let total_lean: f64 = lean.iter().sum();
        let total_rich: f64 = rich.iter().sum();
        assert!(total_lean < total_rich);
    }

    #[test]
    fn blocking_stage_gets_more_threads_same_cpu() {
        // Two stages with equal lambda and compute time x, but one waits on
        // synchronous calls (w > 0): the blocking stage must get more
        // threads (the paper's §5.2 requirement).
        let x = 1.0 / 2000.0; // 0.5 ms of compute.
        let w = 3.0 * x; // 1.5 ms of blocking wait.
        let compute_only = StageParams::cpu_bound(1000.0, 1.0 / x);
        let blocking = StageParams {
            lambda: 1000.0,
            service_rate: 1.0 / (x + w),
            beta: x / (x + w),
        };
        let m = model(vec![compute_only, blocking], 8, ETA_CALIBRATED);
        let t = allocate_threads(&m).unwrap();
        assert!(t[1] > t[0], "blocking stage should get more threads: {t:?}");
    }

    #[test]
    fn integerize_respects_stability_minimum() {
        // lambda/s = 2.999...: needs at least 3 threads.
        let m = model(vec![StageParams::cpu_bound(2999.0, 1000.0)], 8, 1e-4);
        let t = allocate_threads(&m).unwrap();
        assert!(t[0] >= 3);
        assert!(t[0] as f64 * 1000.0 > 2999.0);
    }

    #[test]
    fn zero_lambda_stage_gets_one_thread() {
        let m = model(
            vec![
                StageParams::cpu_bound(1000.0, 2000.0),
                StageParams::cpu_bound(0.0, 2000.0),
            ],
            8,
            ETA_CALIBRATED,
        );
        let t = allocate_threads(&m).unwrap();
        assert_eq!(t[1], 1, "idle stage keeps its minimum thread: {t:?}");
    }
}
