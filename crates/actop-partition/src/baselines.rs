//! Placement and partitioning baselines.
//!
//! * [`random_partition`] — Orleans' default policy (§3): uniform random
//!   server per actor. Balanced in expectation, oblivious to communication.
//! * [`hash_partition`] — consistent-hash-style placement as used by
//!   key-value stores; deterministic but equally communication-oblivious.
//! * [`one_sided_sweep`] — the §4.2 design alternative the paper rules out:
//!   every server unilaterally migrates its best candidates from a stale
//!   snapshot, with no responder coordination. Races (both endpoints of a
//!   heavy edge migrating past each other) and imbalance follow.
//! * [`centralized_refine`] — a centralized greedy refinement with full
//!   graph knowledge, standing in for the METIS-class comparator: good
//!   quality, but requires the entire graph at one place.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use actop_sim::DetRng;

use crate::config::PartitionConfig;
use crate::driver::local_view;
use crate::graph::{CommGraph, Partition};
use crate::score::{candidate_set, transfer_scores};

/// Places every vertex on a uniformly random server (Orleans' default).
pub fn random_partition<V>(vertices: &[V], servers: usize, rng: &mut DetRng) -> Partition<V>
where
    V: Copy + Eq + Hash + Ord,
{
    let mut partition = Partition::new(servers);
    for &v in vertices {
        partition.place(v, rng.below(servers));
    }
    partition
}

/// Places every vertex by hashing its identity.
pub fn hash_partition<V>(vertices: &[V], servers: usize) -> Partition<V>
where
    V: Copy + Eq + Hash + Ord,
{
    let mut partition = Partition::new(servers);
    for &v in vertices {
        let mut hasher = DefaultHasher::new();
        v.hash(&mut hasher);
        partition.place(v, (hasher.finish() % servers as u64) as usize);
    }
    partition
}

/// One sweep of uncoordinated unilateral migration: every server computes
/// its candidate sets from the *same pre-sweep snapshot* and migrates its
/// top candidates without asking the destination. Returns the number of
/// migrations.
///
/// This models the racy design alternative of §4.2: because decisions are
/// simultaneous, both endpoints of a heavy edge can swap servers and stay
/// remote, and destinations can be overloaded because no one accounts for
/// concurrent inflows.
pub fn one_sided_sweep<V>(
    graph: &CommGraph<V>,
    partition: &mut Partition<V>,
    config: &PartitionConfig,
) -> usize
where
    V: Copy + Eq + Hash + Ord,
{
    let servers = partition.servers();
    // Snapshot the assignment: all servers decide from the same stale view.
    let snapshot = partition.clone();
    let mut moves: Vec<(V, usize)> = Vec::new();
    for p in 0..servers {
        let view = local_view(graph, &snapshot, p);
        let sets = candidate_set(&view, p, servers, config.candidate_set_size, |v| {
            snapshot.server_of(v)
        });
        // Take each vertex's single best destination; dedupe across sets.
        let mut best: actop_sketch::FxHashMap<V, (i64, usize)> = actop_sketch::FxHashMap::default();
        for (q, set) in sets.iter().enumerate() {
            for c in set {
                let entry = best.entry(c.vertex).or_insert((c.score, q));
                if c.score > entry.0 {
                    *entry = (c.score, q);
                }
            }
        }
        let mut chosen: Vec<(V, i64, usize)> =
            best.into_iter().map(|(v, (s, q))| (v, s, q)).collect();
        chosen.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        chosen.truncate(config.candidate_set_size);
        moves.extend(chosen.into_iter().map(|(v, _, q)| (v, q)));
    }
    for (v, q) in &moves {
        partition.migrate(v, *q);
    }
    moves.len()
}

/// Streaming placement (Stanton & Kliot, KDD'12 — reference \[31\] of the
/// paper): vertices arrive one at a time and are placed greedily on the
/// server maximizing `(weight of edges to that server) * (1 - load
/// fraction)` — the *linear weighted deterministic greedy* heuristic. A
/// single pass, no migration; good initial cuts, but static: it cannot
/// follow a changing graph, which is the paper's argument for continuous
/// re-partitioning.
pub fn streaming_greedy<V>(
    graph: &CommGraph<V>,
    arrival_order: &[V],
    servers: usize,
    capacity_per_server: usize,
) -> Partition<V>
where
    V: Copy + Eq + Hash + Ord,
{
    let mut partition = Partition::new(servers);
    for &v in arrival_order {
        let mut weight_to: Vec<u64> = vec![0; servers];
        for (peer, w) in graph.neighbors(&v) {
            if let Some(s) = partition.server_of(&peer) {
                weight_to[s] += w;
            }
        }
        let mut best = 0usize;
        let mut best_score = f64::MIN;
        for (s, &wt) in weight_to.iter().enumerate() {
            let load = partition.sizes()[s] as f64 / capacity_per_server.max(1) as f64;
            if load >= 1.0 {
                continue;
            }
            let score = wt as f64 * (1.0 - load) + (1.0 - load) * 1e-6;
            if score > best_score {
                best_score = score;
                best = s;
            }
        }
        partition.place(v, best);
    }
    partition
}

/// Centralized greedy refinement with full graph knowledge: repeatedly
/// applies the best single-vertex move (highest positive transfer score)
/// that respects the pairwise balance constraint, until none exists or
/// `max_moves` is reached. Returns the number of moves applied.
pub fn centralized_refine<V>(
    graph: &CommGraph<V>,
    partition: &mut Partition<V>,
    delta: usize,
    max_moves: usize,
) -> usize
where
    V: Copy + Eq + Hash + Ord,
{
    let servers = partition.servers();
    let mut applied = 0;
    while applied < max_moves {
        let mut best: Option<(V, usize, i64)> = None;
        let sizes = partition.sizes().to_vec();
        for v in graph.vertices() {
            let Some(home) = partition.server_of(&v) else {
                continue;
            };
            let edges = graph.neighbors(&v);
            let scores = transfer_scores(&edges, home, servers, |u| partition.server_of(u));
            for (q, &score) in scores.iter().enumerate() {
                if q == home || score <= 0 {
                    continue;
                }
                let diff = (sizes[home] as i64 - 1 - (sizes[q] as i64 + 1)).abs();
                if diff > delta as i64 {
                    continue;
                }
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((v, q, score));
                }
            }
        }
        match best {
            Some((v, q, _)) => {
                partition.migrate(&v, q);
                applied += 1;
            }
            None => break,
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_graph(n: u32) -> CommGraph<u32> {
        let mut g = CommGraph::new();
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 5);
        }
        g
    }

    #[test]
    fn random_partition_is_roughly_balanced() {
        let vertices: Vec<u32> = (0..10_000).collect();
        let mut rng = DetRng::new(1);
        let p = random_partition(&vertices, 10, &mut rng);
        for &size in p.sizes() {
            assert!((800..1200).contains(&size), "size {size}");
        }
    }

    #[test]
    fn hash_partition_is_deterministic() {
        let vertices: Vec<u32> = (0..1000).collect();
        let a = hash_partition(&vertices, 7);
        let b = hash_partition(&vertices, 7);
        for v in &vertices {
            assert_eq!(a.server_of(v), b.server_of(v));
        }
        assert!(a.max_imbalance() < 200, "imbalance {}", a.max_imbalance());
    }

    #[test]
    fn random_cut_of_clustered_graph_is_bad() {
        // Sanity for the §3 claim: with random placement, ~(n-1)/n of
        // edges inside tight groups are remote.
        let mut g = CommGraph::new();
        for group in 0..100u32 {
            let base = group * 8;
            for a in 0..8 {
                for b in (a + 1)..8 {
                    g.add_edge(base + a, base + b, 1);
                }
            }
        }
        let mut rng = DetRng::new(2);
        let p = random_partition(&g.vertices(), 10, &mut rng);
        let cut = g.cut_cost(&p) as f64 / g.total_weight() as f64;
        assert!(cut > 0.8, "remote fraction {cut}");
    }

    #[test]
    fn one_sided_sweep_moves_but_can_thrash() {
        // A heavy pair split across servers: both servers try to send
        // their endpoint to the other in the same sweep — the edge stays
        // remote. This is the §4.2 race.
        let mut g = CommGraph::new();
        g.add_edge(1u32, 2, 100);
        // Ballast so balance is not the binding issue.
        for v in 10..14 {
            g.add_vertex(v);
        }
        let mut p = Partition::new(2);
        p.place(1, 0);
        p.place(2, 1);
        p.place(10, 0);
        p.place(11, 1);
        p.place(12, 0);
        p.place(13, 1);
        let before = g.cut_cost(&p);
        let moves = one_sided_sweep(&g, &mut p, &PartitionConfig::for_tests());
        assert_eq!(moves, 2, "both endpoints moved");
        // They crossed: the edge is still cut.
        assert_eq!(g.cut_cost(&p), before);
        assert_ne!(p.server_of(&1), p.server_of(&2));
    }

    #[test]
    fn centralized_refine_cuts_cost_and_respects_balance() {
        let g = ring_graph(32);
        let mut rng = DetRng::new(3);
        let vertices = g.vertices();
        let mut p = Partition::new(4);
        for &v in &vertices {
            p.place(v, rng.below(4));
        }
        let before = g.cut_cost(&p);
        let initial_imbalance = p.max_imbalance();
        centralized_refine(&g, &mut p, 4, 10_000);
        let after = g.cut_cost(&p);
        assert!(after < before, "{before} -> {after}");
        // Refinement must not worsen balance beyond delta from any pair it
        // touched; globally it should stay in the same ballpark.
        assert!(p.max_imbalance() <= initial_imbalance.max(4) + 2);
    }

    #[test]
    fn streaming_greedy_beats_random_on_clustered_graph() {
        let mut g = CommGraph::new();
        for group in 0..50u32 {
            let base = group * 8;
            for a in 0..8 {
                for b in (a + 1)..8 {
                    g.add_edge(base + a, base + b, 3);
                }
            }
        }
        let order = g.vertices(); // Clustered arrival order: cliques together.
        let servers = 4;
        let capacity = order.len() / servers + 8;
        let streamed = streaming_greedy(&g, &order, servers, capacity);
        let mut rng = DetRng::new(9);
        let random = random_partition(&order, servers, &mut rng);
        assert!(
            g.cut_cost(&streamed) < g.cut_cost(&random) / 2,
            "streamed {} vs random {}",
            g.cut_cost(&streamed),
            g.cut_cost(&random)
        );
        // Capacity respected.
        assert!(streamed.sizes().iter().all(|&s| s <= capacity));
    }

    #[test]
    fn streaming_greedy_balances_when_graph_is_edgeless() {
        let mut g = CommGraph::new();
        for v in 0..100u32 {
            g.add_vertex(v);
        }
        let order = g.vertices();
        let p = streaming_greedy(&g, &order, 4, 25);
        assert_eq!(p.sizes().iter().sum::<usize>(), 100);
        assert!(p.max_imbalance() <= 4, "sizes {:?}", p.sizes());
    }

    #[test]
    fn centralized_refine_honors_move_budget() {
        let g = ring_graph(64);
        let mut rng = DetRng::new(4);
        let mut p = Partition::new(4);
        for &v in &g.vertices() {
            p.place(v, rng.below(4));
        }
        let applied = centralized_refine(&g, &mut p, 4, 3);
        assert!(applied <= 3);
    }
}
