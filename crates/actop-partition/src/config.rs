//! Tunables of the partitioning algorithm.

/// Configuration of the pairwise coordination protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Candidate-set size `k`: the maximum number of vertices offered in
    /// one exchange. Limits per-round migration churn (§4.1) and bounds the
    /// protocol's message size.
    pub candidate_set_size: usize,
    /// Imbalance tolerance `delta`: after any exchange,
    /// `| |V_p| - |V_q| | <= delta` must hold for the participating pair.
    pub imbalance_tolerance: usize,
    /// Minimum interval between exchanges *accepted by* a server, in
    /// nanoseconds (the paper rejects partners that exchanged less than a
    /// minute ago).
    pub exchange_cooldown_ns: u64,
    /// Only propose exchanges whose anticipated total score is at least
    /// this (scores are in edge-weight units).
    pub min_total_score: i64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            candidate_set_size: 64,
            imbalance_tolerance: 16,
            exchange_cooldown_ns: 60_000_000_000, // One minute, as in §4.2.
            min_total_score: 1,
        }
    }
}

impl PartitionConfig {
    /// A configuration for small unit-test graphs.
    pub fn for_tests() -> Self {
        PartitionConfig {
            candidate_set_size: 8,
            imbalance_tolerance: 2,
            exchange_cooldown_ns: 0,
            min_total_score: 1,
        }
    }
}

/// Tracks when a server last participated in an exchange, implementing the
/// §4.2 cooldown rejection.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangeThrottle {
    last_exchange_ns: Option<u64>,
}

impl ExchangeThrottle {
    /// True when an exchange at `now_ns` would violate the cooldown.
    pub fn should_reject(&self, now_ns: u64, cooldown_ns: u64) -> bool {
        match self.last_exchange_ns {
            Some(last) => now_ns.saturating_sub(last) < cooldown_ns,
            None => false,
        }
    }

    /// Records that an exchange happened at `now_ns`.
    pub fn record(&mut self, now_ns: u64) {
        self.last_exchange_ns = Some(now_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PartitionConfig::default();
        assert_eq!(c.exchange_cooldown_ns, 60 * 1_000_000_000);
        assert!(c.candidate_set_size > 0);
    }

    #[test]
    fn throttle_rejects_within_cooldown() {
        let mut t = ExchangeThrottle::default();
        assert!(!t.should_reject(0, 100));
        t.record(50);
        assert!(t.should_reject(100, 100));
        assert!(!t.should_reject(151, 100));
    }

    #[test]
    fn zero_cooldown_never_rejects() {
        let mut t = ExchangeThrottle::default();
        t.record(10);
        assert!(!t.should_reject(10, 0));
    }
}
