//! A dense, hash-free actor directory for the runtime's routing path.
//!
//! [`Partition`] keeps a generic `HashMap`-backed assignment for arbitrary
//! vertex types — right for the static-graph experiments and tests, wrong
//! for the per-message `server_of` lookup the live runtime performs on
//! every delivery. [`DenseDirectory`] exploits the structure of the
//! runtime's `u64` actor-id space: ids are dense within a small number of
//! aligned bands (e.g. the Halo workload packs players at `0..P` and game
//! actors at `2^40..`), so the directory stores one flat `Vec<u32>` of
//! server slots per touched 2^24-id *region* and resolves a lookup with a
//! short linear scan over the region list (one or two predictable
//! compares in practice) plus an array index — no hashing anywhere.
//!
//! Region slot arrays grow geometrically to the highest offset actually
//! placed, so memory is proportional to the populated span of each band,
//! and steady-state lookups never allocate.
//!
//! Hot-actor **replication** rides on top of the primary assignment: an
//! actor may carry extra read-only activations (*replicas*) on other
//! servers, stored in a side table keyed by actor id. The side table is
//! empty in every run that never splits an actor, and
//! [`DenseDirectory::has_replicas`] lets the routing hot path skip it with
//! one branch. `sizes()` and `vertices_on()` intentionally count
//! *primaries only* — the balance constraint the partitioner enforces is
//! over primary activations; replicas are load-shedding clones managed by
//! the replication agent.
//!
//! [`Partition`]: crate::Partition

use actop_sketch::fxmap::FxHashMap;

/// Ids per region: regions are aligned `2^24`-id windows of the `u64`
/// actor-id space. Large enough that any realistic band (millions of
/// players, a churning game-id counter) spans a handful of regions; small
/// enough that the slot array of a sparsely-populated band stays modest.
const REGION_BITS: u32 = 24;
const REGION_SPAN: u64 = 1 << REGION_BITS;

/// Slot value marking an unassigned id.
const VACANT: u32 = u32::MAX;

/// One aligned window of the id space with a flat assignment table.
#[derive(Debug, Clone)]
struct Region {
    /// Region number: `id >> REGION_BITS`.
    page: u64,
    /// `slots[id & (REGION_SPAN - 1)]` = hosting server, or [`VACANT`].
    /// Sized to the highest offset placed so far, growing geometrically.
    slots: Vec<u32>,
}

/// A vertex-to-server assignment over a dense `u64` id space with
/// per-server size accounting. API-compatible with [`crate::Partition`]
/// where the runtime uses it; `server_of` is O(regions) compares + one
/// array read instead of a hash.
#[derive(Debug, Clone)]
pub struct DenseDirectory {
    /// Touched regions, sorted by `page` (so full scans are id-ordered).
    regions: Vec<Region>,
    sizes: Vec<usize>,
    assigned: usize,
    /// Replica activations: actor id -> hosting servers, sorted ascending,
    /// never containing the primary. Empty for every unsplit actor, so the
    /// routing hot path pays one `is_empty` branch when replication is off.
    replicas: FxHashMap<u64, Vec<u32>>,
    /// Total replica activations across all actors (the obs gauge).
    replica_total: usize,
}

impl DenseDirectory {
    /// Creates an empty directory over `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(
            servers < VACANT as usize,
            "server count must fit in a u32 slot"
        );
        DenseDirectory {
            regions: Vec::new(),
            sizes: vec![0; servers],
            assigned: 0,
            replicas: FxHashMap::default(),
            replica_total: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.sizes.len()
    }

    /// Number of assigned vertices.
    pub fn vertex_count(&self) -> usize {
        self.assigned
    }

    /// The slot for `id`, if its region exists and is grown that far.
    #[inline]
    fn slot(&self, id: u64) -> Option<u32> {
        let page = id >> REGION_BITS;
        let offset = (id & (REGION_SPAN - 1)) as usize;
        for region in &self.regions {
            if region.page == page {
                return region.slots.get(offset).copied();
            }
        }
        None
    }

    /// The region for `id`, created (and its slot array grown to cover
    /// `id`) on demand.
    fn region_mut(&mut self, id: u64) -> &mut Region {
        let page = id >> REGION_BITS;
        let offset = (id & (REGION_SPAN - 1)) as usize;
        let idx = match self.regions.iter().position(|r| r.page == page) {
            Some(idx) => idx,
            None => {
                let at = self.regions.partition_point(|r| r.page < page);
                self.regions.insert(
                    at,
                    Region {
                        page,
                        slots: Vec::new(),
                    },
                );
                at
            }
        };
        let region = &mut self.regions[idx];
        if region.slots.len() <= offset {
            // Geometric growth keeps placement amortized O(1) per id.
            let target = (offset + 1)
                .max(region.slots.len() * 2)
                .min(REGION_SPAN as usize);
            region.slots.resize(target, VACANT);
        }
        region
    }

    /// Assigns a new vertex to a server.
    ///
    /// # Panics
    ///
    /// Panics if the vertex is already assigned or the server is out of
    /// range.
    pub fn place(&mut self, v: u64, server: usize) {
        assert!(server < self.sizes.len(), "server out of range");
        let offset = (v & (REGION_SPAN - 1)) as usize;
        let region = self.region_mut(v);
        let slot = &mut region.slots[offset];
        assert!(*slot == VACANT, "vertex already assigned");
        *slot = server as u32;
        self.sizes[server] += 1;
        self.assigned += 1;
    }

    /// Moves a vertex to another server (no-op when already there).
    ///
    /// # Panics
    ///
    /// Panics if the vertex is unassigned or the server is out of range.
    pub fn migrate(&mut self, v: u64, to: usize) {
        assert!(to < self.sizes.len(), "server out of range");
        assert!(
            !self.replica_hosted(v, to),
            "primary migrated onto a replica's server"
        );
        let offset = (v & (REGION_SPAN - 1)) as usize;
        let region = self.region_mut(v);
        let slot = &mut region.slots[offset];
        assert!(*slot != VACANT, "vertex not assigned");
        let from = *slot as usize;
        if from == to {
            return;
        }
        *slot = to as u32;
        self.sizes[from] -= 1;
        self.sizes[to] += 1;
    }

    /// Removes a vertex (e.g. a departed actor). No-op when unassigned.
    /// Any replica activations die with the primary: a removed entry means
    /// the actor's state is gone (crash or deactivation), and replicas are
    /// read-only clones of that state.
    pub fn remove(&mut self, v: u64) {
        if !self.replicas.is_empty() {
            if let Some(reps) = self.replicas.remove(&v) {
                self.replica_total -= reps.len();
            }
        }
        let page = v >> REGION_BITS;
        let offset = (v & (REGION_SPAN - 1)) as usize;
        for region in &mut self.regions {
            if region.page != page {
                continue;
            }
            if let Some(slot) = region.slots.get_mut(offset) {
                if *slot != VACANT {
                    self.sizes[*slot as usize] -= 1;
                    self.assigned -= 1;
                    *slot = VACANT;
                }
            }
            return;
        }
    }

    /// The server of a vertex, if assigned. This is the per-message
    /// routing lookup: a short region scan plus an array index.
    #[inline]
    pub fn server_of(&self, v: u64) -> Option<usize> {
        match self.slot(v) {
            Some(VACANT) | None => None,
            Some(s) => Some(s as usize),
        }
    }

    /// Number of vertices on each server.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The vertices on `server`, in ascending id order (regions are kept
    /// page-sorted and scanned in offset order).
    pub fn vertices_on(&self, server: usize) -> Vec<u64> {
        let want = server as u32;
        let mut out = Vec::new();
        for region in &self.regions {
            let base = region.page << REGION_BITS;
            for (offset, &slot) in region.slots.iter().enumerate() {
                if slot == want {
                    out.push(base + offset as u64);
                }
            }
        }
        out
    }

    /// The largest pairwise size difference `max_p,q ||V_p| - |V_q||`.
    pub fn max_imbalance(&self) -> usize {
        let max = self.sizes.iter().copied().max().unwrap_or(0);
        let min = self.sizes.iter().copied().min().unwrap_or(0);
        max - min
    }

    // ------------------------------------------------------------------
    // Replica activations (hot-actor splits).
    // ------------------------------------------------------------------

    /// Whether *any* actor currently has replicas. One branch; the routing
    /// hot path checks this before touching the replica table at all.
    #[inline]
    pub fn has_replicas(&self) -> bool {
        !self.replicas.is_empty()
    }

    /// Total replica activations across all actors.
    pub fn replica_count(&self) -> usize {
        self.replica_total
    }

    /// Whether `v` has at least one replica activation.
    #[inline]
    pub fn is_replicated(&self, v: u64) -> bool {
        !self.replicas.is_empty() && self.replicas.contains_key(&v)
    }

    /// The replica servers of `v`, sorted ascending (never the primary).
    /// Empty for unsplit actors.
    #[inline]
    pub fn replicas_of(&self, v: u64) -> &[u32] {
        if self.replicas.is_empty() {
            return &[];
        }
        self.replicas.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Whether `server` hosts a replica activation of `v`.
    #[inline]
    pub fn replica_hosted(&self, v: u64, server: usize) -> bool {
        if self.replicas.is_empty() {
            return false;
        }
        self.replicas
            .get(&v)
            .is_some_and(|reps| reps.binary_search(&(server as u32)).is_ok())
    }

    /// Adds a replica activation of `v` on `server`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unassigned, `server` is the primary or already a
    /// replica, or `server` is out of range — replica lifecycle bugs are
    /// protocol errors, not recoverable conditions.
    pub fn add_replica(&mut self, v: u64, server: usize) {
        assert!(server < self.sizes.len(), "server out of range");
        let primary = self.server_of(v).expect("replica of an unassigned vertex");
        assert!(primary != server, "replica on the primary's server");
        let reps = self.replicas.entry(v).or_default();
        let at = reps
            .binary_search(&(server as u32))
            .expect_err("replica already present");
        reps.insert(at, server as u32);
        self.replica_total += 1;
    }

    /// Drops the replica activation of `v` on `server`. Returns whether a
    /// replica was actually present (a no-op drop returns `false`, so
    /// crash cleanup can sweep unconditionally).
    pub fn drop_replica(&mut self, v: u64, server: usize) -> bool {
        if self.replicas.is_empty() {
            return false;
        }
        let Some(reps) = self.replicas.get_mut(&v) else {
            return false;
        };
        let Ok(at) = reps.binary_search(&(server as u32)) else {
            return false;
        };
        reps.remove(at);
        self.replica_total -= 1;
        if reps.is_empty() {
            self.replicas.remove(&v);
        }
        true
    }

    /// The replicated actors whose *primary* is on `server`, sorted
    /// ascending. Iterates the replica table (small: hot actors only),
    /// not the directory, so detection ticks stay cheap at 10^6 actors.
    pub fn replicated_primaried_on(&self, server: usize) -> Vec<u64> {
        if self.replicas.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<u64> = self
            .replicas
            .keys()
            .copied()
            .filter(|&v| self.server_of(v) == Some(server))
            .collect();
        out.sort_unstable();
        out
    }

    /// The actors with a replica activation on `server`, sorted ascending.
    pub fn replicas_on(&self, server: usize) -> Vec<u64> {
        if self.replicas.is_empty() {
            return Vec::new();
        }
        let want = server as u32;
        let mut out: Vec<u64> = self
            .replicas
            .iter()
            .filter(|(_, reps)| reps.binary_search(&want).is_ok())
            .map(|(&v, _)| v)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_lookup_remove_roundtrip() {
        let mut d = DenseDirectory::new(3);
        d.place(0, 0);
        d.place(5, 1);
        d.place(1 << 40, 2); // A second band, far from the first.
        assert_eq!(d.server_of(0), Some(0));
        assert_eq!(d.server_of(5), Some(1));
        assert_eq!(d.server_of(1 << 40), Some(2));
        assert_eq!(d.server_of(6), None);
        assert_eq!(d.server_of((1 << 40) + 1), None);
        assert_eq!(d.sizes(), &[1, 1, 1]);
        assert_eq!(d.vertex_count(), 3);
        d.remove(5);
        assert_eq!(d.server_of(5), None);
        assert_eq!(d.sizes(), &[1, 0, 1]);
        assert_eq!(d.vertex_count(), 2);
        d.remove(5); // no-op
        d.remove(999); // never assigned, no-op
        assert_eq!(d.vertex_count(), 2);
    }

    #[test]
    fn migrate_tracks_sizes() {
        let mut d = DenseDirectory::new(3);
        d.place(1, 0);
        d.place(2, 0);
        d.migrate(1, 2);
        assert_eq!(d.sizes(), &[1, 0, 1]);
        assert_eq!(d.server_of(1), Some(2));
        d.migrate(1, 2); // no-op
        assert_eq!(d.sizes(), &[1, 0, 1]);
        assert_eq!(d.max_imbalance(), 1);
    }

    #[test]
    fn vertices_on_is_sorted_across_bands() {
        let mut d = DenseDirectory::new(2);
        for v in [5u64, 1, (1 << 40) + 3, 9, 1 << 40] {
            d.place(v, 0);
        }
        assert_eq!(d.vertices_on(0), vec![1, 5, 9, 1 << 40, (1 << 40) + 3]);
        assert!(d.vertices_on(1).is_empty());
    }

    #[test]
    fn regions_stay_page_sorted() {
        let mut d = DenseDirectory::new(1);
        d.place(1 << 40, 0); // High band first.
        d.place(3, 0);
        d.place(1 << 30, 0);
        assert_eq!(d.vertices_on(0), vec![3, 1 << 30, 1 << 40]);
    }

    #[test]
    #[should_panic(expected = "vertex already assigned")]
    fn double_place_panics() {
        let mut d = DenseDirectory::new(2);
        d.place(1, 0);
        d.place(1, 1);
    }

    #[test]
    #[should_panic(expected = "vertex not assigned")]
    fn migrate_unassigned_panics() {
        let mut d = DenseDirectory::new(2);
        d.migrate(1, 0);
    }

    #[test]
    fn replica_roundtrip_and_sorted_views() {
        let mut d = DenseDirectory::new(4);
        d.place(7, 0);
        d.place(9, 1);
        assert!(!d.has_replicas());
        assert_eq!(d.replicas_of(7), &[] as &[u32]);
        d.add_replica(7, 3);
        d.add_replica(7, 1);
        d.add_replica(9, 3);
        assert!(d.has_replicas());
        assert_eq!(d.replica_count(), 3);
        assert_eq!(d.replicas_of(7), &[1, 3]);
        assert!(d.replica_hosted(7, 3));
        assert!(!d.replica_hosted(7, 0), "primary is not a replica");
        assert_eq!(d.replicas_on(3), vec![7, 9]);
        assert_eq!(d.replicas_on(2), Vec::<u64>::new());
        // Sizes stay primaries-only: replicas are not balance mass.
        assert_eq!(d.sizes(), &[1, 1, 0, 0]);
        assert!(d.drop_replica(7, 1));
        assert!(!d.drop_replica(7, 1), "second drop is a no-op");
        assert_eq!(d.replicas_of(7), &[3]);
        assert_eq!(d.replica_count(), 2);
        assert!(d.is_replicated(7));
        d.drop_replica(7, 3);
        assert!(!d.is_replicated(7));
        assert!(d.has_replicas(), "actor 9 still split");
    }

    #[test]
    fn remove_purges_replicas_with_the_primary() {
        let mut d = DenseDirectory::new(3);
        d.place(5, 0);
        d.add_replica(5, 1);
        d.add_replica(5, 2);
        d.remove(5);
        assert_eq!(d.server_of(5), None);
        assert!(!d.has_replicas());
        assert_eq!(d.replica_count(), 0);
    }

    #[test]
    #[should_panic(expected = "replica on the primary's server")]
    fn replica_on_primary_panics() {
        let mut d = DenseDirectory::new(2);
        d.place(1, 0);
        d.add_replica(1, 0);
    }

    #[test]
    #[should_panic(expected = "replica already present")]
    fn double_replica_panics() {
        let mut d = DenseDirectory::new(3);
        d.place(1, 0);
        d.add_replica(1, 2);
        d.add_replica(1, 2);
    }

    #[test]
    #[should_panic(expected = "replica of an unassigned vertex")]
    fn replica_of_unassigned_panics() {
        let mut d = DenseDirectory::new(2);
        d.add_replica(1, 1);
    }

    #[test]
    #[should_panic(expected = "primary migrated onto a replica's server")]
    fn migrate_onto_replica_panics() {
        let mut d = DenseDirectory::new(3);
        d.place(1, 0);
        d.add_replica(1, 2);
        d.migrate(1, 2);
    }

    #[test]
    fn geometric_growth_covers_high_offsets() {
        let mut d = DenseDirectory::new(2);
        d.place(0, 0);
        d.place(100_000, 1);
        assert_eq!(d.server_of(100_000), Some(1));
        assert_eq!(d.server_of(99_999), None);
        assert_eq!(d.vertex_count(), 2);
    }
}
