//! A dense, hash-free actor directory for the runtime's routing path.
//!
//! [`Partition`] keeps a generic `HashMap`-backed assignment for arbitrary
//! vertex types — right for the static-graph experiments and tests, wrong
//! for the per-message `server_of` lookup the live runtime performs on
//! every delivery. [`DenseDirectory`] exploits the structure of the
//! runtime's `u64` actor-id space: ids are dense within a small number of
//! aligned bands (e.g. the Halo workload packs players at `0..P` and game
//! actors at `2^40..`), so the directory stores one flat `Vec<u32>` of
//! server slots per touched 2^24-id *region* and resolves a lookup with a
//! short linear scan over the region list (one or two predictable
//! compares in practice) plus an array index — no hashing anywhere.
//!
//! Region slot arrays grow geometrically to the highest offset actually
//! placed, so memory is proportional to the populated span of each band,
//! and steady-state lookups never allocate.
//!
//! [`Partition`]: crate::Partition

/// Ids per region: regions are aligned `2^24`-id windows of the `u64`
/// actor-id space. Large enough that any realistic band (millions of
/// players, a churning game-id counter) spans a handful of regions; small
/// enough that the slot array of a sparsely-populated band stays modest.
const REGION_BITS: u32 = 24;
const REGION_SPAN: u64 = 1 << REGION_BITS;

/// Slot value marking an unassigned id.
const VACANT: u32 = u32::MAX;

/// One aligned window of the id space with a flat assignment table.
#[derive(Debug, Clone)]
struct Region {
    /// Region number: `id >> REGION_BITS`.
    page: u64,
    /// `slots[id & (REGION_SPAN - 1)]` = hosting server, or [`VACANT`].
    /// Sized to the highest offset placed so far, growing geometrically.
    slots: Vec<u32>,
}

/// A vertex-to-server assignment over a dense `u64` id space with
/// per-server size accounting. API-compatible with [`crate::Partition`]
/// where the runtime uses it; `server_of` is O(regions) compares + one
/// array read instead of a hash.
#[derive(Debug, Clone)]
pub struct DenseDirectory {
    /// Touched regions, sorted by `page` (so full scans are id-ordered).
    regions: Vec<Region>,
    sizes: Vec<usize>,
    assigned: usize,
}

impl DenseDirectory {
    /// Creates an empty directory over `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(
            servers < VACANT as usize,
            "server count must fit in a u32 slot"
        );
        DenseDirectory {
            regions: Vec::new(),
            sizes: vec![0; servers],
            assigned: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.sizes.len()
    }

    /// Number of assigned vertices.
    pub fn vertex_count(&self) -> usize {
        self.assigned
    }

    /// The slot for `id`, if its region exists and is grown that far.
    #[inline]
    fn slot(&self, id: u64) -> Option<u32> {
        let page = id >> REGION_BITS;
        let offset = (id & (REGION_SPAN - 1)) as usize;
        for region in &self.regions {
            if region.page == page {
                return region.slots.get(offset).copied();
            }
        }
        None
    }

    /// The region for `id`, created (and its slot array grown to cover
    /// `id`) on demand.
    fn region_mut(&mut self, id: u64) -> &mut Region {
        let page = id >> REGION_BITS;
        let offset = (id & (REGION_SPAN - 1)) as usize;
        let idx = match self.regions.iter().position(|r| r.page == page) {
            Some(idx) => idx,
            None => {
                let at = self.regions.partition_point(|r| r.page < page);
                self.regions.insert(
                    at,
                    Region {
                        page,
                        slots: Vec::new(),
                    },
                );
                at
            }
        };
        let region = &mut self.regions[idx];
        if region.slots.len() <= offset {
            // Geometric growth keeps placement amortized O(1) per id.
            let target = (offset + 1)
                .max(region.slots.len() * 2)
                .min(REGION_SPAN as usize);
            region.slots.resize(target, VACANT);
        }
        region
    }

    /// Assigns a new vertex to a server.
    ///
    /// # Panics
    ///
    /// Panics if the vertex is already assigned or the server is out of
    /// range.
    pub fn place(&mut self, v: u64, server: usize) {
        assert!(server < self.sizes.len(), "server out of range");
        let offset = (v & (REGION_SPAN - 1)) as usize;
        let region = self.region_mut(v);
        let slot = &mut region.slots[offset];
        assert!(*slot == VACANT, "vertex already assigned");
        *slot = server as u32;
        self.sizes[server] += 1;
        self.assigned += 1;
    }

    /// Moves a vertex to another server (no-op when already there).
    ///
    /// # Panics
    ///
    /// Panics if the vertex is unassigned or the server is out of range.
    pub fn migrate(&mut self, v: u64, to: usize) {
        assert!(to < self.sizes.len(), "server out of range");
        let offset = (v & (REGION_SPAN - 1)) as usize;
        let region = self.region_mut(v);
        let slot = &mut region.slots[offset];
        assert!(*slot != VACANT, "vertex not assigned");
        let from = *slot as usize;
        if from == to {
            return;
        }
        *slot = to as u32;
        self.sizes[from] -= 1;
        self.sizes[to] += 1;
    }

    /// Removes a vertex (e.g. a departed actor). No-op when unassigned.
    pub fn remove(&mut self, v: u64) {
        let page = v >> REGION_BITS;
        let offset = (v & (REGION_SPAN - 1)) as usize;
        for region in &mut self.regions {
            if region.page != page {
                continue;
            }
            if let Some(slot) = region.slots.get_mut(offset) {
                if *slot != VACANT {
                    self.sizes[*slot as usize] -= 1;
                    self.assigned -= 1;
                    *slot = VACANT;
                }
            }
            return;
        }
    }

    /// The server of a vertex, if assigned. This is the per-message
    /// routing lookup: a short region scan plus an array index.
    #[inline]
    pub fn server_of(&self, v: u64) -> Option<usize> {
        match self.slot(v) {
            Some(VACANT) | None => None,
            Some(s) => Some(s as usize),
        }
    }

    /// Number of vertices on each server.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The vertices on `server`, in ascending id order (regions are kept
    /// page-sorted and scanned in offset order).
    pub fn vertices_on(&self, server: usize) -> Vec<u64> {
        let want = server as u32;
        let mut out = Vec::new();
        for region in &self.regions {
            let base = region.page << REGION_BITS;
            for (offset, &slot) in region.slots.iter().enumerate() {
                if slot == want {
                    out.push(base + offset as u64);
                }
            }
        }
        out
    }

    /// The largest pairwise size difference `max_p,q ||V_p| - |V_q||`.
    pub fn max_imbalance(&self) -> usize {
        let max = self.sizes.iter().copied().max().unwrap_or(0);
        let min = self.sizes.iter().copied().min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_lookup_remove_roundtrip() {
        let mut d = DenseDirectory::new(3);
        d.place(0, 0);
        d.place(5, 1);
        d.place(1 << 40, 2); // A second band, far from the first.
        assert_eq!(d.server_of(0), Some(0));
        assert_eq!(d.server_of(5), Some(1));
        assert_eq!(d.server_of(1 << 40), Some(2));
        assert_eq!(d.server_of(6), None);
        assert_eq!(d.server_of((1 << 40) + 1), None);
        assert_eq!(d.sizes(), &[1, 1, 1]);
        assert_eq!(d.vertex_count(), 3);
        d.remove(5);
        assert_eq!(d.server_of(5), None);
        assert_eq!(d.sizes(), &[1, 0, 1]);
        assert_eq!(d.vertex_count(), 2);
        d.remove(5); // no-op
        d.remove(999); // never assigned, no-op
        assert_eq!(d.vertex_count(), 2);
    }

    #[test]
    fn migrate_tracks_sizes() {
        let mut d = DenseDirectory::new(3);
        d.place(1, 0);
        d.place(2, 0);
        d.migrate(1, 2);
        assert_eq!(d.sizes(), &[1, 0, 1]);
        assert_eq!(d.server_of(1), Some(2));
        d.migrate(1, 2); // no-op
        assert_eq!(d.sizes(), &[1, 0, 1]);
        assert_eq!(d.max_imbalance(), 1);
    }

    #[test]
    fn vertices_on_is_sorted_across_bands() {
        let mut d = DenseDirectory::new(2);
        for v in [5u64, 1, (1 << 40) + 3, 9, 1 << 40] {
            d.place(v, 0);
        }
        assert_eq!(d.vertices_on(0), vec![1, 5, 9, 1 << 40, (1 << 40) + 3]);
        assert!(d.vertices_on(1).is_empty());
    }

    #[test]
    fn regions_stay_page_sorted() {
        let mut d = DenseDirectory::new(1);
        d.place(1 << 40, 0); // High band first.
        d.place(3, 0);
        d.place(1 << 30, 0);
        assert_eq!(d.vertices_on(0), vec![3, 1 << 30, 1 << 40]);
    }

    #[test]
    #[should_panic(expected = "vertex already assigned")]
    fn double_place_panics() {
        let mut d = DenseDirectory::new(2);
        d.place(1, 0);
        d.place(1, 1);
    }

    #[test]
    #[should_panic(expected = "vertex not assigned")]
    fn migrate_unassigned_panics() {
        let mut d = DenseDirectory::new(2);
        d.migrate(1, 0);
    }

    #[test]
    fn geometric_growth_covers_high_offsets() {
        let mut d = DenseDirectory::new(2);
        d.place(0, 0);
        d.place(100_000, 1);
        assert_eq!(d.server_of(100_000), Some(1));
        assert_eq!(d.server_of(99_999), None);
        assert_eq!(d.vertex_count(), 2);
    }
}
