//! Locality-aware actor partitioning (§4 of the ActOp paper).
//!
//! Actors are vertices of a weighted communication graph; servers are
//! partitions. The goal is a *balanced* partition minimizing the total
//! weight of edges that cross servers. The paper's algorithm is fully
//! distributed: each server keeps only a sampled list of its heaviest
//! edges, and servers periodically run a *pairwise coordination protocol*
//! (Alg. 1) exchanging small candidate sets of actors.
//!
//! Modules:
//!
//! * [`config`] — tunables: candidate-set size `k`, imbalance tolerance
//!   `delta`, exchange cooldown.
//! * [`score`] — transfer scores `R_{p,q}(v)` and candidate-set selection.
//! * [`exchange`] — the pairwise protocol: the initiator's proposal and the
//!   responder's greedy two-heap selection of the exchange subsets
//!   `S0 ⊆ S`, `T0 ⊆ T` under the balance constraint.
//! * [`graph`] — a concrete weighted graph + partition used by the static
//!   experiments, Theorem 1 tests, and baselines.
//! * [`dense`] — the hash-free [`DenseDirectory`] the live runtime routes
//!   through on every message delivery.
//! * [`driver`] — a standalone driver running protocol rounds over a static
//!   graph (the setting of Theorem 1).
//! * [`baselines`] — random/hash placement, unilateral (one-sided)
//!   migration, and a centralized greedy refinement partitioner, used as
//!   comparison points and ablations.
//! * [`sized`] — the §4.2 extension: heterogeneous actor sizes, migration
//!   costs, and size-based balance.
//! * [`split`] — hot-actor split decisions: when one actor's demand
//!   exceeds a single server's capacity, replicate it instead of
//!   migrating it.
//! * [`policy`] — the pluggable [`RepartitionPolicy`] trait: the exchange
//!   protocol (optionally migration-cost-aware), one-sided migration, and
//!   centralized refinement as selectable policies over an abstract host.
//! * [`online`] — online comparators with published guarantees: dynamic
//!   balanced partitioning (Räcke/Schmid/Zabrodin style) and streaming
//!   re-partitioning (Le Merrer/Trédan style).

pub mod baselines;
pub mod config;
pub mod dense;
pub mod driver;
pub mod exchange;
pub mod graph;
pub mod online;
pub mod policy;
pub mod score;
pub mod sized;
pub mod split;

pub use config::PartitionConfig;
pub use dense::DenseDirectory;
pub use exchange::{select_exchange, select_exchange_with_cost, ExchangeOutcome, ExchangeRequest};
pub use graph::{CommGraph, Partition};
pub use online::{DynamicBalancedConfig, DynamicBalancedPolicy, StreamPolicy};
pub use policy::{
    build_policy, move_penalty, CostSignals, ExchangePolicy, GraphHost, MigrationCostConfig,
    PolicyHost, PolicyScope, RepartitionPolicy, RepartitionPolicyKind,
};
pub use score::{candidate_set, retain_above, transfer_scores, ScoredVertex};
pub use split::{decide as decide_split, SplitDecision, SplitThresholds};
