//! Size-aware partitioning — the §4.2 extension.
//!
//! The core algorithm assumes uniform actors. The paper sketches (but does
//! not evaluate) the generalization to heterogeneous actors: migration
//! costs enter the transfer score with a term scaled by the actor's size,
//! the candidate set is limited by *total size* instead of count, and the
//! imbalance tolerance `delta` bounds the difference in total hosted size.
//! This module implements that generalization; the unsized protocol in
//! [`crate::exchange`] stays exactly as the paper evaluates it.

use actop_sketch::FxHashMap;
use std::hash::Hash;

use crate::score::ScoredVertex;

/// Configuration of the size-aware exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizedConfig {
    /// Maximum total size offered/returned in one exchange (replaces the
    /// candidate-set *count* limit).
    pub candidate_size_budget: u64,
    /// Maximum allowed difference in total hosted size between the
    /// exchanging pair.
    pub size_imbalance_tolerance: u64,
    /// Migration cost per size unit, in edge-weight units: a vertex only
    /// moves when its communication saving exceeds `cost_per_unit * size`.
    /// (The paper phrases this as adding "a term ... inversely
    /// proportional to the actor size" to the score — i.e. small actors
    /// are favored; charging a size-proportional cost is the equivalent
    /// monotone formulation.)
    pub migration_cost_per_unit: f64,
}

impl Default for SizedConfig {
    fn default() -> Self {
        SizedConfig {
            candidate_size_budget: 1 << 20, // 1 MiB of actor state per exchange.
            size_imbalance_tolerance: 1 << 18,
            migration_cost_per_unit: 0.0,
        }
    }
}

/// A candidate vertex with a size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizedCandidate<V> {
    /// The scored vertex (score *before* the migration-cost adjustment).
    pub scored: ScoredVertex<V>,
    /// The vertex's size (bytes of state, or any consistent unit).
    pub size: u64,
}

/// The outcome of a size-aware exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizedOutcome<V> {
    /// Vertices accepted from the initiator (migrate initiator → responder).
    pub accepted: Vec<V>,
    /// Responder vertices returned (migrate responder → initiator).
    pub returned: Vec<V>,
    /// Total size moved initiator → responder.
    pub accepted_size: u64,
    /// Total size moved responder → initiator.
    pub returned_size: u64,
}

impl<V> SizedOutcome<V> {
    /// True when nothing moves.
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty() && self.returned.is_empty()
    }
}

/// The migration-cost-adjusted score of a candidate.
fn adjusted(score: i64, size: u64, config: &SizedConfig) -> i64 {
    score - (config.migration_cost_per_unit * size as f64).round() as i64
}

/// Caps a candidate list at the size budget, keeping the best adjusted
/// scores (the size-aware analogue of the top-`k` candidate set).
pub fn cap_candidates<V: Copy + Eq + Ord>(
    mut candidates: Vec<SizedCandidate<V>>,
    config: &SizedConfig,
) -> Vec<SizedCandidate<V>> {
    candidates.sort_by(|a, b| {
        adjusted(b.scored.score, b.size, config)
            .cmp(&adjusted(a.scored.score, a.size, config))
            .then(a.scored.vertex.cmp(&b.scored.vertex))
    });
    let mut total = 0u64;
    candidates.retain(|c| {
        if total + c.size <= config.candidate_size_budget {
            total += c.size;
            true
        } else {
            false
        }
    });
    candidates
}

/// The size-aware greedy selection: the two-heap procedure of Alg. 1 with
/// size-based balance and migration costs.
///
/// `initiator_size` / `responder_size` are the servers' total hosted sizes.
pub fn select_sized_exchange<V>(
    incoming: &[SizedCandidate<V>],
    initiator_size: u64,
    own: &[SizedCandidate<V>],
    responder_size: u64,
    config: &SizedConfig,
) -> SizedOutcome<V>
where
    V: Copy + Eq + Hash + Ord,
{
    struct Item<V> {
        vertex: V,
        score: i64,
        size: u64,
        from_initiator: bool,
        taken: bool,
    }
    let mut items: Vec<Item<V>> = Vec::with_capacity(incoming.len() + own.len());
    let mut index: FxHashMap<V, usize> = FxHashMap::default();
    for c in incoming {
        index.insert(c.scored.vertex, items.len());
        items.push(Item {
            vertex: c.scored.vertex,
            score: adjusted(c.scored.score, c.size, config),
            size: c.size,
            from_initiator: true,
            taken: false,
        });
    }
    for c in own {
        if index.contains_key(&c.scored.vertex) {
            continue;
        }
        index.insert(c.scored.vertex, items.len());
        items.push(Item {
            vertex: c.scored.vertex,
            score: adjusted(c.scored.score, c.size, config),
            size: c.size,
            from_initiator: false,
            taken: false,
        });
    }
    // Pairwise weights between candidates (for score updates).
    let mut pair_w: FxHashMap<(usize, usize), u64> = FxHashMap::default();
    for cands in [incoming, own] {
        for c in cands {
            let Some(&i) = index.get(&c.scored.vertex) else {
                continue;
            };
            for (peer, w) in &c.scored.edges {
                if let Some(&j) = index.get(peer) {
                    if i != j {
                        let key = (i.min(j), i.max(j));
                        let entry = pair_w.entry(key).or_default();
                        *entry = (*entry).max(*w);
                    }
                }
            }
        }
    }

    let mut p_size = initiator_size as i64;
    let mut q_size = responder_size as i64;
    let delta = config.size_imbalance_tolerance as i64;
    let mut outcome = SizedOutcome {
        accepted: Vec::new(),
        returned: Vec::new(),
        accepted_size: 0,
        returned_size: 0,
    };
    loop {
        let pre = (p_size - q_size).abs();
        let movable = |item: &Item<V>| -> bool {
            let sz = item.size as i64;
            let post = if item.from_initiator {
                (p_size - sz - (q_size + sz)).abs()
            } else {
                (p_size + sz - (q_size - sz)).abs()
            };
            post <= delta || post < pre
        };
        let mut best: Option<usize> = None;
        for (i, item) in items.iter().enumerate() {
            if item.taken || item.score <= 0 || !movable(item) {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let cur = (items[b].score, std::cmp::Reverse(items[b].vertex));
                    let cand = (item.score, std::cmp::Reverse(item.vertex));
                    if cand > cur {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(chosen) = best else {
            break;
        };
        items[chosen].taken = true;
        let side = items[chosen].from_initiator;
        let sz = items[chosen].size as i64;
        if side {
            p_size -= sz;
            q_size += sz;
            outcome.accepted.push(items[chosen].vertex);
            outcome.accepted_size += items[chosen].size;
        } else {
            p_size += sz;
            q_size -= sz;
            outcome.returned.push(items[chosen].vertex);
            outcome.returned_size += items[chosen].size;
        }
        for (i, item) in items.iter_mut().enumerate() {
            if item.taken || i == chosen {
                continue;
            }
            let key = (i.min(chosen), i.max(chosen));
            let Some(&w) = pair_w.get(&key) else {
                continue;
            };
            let delta_score = 2 * w as i64;
            if item.from_initiator == side {
                item.score += delta_score;
            } else {
                item.score -= delta_score;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(vertex: u32, score: i64, size: u64) -> SizedCandidate<u32> {
        SizedCandidate {
            scored: ScoredVertex {
                vertex,
                score,
                edges: vec![],
            },
            size,
        }
    }

    fn config(budget: u64, delta: u64, cost: f64) -> SizedConfig {
        SizedConfig {
            candidate_size_budget: budget,
            size_imbalance_tolerance: delta,
            migration_cost_per_unit: cost,
        }
    }

    #[test]
    fn cap_respects_size_budget_and_prefers_adjusted_score() {
        let cands = vec![cand(1, 10, 600), cand(2, 9, 300), cand(3, 8, 300)];
        let capped = cap_candidates(cands, &config(600, 1000, 0.0));
        // Vertex 1 alone exhausts the budget; 2 and 3 no longer fit.
        assert_eq!(capped.len(), 1);
        assert_eq!(capped[0].scored.vertex, 1);
        // With migration costs, the big vertex scores worse per its size.
        let cands = vec![cand(1, 10, 600), cand(2, 9, 300), cand(3, 8, 300)];
        let capped = cap_candidates(cands, &config(600, 1000, 0.01));
        // Adjusted: v1 = 10-6 = 4, v2 = 9-3 = 6, v3 = 8-3 = 5: take 2 and 3.
        assert_eq!(
            capped.iter().map(|c| c.scored.vertex).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn migration_cost_blocks_marginal_moves() {
        // Saving 5 edge units, but the vertex weighs 1000 units at cost
        // 0.01/unit = 10: not worth moving.
        let incoming = vec![cand(1, 5, 1000)];
        let outcome =
            select_sized_exchange(&incoming, 10_000, &[], 10_000, &config(4096, 4096, 0.01));
        assert!(outcome.is_empty());
        // At zero migration cost the same move goes through.
        let outcome =
            select_sized_exchange(&incoming, 10_000, &[], 10_000, &config(4096, 4096, 0.0));
        assert_eq!(outcome.accepted, vec![1]);
        assert_eq!(outcome.accepted_size, 1000);
    }

    #[test]
    fn size_balance_deflects_large_vertices() {
        // Accepting the 3000-unit vertex would skew sizes beyond delta;
        // the 500-unit one still fits.
        let incoming = vec![cand(1, 50, 3_000), cand(2, 20, 500)];
        let outcome =
            select_sized_exchange(&incoming, 10_000, &[], 10_000, &config(8_192, 2_000, 0.0));
        assert_eq!(outcome.accepted, vec![2]);
    }

    #[test]
    fn bidirectional_sizes_rebalance() {
        // Returning a big vertex makes room to accept two smaller ones.
        let incoming = vec![cand(1, 30, 900), cand(2, 25, 900)];
        let own = vec![cand(100, 28, 1_800)];
        let outcome =
            select_sized_exchange(&incoming, 10_000, &own, 10_000, &config(8_192, 1_900, 0.0));
        assert_eq!(outcome.accepted, vec![1, 2]);
        assert_eq!(outcome.returned, vec![100]);
        assert_eq!(outcome.accepted_size, 1_800);
        assert_eq!(outcome.returned_size, 1_800);
    }

    #[test]
    fn imbalance_reducing_moves_allowed_past_delta() {
        // Responder far heavier: returning reduces the gap even though the
        // post-move difference still exceeds delta.
        let own = vec![cand(100, 10, 1_000)];
        let outcome = select_sized_exchange(&[], 1_000, &own, 9_000, &config(4_096, 500, 0.0));
        assert_eq!(outcome.returned, vec![100]);
    }

    #[test]
    fn deterministic_tie_break_on_vertex() {
        let incoming = vec![cand(5, 7, 10), cand(3, 7, 10)];
        let outcome = select_sized_exchange(&incoming, 100, &[], 100, &config(4_096, 4_096, 0.0));
        assert_eq!(outcome.accepted, vec![3, 5]);
    }
}
