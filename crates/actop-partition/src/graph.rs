//! A concrete weighted communication graph and a vertex-to-server partition.
//!
//! These are the data structures for the *static* setting: Theorem 1 tests,
//! the standalone convergence experiments, and the centralized baselines.
//! (The live runtime never materializes the full graph — that is the point
//! of the paper's distributed algorithm — it feeds sampled edges straight
//! into the exchange protocol.)

use std::hash::Hash;

use actop_sketch::FxHashMap;

/// An undirected weighted multigraph; parallel edge weights accumulate.
///
/// Keyed with the vendored Fx hasher: every iteration over the adjacency
/// maps is either sorted before use or folded commutatively, so the
/// hasher is non-semantic here.
#[derive(Debug, Clone, Default)]
pub struct CommGraph<V> {
    adj: FxHashMap<V, FxHashMap<V, u64>>,
}

impl<V: Copy + Eq + Hash + Ord> CommGraph<V> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        CommGraph {
            adj: FxHashMap::default(),
        }
    }

    /// Adds `weight` to the undirected edge `{a, b}`. Self-loops are
    /// ignored (an actor messaging itself never crosses servers).
    pub fn add_edge(&mut self, a: V, b: V, weight: u64) {
        if a == b || weight == 0 {
            return;
        }
        *self.adj.entry(a).or_default().entry(b).or_default() += weight;
        *self.adj.entry(b).or_default().entry(a).or_default() += weight;
    }

    /// Ensures a vertex exists even if isolated.
    pub fn add_vertex(&mut self, v: V) {
        self.adj.entry(v).or_default();
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// All vertices, sorted for determinism.
    pub fn vertices(&self) -> Vec<V> {
        let mut vs: Vec<V> = self.adj.keys().copied().collect();
        vs.sort_unstable();
        vs
    }

    /// The weighted neighbors of `v`, sorted by neighbor for determinism.
    pub fn neighbors(&self, v: &V) -> Vec<(V, u64)> {
        let mut out: Vec<(V, u64)> = self
            .adj
            .get(v)
            .map(|m| m.iter().map(|(&u, &w)| (u, w)).collect())
            .unwrap_or_default();
        out.sort_unstable_by_key(|&(u, _)| u);
        out
    }

    /// The weight of edge `{a, b}` (0 if absent).
    pub fn weight(&self, a: &V, b: &V) -> u64 {
        self.adj.get(a).and_then(|m| m.get(b)).copied().unwrap_or(0)
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_weight(&self) -> u64 {
        let sum: u64 = self.adj.values().flat_map(|m| m.values()).sum();
        sum / 2
    }

    /// The total communication cost `C` of a partition: the sum of weights
    /// of edges whose endpoints live on different servers (each edge
    /// counted once).
    pub fn cut_cost(&self, partition: &Partition<V>) -> u64 {
        let mut cost = 0u64;
        for (v, peers) in &self.adj {
            let pv = partition.server_of(v);
            for (u, w) in peers {
                if v < u {
                    continue; // Count each undirected edge once.
                }
                if pv != partition.server_of(u) {
                    cost += w;
                }
            }
        }
        cost
    }
}

/// A vertex-to-server assignment with per-server size accounting.
#[derive(Debug, Clone)]
pub struct Partition<V> {
    assign: FxHashMap<V, usize>,
    sizes: Vec<usize>,
}

impl<V: Copy + Eq + Hash + Ord> Partition<V> {
    /// Creates an empty partition over `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        Partition {
            assign: FxHashMap::default(),
            sizes: vec![0; servers],
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.sizes.len()
    }

    /// Number of assigned vertices.
    pub fn vertex_count(&self) -> usize {
        self.assign.len()
    }

    /// Assigns a new vertex to a server.
    ///
    /// # Panics
    ///
    /// Panics if the vertex is already assigned or the server is out of
    /// range.
    pub fn place(&mut self, v: V, server: usize) {
        assert!(server < self.sizes.len(), "server out of range");
        let prev = self.assign.insert(v, server);
        assert!(prev.is_none(), "vertex already assigned");
        self.sizes[server] += 1;
    }

    /// Moves a vertex to another server (no-op when already there).
    ///
    /// # Panics
    ///
    /// Panics if the vertex is unassigned or the server is out of range.
    pub fn migrate(&mut self, v: &V, to: usize) {
        assert!(to < self.sizes.len(), "server out of range");
        let slot = self.assign.get_mut(v).expect("vertex not assigned");
        if *slot == to {
            return;
        }
        self.sizes[*slot] -= 1;
        self.sizes[to] += 1;
        *slot = to;
    }

    /// Removes a vertex (e.g. a departed actor).
    pub fn remove(&mut self, v: &V) {
        if let Some(server) = self.assign.remove(v) {
            self.sizes[server] -= 1;
        }
    }

    /// The server of a vertex, if assigned.
    pub fn server_of(&self, v: &V) -> Option<usize> {
        self.assign.get(v).copied()
    }

    /// Number of vertices on each server.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The vertices on `server`, sorted for determinism.
    pub fn vertices_on(&self, server: usize) -> Vec<V> {
        let mut out: Vec<V> = self
            .assign
            .iter()
            .filter(|&(_, &s)| s == server)
            .map(|(&v, _)| v)
            .collect();
        out.sort_unstable();
        out
    }

    /// The largest pairwise size difference `max_p,q ||V_p| - |V_q||`.
    pub fn max_imbalance(&self) -> usize {
        let max = self.sizes.iter().copied().max().unwrap_or(0);
        let min = self.sizes.iter().copied().min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CommGraph<u32> {
        let mut g = CommGraph::new();
        g.add_edge(1, 2, 10);
        g.add_edge(2, 3, 20);
        g.add_edge(1, 3, 30);
        g
    }

    #[test]
    fn edges_accumulate_and_are_symmetric() {
        let mut g = CommGraph::new();
        g.add_edge(1u32, 2, 5);
        g.add_edge(2, 1, 3);
        assert_eq!(g.weight(&1, &2), 8);
        assert_eq!(g.weight(&2, &1), 8);
        assert_eq!(g.total_weight(), 8);
    }

    #[test]
    fn self_loops_and_zero_weights_ignored() {
        let mut g = CommGraph::new();
        g.add_edge(1u32, 1, 100);
        g.add_edge(1, 2, 0);
        assert_eq!(g.total_weight(), 0);
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn neighbors_sorted() {
        let g = triangle();
        assert_eq!(g.neighbors(&1), vec![(2, 10), (3, 30)]);
        assert_eq!(g.neighbors(&99), vec![]);
    }

    #[test]
    fn cut_cost_counts_crossing_edges_once() {
        let g = triangle();
        let mut p = Partition::new(2);
        p.place(1, 0);
        p.place(2, 0);
        p.place(3, 1);
        // Crossing edges: {2,3} = 20 and {1,3} = 30.
        assert_eq!(g.cut_cost(&p), 50);
        p.migrate(&3, 0);
        assert_eq!(g.cut_cost(&p), 0);
    }

    #[test]
    fn partition_sizes_track_moves() {
        let mut p = Partition::new(3);
        p.place(1u32, 0);
        p.place(2, 0);
        p.place(3, 1);
        assert_eq!(p.sizes(), &[2, 1, 0]);
        assert_eq!(p.max_imbalance(), 2);
        p.migrate(&1, 2);
        assert_eq!(p.sizes(), &[1, 1, 1]);
        assert_eq!(p.max_imbalance(), 0);
        p.remove(&2);
        assert_eq!(p.sizes(), &[0, 1, 1]);
        assert_eq!(p.server_of(&2), None);
        assert_eq!(p.server_of(&3), Some(1));
    }

    #[test]
    fn migrate_to_same_server_is_noop() {
        let mut p = Partition::new(2);
        p.place(1u32, 0);
        p.migrate(&1, 0);
        assert_eq!(p.sizes(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "vertex already assigned")]
    fn double_place_panics() {
        let mut p = Partition::new(2);
        p.place(1u32, 0);
        p.place(1, 1);
    }

    #[test]
    fn vertices_on_is_sorted() {
        let mut p = Partition::new(2);
        for v in [5u32, 1, 9, 3] {
            p.place(v, 0);
        }
        assert_eq!(p.vertices_on(0), vec![1, 3, 5, 9]);
        assert!(p.vertices_on(1).is_empty());
    }
}
