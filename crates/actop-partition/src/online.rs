//! Online repartitioning comparators with published guarantees.
//!
//! * [`DynamicBalancedPolicy`] — in the style of Räcke, Schmid and
//!   Zabrodin's online balanced (re)partitioning: vertices that
//!   communicate are merged into components, whole components are
//!   co-located, and a component that outgrows the per-server capacity is
//!   dissolved back into singletons (the amortized repartition step that
//!   buys the competitive bound on ring-style demand sequences).
//! * [`StreamPolicy`] — in the style of Le Merrer and Trédan's streaming
//!   re-partitioning: repeatedly pull the hottest local vertices and
//!   re-place each with a load-sensitive streaming heuristic, touching at
//!   most a candidate-set's worth of vertices per round.
//!
//! Both run against the abstract [`PolicyHost`], so they drive the live
//! runtime and the static test harness alike.

use std::hash::Hash;

use actop_sketch::FxHashMap;

use crate::config::PartitionConfig;
use crate::policy::{
    capacity_bound, PolicyHost, PolicyScope, RepartitionPolicy, RepartitionPolicyKind,
};

/// Tunables of [`DynamicBalancedPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicBalancedConfig {
    /// Minimum sampled edge weight that counts as "communication" for the
    /// component-merge rule (light edges are noise in a sampled sketch).
    pub merge_threshold: u64,
    /// How many rounds the members of a dissolved component sit out of
    /// merging. This is half of the amortization: after paying a
    /// repartition, the involved vertices cannot immediately re-form the
    /// same oversized component.
    pub freeze_rounds: u32,
    /// How many capacity-violating merge attempts a component absorbs
    /// before it is dissolved. This is the other half of the amortization:
    /// a single violating edge merely fails to merge; only a component
    /// under *persistent* pressure pays the repartition.
    pub violation_patience: u32,
}

impl Default for DynamicBalancedConfig {
    fn default() -> Self {
        DynamicBalancedConfig {
            merge_threshold: 1,
            freeze_rounds: 2,
            violation_patience: 3,
        }
    }
}

/// Räcke/Schmid/Zabrodin-style dynamic balanced partitioning. Global
/// scope: one round per interval over every server's sampled view.
///
/// Per round: (1) merge the components of communicating vertices, heaviest
/// observed edge first, while the union respects the per-server capacity
/// (balanced share + imbalance tolerance); (2) a merge that would violate
/// capacity is refused and charged as *pressure* against both components —
/// a component under persistent pressure is dissolved to singletons and
/// its members frozen for a few rounds (the amortized repartition);
/// (3) pack components onto servers largest-first, each preferring the
/// server that already hosts most of its members, and migrate the
/// stragglers.
#[derive(Debug, Clone)]
pub struct DynamicBalancedPolicy<V> {
    cfg: DynamicBalancedConfig,
    /// Vertex -> component representative (the component's minimum vertex).
    comp: FxHashMap<V, V>,
    /// Vertex -> rounds left in the post-dissolve merge freeze.
    frozen: FxHashMap<V, u32>,
    /// Representative -> accumulated capacity-violation pressure.
    pressure: FxHashMap<V, u32>,
}

impl<V: Copy + Eq + Hash + Ord> DynamicBalancedPolicy<V> {
    /// Creates the policy with fresh (all-singleton) component state.
    pub fn new(cfg: DynamicBalancedConfig) -> Self {
        DynamicBalancedPolicy {
            cfg,
            comp: FxHashMap::default(),
            frozen: FxHashMap::default(),
            pressure: FxHashMap::default(),
        }
    }
}

impl<V> RepartitionPolicy<V> for DynamicBalancedPolicy<V>
where
    V: Copy + Eq + Hash + Ord,
{
    fn kind(&self) -> RepartitionPolicyKind {
        RepartitionPolicyKind::DynamicBalanced
    }

    fn scope(&self) -> PolicyScope {
        PolicyScope::Global
    }

    fn round(
        &mut self,
        host: &mut dyn PolicyHost<V>,
        _now_ns: u64,
        _initiator: usize,
        config: &PartitionConfig,
    ) -> usize {
        let servers = host.servers();
        if servers < 2 {
            return 0;
        }
        // Assemble the observed world: every server's sampled view, with
        // each undirected edge taken at its largest observed estimate.
        let mut home: FxHashMap<V, usize> = FxHashMap::default();
        let mut edges: FxHashMap<(V, V), u64> = FxHashMap::default();
        for server in 0..servers {
            for (v, peers) in host.view(server) {
                home.entry(v).or_insert(server);
                for (peer, w) in peers {
                    let key = if v < peer { (v, peer) } else { (peer, v) };
                    let entry = edges.entry(key).or_default();
                    *entry = (*entry).max(w);
                }
            }
        }
        if home.is_empty() {
            return 0;
        }
        let total = home.len();
        let cap = capacity_bound(total, servers, config);

        // Tick the post-dissolve freezes.
        self.frozen.retain(|_, left| {
            *left -= 1;
            *left > 0
        });

        // Components cover exactly the observed vertices; anything that
        // departed since the last round drops out, newcomers start as
        // singletons.
        let mut members: FxHashMap<V, Vec<V>> = FxHashMap::default();
        let mut observed: Vec<V> = home.keys().copied().collect();
        observed.sort_unstable();
        for &v in &observed {
            let rep = self.comp.get(&v).copied().unwrap_or(v);
            members.entry(rep).or_default().push(v);
        }

        // Merge pass, heaviest evidence first (deterministic order).
        let mut ordered: Vec<((V, V), u64)> = edges.into_iter().collect();
        ordered.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for ((a, b), w) in ordered {
            if w < self.cfg.merge_threshold {
                continue;
            }
            if self.frozen.contains_key(&a) || self.frozen.contains_key(&b) {
                continue;
            }
            let ra = self.comp.get(&a).copied().unwrap_or(a);
            let rb = self.comp.get(&b).copied().unwrap_or(b);
            if ra == rb {
                continue;
            }
            // A sampled edge may reference a vertex nobody hosts anymore;
            // such a rep has no member list and cannot merge.
            let sa = members.get(&ra).map_or(0, Vec::len);
            let sb = members.get(&rb).map_or(0, Vec::len);
            if sa == 0 || sb == 0 {
                continue;
            }
            if sa + sb <= cap {
                // Merge into the smaller representative.
                let (keep, gone) = if ra < rb { (ra, rb) } else { (rb, ra) };
                let moved = members.remove(&gone).unwrap_or_default();
                for &v in &moved {
                    self.comp.insert(v, keep);
                }
                members.entry(keep).or_default().extend(moved);
                self.pressure.remove(&gone);
            } else {
                // Capacity violation: refuse the merge and charge both
                // components. A component under persistent pressure pays
                // the amortized repartition — dissolve to singletons and
                // freeze its members so the same overgrowth cannot recur
                // immediately.
                for rep in [ra, rb] {
                    let hits = self.pressure.entry(rep).or_insert(0);
                    *hits += 1;
                    if *hits < self.cfg.violation_patience {
                        continue;
                    }
                    self.pressure.remove(&rep);
                    let Some(vs) = members.remove(&rep) else {
                        continue;
                    };
                    for v in vs {
                        self.comp.insert(v, v);
                        members.entry(v).or_default().push(v);
                        self.frozen.insert(v, self.cfg.freeze_rounds);
                    }
                }
            }
        }
        self.comp.retain(|v, _| home.contains_key(v));
        self.pressure.retain(|rep, _| home.contains_key(rep));

        // Pack components onto servers, largest first, each preferring the
        // server already hosting the plurality of its members.
        let mut comps: Vec<(V, Vec<V>)> = members
            .into_iter()
            .map(|(rep, mut vs)| {
                vs.sort_unstable();
                (rep, vs)
            })
            .collect();
        comps.sort_unstable_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        let mut loads = vec![0usize; servers];
        let mut moves = 0;
        for (_, vs) in comps {
            let mut counts = vec![0usize; servers];
            for v in &vs {
                counts[home[v]] += 1;
            }
            let mut target: Option<usize> = None;
            for s in 0..servers {
                if host.is_failed(s) || loads[s] + vs.len() > cap {
                    continue;
                }
                target = match target {
                    None => Some(s),
                    Some(t) if counts[s] > counts[t] => Some(s),
                    keep => keep,
                };
            }
            // No server fits the whole component: fall back to the least
            // loaded live server (the capacity bound is advisory once the
            // packing itself is infeasible).
            let target = target.or_else(|| {
                (0..servers)
                    .filter(|&s| !host.is_failed(s))
                    .min_by_key(|&s| (loads[s], s))
            });
            let Some(target) = target else {
                return moves; // Every server failed; nothing to do.
            };
            loads[target] += vs.len();
            for v in vs {
                if home[&v] != target {
                    host.migrate(v, target);
                    moves += 1;
                }
            }
        }
        moves
    }
}

/// Le Merrer/Trédan-style streaming re-partitioning. Per-server scope:
/// each round, the initiator re-streams its hottest vertices (highest
/// sampled communication volume) through a load-sensitive placement rule —
/// a vertex goes to the server maximizing `w_to(q) × free_capacity(q)`,
/// which is weighted deterministic greedy in its linear form. At most one
/// candidate-set's worth of vertices moves per round.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamPolicy;

impl StreamPolicy {
    /// Creates the (stateless) policy.
    pub fn new() -> Self {
        StreamPolicy
    }
}

impl<V> RepartitionPolicy<V> for StreamPolicy
where
    V: Copy + Eq + Hash + Ord,
{
    fn kind(&self) -> RepartitionPolicyKind {
        RepartitionPolicyKind::Stream
    }

    fn round(
        &mut self,
        host: &mut dyn PolicyHost<V>,
        _now_ns: u64,
        initiator: usize,
        config: &PartitionConfig,
    ) -> usize {
        let servers = host.servers();
        if servers < 2 {
            return 0;
        }
        let view = host.view(initiator);
        if view.is_empty() {
            return 0;
        }
        // Hottest first: total sampled volume, deterministic tie-break.
        type Hot<V> = Vec<(u64, V, Vec<(V, u64)>)>;
        let mut hot: Hot<V> = view
            .into_iter()
            .map(|(v, edges)| (edges.iter().map(|&(_, w)| w).sum(), v, edges))
            .collect();
        hot.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        hot.truncate(config.candidate_set_size);

        let mut loads = host.sizes();
        let total: usize = loads.iter().sum();
        let cap = capacity_bound(total, servers, config);
        let mut moves = 0;
        for (_, v, edges) in hot {
            // Re-stream `v`: pull it out of its current server, then place
            // it where attraction × free capacity is largest.
            let Some(from) = host.locate(&v) else {
                continue;
            };
            let mut w_to = vec![0u64; servers];
            for (peer, w) in &edges {
                if let Some(s) = host.locate(peer) {
                    let w_peer = if *peer == v { 0 } else { *w };
                    if s < servers {
                        w_to[s] += w_peer;
                    }
                }
            }
            loads[from] -= 1;
            let mut best: Option<(u64, usize)> = None;
            for (s, &w) in w_to.iter().enumerate() {
                if host.is_failed(s) || loads[s] >= cap {
                    continue;
                }
                let gain = w.saturating_mul((cap - loads[s]) as u64);
                best = match best {
                    None => Some((gain, s)),
                    Some((bg, bs)) => {
                        // Strictly-better wins; ties keep the incumbent
                        // server (moving on a tie would oscillate).
                        if gain > bg || (gain == bg && s == from && bs != from) {
                            Some((gain, s))
                        } else {
                            Some((bg, bs))
                        }
                    }
                };
            }
            let to = best.map_or(from, |(_, s)| s);
            loads[to] += 1;
            if to != from {
                host.migrate(v, to);
                moves += 1;
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CommGraph, Partition};
    use crate::policy::GraphHost;

    fn ring(n: u32) -> CommGraph<u32> {
        let mut g = CommGraph::new();
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 4);
        }
        g
    }

    fn round_robin(n: u32, servers: usize) -> Partition<u32> {
        let mut p = Partition::new(servers);
        for i in 0..n {
            p.place(i, i as usize % servers);
        }
        p
    }

    fn run<V: Copy + Eq + std::hash::Hash + Ord + 'static>(
        policy: &mut dyn RepartitionPolicy<V>,
        host: &mut GraphHost<V>,
        cfg: &PartitionConfig,
        rounds: usize,
    ) {
        for r in 0..rounds {
            match policy.scope() {
                PolicyScope::PerServer => {
                    for s in 0..host.partition.servers() {
                        policy.round(host, r as u64, s, cfg);
                    }
                }
                PolicyScope::Global => {
                    policy.round(host, r as u64, 0, cfg);
                }
            }
        }
    }

    #[test]
    fn dynamic_balanced_groups_ring_segments() {
        // A 12-ring round-robined over 4 servers has every edge cut (cost
        // 48). Contiguous segments of 3 cut only 4 edges (cost 16) — the
        // policy must land at or below a third of the initial cut.
        let g = ring(12);
        let p = round_robin(12, 4);
        let mut host = GraphHost::new(g, p);
        let cfg = PartitionConfig {
            candidate_set_size: 16,
            imbalance_tolerance: 1,
            exchange_cooldown_ns: 0,
            min_total_score: 1,
        };
        let mut policy = DynamicBalancedPolicy::new(DynamicBalancedConfig::default());
        run(&mut policy, &mut host, &cfg, 6);
        let cut = host.graph.cut_cost(&host.partition);
        assert!(cut <= 16, "cut {cut} should reach segment quality");
        let cap = capacity_bound(12, 4, &cfg);
        for &s in host.partition.sizes() {
            assert!(
                s <= cap,
                "sizes {:?} exceed cap {cap}",
                host.partition.sizes()
            );
        }
    }

    #[test]
    fn dynamic_balanced_dissolves_oversized_components() {
        // A 10-clique on 2 servers (cap = 5 + tol): the clique can never
        // co-locate, so the policy must keep sizes within capacity instead
        // of piling everything on one server.
        let mut g = CommGraph::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                g.add_edge(a, b, 2);
            }
        }
        let p = round_robin(10, 2);
        let mut host = GraphHost::new(g, p);
        let cfg = PartitionConfig {
            candidate_set_size: 16,
            imbalance_tolerance: 1,
            exchange_cooldown_ns: 0,
            min_total_score: 1,
        };
        let cap = capacity_bound(10, 2, &cfg);
        let mut policy = DynamicBalancedPolicy::new(DynamicBalancedConfig::default());
        for r in 0..8 {
            policy.round(&mut host, r, 0, &cfg);
            for &s in host.partition.sizes() {
                assert!(s <= cap, "round {r}: sizes {:?}", host.partition.sizes());
            }
            assert_eq!(host.partition.vertex_count(), 10);
        }
    }

    #[test]
    fn stream_respects_capacity() {
        // One hub everyone talks to: stream placement is tempted to pile
        // every vertex onto the hub's server but must stop at capacity.
        let mut g = CommGraph::new();
        for v in 1..=9u32 {
            g.add_edge(0, v, 10);
        }
        let p = round_robin(10, 2);
        let mut host = GraphHost::new(g, p);
        let cfg = PartitionConfig {
            candidate_set_size: 32,
            imbalance_tolerance: 1,
            exchange_cooldown_ns: 0,
            min_total_score: 1,
        };
        let cap = capacity_bound(10, 2, &cfg);
        let mut policy = StreamPolicy::new();
        run(&mut policy, &mut host, &cfg, 4);
        for &s in host.partition.sizes() {
            assert!(
                s <= cap,
                "sizes {:?} exceed cap {cap}",
                host.partition.sizes()
            );
        }
        assert_eq!(host.partition.vertex_count(), 10);
    }

    #[test]
    fn stream_is_idempotent_once_settled() {
        // After enough rounds the placement reaches a fixed point: one
        // more full sweep issues zero migrations (ties keep incumbents).
        let g = ring(8);
        let p = round_robin(8, 2);
        let mut host = GraphHost::new(g, p);
        let cfg = PartitionConfig {
            candidate_set_size: 16,
            imbalance_tolerance: 2,
            exchange_cooldown_ns: 0,
            min_total_score: 1,
        };
        let mut policy = StreamPolicy::new();
        run(&mut policy, &mut host, &cfg, 6);
        let before = host.moves.len();
        run(&mut policy, &mut host, &cfg, 1);
        assert_eq!(host.moves.len(), before, "settled placement must not churn");
    }

    #[test]
    fn policies_skip_failed_servers() {
        let g = ring(6);
        let p = round_robin(6, 3);
        for kind in [
            RepartitionPolicyKind::Stream,
            RepartitionPolicyKind::DynamicBalanced,
        ] {
            let mut host = GraphHost::new(g.clone(), p.clone());
            host.failed[2] = true;
            let cfg = PartitionConfig::for_tests();
            let mut policy = crate::policy::build_policy::<u32>(
                kind,
                crate::policy::MigrationCostConfig::default(),
            );
            for r in 0..4 {
                match policy.scope() {
                    PolicyScope::PerServer => {
                        for s in 0..3 {
                            policy.round(&mut host, r, s, &cfg);
                        }
                    }
                    PolicyScope::Global => {
                        policy.round(&mut host, r, 0, &cfg);
                    }
                }
            }
            for (v, to) in &host.moves {
                assert_ne!(*to, 2, "{}: migrated {v:?} to a failed server", kind.name());
            }
        }
    }
}
