//! Standalone driver: the pairwise protocol over a static graph.
//!
//! This is the setting of Theorem 1: a fixed weighted graph, servers
//! repeatedly initiating pairwise exchanges. The driver exposes exactly the
//! mechanics the live runtime uses — candidate sets, ranked targets,
//! responder selection — but reads edges from a complete [`CommGraph`]
//! instead of per-server sketches, so convergence properties can be tested
//! in isolation from sampling noise.

use std::hash::Hash;

use crate::config::PartitionConfig;
use crate::exchange::{select_exchange, ExchangeRequest};
use crate::graph::{CommGraph, Partition};
use crate::score::{candidate_set, total_score, transfer_scores};

/// The per-vertex edge lists of one server, as the protocol consumes them.
pub fn local_view<V>(
    graph: &CommGraph<V>,
    partition: &Partition<V>,
    server: usize,
) -> Vec<(V, Vec<(V, u64)>)>
where
    V: Copy + Eq + Hash + Ord,
{
    partition
        .vertices_on(server)
        .into_iter()
        .map(|v| (v, graph.neighbors(&v)))
        .collect()
}

/// One initiation by server `initiator` (one execution of Alg. 1):
/// builds candidate sets toward every other server, walks the targets in
/// descending anticipated-score order, and applies the first non-empty
/// exchange to `partition`. Returns the number of migrations applied.
pub fn initiate_exchange<V>(
    graph: &CommGraph<V>,
    partition: &mut Partition<V>,
    initiator: usize,
    config: &PartitionConfig,
) -> usize
where
    V: Copy + Eq + Hash + Ord,
{
    let servers = partition.servers();
    let view = local_view(graph, partition, initiator);
    let locate = |v: &V| partition.server_of(v);
    let sets = candidate_set(&view, initiator, servers, config.candidate_set_size, locate);
    // Rank targets by anticipated total score.
    let mut targets: Vec<(usize, i64)> = sets
        .iter()
        .enumerate()
        .filter(|(q, set)| *q != initiator && !set.is_empty())
        .map(|(q, set)| (q, total_score(set)))
        .filter(|&(_, score)| score >= config.min_total_score)
        .collect();
    targets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    for (target, _) in targets {
        let request = ExchangeRequest {
            from: initiator,
            from_size: partition.sizes()[initiator],
            candidates: sets[target].clone(),
        };
        // Responder builds its own candidates toward the initiator.
        let responder_view = local_view(graph, partition, target);
        let own = candidate_set(
            &responder_view,
            target,
            servers,
            config.candidate_set_size,
            |v| partition.server_of(v),
        )
        .swap_remove(initiator);
        let outcome = select_exchange(&request, partition.sizes()[target], &own, config);
        if outcome.is_empty() {
            continue; // Try the next-best target (§4.2 fallback).
        }
        for v in &outcome.accepted {
            partition.migrate(v, target);
        }
        for v in &outcome.returned {
            partition.migrate(v, initiator);
        }
        return outcome.moves();
    }
    0
}

/// Convergence report of [`run_to_convergence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Cut cost after each full sweep (all servers initiating once).
    pub cost_history: Vec<u64>,
    /// Migrations applied in each sweep.
    pub moves_history: Vec<usize>,
    /// True when a full sweep produced no migration (a fixed point).
    pub converged: bool,
}

impl ConvergenceReport {
    /// Total migrations across all sweeps.
    pub fn total_moves(&self) -> usize {
        self.moves_history.iter().sum()
    }
}

/// Runs sweeps of the protocol (every server initiates once per sweep)
/// until a sweep makes no move or `max_sweeps` is reached.
pub fn run_to_convergence<V>(
    graph: &CommGraph<V>,
    partition: &mut Partition<V>,
    config: &PartitionConfig,
    max_sweeps: usize,
) -> ConvergenceReport
where
    V: Copy + Eq + Hash + Ord,
{
    let mut report = ConvergenceReport {
        cost_history: vec![graph.cut_cost(partition)],
        moves_history: Vec::new(),
        converged: false,
    };
    for _ in 0..max_sweeps {
        let mut moves = 0;
        for p in 0..partition.servers() {
            moves += initiate_exchange(graph, partition, p, config);
        }
        report.moves_history.push(moves);
        report.cost_history.push(graph.cut_cost(partition));
        if moves == 0 {
            report.converged = true;
            break;
        }
    }
    report
}

/// Checks the local-optimality condition of Theorem 1: every vertex either
/// has no positive transfer score toward any server, or each positive move
/// would break the pairwise balance constraint.
pub fn is_locally_optimal<V>(graph: &CommGraph<V>, partition: &Partition<V>, delta: usize) -> bool
where
    V: Copy + Eq + Hash + Ord,
{
    let servers = partition.servers();
    let sizes = partition.sizes().to_vec();
    for v in graph.vertices() {
        let Some(home) = partition.server_of(&v) else {
            continue;
        };
        let edges = graph.neighbors(&v);
        let scores = transfer_scores(&edges, home, servers, |u| partition.server_of(u));
        for (q, &score) in scores.iter().enumerate() {
            if q == home || score <= 0 {
                continue;
            }
            // A positive move must violate the balance constraint.
            let diff = (sizes[home] as i64 - 1 - (sizes[q] as i64 + 1)).abs();
            if diff <= delta as i64 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two four-cliques split across two servers the wrong way.
    fn crossed_cliques() -> (CommGraph<u32>, Partition<u32>) {
        let mut g = CommGraph::new();
        for group in [0u32, 10] {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    g.add_edge(group + a, group + b, 10);
                }
            }
        }
        // Weak cross-clique edge so the graph is connected.
        g.add_edge(0, 10, 1);
        let mut p = Partition::new(2);
        // Interleave: half of each clique on each server.
        for v in [0u32, 1, 10, 11] {
            p.place(v, 0);
        }
        for v in [2u32, 3, 12, 13] {
            p.place(v, 1);
        }
        (g, p)
    }

    #[test]
    fn exchange_untangles_cliques() {
        let (g, mut p) = crossed_cliques();
        let before = g.cut_cost(&p);
        let report = run_to_convergence(&g, &mut p, &PartitionConfig::for_tests(), 20);
        let after = g.cut_cost(&p);
        assert!(report.converged, "should reach a fixed point");
        assert!(after < before, "cost {before} -> {after}");
        // The optimal cut severs only the weak edge.
        assert_eq!(after, 1);
        // Cliques ended up whole.
        let s0 = p.server_of(&0).unwrap();
        for v in 1..4 {
            assert_eq!(p.server_of(&v), Some(s0));
        }
        let s1 = p.server_of(&10).unwrap();
        for v in 11..14 {
            assert_eq!(p.server_of(&(v as u32)), Some(s1));
        }
        assert_ne!(s0, s1, "balance keeps the cliques apart");
    }

    #[test]
    fn cost_is_monotone_nonincreasing() {
        let (g, mut p) = crossed_cliques();
        let report = run_to_convergence(&g, &mut p, &PartitionConfig::for_tests(), 20);
        for w in report.cost_history.windows(2) {
            assert!(w[1] <= w[0], "cost increased: {:?}", report.cost_history);
        }
    }

    #[test]
    fn balance_is_preserved() {
        let (g, mut p) = crossed_cliques();
        let config = PartitionConfig::for_tests();
        run_to_convergence(&g, &mut p, &config, 20);
        assert!(p.max_imbalance() <= config.imbalance_tolerance);
    }

    #[test]
    fn converged_partition_is_locally_optimal() {
        let (g, mut p) = crossed_cliques();
        let config = PartitionConfig::for_tests();
        let report = run_to_convergence(&g, &mut p, &config, 50);
        assert!(report.converged);
        assert!(is_locally_optimal(&g, &p, config.imbalance_tolerance));
    }

    #[test]
    fn already_optimal_partition_makes_no_move() {
        let (g, mut p) = crossed_cliques();
        let config = PartitionConfig::for_tests();
        run_to_convergence(&g, &mut p, &config, 50);
        let cost = g.cut_cost(&p);
        let report = run_to_convergence(&g, &mut p, &config, 5);
        assert!(report.converged);
        assert_eq!(report.total_moves(), 0);
        assert_eq!(g.cut_cost(&p), cost);
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g: CommGraph<u32> = CommGraph::new();
        let mut p = Partition::new(3);
        let report = run_to_convergence(&g, &mut p, &PartitionConfig::for_tests(), 5);
        assert!(report.converged);
        assert_eq!(report.cost_history, vec![0, 0]);
    }

    #[test]
    fn local_view_contains_all_local_vertices() {
        let (g, p) = crossed_cliques();
        let view = local_view(&g, &p, 0);
        let vertices: Vec<u32> = view.iter().map(|(v, _)| *v).collect();
        assert_eq!(vertices, vec![0, 1, 10, 11]);
        // Vertex 0's neighbors include its clique and the weak edge.
        let edges = &view[0].1;
        assert!(edges.contains(&(1, 10)));
        assert!(edges.contains(&(10, 1)));
    }
}
