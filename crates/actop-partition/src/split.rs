//! Hot-actor split decisions (data-parallel replication).
//!
//! The pairwise exchange protocol ([`crate::exchange`]) assumes every
//! actor fits on *some* server: it migrates whole activations. A
//! celebrity actor whose sustained request mass exceeds a single
//! server's service capacity breaks that assumption — no migration
//! target helps, the hot server saturates, and tail latency explodes.
//! Following the DPA load-balancer line of work, the runtime instead
//! **splits** such an actor across several read-only replicas and
//! routes read-mostly requests over them, keeping writes on the
//! primary.
//!
//! This module is the pure decision kernel: given one actor's observed
//! service demand over a detection window and the server's capacity
//! over that window, decide whether to add a replica, drop one, or
//! leave the actor alone. It owns no clocks, no RNG, and no directory
//! state, so the legacy and sharded runtimes share it verbatim and the
//! thresholds are unit-testable in isolation.

/// Tunables for the split detector. Embedded in the runtime's
/// `ReplicationConfig`; kept here so the decision logic and its
/// thresholds live together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitThresholds {
    /// Split when one actor's observed service demand over the window
    /// exceeds this fraction of a single server's capacity. The paper's
    /// load-balancing goal caps per-server utilization well below 1.0;
    /// 0.5 leaves headroom for the rest of the server's actors.
    pub capacity_fraction: f64,
    /// Hysteresis for merging back: drop a replica only when the
    /// *post-drop* per-activation demand would still sit below
    /// `capacity_fraction * drop_fraction` of capacity. Must be < 1 or
    /// a split would oscillate at the boundary.
    pub drop_fraction: f64,
    /// Hard cap on replicas per actor (not counting the primary).
    pub max_replicas: usize,
}

impl Default for SplitThresholds {
    fn default() -> Self {
        SplitThresholds {
            capacity_fraction: 0.5,
            drop_fraction: 0.6,
            max_replicas: 7,
        }
    }
}

impl SplitThresholds {
    /// Panics on degenerate settings (build-time inputs, not runtime
    /// data — same policy as `RuntimeConfig::validate`).
    pub fn validate(&self) {
        assert!(
            self.capacity_fraction > 0.0 && self.capacity_fraction <= 1.0,
            "capacity_fraction must be in (0, 1]"
        );
        assert!(
            self.drop_fraction > 0.0 && self.drop_fraction < 1.0,
            "drop_fraction must be in (0, 1) for hysteresis"
        );
        assert!(self.max_replicas >= 1, "max_replicas must be at least 1");
    }
}

/// What the detector decided for one actor this window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitDecision {
    /// Demand exceeds one server's share: add a replica.
    Split,
    /// Demand has fallen enough that one fewer activation still fits:
    /// drop a replica.
    Drop,
    /// Leave the activation set alone.
    Hold,
}

/// Decides split/drop/hold for one actor.
///
/// * `observed_ns` — service demand the *primary's* sketch attributed
///   to the actor over the window. With replicas active, read traffic
///   fans across activations, so this is already the per-activation
///   share, not the actor's total demand.
/// * `window_capacity_ns` — one server's service capacity over the
///   same window (`cores_per_server * window_ns`).
/// * `replicas` — current replica count (excluding the primary).
///
/// The drop test reconstructs total demand as `observed * (r + 1)`
/// (every activation carries the same per-request cost, and rendezvous
/// routing spreads reads near-uniformly), then asks whether `r`
/// activations would each stay below the hysteresis threshold.
pub fn decide(
    t: &SplitThresholds,
    observed_ns: u64,
    window_capacity_ns: u64,
    replicas: usize,
) -> SplitDecision {
    let cap = window_capacity_ns as f64 * t.capacity_fraction;
    let observed = observed_ns as f64;
    if observed > cap && replicas < t.max_replicas {
        return SplitDecision::Split;
    }
    if replicas > 0 {
        let total = observed * (replicas + 1) as f64;
        let per_activation_after_drop = total / replicas as f64;
        if per_activation_after_drop < cap * t.drop_fraction {
            return SplitDecision::Drop;
        }
    }
    SplitDecision::Hold
}

#[cfg(test)]
mod tests {
    use super::*;

    const WINDOW: u64 = 1_000_000_000;

    fn t() -> SplitThresholds {
        let t = SplitThresholds::default();
        t.validate();
        t
    }

    #[test]
    fn cold_actor_holds() {
        assert_eq!(decide(&t(), 0, WINDOW, 0), SplitDecision::Hold);
        assert_eq!(decide(&t(), 100_000_000, WINDOW, 0), SplitDecision::Hold);
    }

    #[test]
    fn hot_actor_splits_until_cap() {
        // 60% of capacity > 50% threshold.
        assert_eq!(decide(&t(), 600_000_000, WINDOW, 0), SplitDecision::Split);
        assert_eq!(decide(&t(), 600_000_000, WINDOW, 6), SplitDecision::Split);
        // At max_replicas the decision degrades to Hold, not Drop: the
        // per-activation share is still hot.
        assert_eq!(decide(&t(), 600_000_000, WINDOW, 7), SplitDecision::Hold);
    }

    #[test]
    fn cooled_actor_drops_with_hysteresis() {
        // One replica, per-activation share 10% of capacity. Total 20%;
        // a single activation at 20% sits below 50% * 0.6 = 30% — drop.
        assert_eq!(decide(&t(), 100_000_000, WINDOW, 1), SplitDecision::Drop);
        // Per-activation 20%: post-drop single activation carries 40%,
        // above the 30% hysteresis bar — hold, no flapping.
        assert_eq!(decide(&t(), 200_000_000, WINDOW, 1), SplitDecision::Hold);
    }

    #[test]
    fn boundary_is_strict() {
        // Exactly at the split threshold: no split (strict >).
        assert_eq!(decide(&t(), 500_000_000, WINDOW, 0), SplitDecision::Hold);
    }

    #[test]
    fn zero_load_replicated_actor_drops() {
        assert_eq!(decide(&t(), 0, WINDOW, 3), SplitDecision::Drop);
    }

    #[test]
    #[should_panic(expected = "drop_fraction must be in (0, 1)")]
    fn full_drop_fraction_panics() {
        SplitThresholds {
            drop_fraction: 1.0,
            ..SplitThresholds::default()
        }
        .validate();
    }
}
