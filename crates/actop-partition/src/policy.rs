//! Pluggable online repartitioning policies (ROADMAP item 3).
//!
//! The paper evaluates exactly one repartitioner — the pairwise exchange
//! protocol of §4 — against static placements. This module turns the
//! repartitioner into a policy slot: every algorithm implements
//! [`RepartitionPolicy`] against an abstract [`PolicyHost`], so the same
//! code runs over the live runtime (legacy and sharded backends), over a
//! static [`CommGraph`]/[`Partition`] pair in tests, and inside the
//! bake-off bench. The roster:
//!
//! * [`ExchangePolicy`] — the paper's protocol (the default), optionally
//!   with the migration-cost-aware objective: each selected move-set is
//!   charged the *measured* per-move migration tax (transfer-window stall
//!   plus directory-repair traffic) amortized over a configurable horizon,
//!   so an exchange only commits rounds whose communication savings pay
//!   the tax back ([`move_penalty`]).
//! * [`OneSidedPolicy`] — uncoordinated unilateral migration (§4.2's
//!   rejected design), live-runtime edition of
//!   [`crate::baselines::one_sided_sweep`].
//! * [`CentralizedPolicy`] — gathers every server's sampled view into one
//!   graph and runs [`crate::baselines::centralized_refine`]; the
//!   full-knowledge comparator.
//! * [`crate::online::DynamicBalancedPolicy`] — Räcke/Schmid/Zabrodin-style
//!   dynamic balanced partitioning (merge components on repeated
//!   communication, amortized repartition on capacity violation).
//! * [`crate::online::StreamPolicy`] — Le Merrer/Trédan-style streaming
//!   re-partitioning (greedily re-place the hottest vertices with a
//!   load-sensitive gain).

use std::hash::Hash;

use actop_sketch::FxHashMap;

use crate::config::PartitionConfig;
use crate::exchange::{select_exchange_with_cost, ExchangeRequest};
use crate::graph::{CommGraph, Partition};
use crate::score::{candidate_set, retain_above, total_score};

/// Which repartitioning algorithm drives actor placement. Selected via
/// `RuntimeConfig::repartition` / the `ACTOP_POLICY` environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepartitionPolicyKind {
    /// The paper's pairwise exchange protocol (the default).
    #[default]
    Exchange,
    /// The exchange protocol with the migration-cost-aware objective.
    ExchangeCostAware,
    /// Uncoordinated unilateral migration (§4.2's rejected design).
    OneSided,
    /// Le Merrer/Trédan-style streaming re-partitioning.
    Stream,
    /// Räcke/Schmid/Zabrodin-style dynamic balanced partitioning.
    DynamicBalanced,
    /// Centralized greedy refinement with full graph knowledge.
    Centralized,
}

impl RepartitionPolicyKind {
    /// Every selectable policy, in bake-off order.
    pub const ALL: [RepartitionPolicyKind; 6] = [
        RepartitionPolicyKind::Exchange,
        RepartitionPolicyKind::ExchangeCostAware,
        RepartitionPolicyKind::OneSided,
        RepartitionPolicyKind::Stream,
        RepartitionPolicyKind::DynamicBalanced,
        RepartitionPolicyKind::Centralized,
    ];

    /// The stable name used by `ACTOP_POLICY` and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            RepartitionPolicyKind::Exchange => "actop",
            RepartitionPolicyKind::ExchangeCostAware => "actop-cost",
            RepartitionPolicyKind::OneSided => "one-sided",
            RepartitionPolicyKind::Stream => "stream",
            RepartitionPolicyKind::DynamicBalanced => "dynamic",
            RepartitionPolicyKind::Centralized => "centralized",
        }
    }

    /// Parses a policy name (the inverse of [`Self::name`]).
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::ALL.iter().map(|k| k.name()).collect();
                format!("unknown policy {s:?}; expected one of {}", names.join(", "))
            })
    }
}

/// Amortization settings of the migration-cost-aware objective: a move's
/// communication savings must repay its migration tax within this many
/// partition-agent intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCostConfig {
    /// The amortization horizon, in agent intervals. A candidate's score
    /// is demand saved *per interval*, so a smaller horizon demands the
    /// tax back faster and vetoes more moves.
    pub horizon_intervals: u32,
}

impl Default for MigrationCostConfig {
    fn default() -> Self {
        MigrationCostConfig {
            horizon_intervals: 8,
        }
    }
}

/// Cumulative migration-cost measurements a host exposes to the
/// cost-aware objective. All counters are run-lifetime totals; the
/// penalty derives per-move averages from them, so the estimate sharpens
/// as migrations accumulate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSignals {
    /// Committed migrations so far.
    pub migrations: u64,
    /// Total transfer-window stall paid by those migrations, ns.
    pub stall_ns: u64,
    /// Repair traffic attributed to moves: directory repairs, forwarded
    /// messages, and stale responses (a measured upper bound — activation
    /// races contribute too).
    pub repair_msgs: u64,
    /// The configured transfer window, ns (0 = instant commit). Not part
    /// of the penalty — the tax is priced from measurement — but hosts
    /// report it so verifiers can bound what a single stall may cost.
    pub transfer_ns: u64,
    /// CPU overhead one remote message costs over a local one, ns — the
    /// exchange rate between stall time and score units.
    pub remote_cost_ns: u64,
}

/// The score penalty the cost-aware objective charges each migration: the
/// measured per-move migration tax (stall converted to message-equivalents
/// at `remote_cost_ns`, plus repair messages), amortized over the horizon.
/// An exchange's move-set must save strictly more sampled messages per
/// interval than `moves * penalty` to be worth its migrations.
///
/// Until the first migration commits the penalty is zero: the objective
/// prices moves from *measurement*, not from configuration, so a fresh
/// cluster consolidates exactly like the cost-oblivious protocol (that
/// initial consolidation is precisely the kind of move that amortizes)
/// and the first committed batch establishes the going rate. Seeding the
/// estimate from the configured transfer window instead freezes the
/// policy during the demand-sketch ramp — scores start below any
/// non-zero bar — and defers the whole consolidation into steady state,
/// which costs far more than the handful of unpriced first moves.
pub fn move_penalty(signals: &CostSignals, cost: &MigrationCostConfig) -> i64 {
    let n = signals.migrations;
    if n == 0 {
        return 0;
    }
    let stall_per_move = signals.stall_ns / n;
    let repair_per_move = signals.repair_msgs / n;
    let stall_msgs = stall_per_move / signals.remote_cost_ns.max(1);
    let tax = stall_msgs + repair_per_move;
    let horizon = u64::from(cost.horizon_intervals.max(1));
    (tax.div_ceil(horizon)).min(i64::MAX as u64) as i64
}

/// How a policy wants its control rounds scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyScope {
    /// One staggered round per server per interval (the initiator is the
    /// round's own server).
    PerServer,
    /// One round per interval over a global view (the initiator argument
    /// is ignored).
    Global,
}

/// What a repartition policy can observe and do during one control round.
/// Both runtime backends implement this over their serial-phase hooks;
/// [`GraphHost`] implements it over a static graph for tests and the
/// competitive-ratio harness.
pub trait PolicyHost<V> {
    /// Cluster size.
    fn servers(&self) -> usize;
    /// `server`'s sampled partition view: hosted vertices with weighted
    /// edges, sorted by vertex (edges sorted by peer).
    fn view(&mut self, server: usize) -> Vec<(V, Vec<(V, u64)>)>;
    /// Where a vertex currently lives.
    fn locate(&mut self, v: &V) -> Option<usize>;
    /// Vertices hosted per server (the balance-constraint input).
    fn sizes(&mut self) -> Vec<usize>;
    /// Whether a server is crashed (it neither responds nor receives).
    fn is_failed(&mut self, server: usize) -> bool;
    /// When the server last took part in an exchange, ns.
    fn last_exchange_ns(&mut self, server: usize) -> Option<u64>;
    /// Issues a migration (the host may refuse — pinned or in-flight
    /// vertices stay put; policies re-observe through `locate`).
    fn migrate(&mut self, v: V, to: usize);
    /// Stamps the exchange cooldown on both parties.
    fn note_exchange(&mut self, p: usize, q: usize);
    /// Measured migration-cost signals (defaults to "migration is free",
    /// which zeroes the cost-aware penalty).
    fn cost_signals(&mut self) -> CostSignals {
        CostSignals::default()
    }
}

/// An online repartitioning algorithm, driven in rounds by the control
/// agent. Implementations must be deterministic: same host state, same
/// decisions.
pub trait RepartitionPolicy<V> {
    /// Which selectable kind this policy implements.
    fn kind(&self) -> RepartitionPolicyKind;
    /// How rounds are scheduled.
    fn scope(&self) -> PolicyScope {
        PolicyScope::PerServer
    }
    /// Executes one control round. Returns the number of migrations
    /// issued.
    fn round(
        &mut self,
        host: &mut dyn PolicyHost<V>,
        now_ns: u64,
        initiator: usize,
        config: &PartitionConfig,
    ) -> usize;
}

/// Builds a boxed policy instance for a kind. `cost` only matters for
/// [`RepartitionPolicyKind::ExchangeCostAware`].
pub fn build_policy<V>(
    kind: RepartitionPolicyKind,
    cost: MigrationCostConfig,
) -> Box<dyn RepartitionPolicy<V>>
where
    V: Copy + Eq + Hash + Ord + 'static,
{
    match kind {
        RepartitionPolicyKind::Exchange => Box::new(ExchangePolicy { cost: None }),
        RepartitionPolicyKind::ExchangeCostAware => Box::new(ExchangePolicy { cost: Some(cost) }),
        RepartitionPolicyKind::OneSided => Box::new(OneSidedPolicy),
        RepartitionPolicyKind::Stream => Box::new(crate::online::StreamPolicy::new()),
        RepartitionPolicyKind::DynamicBalanced => {
            Box::new(crate::online::DynamicBalancedPolicy::new(
                crate::online::DynamicBalancedConfig::default(),
            ))
        }
        RepartitionPolicyKind::Centralized => Box::new(CentralizedPolicy),
    }
}

/// The per-server capacity the capacity-aware policies enforce: the
/// balanced share plus the configured imbalance tolerance.
pub(crate) fn capacity_bound(total: usize, servers: usize, config: &PartitionConfig) -> usize {
    total.div_ceil(servers.max(1)) + config.imbalance_tolerance
}

// ---------------------------------------------------------------------
// The paper's exchange protocol as a policy (optionally cost-aware).
// ---------------------------------------------------------------------

/// One initiation of the pairwise protocol (Alg. 1) per round: the
/// initiator scores candidates toward every server, the best-scoring
/// responder runs the joint greedy selection, the first non-empty outcome
/// is applied. With `cost` set, each selected move-set is charged the
/// measured migration tax via [`move_penalty`] and vetoed wholesale when
/// its savings cannot amortize it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangePolicy {
    /// Migration-cost-aware objective settings (`None` = the paper's
    /// cost-oblivious objective).
    pub cost: Option<MigrationCostConfig>,
}

impl<V> RepartitionPolicy<V> for ExchangePolicy
where
    V: Copy + Eq + Hash + Ord,
{
    fn kind(&self) -> RepartitionPolicyKind {
        if self.cost.is_some() {
            RepartitionPolicyKind::ExchangeCostAware
        } else {
            RepartitionPolicyKind::Exchange
        }
    }

    fn round(
        &mut self,
        host: &mut dyn PolicyHost<V>,
        now_ns: u64,
        initiator: usize,
        config: &PartitionConfig,
    ) -> usize {
        let servers = host.servers();
        if servers < 2 {
            return 0;
        }
        let view = host.view(initiator);
        if view.is_empty() {
            return 0;
        }
        let penalty = match &self.cost {
            None => 0,
            Some(cost) => move_penalty(&host.cost_signals(), cost),
        };
        let mut sets = candidate_set(&view, initiator, servers, config.candidate_set_size, |v| {
            host.locate(v)
        });
        // Prune non-positive scores only — the migration tax is charged
        // against the selected round as a whole inside the exchange, never
        // per candidate (a per-candidate bar splits actor groups and the
        // split halves migrate forever; see `select_exchange_with_cost`).
        retain_above(&mut sets, 0);
        let mut targets: Vec<(usize, i64)> = sets
            .iter()
            .enumerate()
            .filter(|(q, set)| *q != initiator && !set.is_empty())
            .map(|(q, set)| (q, total_score(set)))
            .filter(|&(_, score)| score >= config.min_total_score)
            .collect();
        targets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let sizes = host.sizes();
        for (target, _) in targets {
            // Crashed servers neither respond nor receive migrations.
            if host.is_failed(target) {
                continue;
            }
            // §4.2 cooldown: a server that exchanged recently rejects.
            if let Some(last) = host.last_exchange_ns(target) {
                if now_ns.saturating_sub(last) < config.exchange_cooldown_ns {
                    continue;
                }
            }
            let responder_view = host.view(target);
            let own = candidate_set(
                &responder_view,
                target,
                servers,
                config.candidate_set_size,
                |v| host.locate(v),
            )
            .swap_remove(initiator);
            let request = ExchangeRequest {
                from: initiator,
                from_size: sizes[initiator],
                candidates: sets[target].clone(),
            };
            let outcome = select_exchange_with_cost(&request, sizes[target], &own, config, penalty);
            if outcome.is_empty() {
                continue; // Fall back to the next-best server.
            }
            let moves = outcome.moves();
            for v in &outcome.accepted {
                host.migrate(*v, target);
            }
            for v in &outcome.returned {
                host.migrate(*v, initiator);
            }
            host.note_exchange(initiator, target);
            return moves;
        }
        0
    }
}

// ---------------------------------------------------------------------
// One-sided unilateral migration as a policy.
// ---------------------------------------------------------------------

/// §4.2's rejected design on the live runtime: each round, the initiating
/// server migrates its best-scoring candidates to their preferred servers
/// without asking anyone. No cooldown, no balance negotiation — the
/// baseline the exchange protocol exists to beat.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneSidedPolicy;

impl<V> RepartitionPolicy<V> for OneSidedPolicy
where
    V: Copy + Eq + Hash + Ord,
{
    fn kind(&self) -> RepartitionPolicyKind {
        RepartitionPolicyKind::OneSided
    }

    fn round(
        &mut self,
        host: &mut dyn PolicyHost<V>,
        _now_ns: u64,
        initiator: usize,
        config: &PartitionConfig,
    ) -> usize {
        let servers = host.servers();
        if servers < 2 {
            return 0;
        }
        let view = host.view(initiator);
        if view.is_empty() {
            return 0;
        }
        let sets = candidate_set(&view, initiator, servers, config.candidate_set_size, |v| {
            host.locate(v)
        });
        // Each vertex's single best destination, deduped across sets.
        let mut best: FxHashMap<V, (i64, usize)> = FxHashMap::default();
        for (q, set) in sets.iter().enumerate() {
            for c in set {
                let entry = best.entry(c.vertex).or_insert((c.score, q));
                if c.score > entry.0 {
                    *entry = (c.score, q);
                }
            }
        }
        let mut chosen: Vec<(V, i64, usize)> =
            best.into_iter().map(|(v, (s, q))| (v, s, q)).collect();
        chosen.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        chosen.truncate(config.candidate_set_size);
        let mut moves = 0;
        for (v, _, q) in chosen {
            if host.is_failed(q) {
                continue;
            }
            host.migrate(v, q);
            moves += 1;
        }
        moves
    }
}

// ---------------------------------------------------------------------
// Centralized hindsight refinement as a policy.
// ---------------------------------------------------------------------

/// The full-knowledge comparator: gathers every server's sampled view
/// into one [`CommGraph`], runs
/// [`centralized_refine`](crate::baselines::centralized_refine) over the
/// live placement, and applies the diff. Requires the whole graph at one
/// place — exactly what the paper's distributed protocol avoids — so it
/// runs as a single global round per interval.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralizedPolicy;

impl<V> RepartitionPolicy<V> for CentralizedPolicy
where
    V: Copy + Eq + Hash + Ord,
{
    fn kind(&self) -> RepartitionPolicyKind {
        RepartitionPolicyKind::Centralized
    }

    fn scope(&self) -> PolicyScope {
        PolicyScope::Global
    }

    fn round(
        &mut self,
        host: &mut dyn PolicyHost<V>,
        _now_ns: u64,
        _initiator: usize,
        config: &PartitionConfig,
    ) -> usize {
        let servers = host.servers();
        if servers < 2 {
            return 0;
        }
        // Assemble the global sampled graph and the live placement. Each
        // vertex appears in exactly one server's view (views are filtered
        // to directory-confirmed residents); edges sampled from both ends
        // accumulate, which at worst doubles every weight uniformly.
        let mut graph = CommGraph::new();
        let mut partition = Partition::new(servers);
        for server in 0..servers {
            for (v, edges) in host.view(server) {
                if partition.server_of(&v).is_none() {
                    partition.place(v, server);
                }
                for (peer, w) in edges {
                    graph.add_edge(v, peer, w);
                }
            }
        }
        // Peers observed only from the far side still need a placement
        // for their edges to count.
        for v in graph.vertices() {
            if partition.server_of(&v).is_none() {
                if let Some(s) = host.locate(&v) {
                    partition.place(v, s);
                }
            }
        }
        let refined = crate::baselines::centralized_refine(
            &graph,
            &mut partition,
            config.imbalance_tolerance,
            config.candidate_set_size,
        );
        if refined == 0 {
            return 0;
        }
        let mut moves = 0;
        for v in graph.vertices() {
            if let (Some(want), Some(have)) = (partition.server_of(&v), host.locate(&v)) {
                if want != have && !host.is_failed(want) {
                    host.migrate(v, want);
                    moves += 1;
                }
            }
        }
        moves
    }
}

// ---------------------------------------------------------------------
// A pure host over a static graph (tests, competitive-ratio harness).
// ---------------------------------------------------------------------

/// A [`PolicyHost`] over a [`CommGraph`] and [`Partition`]: the policy
/// sees the full graph as every server's "sampled" view and migrations
/// apply instantly. Used by the differential proptests and the
/// competitive-ratio harness; also handy for offline what-if analysis.
#[derive(Debug, Clone)]
pub struct GraphHost<V> {
    /// The demand graph backing every view.
    pub graph: CommGraph<V>,
    /// The live assignment migrations mutate.
    pub partition: Partition<V>,
    /// Every migration issued, in order.
    pub moves: Vec<(V, usize)>,
    /// Exchange-cooldown stamps per server.
    pub last_exchange: Vec<Option<u64>>,
    /// Crash flags per server.
    pub failed: Vec<bool>,
    /// Cost signals reported to cost-aware policies. `stall_ns`
    /// accumulates one `transfer_ns` per issued move, mirroring the
    /// runtime's transfer-window accounting.
    pub signals: CostSignals,
}

impl<V: Copy + Eq + Hash + Ord> GraphHost<V> {
    /// Wraps a graph and a starting partition.
    pub fn new(graph: CommGraph<V>, partition: Partition<V>) -> Self {
        let servers = partition.servers();
        GraphHost {
            graph,
            partition,
            moves: Vec::new(),
            last_exchange: vec![None; servers],
            failed: vec![false; servers],
            signals: CostSignals::default(),
        }
    }
}

impl<V: Copy + Eq + Hash + Ord> PolicyHost<V> for GraphHost<V> {
    fn servers(&self) -> usize {
        self.partition.servers()
    }

    fn view(&mut self, server: usize) -> Vec<(V, Vec<(V, u64)>)> {
        crate::driver::local_view(&self.graph, &self.partition, server)
    }

    fn locate(&mut self, v: &V) -> Option<usize> {
        self.partition.server_of(v)
    }

    fn sizes(&mut self) -> Vec<usize> {
        self.partition.sizes().to_vec()
    }

    fn is_failed(&mut self, server: usize) -> bool {
        self.failed[server]
    }

    fn last_exchange_ns(&mut self, server: usize) -> Option<u64> {
        self.last_exchange[server]
    }

    fn migrate(&mut self, v: V, to: usize) {
        if self.partition.server_of(&v).is_none_or(|s| s == to) {
            return;
        }
        self.partition.migrate(&v, to);
        self.moves.push((v, to));
        self.signals.migrations += 1;
        self.signals.stall_ns += self.signals.transfer_ns;
    }

    fn note_exchange(&mut self, p: usize, q: usize) {
        self.last_exchange[p] = Some(0);
        self.last_exchange[q] = Some(0);
    }

    fn cost_signals(&mut self) -> CostSignals {
        self.signals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> (CommGraph<u32>, Partition<u32>) {
        // Clique A = {0,1,2}, clique B = {10,11,12}, split badly across
        // two servers.
        let mut g = CommGraph::new();
        for &(a, b) in &[(0u32, 1u32), (0, 2), (1, 2)] {
            g.add_edge(a, b, 10);
        }
        for &(a, b) in &[(10u32, 11u32), (10, 12), (11, 12)] {
            g.add_edge(a, b, 10);
        }
        let mut p = Partition::new(2);
        p.place(0, 0);
        p.place(1, 1);
        p.place(2, 0);
        p.place(10, 1);
        p.place(11, 0);
        p.place(12, 1);
        (g, p)
    }

    fn run_rounds(kind: RepartitionPolicyKind, rounds: usize) -> GraphHost<u32> {
        let (g, p) = two_cliques();
        let mut host = GraphHost::new(g, p);
        let mut policy = build_policy::<u32>(kind, MigrationCostConfig::default());
        let cfg = PartitionConfig {
            exchange_cooldown_ns: 0,
            ..PartitionConfig::for_tests()
        };
        for r in 0..rounds {
            match policy.scope() {
                PolicyScope::PerServer => {
                    for s in 0..host.servers() {
                        policy.round(&mut host, r as u64, s, &cfg);
                    }
                }
                PolicyScope::Global => {
                    policy.round(&mut host, r as u64, 0, &cfg);
                }
            }
        }
        host
    }

    #[test]
    fn every_policy_uncrosses_the_cliques() {
        for kind in RepartitionPolicyKind::ALL {
            let host = run_rounds(kind, 4);
            let cut = host.graph.cut_cost(&host.partition);
            assert_eq!(
                cut,
                0,
                "{}: cut {cut} after rounds, sizes {:?}",
                kind.name(),
                host.partition.sizes()
            );
        }
    }

    #[test]
    fn policies_preserve_vertex_count() {
        for kind in RepartitionPolicyKind::ALL {
            let host = run_rounds(kind, 4);
            assert_eq!(host.partition.vertex_count(), 6, "{}", kind.name());
            assert_eq!(
                host.partition.sizes().iter().sum::<usize>(),
                6,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in RepartitionPolicyKind::ALL {
            assert_eq!(RepartitionPolicyKind::parse(kind.name()), Ok(kind));
        }
        assert!(RepartitionPolicyKind::parse("metis").is_err());
    }

    #[test]
    fn penalty_zero_without_transfer_or_history() {
        let signals = CostSignals {
            remote_cost_ns: 100_000,
            ..CostSignals::default()
        };
        assert_eq!(move_penalty(&signals, &MigrationCostConfig::default()), 0);
    }

    #[test]
    fn penalty_is_free_until_a_move_is_measured() {
        // A configured transfer window alone prices nothing: the first
        // consolidation must run exactly like the cost-oblivious protocol
        // and establish the measured rate.
        let signals = CostSignals {
            transfer_ns: 50_000_000,
            remote_cost_ns: 100_000,
            ..CostSignals::default()
        };
        assert_eq!(move_penalty(&signals, &MigrationCostConfig::default()), 0);
    }

    #[test]
    fn penalty_tracks_measured_averages() {
        // 10 moves, 500 ms total stall, 80 repair messages: per move
        // 50 ms stall and 8 repairs.
        let signals = CostSignals {
            migrations: 10,
            stall_ns: 500_000_000,
            repair_msgs: 80,
            transfer_ns: 50_000_000,
            remote_cost_ns: 100_000,
        };
        let p = move_penalty(&signals, &MigrationCostConfig::default());
        assert_eq!(p, 64, "stall 500ms/10 = 500 msgs; +8 repairs; ceil(508/8)");
    }

    #[test]
    fn penalty_shrinks_with_longer_horizon() {
        let signals = CostSignals {
            migrations: 1,
            stall_ns: 50_000_000,
            remote_cost_ns: 100_000,
            ..CostSignals::default()
        };
        let short = move_penalty(
            &signals,
            &MigrationCostConfig {
                horizon_intervals: 2,
            },
        );
        let long = move_penalty(
            &signals,
            &MigrationCostConfig {
                horizon_intervals: 32,
            },
        );
        assert!(short > long, "short {short} long {long}");
        assert!(long > 0);
    }

    #[test]
    fn cost_aware_exchange_vetoes_unamortizable_moves() {
        let (g, p) = two_cliques();
        // Edge weight 10 per clique edge: a perfect move saves ~20/round.
        // Report a measured migration tax of 40 message-equivalents per
        // interval: nothing can amortize, so the policy must sit still.
        let mut host = GraphHost::new(g, p);
        host.signals.migrations = 1;
        host.signals.stall_ns = 32_000_000; // 320 msgs / 8 intervals = 40.
        host.signals.remote_cost_ns = 100_000;
        let mut policy = ExchangePolicy {
            cost: Some(MigrationCostConfig::default()),
        };
        let cfg = PartitionConfig {
            exchange_cooldown_ns: 0,
            ..PartitionConfig::for_tests()
        };
        for s in 0..2 {
            let moved = RepartitionPolicy::<u32>::round(&mut policy, &mut host, 0, s, &cfg);
            assert_eq!(moved, 0, "penalty must veto initiator {s}");
        }
        assert!(host.moves.is_empty());
        // Drop the tax to zero: the same graph now repartitions.
        host.signals.stall_ns = 0;
        let moved: usize = (0..2)
            .map(|s| RepartitionPolicy::<u32>::round(&mut policy, &mut host, 0, s, &cfg))
            .sum();
        assert!(moved > 0, "free migration must move");
    }

    #[test]
    fn capacity_bound_is_share_plus_tolerance() {
        let cfg = PartitionConfig {
            imbalance_tolerance: 4,
            ..PartitionConfig::for_tests()
        };
        assert_eq!(capacity_bound(10, 3, &cfg), 8);
        assert_eq!(capacity_bound(9, 3, &cfg), 7);
    }
}
