//! Transfer scores and candidate-set selection (§4.2).
//!
//! The transfer score of vertex `v` (on server `p`) toward server `q` is
//! the communication-cost reduction its migration would achieve:
//!
//! ```text
//! R_{p,q}(v) = sum_{u in V_q} w_{v,u} - sum_{u in V_p} w_{v,u}
//! ```
//!
//! i.e. edges that become local minus edges that become remote. Each server
//! computes scores only from its sampled heavy-edge list, so scores are
//! estimates — the responder side of the protocol re-checks them against
//! its own state before accepting.

use std::hash::Hash;

/// Per-destination transfer scores for one vertex.
///
/// `edges` are the (sampled) weighted edges of the vertex; `home` is the
/// vertex's current server; `locate` maps a peer vertex to its server, if
/// known (unknown peers are ignored — they contribute to neither term).
///
/// Returns a vector of length `servers` with `R_{home,q}` per server `q`
/// (the entry for `home` itself is 0).
pub fn transfer_scores<V, F>(
    edges: &[(V, u64)],
    home: usize,
    servers: usize,
    mut locate: F,
) -> Vec<i64>
where
    V: Eq + Hash,
    F: FnMut(&V) -> Option<usize>,
{
    let mut per_server = vec![0i64; servers];
    let mut local_sum = 0i64;
    for (peer, w) in edges {
        let Some(server) = locate(peer) else {
            continue;
        };
        if server == home {
            local_sum += *w as i64;
        } else if server < servers {
            per_server[server] += *w as i64;
        }
    }
    for (q, score) in per_server.iter_mut().enumerate() {
        if q == home {
            *score = 0;
        } else {
            *score -= local_sum;
        }
    }
    per_server
}

/// A vertex offered in an exchange, together with its sampled edges so the
/// responder can re-score it and maintain scores during selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoredVertex<V> {
    /// The vertex.
    pub vertex: V,
    /// The initiator's estimated transfer score toward the destination.
    pub score: i64,
    /// The vertex's sampled weighted edges.
    pub edges: Vec<(V, u64)>,
}

/// Selects the candidate set toward each destination server: for every
/// server `q != home`, the up-to-`k` local vertices with the highest
/// positive `R_{home,q}`.
///
/// `vertices` provides, per local vertex, its sampled edge list. Returns
/// one candidate vector per server, each sorted by descending score with
/// deterministic tie-breaking on the vertex itself.
pub fn candidate_set<V, F>(
    vertices: &[(V, Vec<(V, u64)>)],
    home: usize,
    servers: usize,
    k: usize,
    mut locate: F,
) -> Vec<Vec<ScoredVertex<V>>>
where
    V: Copy + Eq + Hash + Ord,
    F: FnMut(&V) -> Option<usize>,
{
    let mut per_server: Vec<Vec<ScoredVertex<V>>> = vec![Vec::new(); servers];
    for (vertex, edges) in vertices {
        let scores = transfer_scores(edges, home, servers, &mut locate);
        for (q, &score) in scores.iter().enumerate() {
            if q == home || score <= 0 {
                continue;
            }
            per_server[q].push(ScoredVertex {
                vertex: *vertex,
                score,
                edges: edges.clone(),
            });
        }
    }
    for candidates in &mut per_server {
        candidates.sort_by(|a, b| b.score.cmp(&a.score).then(a.vertex.cmp(&b.vertex)));
        candidates.truncate(k);
    }
    per_server
}

/// Total anticipated score of a candidate set — what the initiator uses to
/// rank destination servers.
pub fn total_score<V>(candidates: &[ScoredVertex<V>]) -> i64 {
    candidates.iter().map(|c| c.score).sum()
}

/// Drops candidates whose score does not strictly exceed `threshold` from
/// every per-server set. The migration-cost-aware objective prunes offers
/// that could never repay the migration tax before they are even sent; at
/// `threshold = 0` this is a no-op, since [`candidate_set`] only emits
/// positive-score candidates.
pub fn retain_above<V>(sets: &mut [Vec<ScoredVertex<V>>], threshold: i64) {
    if threshold <= 0 {
        return;
    }
    for set in sets {
        set.retain(|c| c.score > threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_counts_remote_minus_local() {
        // v on server 0; peers: a on 0 (w 5), b on 1 (w 7), c on 1 (w 3),
        // d on 2 (w 4).
        let edges = vec![("a", 5u64), ("b", 7), ("c", 3), ("d", 4)];
        let locate = |peer: &&str| match *peer {
            "a" => Some(0),
            "b" | "c" => Some(1),
            "d" => Some(2),
            _ => None,
        };
        let scores = transfer_scores(&edges, 0, 3, locate);
        assert_eq!(scores[0], 0);
        assert_eq!(scores[1], 10 - 5);
        assert_eq!(scores[2], 4 - 5);
    }

    #[test]
    fn unknown_peers_are_ignored() {
        let edges = vec![("x", 100u64), ("b", 7)];
        let scores = transfer_scores(&edges, 0, 2, |p: &&str| (*p == "b").then_some(1));
        assert_eq!(scores[1], 7);
    }

    #[test]
    fn isolated_vertex_has_zero_scores() {
        let edges: Vec<(u32, u64)> = vec![];
        let scores = transfer_scores(&edges, 0, 4, |_| None);
        assert_eq!(scores, vec![0, 0, 0, 0]);
    }

    #[test]
    fn candidate_set_keeps_top_k_positive() {
        // Three vertices on server 0, all pulled toward server 1 with
        // different strengths; k = 2 keeps the two strongest.
        let vertices = vec![
            (1u32, vec![(10u32, 5u64)]),
            (2, vec![(10, 9)]),
            (3, vec![(10, 7)]),
            (4, vec![(5, 2)]), // Peer on home server: negative score.
        ];
        let locate = |peer: &u32| match peer {
            10 => Some(1),
            5 => Some(0),
            _ => None,
        };
        let sets = candidate_set(&vertices, 0, 2, 2, locate);
        let toward_1: Vec<u32> = sets[1].iter().map(|c| c.vertex).collect();
        assert_eq!(toward_1, vec![2, 3], "top-2 by score");
        assert_eq!(total_score(&sets[1]), 16);
        assert!(sets[0].is_empty(), "no self-candidates");
    }

    #[test]
    fn ties_break_deterministically_by_vertex() {
        let vertices = vec![
            (7u32, vec![(100u32, 5u64)]),
            (3, vec![(100, 5)]),
            (9, vec![(100, 5)]),
        ];
        let sets = candidate_set(&vertices, 0, 2, 2, |p: &u32| (*p == 100).then_some(1));
        let picked: Vec<u32> = sets[1].iter().map(|c| c.vertex).collect();
        assert_eq!(picked, vec![3, 7]);
    }

    #[test]
    fn retain_above_prunes_only_past_the_threshold() {
        let vertices = vec![
            (1u32, vec![(10u32, 5u64)]),
            (2, vec![(10, 9)]),
            (3, vec![(10, 7)]),
        ];
        let full = candidate_set(&vertices, 0, 2, 8, |p: &u32| (*p == 10).then_some(1));

        let mut sets = full.clone();
        retain_above(&mut sets, 0);
        assert_eq!(sets, full, "threshold 0 is a no-op");

        let mut sets = full.clone();
        retain_above(&mut sets, -3);
        assert_eq!(sets, full, "negative thresholds never prune");

        let mut sets = full.clone();
        retain_above(&mut sets, 6);
        let kept: Vec<u32> = sets[1].iter().map(|c| c.vertex).collect();
        assert_eq!(kept, vec![2, 3], "scores 9 and 7 exceed 6; 5 does not");
    }

    #[test]
    fn vertex_with_balanced_edges_not_a_candidate() {
        // Equal weight home and away: score 0, not positive, excluded.
        let vertices = vec![(1u32, vec![(2u32, 5u64), (3u32, 5u64)])];
        let locate = |peer: &u32| match peer {
            2 => Some(0),
            3 => Some(1),
            _ => None,
        };
        let sets = candidate_set(&vertices, 0, 2, 8, locate);
        assert!(sets[1].is_empty());
    }
}
