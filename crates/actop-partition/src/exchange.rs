//! The pairwise coordination protocol (Alg. 1): exchange-subset selection.
//!
//! Initiator `p` sends server `q` an [`ExchangeRequest`] carrying a
//! candidate set `S` of scored vertices (with their sampled edges). The
//! responder `q` builds its own candidate set `T` toward `p` and runs the
//! paper's iterative greedy procedure to jointly pick the accepted subset
//! `S0 ⊆ S` and the returned subset `T0 ⊆ T`:
//!
//! 1. Repeatedly take the candidate with the highest *current* transfer
//!    score across both sets.
//! 2. If moving it would violate the balance constraint
//!    `||V_p| - |V_q|| <= delta`, take the best candidate from the other
//!    set instead.
//! 3. After each move, update the scores of the remaining candidates that
//!    share an edge with the moved vertex: candidates on the same side gain
//!    `2w` (their heavy peer now precedes them), candidates on the opposite
//!    side lose `2w`.
//! 4. Stop when no remaining candidate has a positive score or every move
//!    would break the balance constraint.
//!
//! Only positive-score moves are applied, which is what makes the total
//! communication cost monotone non-increasing (Theorem 1). `q` may end up
//! accepting nothing — e.g. when `p` scored against a stale view — which is
//! the protocol's defense against sampled and outdated graphs.

use actop_sketch::FxHashMap;
use std::hash::Hash;

use crate::config::PartitionConfig;
use crate::score::ScoredVertex;

/// An exchange request from initiator `p` to responder `q`.
#[derive(Debug, Clone)]
pub struct ExchangeRequest<V> {
    /// The initiating server `p`.
    pub from: usize,
    /// `|V_p|` as known to the initiator.
    pub from_size: usize,
    /// The candidate set `S`, scored toward the responder.
    pub candidates: Vec<ScoredVertex<V>>,
}

/// The responder's decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeOutcome<V> {
    /// `S0`: vertices from the initiator the responder accepts (they
    /// migrate `p -> q`).
    pub accepted: Vec<V>,
    /// `T0`: the responder's own vertices transferred back (`q -> p`).
    pub returned: Vec<V>,
    /// The sum of every chosen vertex's transfer score *at the moment it
    /// was selected* (after step-3 updates from earlier moves): the
    /// exchange's estimated per-interval communication savings, in
    /// sampled-score units. This is what the cost-aware veto weighs
    /// against the migration tax.
    pub gain: i64,
}

impl<V> ExchangeOutcome<V> {
    /// True when the exchange moves nothing.
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty() && self.returned.is_empty()
    }

    /// Total number of migrations in this exchange.
    pub fn moves(&self) -> usize {
        self.accepted.len() + self.returned.len()
    }
}

#[derive(Debug)]
struct Item<V> {
    vertex: V,
    score: i64,
    /// True for `S` (initiator-side) candidates, false for `T`.
    from_initiator: bool,
    taken: bool,
}

/// Runs the responder's greedy selection.
///
/// `own_candidates` is the responder's candidate set `T` toward the
/// initiator (built with [`crate::score::candidate_set`]). Both candidate
/// sets carry sampled edges; the pairwise weights between candidates drive
/// the score updates of step 3.
pub fn select_exchange<V>(
    request: &ExchangeRequest<V>,
    responder_size: usize,
    own_candidates: &[ScoredVertex<V>],
    config: &PartitionConfig,
) -> ExchangeOutcome<V>
where
    V: Copy + Eq + Hash + Ord,
{
    select_exchange_with_cost(request, responder_size, own_candidates, config, 0)
}

/// [`select_exchange`] with a migration-cost penalty, charged at *round*
/// granularity: the greedy selection runs exactly as the paper specifies,
/// and the finished move-set is then accepted only if its total gain
/// strictly exceeds `moves * penalty` — i.e. the round's communication
/// savings amortize its total migration tax within the horizon the
/// penalty was derived for. Otherwise the whole exchange is vetoed and
/// nothing moves.
///
/// The veto is deliberately all-or-nothing rather than per-candidate: a
/// per-candidate score bar splits tightly-coupled actor groups (the
/// high scorers migrate, the rest stay behind), and the split halves
/// then generate above-bar cross-traffic forever — a drip of taxed
/// migrations that never converges. Judging the round as a whole keeps
/// the balance negotiation and group structure of the paper's procedure
/// intact and merely decides whether this round is worth paying for.
///
/// At `penalty = 0` this is exactly the paper's procedure — the default
/// protocol delegates here.
pub fn select_exchange_with_cost<V>(
    request: &ExchangeRequest<V>,
    responder_size: usize,
    own_candidates: &[ScoredVertex<V>],
    config: &PartitionConfig,
    penalty: i64,
) -> ExchangeOutcome<V>
where
    V: Copy + Eq + Hash + Ord,
{
    let mut items: Vec<Item<V>> =
        Vec::with_capacity(request.candidates.len() + own_candidates.len());
    let mut index: FxHashMap<V, usize> = FxHashMap::default();
    for c in &request.candidates {
        index.insert(c.vertex, items.len());
        items.push(Item {
            vertex: c.vertex,
            score: c.score,
            from_initiator: true,
            taken: false,
        });
    }
    for c in own_candidates {
        if index.contains_key(&c.vertex) {
            continue; // A vertex cannot be on both sides; trust our own side.
        }
        index.insert(c.vertex, items.len());
        items.push(Item {
            vertex: c.vertex,
            score: c.score,
            from_initiator: false,
            taken: false,
        });
    }

    // Pairwise weights between candidates, from both edge samples (take the
    // larger estimate when both sides observed the edge).
    let mut pair_w: FxHashMap<(usize, usize), u64> = FxHashMap::default();
    let mut note_edges = |cands: &[ScoredVertex<V>]| {
        for c in cands {
            let Some(&i) = index.get(&c.vertex) else {
                continue;
            };
            for (peer, w) in &c.edges {
                if let Some(&j) = index.get(peer) {
                    if i != j {
                        let key = (i.min(j), i.max(j));
                        let entry = pair_w.entry(key).or_default();
                        *entry = (*entry).max(*w);
                    }
                }
            }
        }
    };
    note_edges(&request.candidates);
    note_edges(own_candidates);

    let mut p_size = request.from_size as i64;
    let mut q_size = responder_size as i64;
    let delta = config.imbalance_tolerance as i64;
    let mut outcome = ExchangeOutcome {
        accepted: Vec::new(),
        returned: Vec::new(),
        gain: 0,
    };

    loop {
        // Balance feasibility per side: an S-move shifts one vertex p -> q,
        // a T-move shifts one q -> p. A move is legal when the post-move
        // pair difference is within `delta`, or when it strictly shrinks an
        // already-excessive difference (otherwise a pair that drifted past
        // `delta` — possible with three or more servers, since the
        // constraint is only checked pairwise — could never recover).
        let pre = (p_size - q_size).abs();
        let s_post = (p_size - 1 - (q_size + 1)).abs();
        let t_post = (p_size + 1 - (q_size - 1)).abs();
        let s_ok = s_post <= delta || s_post < pre;
        let t_ok = t_post <= delta || t_post < pre;
        // Best live candidate per side (deterministic tie-break by vertex).
        let best_of = |side: bool, items: &[Item<V>]| -> Option<usize> {
            let mut best: Option<usize> = None;
            for (i, item) in items.iter().enumerate() {
                if item.taken || item.from_initiator != side || item.score <= 0 {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(b) => {
                        let cur = (items[b].score, std::cmp::Reverse(items[b].vertex));
                        let cand = (item.score, std::cmp::Reverse(item.vertex));
                        if cand > cur {
                            Some(i)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            best
        };
        let best_s = best_of(true, &items);
        let best_t = best_of(false, &items);

        // Step 1/2: highest score overall, deflecting to the other set when
        // the balance constraint blocks the winner.
        let choice = match (best_s, best_t) {
            (Some(s), Some(t)) => {
                let s_key = (items[s].score, std::cmp::Reverse(items[s].vertex));
                let t_key = (items[t].score, std::cmp::Reverse(items[t].vertex));
                let (first, first_ok, second, second_ok) = if s_key >= t_key {
                    (s, s_ok, t, t_ok)
                } else {
                    (t, t_ok, s, s_ok)
                };
                if first_ok {
                    Some(first)
                } else if second_ok {
                    Some(second)
                } else {
                    None
                }
            }
            (Some(s), None) => s_ok.then_some(s),
            (None, Some(t)) => t_ok.then_some(t),
            (None, None) => None,
        };
        let Some(chosen) = choice else {
            break;
        };

        // Apply the move.
        items[chosen].taken = true;
        outcome.gain += items[chosen].score;
        let moved_side = items[chosen].from_initiator;
        if moved_side {
            p_size -= 1;
            q_size += 1;
            outcome.accepted.push(items[chosen].vertex);
        } else {
            p_size += 1;
            q_size -= 1;
            outcome.returned.push(items[chosen].vertex);
        }

        // Step 3: update remaining candidates sharing an edge with it.
        for (i, item) in items.iter_mut().enumerate() {
            if item.taken || i == chosen {
                continue;
            }
            let key = (i.min(chosen), i.max(chosen));
            let Some(&w) = pair_w.get(&key) else {
                continue;
            };
            let delta_score = 2 * w as i64;
            if item.from_initiator == moved_side {
                item.score += delta_score;
            } else {
                item.score -= delta_score;
            }
        }
    }
    // The cost-aware veto: the round's savings must strictly exceed its
    // total migration tax, or nothing moves.
    if penalty > 0 && outcome.gain <= outcome.moves() as i64 * penalty {
        return ExchangeOutcome {
            accepted: Vec::new(),
            returned: Vec::new(),
            gain: 0,
        };
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(vertex: u32, score: i64, edges: Vec<(u32, u64)>) -> ScoredVertex<u32> {
        ScoredVertex {
            vertex,
            score,
            edges,
        }
    }

    fn config(delta: usize) -> PartitionConfig {
        PartitionConfig {
            imbalance_tolerance: delta,
            ..PartitionConfig::for_tests()
        }
    }

    #[test]
    fn accepts_positive_candidates_within_balance() {
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![cand(1, 5, vec![]), cand(2, 3, vec![])],
        };
        let outcome = select_exchange(&request, 10, &[], &config(4));
        assert_eq!(outcome.accepted, vec![1, 2]);
        assert!(outcome.returned.is_empty());
    }

    #[test]
    fn rejects_non_positive_candidates() {
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![cand(1, 0, vec![]), cand(2, -4, vec![])],
        };
        let outcome = select_exchange(&request, 10, &[], &config(8));
        assert!(outcome.is_empty());
    }

    #[test]
    fn balance_constraint_deflects_to_other_set() {
        // p has 10, q has 10, delta = 2: at most one net S-move before the
        // difference hits 2... then a T-move rebalances and allows more.
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![cand(1, 9, vec![]), cand(2, 8, vec![]), cand(3, 7, vec![])],
        };
        let own = vec![cand(100, 6, vec![]), cand(101, 5, vec![])];
        let outcome = select_exchange(&request, 10, &own, &config(2));
        // Sequence: S(1) ok (9-11); S(2) would make 8-12, blocked, deflect
        // to T(100) (10-10); S(2) ok (9-11); S(3) blocked, deflect T(101)
        // (10-10); S(3) ok (9-11). Balance forces strict alternation.
        assert_eq!(outcome.accepted, vec![1, 2, 3]);
        assert_eq!(outcome.returned, vec![100, 101]);
    }

    #[test]
    fn score_updates_same_side_boost() {
        // Vertices 1 and 2 (both on p) share a heavy edge. Once 1 moves to
        // q, 2's score should rise by 2w and make it eligible.
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![
                cand(1, 10, vec![(2, 6)]),
                cand(2, -5, vec![(1, 6)]), // Not positive initially.
            ],
        };
        let outcome = select_exchange(&request, 10, &[], &config(10));
        // After moving 1: score(2) = -5 + 12 = 7 > 0, accepted.
        assert_eq!(outcome.accepted, vec![1, 2]);
    }

    #[test]
    fn score_updates_opposite_side_penalty() {
        // Vertex 1 on p and vertex 100 on q communicate heavily; moving 1
        // to q must make returning 100 to p unattractive.
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![cand(1, 20, vec![(100, 8)])],
        };
        let own = vec![cand(100, 10, vec![(1, 8)])];
        let outcome = select_exchange(&request, 10, &own, &config(10));
        assert_eq!(outcome.accepted, vec![1]);
        // score(100) = 10 - 16 = -6: stays on q, where vertex 1 now lives.
        assert!(outcome.returned.is_empty());
    }

    #[test]
    fn empty_request_accepts_nothing_but_may_return() {
        // Even with an empty S, q can push its own positive candidates.
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![],
        };
        let own = vec![cand(100, 4, vec![])];
        let outcome = select_exchange(&request, 10, &own, &config(4));
        assert_eq!(outcome.returned, vec![100]);
        assert!(outcome.accepted.is_empty());
    }

    #[test]
    fn severe_imbalance_blocks_everything() {
        // q is already delta-heavier than p; accepting more only worsens it
        // and there is nothing to return.
        let request = ExchangeRequest {
            from: 0,
            from_size: 5,
            candidates: vec![cand(1, 100, vec![])],
        };
        let outcome = select_exchange(&request, 9, &[], &config(2));
        assert!(outcome.is_empty());
    }

    #[test]
    fn rebalancing_flows_through_t_moves() {
        // q much heavier than p: T-moves strictly reduce the pairwise
        // imbalance, so they are allowed even though the post-move
        // difference still exceeds delta; S-moves (which would widen it)
        // stay blocked.
        let request = ExchangeRequest {
            from: 0,
            from_size: 4,
            candidates: vec![cand(1, 50, vec![])],
        };
        let own = vec![cand(100, 3, vec![]), cand(101, 2, vec![])];
        let outcome = select_exchange(&request, 10, &own, &config(2));
        // T(100): (4,10) -> (5,9), diff 6 -> 4: allowed. T(101): (5,9) ->
        // (6,8), diff 2 <= delta: allowed. S(1) would widen the diff at
        // every step and never runs.
        assert_eq!(outcome.returned, vec![100, 101]);
        assert!(outcome.accepted.is_empty());
    }

    #[test]
    fn moderate_imbalance_rebalances_via_t() {
        let request = ExchangeRequest {
            from: 0,
            from_size: 8,
            candidates: vec![cand(1, 50, vec![])],
        };
        let own = vec![cand(100, 3, vec![]), cand(101, 2, vec![])];
        let outcome = select_exchange(&request, 12, &own, &config(2));
        // S(1) 7-13 blocked (diff 6); T(100): 9-11, diff 2, ok. Then S(1):
        // 8-12 diff 4 blocked; T(101): 10-10 ok. Then S(1): 9-11 ok.
        assert_eq!(outcome.returned, vec![100, 101]);
        assert_eq!(outcome.accepted, vec![1]);
    }

    #[test]
    fn zero_penalty_is_the_identity() {
        // The default protocol and the cost-aware one at penalty 0 must be
        // the same procedure (the golden byte-compat hinges on this).
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![
                cand(1, 10, vec![(2, 6)]),
                cand(2, -5, vec![(1, 6)]),
                cand(3, 1, vec![]),
            ],
        };
        let own = vec![cand(100, 4, vec![]), cand(101, 1, vec![])];
        let a = select_exchange(&request, 10, &own, &config(2));
        let b = select_exchange_with_cost(&request, 10, &own, &config(2), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn penalty_vetoes_rounds_that_cannot_amortize() {
        // Selection picks [1, 2] with total gain 5 + 3 = 8 over 2 moves.
        // The veto compares the whole round: at penalty 3 the tax is 6 < 8
        // (kept, group intact — no per-candidate splitting); at penalty 4
        // the tax is 8, not strictly beaten, and nothing moves.
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![cand(1, 5, vec![]), cand(2, 3, vec![])],
        };
        let outcome = select_exchange_with_cost(&request, 10, &[], &config(4), 3);
        assert_eq!(outcome.accepted, vec![1, 2]);
        assert_eq!(outcome.gain, 8);
        let outcome = select_exchange_with_cost(&request, 10, &[], &config(4), 4);
        assert!(outcome.is_empty());
        assert_eq!(outcome.gain, 0);
    }

    #[test]
    fn gain_counts_updated_scores() {
        // Vertex 2's score rises from 4 to 16 once its heavy peer moves;
        // the round's gain is 20 + 16 = 36, so the veto threshold sits at
        // penalty 18 (2 moves), not at the naive 12 from initial scores.
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![cand(1, 20, vec![(2, 6)]), cand(2, 4, vec![(1, 6)])],
        };
        let outcome = select_exchange_with_cost(&request, 10, &[], &config(10), 17);
        assert_eq!(outcome.accepted, vec![1, 2]);
        assert_eq!(outcome.gain, 36);
        let outcome = select_exchange_with_cost(&request, 10, &[], &config(10), 18);
        assert!(outcome.is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let request = ExchangeRequest {
            from: 0,
            from_size: 10,
            candidates: vec![cand(5, 7, vec![]), cand(3, 7, vec![])],
        };
        let outcome = select_exchange(&request, 10, &[], &config(10));
        assert_eq!(outcome.accepted, vec![3, 5], "lower vertex id first");
    }
}
