//! Property tests for Theorem 1: on a static graph the pairwise protocol
//! converges to a balanced, locally optimal partition with monotonically
//! non-increasing cost.

use actop_partition::driver::{is_locally_optimal, run_to_convergence};
use actop_partition::{CommGraph, Partition, PartitionConfig};
use proptest::prelude::*;

/// A random graph plus an initial assignment.
#[derive(Debug, Clone)]
struct Instance {
    edges: Vec<(u16, u16, u8)>,
    assignment: Vec<u8>,
    servers: usize,
    vertices: u16,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (2usize..5, 6u16..40).prop_flat_map(|(servers, vertices)| {
        let edges = proptest::collection::vec((0..vertices, 0..vertices, 1u8..20), 1..120);
        let assignment = proptest::collection::vec(0u8..servers as u8, vertices as usize);
        (edges, assignment).prop_map(move |(edges, assignment)| Instance {
            edges,
            assignment,
            servers,
            vertices,
        })
    })
}

fn build(instance: &Instance) -> (CommGraph<u16>, Partition<u16>) {
    let mut graph = CommGraph::new();
    for v in 0..instance.vertices {
        graph.add_vertex(v);
    }
    for &(a, b, w) in &instance.edges {
        graph.add_edge(a, b, w as u64);
    }
    let mut partition = Partition::new(instance.servers);
    for (v, &s) in instance.assignment.iter().enumerate() {
        partition.place(v as u16, s as usize);
    }
    (graph, partition)
}

fn config() -> PartitionConfig {
    PartitionConfig {
        candidate_set_size: 6,
        imbalance_tolerance: 3,
        exchange_cooldown_ns: 0,
        min_total_score: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cost never increases across sweeps (the Theorem 1 argument).
    #[test]
    fn cost_is_monotone(instance in arb_instance()) {
        let (graph, mut partition) = build(&instance);
        let report = run_to_convergence(&graph, &mut partition, &config(), 30);
        for w in report.cost_history.windows(2) {
            prop_assert!(w[1] <= w[0], "cost history {:?}", report.cost_history);
        }
    }

    /// The protocol reaches a fixed point in finitely many sweeps.
    #[test]
    fn protocol_converges(instance in arb_instance()) {
        let (graph, mut partition) = build(&instance);
        let report = run_to_convergence(&graph, &mut partition, &config(), 60);
        prop_assert!(report.converged, "moves {:?}", report.moves_history);
    }

    /// Exchanges keep the global imbalance bounded. The protocol enforces
    /// the constraint only for the *exchanging pair*, so with three or more
    /// servers the global spread can drift past `delta` (a server can keep
    /// shrinking through different partners, each pairwise-legal, and
    /// imbalance-*reducing* moves are allowed even past `delta`); the drift
    /// stays within a couple of `delta` of the starting spread because a
    /// server may only shrink against partners close to its own size.
    #[test]
    fn imbalance_stays_bounded(instance in arb_instance()) {
        let (graph, mut partition) = build(&instance);
        let before = partition.max_imbalance();
        let cfg = config();
        run_to_convergence(&graph, &mut partition, &cfg, 30);
        let bound = before.max(cfg.imbalance_tolerance) + 2 * cfg.imbalance_tolerance;
        prop_assert!(
            partition.max_imbalance() <= bound,
            "imbalance {} > bound {bound}",
            partition.max_imbalance()
        );
    }

    /// At the fixed point, the partition is locally optimal in the sense of
    /// Theorem 1 (no positive-score move fits the balance constraint).
    #[test]
    fn fixed_point_is_locally_optimal(instance in arb_instance()) {
        let (graph, mut partition) = build(&instance);
        let cfg = config();
        let report = run_to_convergence(&graph, &mut partition, &cfg, 60);
        prop_assume!(report.converged);
        prop_assert!(is_locally_optimal(&graph, &partition, cfg.imbalance_tolerance));
    }

    /// Vertices are conserved: nothing is dropped or duplicated by any
    /// number of exchanges.
    #[test]
    fn vertices_are_conserved(instance in arb_instance()) {
        let (graph, mut partition) = build(&instance);
        run_to_convergence(&graph, &mut partition, &config(), 30);
        prop_assert_eq!(partition.vertex_count(), instance.vertices as usize);
        let total: usize = partition.sizes().iter().sum();
        prop_assert_eq!(total, instance.vertices as usize);
    }
}
