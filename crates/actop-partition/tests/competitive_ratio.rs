//! Competitive-ratio property test (ISSUE 10, satellite 2): on ring
//! demand sequences — the adversarial family the online balanced
//! partitioning literature builds its lower bounds from — the online
//! policies' total cost must stay within a pinned factor of the
//! *hindsight* cost of [`centralized_refine`] run once over the fully
//! revealed graph.
//!
//! Cost model (the bake-off's currency, discretized): each round charges
//! the round's demand that crosses the partition in effect after the
//! policy's reaction, plus `ALPHA` per migration issued. The hindsight
//! comparator sees every round up front, repartitions once before the
//! sequence starts, pays `ALPHA` for each vertex it relocated, and then
//! serves all rounds from that static placement. The online policy only
//! ever sees the demand revealed so far, so the pinned factor bounds how
//! much the lack of foresight may cost.
//!
//! [`centralized_refine`]: actop_partition::baselines::centralized_refine

use actop_partition::{
    baselines::centralized_refine, build_policy, CommGraph, GraphHost, MigrationCostConfig,
    Partition, PartitionConfig, PolicyScope, RepartitionPolicyKind,
};
use proptest::prelude::*;

/// Cost of one migration, in units of one crossing demand unit. A move
/// must be worth a few rounds of traffic — the same shape the runtime's
/// transfer-window stall gives migrations in the bake-off.
const ALPHA: u64 = 4;

/// The pinned competitive factor. Measured headroom: across 400 random
/// instances of the proptest universe the worst observed
/// online/hindsight ratio is ~1.95 (stream on a small dense ring); the
/// pin holds the ceiling at 4x without tracking run-to-run noise.
const FACTOR: u64 = 4;

/// A ring-demand sequence: `n` vertices in a cycle, every ring edge
/// receiving `weight` units of demand per round for `rounds` rounds, from
/// a random initial placement.
#[derive(Debug, Clone)]
struct RingSequence {
    servers: usize,
    n: u16,
    weight: u64,
    rounds: usize,
    assignment: Vec<u8>,
}

fn arb_ring() -> impl Strategy<Value = RingSequence> {
    (2usize..5, 12u16..33, 1u64..6).prop_flat_map(|(servers, n, weight)| {
        proptest::collection::vec(0u8..servers as u8, n as usize).prop_map(move |assignment| {
            RingSequence {
                servers,
                n,
                weight,
                rounds: 16,
                assignment,
            }
        })
    })
}

fn config() -> PartitionConfig {
    PartitionConfig {
        candidate_set_size: 16,
        imbalance_tolerance: 2,
        exchange_cooldown_ns: 0,
        min_total_score: 1,
    }
}

fn initial_partition(seq: &RingSequence) -> Partition<u16> {
    let mut p = Partition::new(seq.servers);
    for (v, &s) in seq.assignment.iter().enumerate() {
        p.place(v as u16, s as usize);
    }
    p
}

/// One round's communication bill: the ring demand crossing `partition`.
fn round_comm(seq: &RingSequence, partition: &Partition<u16>) -> u64 {
    (0..seq.n)
        .filter(|&v| partition.server_of(&v) != partition.server_of(&((v + 1) % seq.n)))
        .count() as u64
        * seq.weight
}

/// Drives `kind` over the sequence and returns its total cost.
fn online_cost(kind: RepartitionPolicyKind, seq: &RingSequence) -> u64 {
    let mut graph = CommGraph::new();
    for v in 0..seq.n {
        graph.add_vertex(v);
    }
    let mut host = GraphHost::new(graph, initial_partition(seq));
    let mut policy = build_policy::<u16>(kind, MigrationCostConfig::default());
    let cfg = config();
    let mut cost = 0u64;
    for round in 0..seq.rounds {
        for v in 0..seq.n {
            host.graph.add_edge(v, (v + 1) % seq.n, seq.weight);
        }
        match policy.scope() {
            PolicyScope::PerServer => {
                for s in 0..seq.servers {
                    policy.round(&mut host, round as u64, s, &cfg);
                }
            }
            PolicyScope::Global => {
                policy.round(&mut host, round as u64, 0, &cfg);
            }
        }
        cost += round_comm(seq, &host.partition);
    }
    cost + host.moves.len() as u64 * ALPHA
}

/// The hindsight bill: refine once over the fully revealed graph, pay for
/// the relocations, serve every round statically.
fn hindsight_cost(seq: &RingSequence) -> u64 {
    let mut graph = CommGraph::new();
    for v in 0..seq.n {
        graph.add_edge(v, (v + 1) % seq.n, seq.weight * seq.rounds as u64);
    }
    let mut partition = initial_partition(seq);
    let cfg = config();
    let moves = centralized_refine(
        &graph,
        &mut partition,
        cfg.imbalance_tolerance,
        seq.n as usize,
    );
    seq.rounds as u64 * round_comm(seq, &partition) + moves as u64 * ALPHA
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both online comparator policies stay within `FACTOR` of hindsight
    /// on ring demand.
    #[test]
    fn online_policies_are_competitive_on_ring_demand(seq in arb_ring()) {
        let hindsight = hindsight_cost(&seq);
        prop_assert!(hindsight > 0, "hindsight cost degenerate for {seq:?}");
        for kind in [
            RepartitionPolicyKind::DynamicBalanced,
            RepartitionPolicyKind::Stream,
        ] {
            let online = online_cost(kind, &seq);
            prop_assert!(
                online <= FACTOR * hindsight,
                "{kind:?} not competitive: online {online} vs {FACTOR}x hindsight {hindsight} \
                 (ratio {:.2}) on {seq:?}",
                online as f64 / hindsight as f64,
            );
        }
    }
}

/// A pinned deterministic instance, so a competitive regression shows up
/// as a clean diff rather than a proptest counterexample hunt: the
/// 24-ring round-robined over 4 servers (every edge cut at the start).
#[test]
fn pinned_ring_instance_ratios() {
    let seq = RingSequence {
        servers: 4,
        n: 24,
        weight: 4,
        rounds: 16,
        assignment: (0..24u8).map(|v| v % 4).collect(),
    };
    let hindsight = hindsight_cost(&seq);
    assert!(hindsight > 0);
    for kind in [
        RepartitionPolicyKind::DynamicBalanced,
        RepartitionPolicyKind::Stream,
    ] {
        let online = online_cost(kind, &seq);
        let ratio = online as f64 / hindsight as f64;
        assert!(
            online <= FACTOR * hindsight,
            "{kind:?}: online {online}, hindsight {hindsight}, ratio {ratio:.2}"
        );
    }
}
