//! Differential property test: the dense routing directory against the
//! generic `HashMap`-backed [`Partition`] it replaced on the runtime's hot
//! path. Any divergence in placement, lookup, sizing, or enumeration would
//! change routing decisions, so the two are driven through identical
//! operation sequences and compared after every step.

use actop_partition::{DenseDirectory, Partition};
use proptest::prelude::*;

/// One randomized directory operation. Ids are drawn from two bands (a
/// low dense band and a `2^40` band) to exercise the region machinery the
/// way the Halo workload does.
#[derive(Debug, Clone, Copy)]
enum Op {
    Place(u64, usize),
    Migrate(u64, usize),
    Remove(u64),
}

const GAME_BASE: u64 = 1 << 40;

/// Weighted id bands via a selector (the vendored proptest has no
/// `prop_oneof`): mostly the low dense band, sometimes the game band,
/// sometimes ids on the page just past a region boundary (2^24), so
/// page-sorted insertion and multi-region scans are exercised. (Offsets
/// stay small everywhere: a near-boundary offset would be a correct but
/// wasteful 16M-slot region, ballooning this test's runtime.)
fn arb_id() -> impl Strategy<Value = u64> {
    (0u8..6, 0u64..200).prop_map(|(band, off)| match band {
        0..=3 => off,
        4 => GAME_BASE + off % 50,
        _ => (1u64 << 24) + off % 8,
    })
}

fn arb_op(servers: usize) -> impl Strategy<Value = Op> {
    (arb_id(), 0..servers, 0u8..3).prop_map(|(id, server, kind)| match kind {
        0 => Op::Place(id, server),
        1 => Op::Migrate(id, server),
        _ => Op::Remove(id),
    })
}

proptest! {
    #[test]
    fn dense_directory_matches_hashmap_partition(
        servers in 1usize..5,
        ops in proptest::collection::vec(arb_op(4), 0..300),
        probes in proptest::collection::vec(arb_id(), 0..30),
    ) {
        let mut dense = DenseDirectory::new(servers);
        let mut reference: Partition<u64> = Partition::new(servers);
        for op in &ops {
            match *op {
                // Place/migrate panic on double-place/unassigned in both
                // impls; gate on the reference's view so the sequences
                // stay legal and the gate itself exercises `server_of`.
                Op::Place(id, server) => {
                    let server = server % servers;
                    if reference.server_of(&id).is_none() {
                        dense.place(id, server);
                        reference.place(id, server);
                    }
                }
                Op::Migrate(id, server) => {
                    let server = server % servers;
                    if reference.server_of(&id).is_some() {
                        dense.migrate(id, server);
                        reference.migrate(&id, server);
                    }
                }
                Op::Remove(id) => {
                    dense.remove(id);
                    reference.remove(&id);
                }
            }
            prop_assert_eq!(dense.sizes(), reference.sizes());
            prop_assert_eq!(dense.vertex_count(), reference.vertex_count());
            prop_assert_eq!(dense.max_imbalance(), reference.max_imbalance());
        }
        for &id in &probes {
            prop_assert_eq!(dense.server_of(id), reference.server_of(&id));
        }
        for server in 0..servers {
            // Both enumerate in ascending id order.
            prop_assert_eq!(dense.vertices_on(server), reference.vertices_on(server));
        }
    }
}
