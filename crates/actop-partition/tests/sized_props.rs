//! Property tests for the size-aware exchange (§4.2 extension).

use actop_partition::score::ScoredVertex;
use actop_partition::sized::{cap_candidates, select_sized_exchange, SizedCandidate, SizedConfig};
use proptest::prelude::*;

fn arb_candidates(base: u32) -> impl Strategy<Value = Vec<SizedCandidate<u32>>> {
    proptest::collection::vec((0u32..64, -50i64..100, 1u64..2_000), 0..24).prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (_, score, size))| SizedCandidate {
                scored: ScoredVertex {
                    vertex: base + i as u32,
                    score,
                    edges: vec![],
                },
                size,
            })
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = SizedConfig> {
    (500u64..10_000, 100u64..5_000, 0.0f64..0.05).prop_map(|(budget, delta, cost)| SizedConfig {
        candidate_size_budget: budget,
        size_imbalance_tolerance: delta,
        migration_cost_per_unit: cost,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The capped candidate list never exceeds the size budget and is a
    /// subset of the input.
    #[test]
    fn cap_respects_budget(
        cands in arb_candidates(0),
        config in arb_config(),
    ) {
        let input: Vec<u32> = cands.iter().map(|c| c.scored.vertex).collect();
        let capped = cap_candidates(cands, &config);
        let total: u64 = capped.iter().map(|c| c.size).sum();
        prop_assert!(total <= config.candidate_size_budget);
        for c in &capped {
            prop_assert!(input.contains(&c.scored.vertex));
        }
    }

    /// Selected vertices come from the offered sets, each at most once,
    /// and accounting sums match.
    #[test]
    fn selection_is_a_consistent_subset(
        incoming in arb_candidates(0),
        own in arb_candidates(1_000),
        config in arb_config(),
        p_size in 0u64..50_000,
        q_size in 0u64..50_000,
    ) {
        let outcome = select_sized_exchange(&incoming, p_size, &own, q_size, &config);
        let mut seen = std::collections::HashSet::new();
        for v in outcome.accepted.iter().chain(&outcome.returned) {
            prop_assert!(seen.insert(*v), "vertex {v} moved twice");
        }
        let accepted_size: u64 = outcome
            .accepted
            .iter()
            .map(|v| incoming.iter().find(|c| c.scored.vertex == *v).unwrap().size)
            .sum();
        prop_assert_eq!(accepted_size, outcome.accepted_size);
        let returned_size: u64 = outcome
            .returned
            .iter()
            .map(|v| own.iter().find(|c| c.scored.vertex == *v).unwrap().size)
            .sum();
        prop_assert_eq!(returned_size, outcome.returned_size);
    }

    /// The balance rule bounds the final size difference: every applied
    /// move either lands within `delta` of balance or strictly shrinks the
    /// difference, so the final difference can never exceed
    /// `max(initial difference, delta + 2 * largest moved vertex)`.
    #[test]
    fn size_balance_outcome_is_bounded(
        incoming in arb_candidates(0),
        own in arb_candidates(1_000),
        config in arb_config(),
        p0 in 0i64..50_000,
        q0 in 0i64..50_000,
    ) {
        let outcome = select_sized_exchange(
            &incoming,
            p0 as u64,
            &own,
            q0 as u64,
            &config,
        );
        let moved_sizes: Vec<i64> = outcome
            .accepted
            .iter()
            .map(|v| incoming.iter().find(|c| c.scored.vertex == *v).unwrap().size as i64)
            .chain(outcome.returned.iter().map(|v| {
                own.iter().find(|c| c.scored.vertex == *v).unwrap().size as i64
            }))
            .collect();
        let max_moved = moved_sizes.iter().copied().max().unwrap_or(0);
        let p_final = p0 - outcome.accepted_size as i64 + outcome.returned_size as i64;
        let q_final = q0 + outcome.accepted_size as i64 - outcome.returned_size as i64;
        let initial = (p0 - q0).abs();
        let bound = initial.max(config.size_imbalance_tolerance as i64 + 2 * max_moved);
        prop_assert!(
            (p_final - q_final).abs() <= bound,
            "final diff {} exceeds bound {bound} (initial {initial}, max moved {max_moved})",
            (p_final - q_final).abs()
        );
    }

    /// With a huge migration cost nothing ever moves.
    #[test]
    fn prohibitive_migration_cost_freezes_everything(
        incoming in arb_candidates(0),
        own in arb_candidates(1_000),
    ) {
        let config = SizedConfig {
            candidate_size_budget: u64::MAX / 4,
            size_imbalance_tolerance: u64::MAX / 4,
            migration_cost_per_unit: 1e6,
        };
        let outcome = select_sized_exchange(&incoming, 1_000, &own, 1_000, &config);
        prop_assert!(outcome.is_empty());
    }
}
