//! Differential property tests for the repartitioning policy roster:
//! every selectable policy, fed the same random demand stream over a
//! [`GraphHost`], must preserve the partition invariants after every
//! control round —
//!
//! * each vertex is placed exactly once (no loss, no duplication, no
//!   placement on a server outside the cluster);
//! * the capacity-aware policies (dynamic balanced, stream) never push a
//!   server past `ceil(total/servers) + imbalance_tolerance`;
//! * replaying the identical stream from scratch reproduces the final
//!   partition and the full migration log byte-for-byte.
//!
//! The sharded-backend half of the differential story (policies are
//! deterministic across shard counts) lives in
//! `actop-bench/tests/policy_shard_determinism.rs`, which drives the
//! live runtime rather than the in-vitro host.

use actop_partition::{
    build_policy, CommGraph, GraphHost, MigrationCostConfig, Partition, PartitionConfig,
    PolicyScope, RepartitionPolicyKind,
};
use proptest::prelude::*;

/// A random demand stream: an initial assignment plus batches of demand
/// increments, one batch revealed before each control round.
#[derive(Debug, Clone)]
struct Stream {
    servers: usize,
    vertices: u16,
    assignment: Vec<u8>,
    batches: Vec<Vec<(u16, u16, u8)>>,
}

fn arb_stream() -> impl Strategy<Value = Stream> {
    (2usize..5, 8u16..32).prop_flat_map(|(servers, vertices)| {
        let assignment = proptest::collection::vec(0u8..servers as u8, vertices as usize);
        let batch = proptest::collection::vec((0..vertices, 0..vertices, 1u8..16), 1..24);
        let batches = proptest::collection::vec(batch, 1..8);
        (assignment, batches).prop_map(move |(assignment, batches)| Stream {
            servers,
            vertices,
            assignment,
            batches,
        })
    })
}

fn config() -> PartitionConfig {
    PartitionConfig {
        candidate_set_size: 8,
        imbalance_tolerance: 3,
        exchange_cooldown_ns: 0,
        min_total_score: 1,
    }
}

/// A final placement (or a move log): `(vertex, server)` pairs.
type Placement = Vec<(u16, usize)>;

/// Runs `kind` over the stream, checking placement invariants after
/// every round, and returns the final placement plus the move log.
fn run_stream(kind: RepartitionPolicyKind, stream: &Stream) -> (Placement, Placement) {
    let mut graph = CommGraph::new();
    let mut partition = Partition::new(stream.servers);
    for (v, &s) in stream.assignment.iter().enumerate() {
        graph.add_vertex(v as u16);
        partition.place(v as u16, s as usize);
    }
    let mut host = GraphHost::new(graph, partition);
    let mut policy = build_policy::<u16>(kind, MigrationCostConfig::default());
    let cfg = config();
    let total = stream.assignment.len();
    let cap = total.div_ceil(stream.servers) + cfg.imbalance_tolerance;
    let capacity_aware = matches!(
        kind,
        RepartitionPolicyKind::DynamicBalanced | RepartitionPolicyKind::Stream
    );

    for (round, batch) in stream.batches.iter().enumerate() {
        for &(a, b, w) in batch {
            if a != b {
                host.graph.add_edge(a, b, w as u64);
            }
        }
        match policy.scope() {
            PolicyScope::PerServer => {
                for s in 0..stream.servers {
                    policy.round(&mut host, round as u64, s, &cfg);
                }
            }
            PolicyScope::Global => {
                policy.round(&mut host, round as u64, 0, &cfg);
            }
        }

        // Placed exactly once: every vertex somewhere, sizes consistent.
        let mut counted = vec![0usize; stream.servers];
        for v in 0..stream.vertices {
            let s = host
                .partition
                .server_of(&v)
                .unwrap_or_else(|| panic!("{kind:?} lost vertex {v} in round {round}"));
            prop_assert!(
                s < stream.servers,
                "{kind:?} placed {v} on phantom server {s}"
            );
            counted[s] += 1;
        }
        prop_assert_eq!(host.partition.sizes(), &counted[..]);
        if capacity_aware {
            for (s, &size) in counted.iter().enumerate() {
                prop_assert!(
                    size <= cap,
                    "{kind:?} overfilled server {s}: {size} > cap {cap} in round {round}"
                );
            }
        }
    }

    let placement: Vec<(u16, usize)> = (0..stream.vertices)
        .map(|v| (v, host.partition.server_of(&v).unwrap()))
        .collect();
    (placement, host.moves)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every policy preserves the placement invariants on random demand
    /// streams and is a pure function of the stream: a replay reproduces
    /// the final partition and the migration log exactly.
    #[test]
    fn policies_preserve_invariants_and_replay_deterministically(stream in arb_stream()) {
        for kind in RepartitionPolicyKind::ALL {
            let (placement, moves) = run_stream(kind, &stream);
            let (replacement, removes) = run_stream(kind, &stream);
            prop_assert_eq!(&placement, &replacement, "{:?} placement diverged on replay", kind);
            prop_assert_eq!(&moves, &removes, "{:?} move log diverged on replay", kind);
        }
    }
}
