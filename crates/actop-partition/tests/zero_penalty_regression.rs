//! Zero-penalty regression (ISSUE 10, satellite 3): the cost-aware
//! selection with the cost term at zero IS the paper's procedure, on
//! arbitrary exchange requests — not just the hand-built unit cases. The
//! default policy routes every exchange through
//! [`select_exchange_with_cost`] with `penalty = 0`, so this equivalence
//! is what keeps the pre-policy golden `RunSummary` fingerprints
//! (`actop-core/tests/routing_differential.rs`,
//! `actop-bench/tests/golden_halo.rs`) byte-identical by default.

use actop_partition::{
    select_exchange, select_exchange_with_cost, ExchangeRequest, PartitionConfig, ScoredVertex,
};
use proptest::prelude::*;

/// A random exchange: server sizes, tolerance, and two candidate sets
/// with signed scores and random edges among the candidates.
#[derive(Debug, Clone)]
struct Case {
    from_size: usize,
    responder_size: usize,
    delta: usize,
    candidates: Vec<ScoredVertex<u16>>,
    own: Vec<ScoredVertex<u16>>,
}

fn arb_side(
    ids: std::ops::Range<u16>,
    max_len: usize,
) -> impl Strategy<Value = Vec<ScoredVertex<u16>>> {
    let lo = ids.start;
    let hi = ids.end;
    proptest::collection::vec(
        (
            lo..hi,
            -20i64..40,
            proptest::collection::vec((lo..hi, 1u64..10), 0..4),
        ),
        0..max_len,
    )
    .prop_map(|raw| {
        let mut seen = std::collections::BTreeSet::new();
        raw.into_iter()
            .filter(|(v, _, _)| seen.insert(*v))
            .map(|(vertex, score, edges)| ScoredVertex {
                vertex,
                score,
                edges,
            })
            .collect()
    })
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        0usize..20,
        0usize..20,
        0usize..6,
        arb_side(0..40, 8),
        arb_side(40..80, 8),
    )
        .prop_map(|(from_size, responder_size, delta, candidates, own)| Case {
            from_size,
            responder_size,
            delta,
            candidates,
            own,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `select_exchange_with_cost(.., 0)` and `select_exchange` agree on
    /// every random request: same accepted set, same returned set, same
    /// order — the whole outcome.
    #[test]
    fn zero_penalty_selection_is_the_paper_procedure(case in arb_case()) {
        let request = ExchangeRequest {
            from: 0,
            from_size: case.from_size,
            candidates: case.candidates.clone(),
        };
        let config = PartitionConfig {
            imbalance_tolerance: case.delta,
            ..PartitionConfig::for_tests()
        };
        let legacy = select_exchange(&request, case.responder_size, &case.own, &config);
        let costed =
            select_exchange_with_cost(&request, case.responder_size, &case.own, &config, 0);
        prop_assert_eq!(&legacy, &costed, "zero-penalty selection diverged on {:?}", case);
        // And a positive penalty only ever acts as a round veto: it either
        // reproduces the same move-set or suppresses it entirely.
        for penalty in [1i64, 5, 1_000] {
            let taxed = select_exchange_with_cost(
                &request, case.responder_size, &case.own, &config, penalty,
            );
            prop_assert!(
                taxed == legacy || taxed.is_empty(),
                "penalty {penalty} altered the move-set instead of vetoing it on {:?}",
                case
            );
        }
    }
}
