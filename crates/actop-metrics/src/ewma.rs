//! Exponentially weighted moving average.
//!
//! The online parameter estimators (§5.4) smooth noisy per-window
//! measurements of arrival rates and service times before feeding them to
//! the thread-allocation solver; an EWMA keeps the controller responsive to
//! load shifts without chasing noise.

/// An exponentially weighted moving average with smoothing factor `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`. Larger
    /// `alpha` weighs recent observations more.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Feeds an observation; the first observation initializes the average.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `default` before any observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Discards all state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initializes() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        e.observe(0.0);
        for _ in 0..100 {
            e.observe(5.0);
        }
        assert!((e.value().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.observe(3.0);
        e.observe(8.0);
        assert_eq!(e.value(), Some(8.0));
    }

    #[test]
    fn smooths_alternating_input() {
        let mut e = Ewma::new(0.1);
        for i in 0..1000 {
            e.observe(if i % 2 == 0 { 0.0 } else { 10.0 });
        }
        let v = e.value().unwrap();
        assert!((v - 5.0).abs() < 1.0, "smoothed value {v}");
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.5);
        e.observe(1.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(9.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "EWMA alpha")]
    fn invalid_alpha_panics() {
        let _ = Ewma::new(0.0);
    }
}
