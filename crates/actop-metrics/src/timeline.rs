//! Per-server resource timelines sampled at a fixed interval.
//!
//! The thread-allocation controller (Theorem 2) reshapes each server's
//! stage thread pools over time; understanding *why* a decision was good
//! or bad requires seeing queue depth, thread allocation, and CPU
//! utilization on the same time axis as the request spans. A [`Timeline`]
//! holds one [`TimelineSample`] per server per sampling bin; the trace
//! exporter turns it into Chrome counter tracks.

/// One sampling instant on one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSample {
    /// Sim time of the sample, nanoseconds.
    pub at_ns: u64,
    /// Server index.
    pub server: u32,
    /// Queue length per SEDA stage, in stage order.
    pub queue_len: [u32; 4],
    /// Busy threads per stage, in stage order.
    pub busy_threads: [u32; 4],
    /// Configured threads per stage, in stage order.
    pub threads: [u32; 4],
    /// Mean busy-core fraction over the bin ending at `at_ns`, in `[0, 1]`.
    pub utilization: f64,
}

/// A run's timeline: samples for all servers, in sampling order
/// (time-major, server-minor).
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    bin_ns: u64,
    samples: Vec<TimelineSample>,
}

impl Timeline {
    /// Creates an empty timeline with the given sampling interval.
    pub fn new(bin_ns: u64) -> Self {
        Timeline {
            bin_ns,
            samples: Vec::new(),
        }
    }

    /// Sampling interval in nanoseconds.
    pub fn bin_ns(&self) -> u64 {
        self.bin_ns
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: TimelineSample) {
        self.samples.push(sample);
    }

    /// All samples, in recording order.
    pub fn samples(&self) -> &[TimelineSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples belonging to one server, in time order.
    pub fn for_server(&self, server: u32) -> impl Iterator<Item = &TimelineSample> {
        self.samples.iter().filter(move |s| s.server == server)
    }

    /// Peak total queue length (across stages) seen on any server.
    pub fn peak_queue_len(&self) -> u32 {
        self.samples
            .iter()
            .map(|s| s.queue_len.iter().sum())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_ns: u64, server: u32, q: u32) -> TimelineSample {
        TimelineSample {
            at_ns,
            server,
            queue_len: [q, 0, 0, 0],
            busy_threads: [1, 1, 0, 0],
            threads: [8, 8, 8, 8],
            utilization: 0.5,
        }
    }

    #[test]
    fn per_server_filter_and_order() {
        let mut t = Timeline::new(100);
        t.push(sample(100, 0, 1));
        t.push(sample(100, 1, 9));
        t.push(sample(200, 0, 2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.bin_ns(), 100);
        let s0: Vec<u64> = t.for_server(0).map(|s| s.at_ns).collect();
        assert_eq!(s0, vec![100, 200]);
        assert_eq!(t.peak_queue_len(), 9);
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new(10);
        assert!(t.is_empty());
        assert_eq!(t.peak_queue_len(), 0);
        assert_eq!(t.for_server(0).count(), 0);
    }
}
