//! End-to-end latency breakdown by component.
//!
//! Fig. 4 of the paper decomposes the average lifetime of a request into
//! time spent in each SEDA queue, processing time in each stage, network
//! latency, and "other". [`Breakdown`] accumulates nanoseconds per named
//! component across many requests and reports the average share of each.

/// Accumulates latency components across requests.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    components: Vec<(&'static str, f64)>,
    requests: u64,
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` nanoseconds to the named component.
    pub fn add(&mut self, component: &'static str, ns: f64) {
        debug_assert!(ns >= 0.0, "negative component time {component}: {ns}");
        match self.components.iter_mut().find(|(n, _)| *n == component) {
            Some((_, sum)) => *sum += ns,
            None => self.components.push((component, ns)),
        }
    }

    /// Marks one request as fully accounted (the denominator for averages).
    pub fn finish_request(&mut self) {
        self.requests += 1;
    }

    /// Number of requests accounted.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total accumulated nanoseconds across all components.
    pub fn total_ns(&self) -> f64 {
        self.components.iter().map(|(_, s)| s).sum()
    }

    /// Average nanoseconds per request for each component, in insertion
    /// order.
    pub fn averages_ns(&self) -> Vec<(&'static str, f64)> {
        if self.requests == 0 {
            return Vec::new();
        }
        self.components
            .iter()
            .map(|&(n, s)| (n, s / self.requests as f64))
            .collect()
    }

    /// Share of the end-to-end total for each component, in percent —
    /// the quantity Fig. 4 plots.
    pub fn shares_pct(&self) -> Vec<(&'static str, f64)> {
        let total = self.total_ns();
        if total == 0.0 {
            return Vec::new();
        }
        self.components
            .iter()
            .map(|&(n, s)| (n, 100.0 * s / total))
            .collect()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for &(name, sum) in &other.components {
            self.add(name, sum);
        }
        self.requests += other.requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_100() {
        let mut b = Breakdown::new();
        b.add("recv queue", 30.0);
        b.add("worker queue", 50.0);
        b.add("network", 20.0);
        b.finish_request();
        let shares = b.shares_pct();
        let total: f64 = shares.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(shares[1], ("worker queue", 50.0));
    }

    #[test]
    fn averages_divide_by_requests() {
        let mut b = Breakdown::new();
        for _ in 0..4 {
            b.add("proc", 10.0);
            b.finish_request();
        }
        assert_eq!(b.averages_ns(), vec![("proc", 10.0)]);
        assert_eq!(b.requests(), 4);
    }

    #[test]
    fn repeated_adds_accumulate() {
        let mut b = Breakdown::new();
        b.add("x", 1.0);
        b.add("x", 2.0);
        assert_eq!(b.total_ns(), 3.0);
        assert_eq!(b.shares_pct().len(), 1);
    }

    #[test]
    fn empty_breakdown() {
        let b = Breakdown::new();
        assert!(b.averages_ns().is_empty());
        assert!(b.shares_pct().is_empty());
        assert_eq!(b.total_ns(), 0.0);
    }

    #[test]
    fn merge_accumulates_components_and_requests() {
        let mut a = Breakdown::new();
        a.add("q", 5.0);
        a.finish_request();
        let mut b = Breakdown::new();
        b.add("q", 15.0);
        b.add("net", 10.0);
        b.finish_request();
        a.merge(&b);
        assert_eq!(a.requests(), 2);
        assert_eq!(a.averages_ns(), vec![("q", 10.0), ("net", 5.0)]);
    }
}
