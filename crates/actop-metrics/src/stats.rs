//! Exact small-sample statistics used by tests and bench reporting.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for slices shorter than 2.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Exact `q`-quantile of an unsorted sample (nearest-rank method).
/// Returns 0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_of_sorted(&sorted, q)
}

/// Exact `q`-quantile of an already-sorted sample (nearest-rank method).
/// Returns 0 for an empty slice.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Relative improvement `100 * (1 - optimized / baseline)` in percent —
/// the formula the paper uses for Fig. 10d/10f/11. Returns 0 when the
/// baseline is 0.
pub fn improvement_pct(baseline: f64, optimized: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        100.0 * (1.0 - optimized / baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[3.0]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert_eq!(quantile(&xs, 0.95), 95.0);
        assert_eq!(quantile(&xs, 0.99), 99.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(quantile(&xs, 0.5), 5.0);
    }

    #[test]
    fn improvement_percentage() {
        assert!((improvement_pct(736.0, 225.0) - 69.43).abs() < 0.1);
        assert_eq!(improvement_pct(0.0, 10.0), 0.0);
        assert!((improvement_pct(40.0, 60.0) + 50.0).abs() < 1e-12);
    }
}
