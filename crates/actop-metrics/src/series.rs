//! Fixed-width time-binned series for rates over time.
//!
//! Fig. 10a plots the proportion of remote messages and the number of actor
//! movements per minute as the partitioner converges. [`BinnedSeries`]
//! accumulates `(sum, count)` per fixed-width bin of simulation time and can
//! report per-bin means (for proportions) or per-second rates (for event
//! counts).

/// One accumulation bin.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Bin {
    /// Sum of recorded values.
    pub sum: f64,
    /// Number of recorded values.
    pub count: u64,
}

impl Bin {
    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A series of fixed-width time bins, indexed by nanosecond timestamps.
#[derive(Debug, Clone)]
pub struct BinnedSeries {
    bin_width_ns: u64,
    bins: Vec<Bin>,
}

/// Upper bound on the number of bins a series will allocate. A far-future
/// timestamp (e.g. a corrupted or saturating `Nanos`) must not turn one
/// `record` call into a multi-gigabyte `resize`; samples past the cap
/// saturate into the last bin instead.
pub const MAX_BINS: usize = 1 << 20;

impl BinnedSeries {
    /// Creates a series with the given bin width in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width_ns == 0`.
    pub fn new(bin_width_ns: u64) -> Self {
        assert!(bin_width_ns > 0, "bin width must be positive");
        BinnedSeries {
            bin_width_ns,
            bins: Vec::new(),
        }
    }

    /// Bin width in nanoseconds.
    pub fn bin_width_ns(&self) -> u64 {
        self.bin_width_ns
    }

    /// Records `value` at time `at_ns`. Timestamps beyond
    /// [`MAX_BINS`] bins saturate into the last representable bin rather
    /// than growing the series without bound.
    pub fn record(&mut self, at_ns: u64, value: f64) {
        let idx = ((at_ns / self.bin_width_ns) as usize).min(MAX_BINS - 1);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, Bin::default());
        }
        let bin = &mut self.bins[idx];
        bin.sum += value;
        bin.count += 1;
    }

    /// Records an event occurrence (value 1) at time `at_ns`; combined with
    /// [`BinnedSeries::rates_per_sec`] this yields an event rate series.
    pub fn mark(&mut self, at_ns: u64) {
        self.record(at_ns, 1.0);
    }

    /// Number of bins (up to the last one with data).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Raw bins.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Per-bin means, e.g. a proportion over time.
    pub fn means(&self) -> Vec<f64> {
        self.bins.iter().map(Bin::mean).collect()
    }

    /// Per-bin event counts divided by the bin width, in events/second.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let width_s = self.bin_width_ns as f64 / 1e9;
        self.bins.iter().map(|b| b.count as f64 / width_s).collect()
    }

    /// Per-bin sums.
    pub fn sums(&self) -> Vec<f64> {
        self.bins.iter().map(|b| b.sum).collect()
    }

    /// Folds another series into this one bin by bin. The sharded runtime
    /// keeps one series per shard and merges them at the end of a run;
    /// bin widths must agree for the bins to be commensurable.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths differ.
    pub fn merge_from(&mut self, other: &BinnedSeries) {
        assert_eq!(
            self.bin_width_ns, other.bin_width_ns,
            "cannot merge series with different bin widths"
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), Bin::default());
        }
        for (bin, o) in self.bins.iter_mut().zip(&other.bins) {
            bin.sum += o.sum;
            bin.count += o.count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_correct_bins() {
        let mut s = BinnedSeries::new(100);
        s.record(0, 1.0);
        s.record(99, 3.0);
        s.record(100, 5.0);
        s.record(250, 7.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.bins()[0], Bin { sum: 4.0, count: 2 });
        assert_eq!(s.bins()[1], Bin { sum: 5.0, count: 1 });
        assert_eq!(s.bins()[2], Bin { sum: 7.0, count: 1 });
    }

    #[test]
    fn means_and_gap_bins() {
        let mut s = BinnedSeries::new(10);
        s.record(5, 2.0);
        s.record(5, 4.0);
        s.record(35, 9.0);
        let means = s.means();
        assert_eq!(means, vec![3.0, 0.0, 0.0, 9.0]);
    }

    #[test]
    fn rates_per_sec() {
        // 1-second bins; 5 marks in bin 0, 2 in bin 1.
        let mut s = BinnedSeries::new(1_000_000_000);
        for _ in 0..5 {
            s.mark(10);
        }
        s.mark(1_000_000_000);
        s.mark(1_999_999_999);
        assert_eq!(s.rates_per_sec(), vec![5.0, 2.0]);
    }

    #[test]
    fn empty_series() {
        let s = BinnedSeries::new(10);
        assert!(s.is_empty());
        assert!(s.means().is_empty());
        assert!(s.rates_per_sec().is_empty());
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_width_panics() {
        let _ = BinnedSeries::new(0);
    }

    #[test]
    fn far_future_timestamp_saturates_into_last_bin() {
        // Regression: a u64::MAX timestamp used to resize the bin vector
        // to ~1.8e19 / width entries and abort on allocation failure.
        let mut s = BinnedSeries::new(1);
        s.record(u64::MAX, 3.0);
        s.record(u64::MAX - 1, 4.0);
        assert_eq!(s.len(), MAX_BINS);
        let last = s.bins()[MAX_BINS - 1];
        assert_eq!(last, Bin { sum: 7.0, count: 2 });
        // In-range samples are unaffected.
        s.record(5, 1.0);
        assert_eq!(s.bins()[5], Bin { sum: 1.0, count: 1 });
    }

    #[test]
    fn merge_sums_bins_and_extends() {
        let mut a = BinnedSeries::new(10);
        a.record(5, 2.0);
        a.record(15, 1.0);
        let mut b = BinnedSeries::new(10);
        b.record(5, 3.0);
        b.record(35, 9.0);
        a.merge_from(&b);
        assert_eq!(a.bins()[0], Bin { sum: 5.0, count: 2 });
        assert_eq!(a.bins()[1], Bin { sum: 1.0, count: 1 });
        assert_eq!(a.bins()[3], Bin { sum: 9.0, count: 1 });
        assert_eq!(a.len(), 4);
    }

    #[test]
    #[should_panic(expected = "different bin widths")]
    fn merge_width_mismatch_panics() {
        let mut a = BinnedSeries::new(10);
        a.merge_from(&BinnedSeries::new(20));
    }

    #[test]
    fn cap_boundary_is_exact() {
        let width = 1_000u64;
        let mut s = BinnedSeries::new(width);
        // The last representable bin index is MAX_BINS - 1.
        s.record((MAX_BINS as u64 - 1) * width, 1.0);
        assert_eq!(s.len(), MAX_BINS);
        s.record(MAX_BINS as u64 * width, 1.0);
        assert_eq!(s.len(), MAX_BINS, "over-cap sample did not grow series");
        assert_eq!(s.bins()[MAX_BINS - 1].count, 2);
    }
}
