//! HDR-style log-bucketed latency histogram.
//!
//! Values (nanoseconds) are binned into base-2 octaves with 32 sub-buckets
//! per octave, giving a worst-case relative value error of 1/32 ≈ 3% —
//! plenty for reproducing the paper's percentile tables — at a fixed cost of
//! a few kilobytes per histogram regardless of sample count.

/// Number of sub-bucket precision bits (32 sub-buckets per octave).
const K: u32 = 5;
const SUB: u64 = 1 << K;
/// Total bucket count: exact region plus (64 - K) octaves of SUB buckets.
const BUCKETS: usize = (SUB as usize) + ((64 - K as usize) * SUB as usize);

/// The three percentiles the paper reports, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PercentileSummary {
    /// Median (50th percentile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A fixed-size log-bucketed histogram of `u64` values.
///
/// # Examples
///
/// ```
/// use actop_metrics::LatencyHistogram;
///
/// let mut hist = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     hist.record(v * 1_000); // 1..1000 microseconds
/// }
/// let median = hist.quantile(0.5);
/// assert!((median as f64 - 500_000.0).abs() / 500_000.0 < 0.05);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("max", &self.max)
            .finish()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // >= K
        let sub = (v >> (octave - K)) - SUB;
        (SUB + (octave as u64 - K as u64) * SUB + sub) as usize
    }
}

/// Midpoint of the value range covered by a bucket index.
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let rel = idx - SUB;
    let octave = rel / SUB + K as u64;
    let sub = rel % SUB;
    let width = 1u64 << (octave - K as u64);
    let lower = (SUB + sub) << (octave - K as u64);
    lower + width / 2
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records a value `n` times.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.total += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`) of the recorded values.
    /// Returns 0 when empty. The result is exact below 32 ns and within
    /// ≈3% above.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median, 95th, and 99th percentiles.
    pub fn summary(&self) -> PercentileSummary {
        PercentileSummary {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// CDF sample points `(value, cumulative_fraction)` — one per non-empty
    /// bucket — suitable for plotting Fig. 10b/10c-style curves.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut points = Vec::new();
        if self.total == 0 {
            return points;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            points.push((
                bucket_value(idx).clamp(self.min, self.max),
                seen as f64 / self.total as f64,
            ));
        }
        points
    }

    /// Resets the histogram to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        for exp in 5..40u32 {
            let v = (1u64 << exp) + 12345 % (1 << exp);
            h.clear();
            h.record(v);
            let q = h.quantile(0.5);
            let err = (q as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} q={q} err={err}");
        }
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5000.0), (0.95, 9500.0), (0.99, 9900.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - expect).abs() / expect < 0.05,
                "q={q} got {got} expect {expect}"
            );
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_behaves() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for v in [5u64, 100, 4_000, 1_000_000, 77] {
            a.record(v);
            combined.record(v);
        }
        for v in [9u64, 250_000, 3] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 10, 100, 1000, 10_000, 100_000] {
            h.record_n(v, 10);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = LatencyHistogram::new();
        h.record_n(42, 0);
        assert!(h.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(123);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= u64::MAX / 2);
    }

    #[test]
    fn summary_matches_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 100);
        }
        let s = h.summary();
        assert_eq!(s.p50, h.quantile(0.5));
        assert_eq!(s.p95, h.quantile(0.95));
        assert_eq!(s.p99, h.quantile(0.99));
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }
}
