//! Measurement infrastructure for the ActOp reproduction.
//!
//! The paper reports latency distributions (median / 95th / 99th
//! percentiles and CDFs), per-stage latency breakdowns (Fig. 4), rates over
//! time (Fig. 10a), and CPU utilization (Fig. 10e). This crate implements
//! the corresponding recorders:
//!
//! * [`hist::LatencyHistogram`] — HDR-style log-bucketed histogram with
//!   ≈3% relative value error, percentile and CDF queries, and merging.
//! * [`breakdown::Breakdown`] — accumulates end-to-end latency by component
//!   (stage queue wait, stage processing, network, other).
//! * [`series::BinnedSeries`] — fixed-width time bins for rates over time.
//! * [`ewma::Ewma`] — exponentially weighted moving averages for the online
//!   parameter estimators.
//! * [`timeline::Timeline`] — per-server resource samples (queue depth,
//!   threads, utilization) on the trace time axis.
//! * [`stats`] — exact small-sample statistics used by tests and benches.

pub mod breakdown;
pub mod ewma;
pub mod hist;
pub mod series;
pub mod stats;
pub mod timeline;

pub use breakdown::Breakdown;
pub use ewma::Ewma;
pub use hist::{LatencyHistogram, PercentileSummary};
pub use series::BinnedSeries;
pub use timeline::{Timeline, TimelineSample};
