//! Property tests for the log-bucketed latency histogram: its quantiles
//! and `merge` are checked against the exact nearest-rank quantile from
//! `stats`, including the documented ≈3% (1/32) relative-error bound.

use actop_metrics::{stats, LatencyHistogram};
use proptest::prelude::*;

/// A generated sample covering the exact region (< 32) and several
/// octaves of the bucketed region, with duplicates.
fn arb_sample() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u32..40, 0u64..1_000).prop_map(|(shift, fill)| {
            // Spread values across magnitudes: `fill` perturbs within the
            // octave selected by `shift`.
            (1u64 << (shift % 40)).saturating_add(fill)
        }),
        1..400,
    )
}

/// Both the histogram and `stats::quantile` use the nearest-rank rule
/// (`ceil(q * n)`, clamped to at least 1), so for any sample the
/// histogram's answer must land in the same bucket as the exact rank
/// statistic: exact below 32, within 1/32 relative error above.
fn assert_close(exact: f64, approx: u64, q: f64) {
    if exact < 32.0 {
        assert_eq!(approx as f64, exact, "exact region must be exact (q={q})");
    } else {
        let rel = (approx as f64 - exact).abs() / exact;
        assert!(
            rel <= 1.0 / 32.0 + 1e-9,
            "relative error {rel} > 1/32 at q={q}: exact={exact} approx={approx}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantiles match the exact nearest-rank statistic within the
    /// documented error bound, across the whole q range.
    #[test]
    fn quantiles_match_exact_rank_statistic(sample in arb_sample()) {
        let mut hist = LatencyHistogram::new();
        for &v in &sample {
            hist.record(v);
        }
        let xs: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_close(stats::quantile(&xs, q), hist.quantile(q), q);
        }
    }

    /// Merging two histograms is equivalent to recording the concatenated
    /// sample: counts, mean, min/max exactly; quantiles within the bound.
    #[test]
    fn merge_equals_combined_recording(a in arb_sample(), b in arb_sample()) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
            combined.record(v);
        }
        for &v in &b {
            hb.record(v);
            combined.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), combined.count());
        prop_assert_eq!(ha.min(), combined.min());
        prop_assert_eq!(ha.max(), combined.max());
        prop_assert!((ha.mean() - combined.mean()).abs() < 1e-6);
        let mut xs: Vec<f64> = a.iter().chain(&b).map(|&v| v as f64).collect();
        xs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(ha.quantile(q), combined.quantile(q));
            assert_close(stats::quantile_of_sorted(&xs, q), ha.quantile(q), q);
        }
    }

    /// Values below 32 ns (the sub-bucket region) are represented exactly.
    #[test]
    fn small_values_are_exact(sample in proptest::collection::vec(0u64..32, 1..200)) {
        let mut hist = LatencyHistogram::new();
        for &v in &sample {
            hist.record(v);
        }
        let xs: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            prop_assert_eq!(hist.quantile(q) as f64, stats::quantile(&xs, q));
        }
    }
}
