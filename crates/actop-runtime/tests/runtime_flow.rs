//! End-to-end behavioral tests of the actor runtime.

use actop_partition::ExchangeOutcome;
use actop_runtime::app::FixedCostApp;
use actop_runtime::{ActorId, AppLogic, Call, Cluster, PlacementPolicy, Reaction, RuntimeConfig};
use actop_sim::{DetRng, Engine, Nanos};

fn counter_app() -> Box<dyn AppLogic> {
    Box::new(FixedCostApp {
        cpu_ns: 20_000.0,
        reply_bytes: 200,
    })
}

/// An app where actor 0 fans out to actors 1..=n and gathers replies —
/// the Halo call shape in miniature.
struct FanApp {
    fan: u64,
}

impl AppLogic for FanApp {
    fn on_request(&mut self, actor: ActorId, _tag: u32, _rng: &mut DetRng) -> Reaction {
        if actor.0 == 0 {
            let calls = (1..=self.fan)
                .map(|i| Call {
                    to: ActorId(i),
                    tag: 1,
                    bytes: 300,
                })
                .collect();
            Reaction::fan_out(30_000.0, calls, 500)
        } else {
            Reaction::reply(10_000.0, 150)
        }
    }
}

fn run_requests(
    config: RuntimeConfig,
    app: Box<dyn AppLogic>,
    targets: &[ActorId],
    gap: Nanos,
) -> Cluster {
    let mut cluster = Cluster::new(config, app);
    let mut engine: Engine<Cluster> = Engine::new();
    for (i, &actor) in targets.iter().enumerate() {
        let at = gap * i as u64;
        engine.schedule(at, move |c: &mut Cluster, e| {
            c.submit_client_request(e, actor, 0, 400);
        });
    }
    engine.run(&mut cluster);
    cluster
}

#[test]
fn single_server_counter_requests_complete() {
    let cluster = run_requests(
        RuntimeConfig::single_server(7),
        counter_app(),
        &(0..100).map(ActorId).collect::<Vec<_>>(),
        Nanos::from_micros(500),
    );
    assert_eq!(cluster.metrics.submitted, 100);
    assert_eq!(cluster.metrics.completed, 100);
    assert_eq!(cluster.metrics.rejected, 0);
    assert!(cluster.is_drained());
    assert_eq!(cluster.metrics.e2e_latency.count(), 100);
    // Latency must at least cover two network hops plus processing.
    let min = cluster.metrics.e2e_latency.min();
    assert!(min > 400_000, "min latency {min} ns");
}

#[test]
fn determinism_same_seed_same_results() {
    let targets: Vec<ActorId> = (0..200).map(ActorId).collect();
    let a = run_requests(
        RuntimeConfig::paper_testbed(42),
        counter_app(),
        &targets,
        Nanos::from_micros(100),
    );
    let b = run_requests(
        RuntimeConfig::paper_testbed(42),
        counter_app(),
        &targets,
        Nanos::from_micros(100),
    );
    assert_eq!(a.metrics.completed, b.metrics.completed);
    assert_eq!(
        a.metrics.e2e_latency.quantile(0.99),
        b.metrics.e2e_latency.quantile(0.99)
    );
    assert_eq!(a.metrics.remote_messages, b.metrics.remote_messages);
}

#[test]
fn fan_out_joins_complete() {
    let mut config = RuntimeConfig::paper_testbed(11);
    config.servers = 4;
    config.record_remote_call_latency = true;
    let cluster = run_requests(
        config,
        Box::new(FanApp { fan: 8 }),
        &vec![ActorId(0); 50],
        Nanos::from_millis(2),
    );
    assert_eq!(cluster.metrics.completed, 50);
    assert!(cluster.is_drained());
    // 8 calls + 8 replies per request, all actor-to-actor.
    let actor_msgs = cluster.metrics.remote_messages + cluster.metrics.local_messages;
    assert_eq!(actor_msgs, 50 * 16);
    // With random placement on 4 servers most calls are remote.
    assert!(
        cluster.metrics.remote_fraction() > 0.5,
        "remote fraction {}",
        cluster.metrics.remote_fraction()
    );
    assert!(cluster.metrics.remote_call_latency.count() > 0);
}

#[test]
fn local_placement_keeps_fanout_local() {
    let mut config = RuntimeConfig::paper_testbed(13);
    config.servers = 4;
    config.placement = PlacementPolicy::Local;
    let cluster = run_requests(
        config,
        Box::new(FanApp { fan: 8 }),
        &vec![ActorId(0); 50],
        Nanos::from_millis(2),
    );
    assert_eq!(cluster.metrics.completed, 50);
    // Callees activate on the caller's server: everything stays local.
    assert_eq!(cluster.metrics.remote_messages, 0);
    assert_eq!(cluster.metrics.local_messages, 50 * 16);
}

#[test]
fn local_calls_are_faster_than_remote() {
    // Same workload, same seed structure; one cluster with co-located
    // actors (local placement), one with hash placement (mostly remote).
    let make = |placement| {
        let mut config = RuntimeConfig::paper_testbed(5);
        config.servers = 8;
        config.placement = placement;
        run_requests(
            config,
            Box::new(FanApp { fan: 8 }),
            &vec![ActorId(0); 200],
            Nanos::from_millis(1),
        )
    };
    let local = make(PlacementPolicy::Local);
    let hashed = make(PlacementPolicy::Hash);
    assert_eq!(local.metrics.completed, 200);
    assert_eq!(hashed.metrics.completed, 200);
    let local_p50 = local.metrics.e2e_latency.quantile(0.5);
    let hashed_p50 = hashed.metrics.e2e_latency.quantile(0.5);
    assert!(
        local_p50 < hashed_p50,
        "local {local_p50} should beat remote {hashed_p50}"
    );
}

#[test]
fn migration_deactivates_and_reactivates_at_hint() {
    let mut config = RuntimeConfig::paper_testbed(3);
    config.servers = 2;
    config.placement = PlacementPolicy::Hash;
    let mut cluster = Cluster::new(config, counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    let actor = ActorId(77);
    // Activate the actor with one request.
    engine.schedule(Nanos::ZERO, move |c: &mut Cluster, e| {
        c.submit_client_request(e, actor, 0, 100);
    });
    engine.run(&mut cluster);
    let home = cluster.locate(actor).expect("activated");
    let target = 1 - home;
    // Migrate: directory entry drops, hints appear on both servers.
    let now = engine.now();
    cluster.migrate_actor(&mut engine, now, actor, target);
    assert_eq!(cluster.locate(actor), None, "deactivated");
    assert_eq!(cluster.metrics.migrations, 1);
    // The next request re-activates it. The gateway is random; when the
    // gateway is `home` or `target`, the hint routes it to `target`.
    // Drive requests until re-activation and check it landed on a hinted
    // or originating server.
    engine.schedule_after(Nanos::from_millis(1), move |c: &mut Cluster, e| {
        c.submit_client_request(e, actor, 0, 100);
    });
    engine.run(&mut cluster);
    let new_home = cluster.locate(actor).expect("re-activated");
    assert!(new_home < 2);
    assert_eq!(cluster.metrics.completed, 2);
}

#[test]
fn apply_exchange_moves_actors_both_ways() {
    let mut config = RuntimeConfig::paper_testbed(9);
    config.servers = 2;
    config.placement = PlacementPolicy::Hash;
    let mut cluster = Cluster::new(config, counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    for i in 0..10u64 {
        engine.schedule(Nanos::from_micros(i * 10), move |c: &mut Cluster, e| {
            c.submit_client_request(e, ActorId(i), 0, 100);
        });
    }
    engine.run(&mut cluster);
    // The dense directory speaks raw `u64` ids on the routing path.
    let on0: Vec<ActorId> = cluster
        .directory
        .vertices_on(0)
        .into_iter()
        .map(ActorId)
        .collect();
    let on1: Vec<ActorId> = cluster
        .directory
        .vertices_on(1)
        .into_iter()
        .map(ActorId)
        .collect();
    assert_eq!(on0.len() + on1.len(), 10);
    if on0.is_empty() || on1.is_empty() {
        return; // Degenerate hash split; nothing to exchange.
    }
    let outcome = ExchangeOutcome {
        accepted: vec![on0[0]],
        returned: vec![on1[0]],
        gain: 0,
    };
    let before = cluster.metrics.migrations;
    let now = engine.now();
    cluster.apply_exchange(&mut engine, now, 0, 1, &outcome);
    assert_eq!(cluster.metrics.migrations, before + 2);
    assert_eq!(cluster.locate(on0[0]), None, "in opportunistic limbo");
    assert!(cluster.servers[0].last_exchange_ns.is_some());
    assert!(cluster.servers[1].last_exchange_ns.is_some());
}

#[test]
fn partition_view_reflects_traffic() {
    let mut config = RuntimeConfig::paper_testbed(21);
    config.servers = 2;
    config.placement = PlacementPolicy::Hash;
    let mut cluster = Cluster::new(config, Box::new(FanApp { fan: 4 }));
    let mut engine: Engine<Cluster> = Engine::new();
    for i in 0..20u64 {
        engine.schedule(Nanos::from_millis(i), |c: &mut Cluster, e| {
            c.submit_client_request(e, ActorId(0), 0, 100);
        });
    }
    engine.run(&mut cluster);
    let home = cluster.locate(ActorId(0)).expect("active");
    let view = cluster.partition_view(home);
    let entry = view
        .iter()
        .find(|(a, _)| *a == ActorId(0))
        .expect("actor 0 in its server's view");
    // Actor 0 talked to its four callees (requests + responses).
    assert_eq!(entry.1.len(), 4, "edges: {:?}", entry.1);
    let total_weight: u64 = entry.1.iter().map(|&(_, w)| w).sum();
    assert!(total_weight >= 20 * 4, "weight {total_weight}");
}

#[test]
fn overload_sheds_requests() {
    let mut config = RuntimeConfig::single_server(33);
    config.max_receiver_queue = 5;
    let mut cluster = Cluster::new(
        config,
        Box::new(FixedCostApp {
            cpu_ns: 10_000_000.0, // 10 ms per request: guaranteed backlog.
            reply_bytes: 100,
        }),
    );
    let mut engine: Engine<Cluster> = Engine::new();
    for i in 0..500u64 {
        engine.schedule(Nanos::from_micros(i), |c: &mut Cluster, e| {
            c.submit_client_request(e, ActorId(1), 0, 100);
        });
    }
    engine.run(&mut cluster);
    assert!(cluster.metrics.rejected > 0, "shedding should kick in");
    assert_eq!(
        cluster.metrics.completed + cluster.metrics.rejected,
        cluster.metrics.submitted
    );
    assert!(cluster.is_drained());
}

#[test]
fn thread_reconfiguration_applies_and_unblocks() {
    let mut cluster = Cluster::new(RuntimeConfig::single_server(17), counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    engine.schedule(Nanos::ZERO, |c: &mut Cluster, e| {
        c.set_stage_threads(e, 0, [2, 3, 1, 1]);
    });
    for i in 0..50u64 {
        engine.schedule(Nanos::from_micros(10 + i), |c: &mut Cluster, e| {
            c.submit_client_request(e, ActorId(4), 0, 100);
        });
    }
    engine.run(&mut cluster);
    assert_eq!(cluster.servers[0].thread_allocation(), [2, 3, 1, 1]);
    assert_eq!(cluster.metrics.completed, 50);
}

#[test]
fn stage_stats_windows_drain() {
    let mut cluster = Cluster::new(RuntimeConfig::single_server(19), counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    for i in 0..50u64 {
        engine.schedule(Nanos::from_micros(i * 20), |c: &mut Cluster, e| {
            c.submit_client_request(e, ActorId(9), 0, 100);
        });
    }
    engine.run(&mut cluster);
    let now = engine.now();
    let reports = cluster.drain_stage_stats(now, 0);
    // Receiver and worker processed all 50 requests (+1 activation forward
    // executed in the worker).
    assert_eq!(reports[0].arrivals, 50);
    assert!(reports[1].completions >= 50);
    assert!(reports[0].sum_cpu_ns > 0.0);
    assert!(reports[0].sum_wallclock_ns >= reports[0].sum_cpu_ns);
    // A second drain starts fresh.
    let fresh = cluster.drain_stage_stats(now, 0);
    assert_eq!(fresh[0].arrivals, 0);
    assert_eq!(fresh[1].completions, 0);
}

#[test]
fn breakdown_components_cover_latency() {
    let mut config = RuntimeConfig::single_server(23);
    config.record_breakdown = true;
    let cluster = run_requests(
        config,
        counter_app(),
        &(0..100).map(ActorId).collect::<Vec<_>>(),
        Nanos::from_micros(300),
    );
    let breakdown = &cluster.metrics.breakdown;
    assert_eq!(breakdown.requests(), 100);
    let shares = breakdown.shares_pct();
    let names: Vec<&str> = shares.iter().map(|&(n, _)| n).collect();
    for expected in [
        "Recv. queue",
        "Recv. processing",
        "Worker queue",
        "Worker processing",
        "Sender queue",
        "Sender processing",
        "Network",
        "Other",
    ] {
        assert!(names.contains(&expected), "missing component {expected}");
    }
    let total_pct: f64 = shares.iter().map(|&(_, p)| p).sum();
    assert!((total_pct - 100.0).abs() < 1e-6);
    // Average components must sum to the mean end-to-end latency.
    let avg_sum: f64 = breakdown.averages_ns().iter().map(|&(_, v)| v).sum();
    let mean = cluster.metrics.e2e_latency.mean();
    assert!(
        (avg_sum - mean).abs() / mean < 0.02,
        "components {avg_sum} vs mean {mean}"
    );
}

#[test]
fn cpu_utilization_is_sane() {
    let mut cluster = Cluster::new(RuntimeConfig::single_server(29), counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    let snapshots: Vec<f64> = vec![cluster.busy_core_ns(0)];
    for i in 0..1000u64 {
        engine.schedule(Nanos::from_micros(i * 100), |c: &mut Cluster, e| {
            c.submit_client_request(e, ActorId(2), 0, 100);
        });
    }
    engine.run(&mut cluster);
    let util = cluster.mean_utilization(&snapshots, Nanos::ZERO, engine.now());
    assert!(util > 0.0 && util < 1.0, "utilization {util}");
}
