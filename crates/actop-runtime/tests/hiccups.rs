//! Stop-the-world pause model: tails inflate, medians survive.

use actop_runtime::app::FixedCostApp;
use actop_runtime::config::HiccupModel;
use actop_runtime::{ActorId, Cluster, RuntimeConfig};
use actop_sim::{DetRng, Engine, Nanos};

fn run(hiccups: Option<HiccupModel>) -> (u64, u64, u64) {
    let mut cfg = RuntimeConfig::single_server(9);
    cfg.hiccups = hiccups;
    let mut cluster = Cluster::new(
        cfg,
        Box::new(FixedCostApp {
            cpu_ns: 50_000.0,
            reply_bytes: 200,
        }),
    );
    let mut engine: Engine<Cluster> = Engine::new();
    cluster.install_hiccups(&mut engine, Nanos::from_secs(11));
    let mut rng = DetRng::stream(9, 0x66);
    for i in 0..20_000u64 {
        let actor = ActorId(rng.below(500) as u64);
        engine.schedule(Nanos::from_micros(i * 500), move |c: &mut Cluster, e| {
            c.submit_client_request(e, actor, 0, 300);
        });
    }
    engine.run(&mut cluster);
    assert_eq!(cluster.metrics.completed, cluster.metrics.submitted);
    (
        cluster.metrics.e2e_latency.quantile(0.5),
        cluster.metrics.e2e_latency.quantile(0.99),
        cluster.metrics.e2e_latency.max(),
    )
}

#[test]
fn pauses_inflate_the_tail_not_the_median() {
    let (p50_plain, p99_plain, _) = run(None);
    let (p50_gc, p99_gc, max_gc) = run(Some(HiccupModel::dotnet_gc()));
    // Median moves a little (drain backlogs), the tail moves a lot.
    assert!(
        p50_gc < 3 * p50_plain,
        "median should survive pauses: {p50_plain} -> {p50_gc}"
    );
    assert!(
        p99_gc > 3 * p99_plain,
        "p99 should inflate: {p99_plain} -> {p99_gc}"
    );
    // The worst request ate most of a pause (pauses run 20-80 ms).
    assert!(max_gc > 20_000_000, "max {max_gc} ns");
    // The tail-to-median ratio enters the paper's regime (their baseline:
    // 736 ms p99 over a 41 ms median, ~18x).
    assert!(
        p99_gc as f64 / p50_gc as f64 > 5.0,
        "tail ratio {:.1}",
        p99_gc as f64 / p50_gc as f64
    );
}

#[test]
fn hiccups_are_deterministic() {
    assert_eq!(
        run(Some(HiccupModel::dotnet_gc())),
        run(Some(HiccupModel::dotnet_gc()))
    );
}
