//! Failure injection: the virtual-actor fault-tolerance model under crash
//! and recovery.
//!
//! Orleans (and this runtime) treats actors as *virtual*: a server crash
//! destroys activations, not identities. The next message to a lost actor
//! re-activates it on a live server. These tests crash servers mid-run and
//! check that every request is accounted for (completed, rejected, or timed
//! out), that actors redistribute, and that a recovered server rejoins.

use actop_runtime::app::FixedCostApp;
use actop_runtime::{ActorId, AppLogic, Call, Cluster, Reaction, RuntimeConfig};
use actop_sim::{DetRng, Engine, Nanos};

fn counter_app() -> Box<dyn AppLogic> {
    Box::new(FixedCostApp {
        cpu_ns: 30_000.0,
        reply_bytes: 200,
    })
}

fn config(servers: usize, seed: u64) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_testbed(seed);
    cfg.servers = servers;
    cfg.request_timeout = Some(Nanos::from_secs(2));
    cfg
}

/// Open-loop request stream against `actors` random actors.
fn stream_requests(engine: &mut Engine<Cluster>, actors: u64, count: u64, gap: Nanos, seed: u64) {
    let mut rng = DetRng::stream(seed, 0x77);
    for i in 0..count {
        let actor = ActorId(rng.range_inclusive(0, actors - 1));
        engine.schedule(gap * i, move |c: &mut Cluster, e| {
            c.submit_client_request(e, actor, 0, 300);
        });
    }
}

#[test]
fn all_requests_accounted_for_across_a_crash() {
    let mut cluster = Cluster::new(config(4, 1), counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    stream_requests(&mut engine, 200, 2_000, Nanos::from_micros(500), 1);
    // Crash server 2 in the middle of the stream.
    engine.schedule(Nanos::from_millis(400), |c: &mut Cluster, e| {
        c.fail_server(e, 2);
    });
    engine.run(&mut cluster);
    let m = &cluster.metrics;
    assert_eq!(m.server_failures, 1);
    assert_eq!(
        m.completed + m.rejected + m.timed_out,
        m.submitted,
        "every request must be accounted: completed {} rejected {} timed_out {} submitted {}",
        m.completed,
        m.rejected,
        m.timed_out,
        m.submitted
    );
    // The vast majority completes: only work resident on the crashed
    // server at the instant of the crash is lost.
    assert!(
        m.completed as f64 > 0.95 * m.submitted as f64,
        "completed {} of {}",
        m.completed,
        m.submitted
    );
    // No activations remain on the failed server.
    assert_eq!(cluster.directory.sizes()[2], 0);
}

#[test]
fn actors_reactivate_on_live_servers() {
    let mut cluster = Cluster::new(config(3, 2), counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    // Activate 60 actors.
    stream_requests(&mut engine, 60, 60, Nanos::from_micros(200), 2);
    engine.run(&mut cluster);
    let victims: Vec<ActorId> = cluster
        .directory
        .vertices_on(1)
        .into_iter()
        .map(ActorId)
        .collect();
    assert!(!victims.is_empty(), "server 1 should host something");
    cluster.fail_server(&mut engine, 1);
    // Touch every lost actor again.
    for (i, actor) in victims.clone().into_iter().enumerate() {
        engine.schedule_after(Nanos::from_micros(i as u64), move |c: &mut Cluster, e| {
            c.submit_client_request(e, actor, 0, 300);
        });
    }
    engine.run(&mut cluster);
    for actor in &victims {
        let home = cluster.locate(*actor).expect("re-activated");
        assert_ne!(home, 1, "must not re-activate on the failed server");
    }
}

#[test]
fn recovered_server_takes_new_activations() {
    let mut cluster = Cluster::new(config(2, 3), counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    cluster.fail_server(&mut engine, 0);
    // With server 0 down, everything lands on server 1.
    stream_requests(&mut engine, 50, 50, Nanos::from_micros(300), 3);
    engine.run(&mut cluster);
    assert_eq!(cluster.directory.sizes()[0], 0);
    let on_1 = cluster.directory.sizes()[1];
    assert!(on_1 > 0);
    // Recover and activate fresh actors: some must land on server 0 again.
    cluster.recover_server(engine.now(), 0);
    let mut rng = DetRng::stream(3, 0x78);
    for i in 0..50u64 {
        let actor = ActorId(1_000 + rng.range_inclusive(0, 49));
        engine.schedule_after(Nanos::from_micros(i * 300), move |c: &mut Cluster, e| {
            c.submit_client_request(e, actor, 0, 300);
        });
    }
    engine.run(&mut cluster);
    assert!(
        cluster.directory.sizes()[0] > 0,
        "recovered server rejoins placement: sizes {:?}",
        cluster.directory.sizes()
    );
    let m = &cluster.metrics;
    assert_eq!(m.completed + m.rejected + m.timed_out, m.submitted);
}

/// An app whose handler fans out, so joins span the crash.
struct FanApp;
impl AppLogic for FanApp {
    fn on_request(&mut self, actor: ActorId, tag: u32, _rng: &mut DetRng) -> Reaction {
        if tag == 0 {
            let calls = (1..=4)
                .map(|i| Call {
                    to: ActorId(actor.0 * 100 + i),
                    tag: 1,
                    bytes: 300,
                })
                .collect();
            Reaction::fan_out(40_000.0, calls, 400)
        } else {
            Reaction::reply(15_000.0, 150)
        }
    }
}

#[test]
fn joins_spanning_a_crash_resolve_or_time_out() {
    let mut cluster = Cluster::new(config(4, 5), Box::new(FanApp));
    let mut engine: Engine<Cluster> = Engine::new();
    let mut rng = DetRng::stream(5, 0x79);
    for i in 0..1_500u64 {
        let actor = ActorId(rng.range_inclusive(0, 30));
        engine.schedule(Nanos::from_micros(i * 400), move |c: &mut Cluster, e| {
            c.submit_client_request(e, actor, 0, 300);
        });
    }
    engine.schedule(Nanos::from_millis(250), |c: &mut Cluster, e| {
        c.fail_server(e, 1);
    });
    engine.schedule(Nanos::from_millis(450), |c: &mut Cluster, e| {
        c.fail_server(e, 3);
    });
    engine.run(&mut cluster);
    let m = &cluster.metrics;
    assert_eq!(m.server_failures, 2);
    assert_eq!(m.completed + m.rejected + m.timed_out, m.submitted);
    assert!(m.completed > 0);
    // Some responses inevitably died with their joins.
    assert!(
        m.timed_out > 0 || m.stale_responses > 0 || m.completed == m.submitted,
        "crash effects should be visible or fully absorbed"
    );
}

/// Regression: an actor migrating toward a server that dies mid-transfer
/// must not vanish or double-activate. The in-flight move aborts cleanly,
/// the actor keeps serving from its source, and the location hints left on
/// the source are repaired rather than pointing into the grave.
#[test]
fn migration_racing_a_crash_aborts_cleanly() {
    let mut cfg = config(3, 9);
    cfg.migration_transfer = Some(Nanos::from_millis(5));
    let mut cluster = Cluster::new(cfg, counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    let actor = ActorId(42);
    // Activate the actor somewhere.
    engine.schedule(Nanos::ZERO, move |c: &mut Cluster, e| {
        c.submit_client_request(e, actor, 0, 300);
    });
    engine.run(&mut cluster);
    let source = cluster.locate(actor).expect("activated");
    let dest = (source + 1) % 3;
    let migrations_before = cluster.metrics.migrations;

    // Start the 5 ms transfer, then crash the destination 1 ms in.
    engine.schedule_after(Nanos::from_millis(1), move |c: &mut Cluster, e| {
        let now = e.now();
        c.migrate_actor(e, now, actor, dest);
        assert_eq!(c.migrations_in_flight(), 1, "transfer must be in flight");
    });
    engine.schedule_after(Nanos::from_millis(2), move |c: &mut Cluster, e| {
        c.fail_server(e, dest);
    });
    // Keep talking to the actor across the abort.
    for i in 0..40u64 {
        engine.schedule_after(
            Nanos::from_millis(3) + Nanos::from_micros(i * 250),
            move |c: &mut Cluster, e| {
                c.submit_client_request(e, actor, 0, 300);
            },
        );
    }
    engine.run(&mut cluster);

    assert_eq!(cluster.metrics.migrations_aborted, 1);
    assert_eq!(cluster.migrations_in_flight(), 0, "no transfer leaked");
    assert_eq!(
        cluster.metrics.migrations, migrations_before,
        "the aborted move must not count as a migration"
    );
    assert_eq!(
        cluster.locate(actor),
        Some(source),
        "actor stays activated at its source — exactly one activation"
    );
    let m = &cluster.metrics;
    assert_eq!(m.completed + m.rejected + m.timed_out, m.submitted);
    assert_eq!(
        m.completed, m.submitted,
        "nothing addressed the dead server"
    );
}

#[test]
fn failure_handling_is_deterministic() {
    let run = || {
        let mut cluster = Cluster::new(config(4, 7), counter_app());
        let mut engine: Engine<Cluster> = Engine::new();
        stream_requests(&mut engine, 100, 1_000, Nanos::from_micros(400), 7);
        engine.schedule(Nanos::from_millis(200), |c: &mut Cluster, e| {
            c.fail_server(e, 0);
        });
        engine.run(&mut cluster);
        (
            cluster.metrics.completed,
            cluster.metrics.timed_out,
            cluster.metrics.e2e_latency.quantile(0.99),
        )
    };
    assert_eq!(run(), run());
}
