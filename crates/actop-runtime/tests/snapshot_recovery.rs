//! Asynchronous snapshots and stateful crash recovery (legacy backend).
//!
//! Actors carry versioned state cells mutated by write-tagged requests;
//! every write is journaled to the durable store and periodic marker
//! rounds checkpoint the cluster without stalling service. These tests
//! drive write streams through snapshot rounds and crashes and check the
//! paper-level contract: recovery loses and duplicates exactly zero state
//! transitions, rounds abort cleanly when a crash punctures the cut, and
//! restores defer (rather than serve lost state) while the store server
//! is down.

use actop_runtime::app::FixedCostApp;
use actop_runtime::{ActorId, AppLogic, Cluster, RuntimeConfig, SnapshotConfig};
use actop_sim::{DetRng, Engine, Nanos};

/// The write tag under the default `write_tags = 0b10` mask.
const TAG_WRITE: u32 = 1;

fn app() -> Box<dyn AppLogic> {
    Box::new(FixedCostApp {
        cpu_ns: 30_000.0,
        reply_bytes: 200,
    })
}

fn config(servers: usize, seed: u64) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_testbed(seed);
    cfg.servers = servers;
    cfg.request_timeout = Some(Nanos::from_secs(2));
    cfg.snapshot = Some(SnapshotConfig {
        interval: Nanos::from_millis(50),
        capture_window: Nanos::from_millis(10),
        ..SnapshotConfig::default()
    });
    cfg
}

/// Open-loop write stream against `actors` random actors.
fn stream_writes(engine: &mut Engine<Cluster>, actors: u64, count: u64, gap: Nanos, seed: u64) {
    let mut rng = DetRng::stream(seed, 0x77);
    for i in 0..count {
        let actor = ActorId(rng.range_inclusive(0, actors - 1));
        engine.schedule(gap * i, move |c: &mut Cluster, e| {
            c.submit_client_request(e, actor, TAG_WRITE, 300);
        });
    }
}

/// Sum of every actor's transition count as the store would restore it —
/// the durable view of "transitions that happened".
fn restored_version_sum(cluster: &Cluster, actors: u64) -> u64 {
    let store = cluster.snapshot_store().expect("snapshots on");
    (0..actors)
        .map(|a| store.restore(a).map_or(0, |p| p.version))
        .sum()
}

#[test]
fn rounds_complete_and_checkpoint_state() {
    let mut cluster = Cluster::new(config(4, 1), app());
    let mut engine: Engine<Cluster> = Engine::new();
    let horizon = Nanos::from_millis(400);
    cluster.install_snapshots(&mut engine, horizon);
    stream_writes(&mut engine, 50, 600, Nanos::from_micros(500), 1);
    engine.run(&mut cluster);
    let m = &cluster.metrics;
    assert!(
        m.snap_rounds_completed >= 4,
        "rounds {}",
        m.snap_rounds_completed
    );
    assert_eq!(m.snap_rounds_aborted, 0, "no crash, no aborts");
    assert!(m.snap_captures > 0, "state was checkpointed");
    assert!(m.state_writes > 0);
    assert_eq!(m.state_writes, m.submitted, "every write is a transition");
    let store = cluster.snapshot_store().expect("snapshots on");
    assert_eq!(
        store.complete_rounds().len() as u64,
        m.snap_rounds_completed
    );
    // The periodic checkpoints bound replay debt: the journal tail is
    // only what accumulated since the last complete round.
    assert!(
        store.total_journal_len() < m.state_writes,
        "journals were truncated by commits"
    );
    // Durable view agrees with the in-memory cells transition for
    // transition.
    assert_eq!(restored_version_sum(&cluster, 50), m.state_writes);
}

#[test]
fn crash_recovery_loses_and_duplicates_nothing() {
    let actors = 60;
    let mut cluster = Cluster::new(config(4, 2), app());
    let mut engine: Engine<Cluster> = Engine::new();
    let horizon = Nanos::from_millis(600);
    cluster.install_snapshots(&mut engine, horizon);
    stream_writes(&mut engine, actors, 1_000, Nanos::from_micros(500), 2);
    // Crash a non-store server mid-stream (the store is on server 0):
    // its actors' in-memory cells die and rehydrate on next touch.
    engine.schedule(Nanos::from_millis(200), |c: &mut Cluster, e| {
        c.fail_server(e, 2);
    });
    engine.run(&mut cluster);
    let m = &cluster.metrics;
    assert_eq!(m.server_failures, 1);
    assert!(m.restores > 0, "lost actors rehydrated");
    // Zero lost, zero duplicated transitions: the durable journal's
    // per-actor version count equals the writes the cluster executed.
    assert_eq!(
        restored_version_sum(&cluster, actors),
        m.state_writes,
        "restore must reproduce exactly the executed transitions"
    );
    // Every surviving in-memory cell agrees with its durable image.
    let store = cluster.snapshot_store().expect("snapshots on");
    for a in 0..actors {
        if let Some(cell) = cluster.state_cell(a) {
            let plan = store.restore(a).expect("written actors are journaled");
            assert_eq!((plan.version, plan.value), (cell.version, cell.value));
        }
    }
}

#[test]
fn crash_mid_round_aborts_the_cut() {
    let mut cfg = config(4, 3);
    // A wide-open capture window so the crash lands inside a round.
    cfg.snapshot = Some(SnapshotConfig {
        interval: Nanos::from_millis(100),
        capture_window: Nanos::from_millis(80),
        ..SnapshotConfig::default()
    });
    let mut cluster = Cluster::new(cfg, app());
    let mut engine: Engine<Cluster> = Engine::new();
    let horizon = Nanos::from_millis(500);
    cluster.install_snapshots(&mut engine, horizon);
    stream_writes(&mut engine, 40, 800, Nanos::from_micros(500), 3);
    // First round begins at 100 ms and sweeps at 180 ms: crash at 140 ms.
    engine.schedule(Nanos::from_millis(140), |c: &mut Cluster, e| {
        c.fail_server(e, 1);
    });
    engine.run(&mut cluster);
    let m = &cluster.metrics;
    assert!(m.snap_rounds_aborted >= 1, "the punctured round aborted");
    let store = cluster.snapshot_store().expect("snapshots on");
    assert_eq!(
        store.complete_rounds().len() as u64,
        m.snap_rounds_completed,
        "aborted rounds never commit"
    );
    // Aborted or not, the WAL keeps recovery exact.
    assert_eq!(restored_version_sum(&cluster, 40), m.state_writes);
}

#[test]
fn restores_defer_while_the_store_server_is_down() {
    let mut cluster = Cluster::new(config(3, 4), app());
    let mut engine: Engine<Cluster> = Engine::new();
    let horizon = Nanos::from_secs(1);
    cluster.install_snapshots(&mut engine, horizon);
    // Build up state everywhere, then crash the store server itself: its
    // hosted cells die AND the store becomes unreachable, so their next
    // touch must defer instead of serving from scratch.
    stream_writes(&mut engine, 30, 300, Nanos::from_micros(500), 4);
    engine.schedule(Nanos::from_millis(200), |c: &mut Cluster, e| {
        c.fail_server(e, 0);
    });
    // Keep writing while the store is down, then recover it.
    let mut rng = DetRng::stream(5, 0x77);
    for i in 0..200u64 {
        let actor = ActorId(rng.range_inclusive(0, 29));
        engine.schedule(
            Nanos::from_millis(250) + Nanos::from_micros(i * 500),
            move |c: &mut Cluster, e| {
                c.submit_client_request(e, actor, TAG_WRITE, 300);
            },
        );
    }
    engine.schedule(Nanos::from_millis(400), |c: &mut Cluster, e| {
        c.recover_server(e.now(), 0);
    });
    // A final wave after recovery so deferred actors rehydrate.
    let mut rng = DetRng::stream(6, 0x77);
    for i in 0..200u64 {
        let actor = ActorId(rng.range_inclusive(0, 29));
        engine.schedule(
            Nanos::from_millis(450) + Nanos::from_micros(i * 500),
            move |c: &mut Cluster, e| {
                c.submit_client_request(e, actor, TAG_WRITE, 300);
            },
        );
    }
    engine.run(&mut cluster);
    let m = &cluster.metrics;
    assert!(
        m.restores_deferred > 0,
        "touches while the store was down deferred"
    );
    assert!(m.restores > 0, "deferred actors eventually rehydrated");
    assert_eq!(
        m.completed + m.rejected + m.timed_out,
        m.submitted,
        "deferral must not leak requests"
    );
    assert_eq!(restored_version_sum(&cluster, 30), m.state_writes);
}

#[test]
fn snapshot_runs_are_deterministic() {
    let run = || {
        let mut cluster = Cluster::new(config(4, 7), app());
        let mut engine: Engine<Cluster> = Engine::new();
        let horizon = Nanos::from_millis(500);
        cluster.install_snapshots(&mut engine, horizon);
        stream_writes(&mut engine, 80, 900, Nanos::from_micros(400), 7);
        engine.schedule(Nanos::from_millis(200), |c: &mut Cluster, e| {
            c.fail_server(e, 3);
        });
        engine.run(&mut cluster);
        (
            cluster.metrics.completed,
            cluster.metrics.state_writes,
            cluster.metrics.restores,
            cluster.metrics.snap_rounds_completed,
            cluster.metrics.snap_captures,
            cluster.metrics.snap_inflight,
            restored_version_sum(&cluster, 80),
            cluster.metrics.e2e_latency.quantile(0.99),
        )
    };
    assert_eq!(run(), run());
}
