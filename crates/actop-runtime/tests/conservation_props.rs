//! Property tests: request conservation under arbitrary application
//! behavior, placements, and crash schedules.
//!
//! Whatever the app does (arbitrary fan-out trees), whatever the placement
//! policy, and whenever servers crash: every submitted request must end up
//! exactly once in `completed`, `rejected`, or `timed_out`, and the engine
//! must fully drain.

use actop_runtime::{ActorId, AppLogic, Call, Cluster, PlacementPolicy, Reaction, RuntimeConfig};
use actop_sim::{DetRng, Engine, Nanos};
use proptest::prelude::*;

/// An application whose handlers fan out pseudo-randomly, derived from a
/// per-case seed: depth-limited so trees terminate.
struct RandomApp {
    fan_bias: u8,
}

impl AppLogic for RandomApp {
    fn on_request(&mut self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
        // `tag` carries remaining depth.
        if tag == 0 || !rng.chance(self.fan_bias as f64 / 255.0) {
            return Reaction::reply(rng.exp(20_000.0), 100);
        }
        let fan = rng.below(4) + 1;
        let calls = (0..fan)
            .map(|i| Call {
                to: ActorId((actor.0 * 7 + i as u64 * 13 + 1) % 64),
                tag: tag - 1,
                bytes: 200,
            })
            .collect();
        Reaction::fan_out(rng.exp(30_000.0), calls, 150)
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    servers: usize,
    placement: u8,
    fan_bias: u8,
    requests: u16,
    depth: u32,
    crash_at_us: Option<u32>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        1usize..5,
        0u8..3,
        0u8..200,
        1u16..150,
        0u32..3,
        proptest::option::of(1_000u32..200_000),
    )
        .prop_map(
            |(seed, servers, placement, fan_bias, requests, depth, crash_at_us)| Scenario {
                seed,
                servers,
                placement,
                fan_bias,
                requests,
                depth,
                // Never crash the only server.
                crash_at_us: if servers > 1 { crash_at_us } else { None },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn requests_are_conserved(scenario in arb_scenario()) {
        let mut config = RuntimeConfig::paper_testbed(scenario.seed);
        config.servers = scenario.servers;
        config.placement = match scenario.placement {
            0 => PlacementPolicy::Random,
            1 => PlacementPolicy::Hash,
            _ => PlacementPolicy::Local,
        };
        config.request_timeout = Some(Nanos::from_secs(3));
        let mut cluster = Cluster::new(
            config,
            Box::new(RandomApp {
                fan_bias: scenario.fan_bias,
            }),
        );
        let mut engine: Engine<Cluster> = Engine::new();
        let depth = scenario.depth;
        let mut rng = DetRng::stream(scenario.seed, 0xAB);
        for i in 0..scenario.requests {
            let actor = ActorId(rng.below(64) as u64);
            engine.schedule(
                Nanos::from_micros(i as u64 * 150),
                move |c: &mut Cluster, e| {
                    c.submit_client_request(e, actor, depth, 300);
                },
            );
        }
        if let Some(at) = scenario.crash_at_us {
            let victim = (scenario.seed % scenario.servers as u64) as usize;
            engine.schedule(Nanos::from_micros(at as u64), move |c: &mut Cluster, e| {
                c.fail_server(e, victim);
            });
        }
        engine.run(&mut cluster);
        let m = &cluster.metrics;
        prop_assert_eq!(
            m.completed + m.rejected + m.timed_out,
            m.submitted,
            "completed {} rejected {} timed_out {} submitted {}",
            m.completed, m.rejected, m.timed_out, m.submitted
        );
        // The cluster must fully drain even across a crash: the timeout
        // purges a dead request's joins, and zombie branches (work for
        // already-resolved requests) are dropped instead of minting new
        // state — no leaked handles, ever.
        prop_assert!(
            cluster.is_drained(),
            "leaked in-flight state after drain (crash: {:?})",
            scenario.crash_at_us
        );
        // Without a crash nothing may time out or go stale.
        if scenario.crash_at_us.is_none() {
            prop_assert_eq!(m.timed_out, 0);
            prop_assert_eq!(m.stale_responses, 0);
        }
    }

    /// Actor-to-actor message counts are consistent with the locality
    /// series, and every actor lives on at most one server.
    #[test]
    fn directory_is_single_assignment(scenario in arb_scenario()) {
        let mut config = RuntimeConfig::paper_testbed(scenario.seed);
        config.servers = scenario.servers;
        config.request_timeout = Some(Nanos::from_secs(3));
        let mut cluster = Cluster::new(
            config,
            Box::new(RandomApp {
                fan_bias: scenario.fan_bias,
            }),
        );
        let mut engine: Engine<Cluster> = Engine::new();
        let depth = scenario.depth;
        let mut rng = DetRng::stream(scenario.seed, 0xAC);
        for i in 0..scenario.requests.min(60) {
            let actor = ActorId(rng.below(64) as u64);
            engine.schedule(
                Nanos::from_micros(i as u64 * 200),
                move |c: &mut Cluster, e| {
                    c.submit_client_request(e, actor, depth, 300);
                },
            );
        }
        engine.run(&mut cluster);
        // Sizes sum to the directory population.
        let total: usize = cluster.server_sizes().iter().sum();
        prop_assert_eq!(total, cluster.directory.vertex_count());
        // The locality counters match the series totals.
        let series_count: u64 = cluster
            .metrics
            .remote_share_series
            .bins()
            .iter()
            .map(|b| b.count)
            .sum();
        prop_assert_eq!(
            series_count,
            cluster.metrics.remote_messages + cluster.metrics.local_messages
        );
    }
}
