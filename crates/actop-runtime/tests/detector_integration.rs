//! Heartbeat failure-detector integration: detection lag, recovery
//! clearing, false suspicion under gray failure, and detector-off
//! equivalence.
//!
//! With `config.detector` set, routing no longer consults the ground-truth
//! `failed[]` oracle — it consults per-server *suspicion* built from
//! heartbeats. That makes detection lag, false positives, and flapping
//! observable phenomena rather than modeling artifacts. These tests pin the
//! externally visible contract.

use actop_runtime::app::FixedCostApp;
use actop_runtime::{ActorId, AppLogic, Cluster, DetectorConfig, RuntimeConfig};
use actop_sim::{DetRng, Engine, Nanos};

fn counter_app() -> Box<dyn AppLogic> {
    Box::new(FixedCostApp {
        cpu_ns: 30_000.0,
        reply_bytes: 200,
    })
}

fn config(servers: usize, seed: u64) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::paper_testbed(seed);
    cfg.servers = servers;
    cfg.request_timeout = Some(Nanos::from_secs(2));
    cfg.detector = Some(DetectorConfig::default());
    cfg
}

fn stream_requests(engine: &mut Engine<Cluster>, actors: u64, count: u64, gap: Nanos, seed: u64) {
    let mut rng = DetRng::stream(seed, 0x77);
    for i in 0..count {
        let actor = ActorId(rng.range_inclusive(0, actors - 1));
        engine.schedule(gap * i, move |c: &mut Cluster, e| {
            c.submit_client_request(e, actor, 0, 300);
        });
    }
}

/// A crashed server is suspected by every live observer within
/// `suspect_after` plus a couple of heartbeat intervals, and cleared again
/// a few intervals after it recovers.
#[test]
fn crash_is_detected_and_recovery_clears_suspicion() {
    let mut cluster = Cluster::new(config(3, 11), counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    cluster.install_heartbeats(&mut engine, Nanos::from_secs(1));
    engine.schedule(Nanos::from_millis(100), |c: &mut Cluster, e| {
        c.fail_server(e, 2);
    });

    // Before the crash: nobody suspects anybody.
    engine.run_until(&mut cluster, Nanos::from_millis(90));
    for obs in 0..3 {
        for peer in 0..3 {
            assert_eq!(
                cluster.detector_suspects(obs, peer, engine.now()),
                Some(false),
                "no suspicion before any fault ({obs} -> {peer})"
            );
        }
    }

    // Crash at 100 ms; default suspect_after is 50 ms. By 180 ms (crash +
    // suspect_after + 3 heartbeat intervals of margin) every live observer
    // must suspect server 2.
    engine.run_until(&mut cluster, Nanos::from_millis(180));
    let now = engine.now();
    assert_eq!(cluster.detector_suspects(0, 2, now), Some(true));
    assert_eq!(cluster.detector_suspects(1, 2, now), Some(true));
    // ... and not each other.
    assert_eq!(cluster.detector_suspects(0, 1, now), Some(false));
    assert_eq!(cluster.detector_suspects(1, 0, now), Some(false));

    // Recover at 200 ms. The recovered server resumes heartbeating (the
    // emission loop survives the crash); within a few intervals observers
    // clear it.
    cluster.recover_server(engine.now(), 2);
    engine.run_until(&mut cluster, Nanos::from_millis(280));
    let now = engine.now();
    assert_eq!(
        cluster.detector_suspects(0, 2, now),
        Some(false),
        "recovery must clear suspicion"
    );
    assert_eq!(cluster.detector_suspects(1, 2, now), Some(false));
    engine.run(&mut cluster);
}

/// A gray-failing server — alive, heartbeating, but servicing at 0.5% of
/// nominal rate while loaded — heartbeats so late that peers suspect it
/// even though it never crashed: false suspicion is a first-class outcome.
#[test]
fn gray_failure_draws_false_suspicion() {
    let mut cfg = config(3, 13);
    // Heavier heartbeat emission cost so the gray server's CPU slowdown
    // translates into hundreds of ms of emission lag (2 ms x >=200x
    // slowdown at rate factor 0.005).
    cfg.detector = Some(DetectorConfig {
        heartbeat_process_ns: 2_000_000.0,
        ..DetectorConfig::default()
    });
    let mut cluster = Cluster::new(cfg, counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    cluster.install_heartbeats(&mut engine, Nanos::from_secs(1));
    // Sustained load so the gray server always has runnable work (an idle
    // CPU has slowdown 1.0 and would heartbeat on time).
    stream_requests(&mut engine, 120, 3_000, Nanos::from_micros(200), 13);
    engine.schedule(Nanos::from_millis(50), |c: &mut Cluster, e| {
        c.set_server_rate_factor(e, 1, 0.005);
    });

    // Suspicion is a *window*, not a steady state: the last prompt
    // heartbeat lands around 50 ms, the first lagged one hundreds of ms
    // later, so between ~100 ms (silence > suspect_after) and that first
    // late arrival the peers suspect. Probe mid-window.
    engine.run_until(&mut cluster, Nanos::from_millis(250));
    let now = engine.now();
    assert!(!cluster.is_failed(1), "gray server never actually crashed");
    assert_eq!(
        cluster.detector_suspects(0, 1, now),
        Some(true),
        "peers must suspect the gray server from heartbeat lag"
    );
    assert!(
        cluster.metrics.suspicions > 0,
        "routing observed the suspicion"
    );
    engine.run(&mut cluster);
    // Every admitted request still terminates exactly once.
    let m = &cluster.metrics;
    assert_eq!(m.completed + m.rejected + m.timed_out, m.submitted);
}

/// With the detector configured but no faults injected, suspicion stays
/// globally false and the request path behaves identically to a
/// detector-free run: heartbeats ride separate RNG streams and must not
/// perturb routing, placement, or service.
#[test]
fn idle_detector_run_matches_detector_free_run() {
    let run = |with_detector: bool| {
        let mut cfg = RuntimeConfig::paper_testbed(17);
        cfg.servers = 4;
        cfg.request_timeout = Some(Nanos::from_secs(2));
        if with_detector {
            cfg.detector = Some(DetectorConfig::default());
        }
        let mut cluster = Cluster::new(cfg, counter_app());
        let mut engine: Engine<Cluster> = Engine::new();
        if with_detector {
            cluster.install_heartbeats(&mut engine, Nanos::from_millis(600));
        }
        stream_requests(&mut engine, 150, 1_200, Nanos::from_micros(400), 17);
        engine.run(&mut cluster);
        (
            cluster.metrics.completed,
            cluster.metrics.timed_out,
            cluster.metrics.remote_messages,
            cluster.metrics.local_messages,
            cluster.metrics.e2e_latency.quantile(0.5),
            cluster.metrics.e2e_latency.quantile(0.99),
        )
    };
    assert_eq!(run(true), run(false));
}

/// Heartbeat traffic is visible in the lifecycle counters and never counts
/// as application messages.
#[test]
fn heartbeats_are_accounted_separately() {
    let mut cluster = Cluster::new(config(3, 19), counter_app());
    let mut engine: Engine<Cluster> = Engine::new();
    cluster.install_heartbeats(&mut engine, Nanos::from_millis(200));
    engine.run(&mut cluster);
    let m = &cluster.metrics;
    // ~20 rounds x 3 servers x 2 peers.
    assert!(m.heartbeats_sent >= 100, "sent {}", m.heartbeats_sent);
    assert_eq!(m.submitted, 0);
    assert_eq!(m.remote_messages + m.local_messages, 0);
    assert_eq!(m.suspicions, 0, "quiet cluster, no suspicion");
}
