//! Runtime-side telemetry: the bridge between [`ClusterMetrics`] and the
//! `actop-obs` registry / SLO machinery.
//!
//! [`Observability`] owns a typed metric [`Registry`] mirroring the
//! cluster's counters, per-server gauges, and an end-to-end latency
//! histogram, plus an online [`SloEngine`] fed from the cluster's binned
//! series as bins close. Both cluster backends drive it the same way:
//!
//! * the legacy [`Cluster`](crate::Cluster) scrapes on a sim-time cadence
//!   via [`Cluster::install_scraper`](crate::Cluster::install_scraper)
//!   and evaluates SLOs online (alerts land as trace events during the
//!   run);
//! * the sharded backend scrapes each shard's registry at global barrier
//!   events and merges the registries afterwards; SLO evaluation then
//!   runs once over the *merged* series. Because alerting is a pure
//!   function of the binned series and alert timestamps are bin-aligned,
//!   both paths produce identical alert streams for identical series.
//!
//! Two details keep the artifacts deterministic and merge-correct:
//!
//! * **Counter resets.** `reset_steady_state` zeroes request-scoped
//!   counters at the warmup boundary, but a registry counter must never
//!   go backwards. Each mirrored counter therefore keeps the raw value
//!   last seen and a cumulative accumulator: a raw value below the
//!   previous one is a reset, and the new raw value counts from zero.
//!   The accumulator is a sum of per-shard activity either way, so
//!   merged values are invariant under the shard count.
//! * **Gauge ownership.** A sharded world sets gauges only for servers it
//!   owns and leaves the rest at zero, so the cross-shard gauge *sum*
//!   equals the cluster value and frames merge with the same summation
//!   rule as counters.
//!
//! [`ClusterMetrics`]: crate::ClusterMetrics

use actop_metrics::BinnedSeries;
use actop_obs::{
    latency_bounds_ns, AlertNote, AlertTransition, MetricId, Registry, SloEngine, SloKind, SloNote,
};
use actop_sim::Nanos;

use crate::config::ObsConfig;
use crate::metrics::ClusterMetrics;

/// Detector-accuracy tallies: every sampling tick, each live observer's
/// suspicion of every peer is compared against ground truth. Lives here
/// (not in the benches) so any harness can report detector health.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DetectorAccuracy {
    /// Sampling ticks taken.
    pub samples: u64,
    /// Suspected and actually failed.
    pub true_suspect: u64,
    /// Suspected but alive (false positive).
    pub false_suspect: u64,
    /// Failed but not suspected (detection lag).
    pub missed_failure: u64,
    /// Not suspected and alive.
    pub true_clear: u64,
}

/// One mirrored cluster counter: where it lives in the registry, how to
/// read it, and the reset-safe accumulator state.
struct CounterMirror {
    id: MetricId,
    read: fn(&ClusterMetrics) -> u64,
    /// Raw value at the previous scrape (pre-accumulation).
    prev: u64,
    /// Monotone cumulative value across warmup resets.
    acc: u64,
}

/// A counter family name paired with its `ClusterMetrics` reader.
type CounterSource = (&'static str, fn(&ClusterMetrics) -> u64);

/// The mirrored counters, in registration (and therefore wire) order.
const COUNTERS: &[CounterSource] = &[
    ("requests_submitted_total", |m| m.submitted),
    ("requests_completed_total", |m| m.completed),
    ("requests_rejected_total", |m| m.rejected),
    ("requests_timed_out_total", |m| m.timed_out),
    ("requests_shed_no_live_total", |m| m.shed_no_live),
    ("responses_stale_total", |m| m.stale_responses),
    ("messages_remote_total", |m| m.remote_messages),
    ("messages_local_total", |m| m.local_messages),
    ("messages_forwarded_total", |m| m.forwarded_messages),
    ("messages_lost_in_flight_total", |m| m.lost_in_flight),
    ("messages_net_dropped_total", |m| m.net_dropped),
    ("forward_loop_drops_total", |m| m.forward_loop_drops),
    ("zombie_branches_total", |m| m.zombie_branches),
    ("retries_total", |m| m.retries),
    ("retry_budget_exhausted_total", |m| m.retry_budget_exhausted),
    ("migrations_total", |m| m.migrations),
    ("migrations_aborted_total", |m| m.migrations_aborted),
    ("server_failures_total", |m| m.server_failures),
    ("heartbeats_sent_total", |m| m.heartbeats_sent),
    ("heartbeats_dropped_total", |m| m.heartbeats_dropped),
    ("suspicions_total", |m| m.suspicions),
    ("unsuspicions_total", |m| m.unsuspicions),
    ("directory_repairs_total", |m| m.directory_repairs),
    ("false_suspicion_repairs_total", |m| {
        m.false_suspicion_repairs
    }),
    ("splits_total", |m| m.splits),
    ("splits_aborted_total", |m| m.splits_aborted),
    ("replica_drops_total", |m| m.replica_drops),
    ("replica_reads_total", |m| m.replica_reads),
];

/// Snapshot-subsystem counters, registered after [`COUNTERS`] only when
/// the run has snapshots configured. Conditional registration keeps the
/// snapshot-off wire schema — and therefore every golden artifact —
/// byte-identical to builds predating the subsystem; both backends derive
/// the flag from the same config, so cross-shard merge schemas still
/// match.
const SNAP_COUNTERS: &[CounterSource] = &[
    ("snap_rounds_started_total", |m| m.snap_rounds_started),
    ("snap_rounds_completed_total", |m| m.snap_rounds_completed),
    ("snap_rounds_aborted_total", |m| m.snap_rounds_aborted),
    ("snap_rounds_skipped_total", |m| m.snap_rounds_skipped),
    ("snap_captures_total", |m| m.snap_captures),
    ("snap_bytes_total", |m| m.snap_bytes),
    ("snap_inflight_total", |m| m.snap_inflight),
    ("state_writes_total", |m| m.state_writes),
    ("restores_total", |m| m.restores),
    ("restore_replayed_total", |m| m.restore_replayed),
    ("restores_deferred_total", |m| m.restores_deferred),
];

/// An SLO alert transition surfaced to the caller so it can record trace
/// events and tally cluster metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTransition {
    /// Spec index in the configured `slos` list.
    pub spec: usize,
    /// Bin at which the transition happened.
    pub bin: u64,
    /// Bin-aligned sim time of the transition (bin close time).
    pub t_ns: u64,
    /// `true` for open, `false` for close.
    pub open: bool,
}

/// Telemetry state for one cluster (or one shard of one).
#[derive(Debug)]
pub struct Observability {
    registry: Registry,
    slo: SloEngine,
    interval: Nanos,
    bin_ns: u64,
    /// Series bins already fed to the SLO engine.
    fed_bins: usize,
    counters: Vec<CounterMirror>,
    queue_gauges: Vec<MetricId>,
    up_gauges: Vec<MetricId>,
    /// Cluster-wide replica-activation count (hot-actor splits). Always
    /// registered — an identical schema across backends is a merge
    /// requirement — and simply stays 0 when replication is off. In a
    /// sharded run only the world owning server 0 sets it, so the
    /// cross-shard gauge sum equals the cluster value.
    replica_gauge: MetricId,
    latency_hist: MetricId,
    /// Snapshot round-duration histogram; registered (with the snapshot
    /// counters) only when the run has snapshots configured.
    snap_round_hist: Option<MetricId>,
    alerts: Vec<AlertNote>,
}

impl std::fmt::Debug for CounterMirror {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterMirror")
            .field("prev", &self.prev)
            .field("acc", &self.acc)
            .finish()
    }
}

impl Observability {
    /// Builds the registry schema for a cluster of `servers` servers and
    /// an SLO engine over `series_bin_ns`-wide bins. Every backend with
    /// the same `(config, servers, series_bin_ns)` builds an *identical*
    /// schema — a requirement for cross-shard merging.
    pub fn new(cfg: &ObsConfig, servers: usize, series_bin_ns: u64) -> Self {
        Self::with_snapshot(cfg, servers, series_bin_ns, false)
    }

    /// Like [`Observability::new`], additionally registering the snapshot
    /// counters and round-duration histogram when `snapshot` is true.
    /// Both backends derive the flag from `config.snapshot.is_some()`, so
    /// every shard of one run builds the same schema.
    pub fn with_snapshot(
        cfg: &ObsConfig,
        servers: usize,
        series_bin_ns: u64,
        snapshot: bool,
    ) -> Self {
        let mut registry = Registry::new(cfg.ring_capacity);
        let mut counters: Vec<CounterMirror> = COUNTERS
            .iter()
            .map(|&(name, read)| CounterMirror {
                id: registry.counter(name, &[]),
                read,
                prev: 0,
                acc: 0,
            })
            .collect();
        if snapshot {
            counters.extend(SNAP_COUNTERS.iter().map(|&(name, read)| CounterMirror {
                id: registry.counter(name, &[]),
                read,
                prev: 0,
                acc: 0,
            }));
        }
        let mut queue_gauges = Vec::with_capacity(servers);
        let mut up_gauges = Vec::with_capacity(servers);
        for s in 0..servers {
            let label = s.to_string();
            queue_gauges.push(registry.gauge("server_queue_depth", &[("server", &label)]));
            up_gauges.push(registry.gauge("server_up", &[("server", &label)]));
        }
        let replica_gauge = registry.gauge("replica_activations", &[]);
        let latency_hist = registry.histogram("e2e_latency_ns", &[], &latency_bounds_ns());
        let snap_round_hist = snapshot
            .then(|| registry.histogram("snapshot_round_duration_ns", &[], &latency_bounds_ns()));
        Observability {
            registry,
            slo: SloEngine::new(cfg.slos.clone(), series_bin_ns),
            interval: cfg.scrape_interval,
            bin_ns: series_bin_ns,
            fed_bins: 0,
            counters,
            queue_gauges,
            up_gauges,
            replica_gauge,
            latency_hist,
            snap_round_hist,
            alerts: Vec::new(),
        }
    }

    /// Records one completed snapshot round's duration. A no-op when the
    /// snapshot schema is not registered.
    #[inline]
    pub fn observe_snap_round(&mut self, duration_ns: u64) {
        if let Some(id) = self.snap_round_hist {
            self.registry.observe(id, duration_ns);
        }
    }

    /// Sets the cluster-wide replica-activation gauge. Call before
    /// [`Observability::scrape`]; sharded worlds that do not own server 0
    /// skip the call and leave the gauge at its zero default.
    pub fn set_replica_activations(&mut self, count: f64) {
        self.registry.set_gauge(self.replica_gauge, count);
    }

    /// The scrape cadence.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// The registry (schema + retained frames + live values).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Alert annotations accumulated by SLO evaluation, in time order.
    pub fn alerts(&self) -> &[AlertNote] {
        &self.alerts
    }

    /// Records one completed end-to-end request latency.
    #[inline]
    pub fn observe_latency(&mut self, total_ns: u64) {
        self.registry.observe(self.latency_hist, total_ns);
    }

    /// Folds the not-yet-scraped raw counter deltas into the cumulative
    /// accumulators and rebases the mirrors to zero. The cluster calls
    /// this *before* `ClusterMetrics::reset_steady_state`, so registry
    /// counters stay monotone — and lossless — across the warmup reset.
    pub fn note_reset(&mut self, metrics: &ClusterMetrics) {
        for c in &mut self.counters {
            let raw = (c.read)(metrics);
            c.acc += raw.saturating_sub(c.prev);
            c.prev = 0;
        }
    }

    /// Takes one scrape at `now`: refreshes the counter mirrors from
    /// `metrics`, sets the per-server `(queue_depth, up)` gauge pairs,
    /// and snapshots a frame. A sharded world passes zeros for servers it
    /// does not own so gauge sums merge to cluster values.
    pub fn scrape(&mut self, now: Nanos, metrics: &ClusterMetrics, per_server: &[(f64, f64)]) {
        assert_eq!(per_server.len(), self.queue_gauges.len(), "gauge arity");
        for c in &mut self.counters {
            let raw = (c.read)(metrics);
            // Defensive: a raw value below the last one means a reset the
            // cluster forgot to announce via `note_reset`; the new raw
            // value counts from zero.
            c.acc += if raw >= c.prev { raw - c.prev } else { raw };
            c.prev = raw;
            self.registry.set_counter(c.id, c.acc);
        }
        for (s, &(queue, up)) in per_server.iter().enumerate() {
            self.registry.set_gauge(self.queue_gauges[s], queue);
            self.registry.set_gauge(self.up_gauges[s], up);
        }
        self.registry.scrape(now.as_nanos());
    }

    /// Feeds every series bin fully closed at `now` to the SLO engine and
    /// returns the alert transitions that caused, oldest first. Latency
    /// and goodput objectives read the end-to-end latency series;
    /// rate-ceiling objectives read the false-suspicion series. Call on
    /// every scrape (online alerting) and once more at the end of the run
    /// to catch bins closed after the last scrape.
    pub fn drain_slos(&mut self, now: Nanos, metrics: &ClusterMetrics) -> Vec<SloTransition> {
        let closed = (now.as_nanos() / self.bin_ns) as usize;
        let mut out = Vec::new();
        while self.fed_bins < closed {
            let bin = self.fed_bins;
            for idx in 0..self.slo.specs().len() {
                let series = match self.slo.specs()[idx].kind {
                    SloKind::RateBelowPerS(_) => &metrics.false_suspicion_series,
                    _ => &metrics.latency_series,
                };
                let obs = bin_obs(series, bin);
                let transition = self.slo.push(idx, obs);
                if transition == AlertTransition::None {
                    continue;
                }
                let open = transition == AlertTransition::Opened;
                let t_ns = (bin as u64 + 1) * self.bin_ns;
                self.alerts.push(AlertNote {
                    slo: self.slo.specs()[idx].name.clone(),
                    open,
                    t_ns,
                    bin: bin as u64,
                });
                out.push(SloTransition {
                    spec: idx,
                    bin: bin as u64,
                    t_ns,
                    open,
                });
            }
            self.fed_bins += 1;
        }
        out
    }

    /// Per-SLO outcome annotations for the export: absolute violation
    /// windows plus alert tallies.
    pub fn slo_notes(&self) -> Vec<SloNote> {
        (0..self.slo.specs().len())
            .map(|idx| SloNote {
                name: self.slo.specs()[idx].name.clone(),
                windows: self
                    .slo
                    .windows(idx)
                    .iter()
                    .map(|w| (w.start_bin as u64, w.end_bin as u64))
                    .collect(),
                opened: self.slo.alerts_opened(idx),
                closed: self.slo.alerts_closed(idx),
            })
            .collect()
    }

    /// The SLO engine (violation windows, episodes, verdicts).
    pub fn slo_engine(&self) -> &SloEngine {
        &self.slo
    }

    /// Folds another shard's registry into this one: frames and live
    /// values sum per slot. The SLO engine is untouched — sharded SLO
    /// evaluation runs once over the merged series afterwards.
    pub fn merge_from(&mut self, other: &Observability) {
        self.registry.merge_from(&other.registry);
    }
}

/// The `(count, sum)` view of one series bin; bins past the series' end
/// are empty.
fn bin_obs(series: &BinnedSeries, bin: usize) -> actop_obs::BinObs {
    let bins = series.bins();
    if bin < bins.len() {
        actop_obs::BinObs {
            count: bins[bin].count as f64,
            sum: bins[bin].sum,
        }
    } else {
        actop_obs::BinObs {
            count: 0.0,
            sum: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_obs::{FrameValue, SloSpec};

    fn obs_with(slos: Vec<SloSpec>) -> Observability {
        let cfg = ObsConfig {
            slos,
            ..ObsConfig::default()
        };
        Observability::new(&cfg, 2, 1_000_000_000)
    }

    fn counter_value(o: &Observability, name: &str) -> u64 {
        let idx = o
            .registry()
            .defs()
            .iter()
            .position(|d| d.name == name)
            .expect("registered");
        let frame = o.registry().frames().last().expect("scraped");
        match &frame.values[idx] {
            FrameValue::Counter(v) => *v,
            other => panic!("not a counter: {other:?}"),
        }
    }

    #[test]
    fn counter_mirror_survives_warmup_reset() {
        let mut o = obs_with(vec![]);
        let mut m = ClusterMetrics::new(1_000_000_000);
        m.submitted = 10;
        o.scrape(Nanos::from_secs(1), &m, &[(0.0, 1.0), (0.0, 1.0)]);
        assert_eq!(counter_value(&o, "requests_submitted_total"), 10);
        // Warmup boundary: 2 more submissions land, then the counter
        // resets (announced), then 15 more — regrowing past the pre-reset
        // raw value.
        m.submitted = 12;
        o.note_reset(&m);
        m.reset_steady_state();
        m.submitted = 15;
        o.scrape(Nanos::from_secs(2), &m, &[(0.0, 1.0), (0.0, 1.0)]);
        assert_eq!(
            counter_value(&o, "requests_submitted_total"),
            27,
            "cumulative and lossless across the reset"
        );
        // An unannounced reset still keeps the counter monotone.
        m.reset_steady_state();
        m.submitted = 3;
        o.scrape(Nanos::from_secs(3), &m, &[(0.0, 1.0), (0.0, 1.0)]);
        assert_eq!(counter_value(&o, "requests_submitted_total"), 30);
    }

    #[test]
    fn reset_accumulation_is_shard_invariant() {
        // One "cluster" vs two "shards" carrying the same activity split:
        // after a mid-run reset on every side, merged counters agree.
        let mut whole = obs_with(vec![]);
        let mut a = obs_with(vec![]);
        let mut b = obs_with(vec![]);
        let mut mw = ClusterMetrics::new(1_000_000_000);
        let mut ma = ClusterMetrics::new(1_000_000_000);
        let mut mb = ClusterMetrics::new(1_000_000_000);
        mw.completed = 9;
        ma.completed = 4;
        mb.completed = 5;
        let zeros = [(0.0, 0.0), (0.0, 0.0)];
        whole.scrape(Nanos::from_secs(1), &mw, &zeros);
        a.scrape(Nanos::from_secs(1), &ma, &zeros);
        b.scrape(Nanos::from_secs(1), &mb, &zeros);
        whole.note_reset(&mw);
        a.note_reset(&ma);
        b.note_reset(&mb);
        mw.reset_steady_state();
        ma.reset_steady_state();
        mb.reset_steady_state();
        mw.completed = 7;
        ma.completed = 6;
        mb.completed = 1;
        whole.scrape(Nanos::from_secs(2), &mw, &zeros);
        a.scrape(Nanos::from_secs(2), &ma, &zeros);
        b.scrape(Nanos::from_secs(2), &mb, &zeros);
        a.merge_from(&b);
        assert_eq!(
            counter_value(&whole, "requests_completed_total"),
            counter_value(&a, "requests_completed_total"),
        );
    }

    #[test]
    fn drain_feeds_closed_bins_and_aligns_alert_times() {
        // An immediately-burning SLO (1-bin windows) opens at bin 0.
        let mut spec = SloSpec::new("lat", SloKind::MeanLatencyBelowMs(100.0));
        spec.burn.short_bins = 1;
        spec.burn.long_bins = 1;
        let mut o = obs_with(vec![spec]);
        let mut m = ClusterMetrics::new(1_000_000_000);
        m.latency_series.record(500_000_000, 200.0 * 1e6);
        // Nothing closed before the first bin boundary.
        assert!(o.drain_slos(Nanos(999_999_999), &m).is_empty());
        let got = o.drain_slos(Nanos::from_secs(3), &m);
        assert_eq!(
            got,
            vec![
                SloTransition {
                    spec: 0,
                    bin: 0,
                    t_ns: 1_000_000_000,
                    open: true
                },
                SloTransition {
                    spec: 0,
                    bin: 1,
                    t_ns: 2_000_000_000,
                    open: false
                },
            ]
        );
        // Re-draining the same horizon is a no-op.
        assert!(o.drain_slos(Nanos::from_secs(3), &m).is_empty());
        assert_eq!(o.alerts().len(), 2);
        assert_eq!(o.slo_notes()[0].opened, 1);
        assert_eq!(o.slo_notes()[0].closed, 1);
    }

    #[test]
    fn snapshot_schema_is_opt_in_and_merges() {
        let cfg = ObsConfig::default();
        let plain = Observability::new(&cfg, 2, 1_000_000_000);
        let with = Observability::with_snapshot(&cfg, 2, 1_000_000_000, true);
        assert!(
            !plain
                .registry()
                .defs()
                .iter()
                .any(|d| d.name.starts_with("snap_")),
            "snapshot-off schema is untouched"
        );
        assert!(with
            .registry()
            .defs()
            .iter()
            .any(|d| d.name == "snapshot_round_duration_ns"));
        // Two shards with the snapshot schema merge; counters sum.
        let mut a = Observability::with_snapshot(&cfg, 2, 1_000_000_000, true);
        let mut b = Observability::with_snapshot(&cfg, 2, 1_000_000_000, true);
        let mut ma = ClusterMetrics::new(1_000_000_000);
        let mut mb = ClusterMetrics::new(1_000_000_000);
        ma.snap_captures = 3;
        mb.snap_captures = 4;
        let zeros = [(0.0, 0.0), (0.0, 0.0)];
        a.scrape(Nanos::from_secs(1), &ma, &zeros);
        b.scrape(Nanos::from_secs(1), &mb, &zeros);
        a.observe_snap_round(5_000_000);
        a.merge_from(&b);
        assert_eq!(counter_value(&a, "snap_captures_total"), 7);
    }

    #[test]
    fn rate_slos_read_the_false_suspicion_series() {
        let mut spec = SloSpec::new("fs", SloKind::RateBelowPerS(1.0));
        spec.burn.short_bins = 1;
        spec.burn.long_bins = 1;
        let mut o = obs_with(vec![spec]);
        let mut m = ClusterMetrics::new(1_000_000_000);
        m.false_suspicion_series.mark(100);
        m.false_suspicion_series.mark(200);
        let got = o.drain_slos(Nanos::from_secs(1), &m);
        assert_eq!(got.len(), 1);
        assert!(got[0].open);
    }
}
