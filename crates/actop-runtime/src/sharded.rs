//! The sharded cluster: the conservative-parallel backend of the runtime.
//!
//! [`crate::cluster::Cluster`] is one discrete-event world — one event heap,
//! one thread. This module partitions the same simulated cluster across N
//! shards (`server % shards`), each with its own event heap, and runs them
//! under `actop_sim::shard::ConservativeRunner`: shards execute windows of
//! `lookahead` simulated nanoseconds in parallel and exchange cross-server
//! messages at barrier boundaries. The lookahead is the network delay floor
//! ([`actop_sim::NetworkModel::base_ns`]): every server-to-server delivery
//! is at least one lookahead in the future, so no shard can affect another
//! inside a window.
//!
//! # Determinism
//!
//! Results are byte-identical for a fixed seed **regardless of shard count
//! or worker-thread count**. The mechanisms:
//!
//! * Per-server RNG streams (`0x1000 + id` for application draws,
//!   `0x2000 + id` for network draws), so a server's draw sequence depends
//!   only on its own event order, which window boundaries preserve.
//! * All server-to-server messages travel through the runner's outbox and
//!   are injected in `(time, sender, sender-seq)` order at barriers — even
//!   messages whose destination happens to share the sender's shard.
//! * Shared state (the placement directory, the failure flags) is read-only
//!   during windows; writes are buffered and applied in sorted order by the
//!   barrier hook ([`barrier_flush`]). Each server keeps a private overlay
//!   of its own window-local placements so its routing never depends on
//!   what *other* shards did concurrently.
//! * Cross-server edge-sketch offers are buffered and applied at barriers
//!   in sorted, aggregated order; only a server's own offers go in directly.
//!
//! # Deviations from the sequential cluster
//!
//! The sharded backend reproduces the same *model* but not the same event
//! interleaving as [`crate::cluster::Cluster`], so per-run numbers differ
//! between the two backends (distributions agree). Semantic differences,
//! all documented at their implementation sites:
//!
//! * Placement is always identity-hash based (the policy field is ignored);
//!   statistically equivalent to `Random` for fresh actors.
//! * Fan-out joins live on the server that issued the fan-out, and
//!   responses route to that server directly instead of chasing the actor
//!   through the directory. A crash of the owner loses its joins.
//! * Transport retries pick their failover target deterministically at
//!   schedule time (no shared gateway RNG stream).
//! * Unsupported features are rejected at build time: failure detectors,
//!   hiccups, latency breakdown, request timeouts, migration transfer
//!   windows, and link faults.
//! * Snapshots replace the legacy marker protocol with an **instant cut**:
//!   the serial point that begins a round marks every live server at once,
//!   and the in-flight count is the wire-counter difference
//!   (Σ sent − Σ delivered) at that instant — no per-link marker chase.
//!   Consistency is the same (a barrier is a consistent cut by
//!   construction); only the round's *shape* differs. Two smaller
//!   deviations ride along: state cells attach only to directory-hosted
//!   primary executions (a fresh actor's first-window writes carry no
//!   state until its placement commits at the barrier), and a deferred
//!   restore re-enters through the wire (one extra receiver pass per
//!   retry, where the legacy backend re-queues the execute directly).

use std::sync::Arc;

use actop_partition::{decide_split, DenseDirectory, ExchangeOutcome, SplitDecision};
use actop_sim::{
    mix64, ConservativeRunner, CpuTaskId, DetRng, Engine, EventId, GlobalCtx, Nanos, OutMsg,
    PhaseCell, PsCpu, ShardWorld, StagePool,
};
use actop_sketch::{FxHashMap, SpaceSaving};
use actop_snapshot::{SnapshotConfig, SnapshotStore, StateCell};
use actop_trace::{HopKind, SpanEvent, Tracer, NO_SERVER, NO_STAGE};

use crate::app::{Call, Outcome, Reaction};
use crate::cluster::{StageReport, MAX_FORWARD_HOPS};
use crate::config::{ReplicationConfig, RuntimeConfig};
use crate::ids::{ActorId, StageKind};
use crate::metrics::ClusterMetrics;
use crate::obs::Observability;
use crate::server::StageWindow;
use crate::table::SlabTable;

// ---------------------------------------------------------------------
// Topology and shared state.
// ---------------------------------------------------------------------

/// How servers map onto shards: round-robin by id.
#[derive(Debug, Clone, Copy)]
pub struct ShardTopology {
    /// Total servers in the cluster.
    pub servers: usize,
    /// Number of shards.
    pub shards: usize,
}

impl ShardTopology {
    /// The shard owning `server`.
    #[inline]
    pub fn shard_of(&self, server: usize) -> usize {
        server % self.shards
    }
}

/// Application logic for the sharded backend.
///
/// Unlike [`crate::app::AppLogic`] the handler takes `&self`: one instance
/// is shared by every shard, and mutable application state (if any) must
/// live behind a [`PhaseCell`] under the same window discipline as the
/// directory. All randomness must come from the provided per-server stream.
pub trait ShardApp: Send + Sync {
    /// Handles a request delivered to `actor`.
    fn on_request(&self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction;

    /// CPU nanoseconds to process one response continuation.
    fn continuation_cpu_ns(&self) -> f64 {
        3_000.0
    }
}

/// State shared by every shard: configuration, the placement directory,
/// and the failure flags. Directory and flags follow the phase discipline:
/// read-only during windows, mutated only from the serial phase.
pub struct ShardCtx {
    /// Static configuration.
    pub config: RuntimeConfig,
    /// Server-to-shard mapping.
    pub topo: ShardTopology,
    pub(crate) directory: PhaseCell<DenseDirectory>,
    pub(crate) failed: PhaseCell<Vec<bool>>,
    /// Shared snapshot/restore state (`config.snapshot`), under the same
    /// phase discipline as the directory: windows read it (restore plans,
    /// the open round's cut membership), per-shard effects are buffered
    /// and flushed sorted at barriers, and the round lifecycle mutates it
    /// from the serial phase.
    pub(crate) snap: Option<PhaseCell<SharedSnap>>,
    pub(crate) app: Box<dyn ShardApp>,
    pub(crate) seed_mix: u64,
    pub(crate) lookahead_ns: u64,
}

/// The shared half of the snapshot subsystem: the durable store, the
/// authoritative per-actor state cells (current as of the last barrier),
/// and the open round.
#[derive(Default)]
pub(crate) struct SharedSnap {
    pub(crate) store: SnapshotStore,
    /// `actor -> (host, cell)`. The host hint names whose crash kills the
    /// in-memory copy; it self-heals on the next touch, so a stale hint
    /// costs at worst a spurious (exact, WAL-backed) restore.
    pub(crate) cells: FxHashMap<u64, (u32, StateCell)>,
    pub(crate) round: Option<SRound>,
    pub(crate) rounds_started: u64,
}

/// An open sharded snapshot round. Unlike the legacy backend's marker
/// propagation, the cut is instantaneous: the serial point that begins
/// the round IS the consistent cut (every pre-cut event has executed and
/// every cross-server message still traveling sits in an outbox or a
/// scheduled delivery), so all live servers join at once and the
/// in-flight count is the wire-counter difference at that instant.
#[derive(Debug)]
pub(crate) struct SRound {
    pub(crate) id: u64,
    pub(crate) begun_at: Nanos,
    /// Live at the cut: only these servers' actors capture lazily.
    pub(crate) marked: Vec<bool>,
    /// Cross-server messages in flight across the cut.
    pub(crate) in_flight: u64,
    /// Captured pre-write state per actor: `(version, value)`.
    pub(crate) captured: FxHashMap<u64, (u64, u64)>,
    pub(crate) bytes: u64,
}

impl SRound {
    /// First capture wins (same contract as the legacy `OpenRound`).
    fn capture(&mut self, actor: u64, version: u64, value: u64, state_bytes: u64) -> bool {
        if self.captured.contains_key(&actor) {
            return false;
        }
        self.captured.insert(actor, (version, value));
        self.bytes += state_bytes;
        true
    }

    /// The round's captures sorted by actor id (the commit order).
    fn sorted_captures(&self) -> Vec<(u64, u64, u64)> {
        let mut out: Vec<(u64, u64, u64)> = self
            .captured
            .iter()
            .map(|(&a, &(ver, val))| (a, ver, val))
            .collect();
        out.sort_unstable();
        out
    }
}

/// The conservative lookahead implied by a configuration: the network
/// delay floor. Pass this to [`ConservativeRunner::new`].
pub fn sharded_lookahead(config: &RuntimeConfig) -> Nanos {
    Nanos::from_nanos(config.costs.network.base_ns as u64)
}

// ---------------------------------------------------------------------
// Message protocol (the sharded twin of `crate::proto`).
// ---------------------------------------------------------------------

/// Whom a reply goes to. Join targets carry the owning server and slab
/// handle so responses route by *server*, not by directory lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SReply {
    /// The external client that issued the root request.
    Client,
    /// A pending fan-out join: owner server, slab handle, joining actor
    /// (carried for edge statistics — the response "goes to" that actor).
    Join {
        owner: u32,
        handle: u64,
        actor: ActorId,
    },
}

/// Request or response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SKind {
    Request { reply: SReply },
    Response { owner: u32, handle: u64 },
}

/// A message traveling between actors (or from a client gateway). `Copy`
/// so engine closures capturing it stay trivially `Send`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SMsg {
    pub to: ActorId,
    pub tag: u32,
    pub bytes: u64,
    pub kind: SKind,
    /// Global request serial (trace sampling key; replaces `RequestId`).
    pub request: u64,
    /// Client submission time — carried in-message so completion needs no
    /// shared request table.
    pub root_start: Nanos,
    pub issued_at: Nanos,
    pub delivered_remotely: bool,
    pub from_actor: Option<ActorId>,
    pub forwarded: bool,
    pub call_was_remote: bool,
    pub attempts: u8,
    pub hops: u8,
}

/// A message on the wire between servers, routed via the runner's outbox.
pub struct Wire {
    pub(crate) dst: u32,
    pub(crate) msg: SMsg,
}

/// An item sitting in a SEDA stage queue.
#[derive(Debug, Clone)]
pub(crate) enum SItem {
    Deserialize(SMsg),
    Execute(SMsg),
    SerializeRemote {
        dst: usize,
        msg: SMsg,
    },
    SerializeClient {
        request: u64,
        root_start: Nanos,
        bytes: u64,
    },
}

/// What happens when a stage task's compute (and blocking wait) finishes.
#[derive(Debug, Clone)]
pub(crate) enum SPost {
    RouteToWorker(SMsg),
    ApplyRequest {
        msg: SMsg,
        reaction: Reaction,
    },
    ApplyResponse(SMsg),
    Forward(SMsg),
    NetSend {
        dst: usize,
        msg: SMsg,
    },
    ClientReply {
        request: u64,
        root_start: Nanos,
        bytes: u64,
    },
    /// The target actor needs a snapshot restore but the store server is
    /// down: re-deliver the execute to this same server through the
    /// outbox after a deterministic backoff (which build validation pins
    /// at or above the lookahead).
    SnapshotDefer {
        msg: SMsg,
        backoff: Nanos,
    },
}

/// What the snapshot subsystem decided about a hosted request (the
/// sharded twin of the sequential cluster's `SnapTouch`).
enum STouch {
    /// Serve it, with the snapshot tax folded into the task.
    Proceed { cpu_ns: f64, blocking_ns: f64 },
    /// The store server is down: re-deliver after this backoff.
    Defer(Nanos),
}

/// A task currently executing on a server's CPU.
#[derive(Debug, Clone)]
pub(crate) struct SRunning {
    pub stage: usize,
    pub post: SPost,
    pub started: Nanos,
    pub cpu_ns: f64,
    pub wait_ns: f64,
    pub request: u64,
}

/// A pending fan-out join, owned by the server that issued the fan-out.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SJoin {
    pub reply: SReply,
    pub actor: ActorId,
    pub remaining: usize,
    pub reply_bytes: u64,
    pub request: u64,
    pub root_start: Nanos,
    pub issued_at: Nanos,
    pub call_was_remote: bool,
}

/// A buffered directory placement, applied place-if-vacant at the next
/// barrier. Hinted placements (migration intent) win conflicts.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DirOp {
    pub actor: u64,
    pub target: u32,
    pub hinted: bool,
    pub src: u32,
}

// ---------------------------------------------------------------------
// Per-server state.
// ---------------------------------------------------------------------

/// Bound on location-cache entries (same rule as `crate::server`).
const LOCATION_CACHE_CAP: usize = 65_536;

/// One simulated server, owned by exactly one shard. The sharded twin of
/// [`crate::server::Server`] with its own item type and per-server RNG
/// streams (the determinism anchor: a server draws the same sequence no
/// matter which shard executes it).
pub(crate) struct ServerSlot {
    pub id: usize,
    pub cpu: PsCpu,
    pub stages: [StagePool<SItem>; 4],
    pub cpu_event: Option<(Nanos, EventId)>,
    pub running: FxHashMap<CpuTaskId, SRunning>,
    pub edge_sketch: SpaceSaving<(ActorId, ActorId)>,
    pub location_cache: FxHashMap<ActorId, usize>,
    /// This server's window-local placements: entries it minted since the
    /// last barrier, not yet in the shared directory. Private per server so
    /// routing never observes another shard's concurrent decisions.
    pub dir_overlay: FxHashMap<u64, u32>,
    pub windows: [StageWindow; 4],
    pub last_exchange_ns: Option<u64>,
    pub joins: SlabTable<SJoin>,
    /// Per-actor service-demand sample over the current replication
    /// detection window (the sharded twin of `Server::load_sketch`).
    /// Offered only when hot-actor replication is enabled; cleared at
    /// every detection tick. Offers happen in per-server event order, so
    /// the sketch contents are shard-layout invariant.
    pub load_sketch: SpaceSaving<ActorId>,
    pub rng_app: DetRng,
    pub rng_net: DetRng,
    /// Monotone per-sender outbox sequence (injection tie-break).
    pub out_seq: u64,
    /// Busy-core-ns snapshot taken at the steady-state reset.
    pub busy_snapshot: f64,
}

impl ServerSlot {
    fn new(id: usize, config: &RuntimeConfig) -> Self {
        let costs = &config.costs;
        let mut cpu = PsCpu::new(costs.cores_per_server, costs.ctx_switch_coeff);
        cpu.set_configured_threads(Nanos::ZERO, 4 * config.initial_threads_per_stage);
        ServerSlot {
            id,
            cpu,
            stages: fresh_stages(config.initial_threads_per_stage),
            cpu_event: None,
            running: FxHashMap::default(),
            edge_sketch: SpaceSaving::new(config.sketch_capacity),
            location_cache: FxHashMap::default(),
            dir_overlay: FxHashMap::default(),
            windows: [StageWindow::default(); 4],
            last_exchange_ns: None,
            joins: SlabTable::new(),
            load_sketch: SpaceSaving::new(config.sketch_capacity),
            rng_app: DetRng::stream(config.seed, 0x1000 + id as u64),
            rng_net: DetRng::stream(config.seed, 0x2000 + id as u64),
            out_seq: 0,
            busy_snapshot: 0.0,
        }
    }

    /// Replaces the process state after a crash: queues, CPU, running
    /// tasks, sketches, caches, and joins are lost. The RNG streams and
    /// outbox sequence survive — they belong to the server identity, and
    /// keeping them preserves the per-server draw order determinism.
    fn reset_process(&mut self, config: &RuntimeConfig) {
        let costs = &config.costs;
        let mut cpu = PsCpu::new(costs.cores_per_server, costs.ctx_switch_coeff);
        cpu.set_configured_threads(Nanos::ZERO, 4 * config.initial_threads_per_stage);
        self.cpu = cpu;
        self.stages = fresh_stages(config.initial_threads_per_stage);
        self.cpu_event = None;
        self.running.clear();
        self.edge_sketch = SpaceSaving::new(config.sketch_capacity);
        self.location_cache.clear();
        self.dir_overlay.clear();
        self.windows = [StageWindow::default(); 4];
        self.last_exchange_ns = None;
        self.joins = SlabTable::new();
        self.load_sketch = SpaceSaving::new(config.sketch_capacity);
    }

    fn thread_allocation(&self) -> [usize; 4] {
        [
            self.stages[0].threads(),
            self.stages[1].threads(),
            self.stages[2].threads(),
            self.stages[3].threads(),
        ]
    }

    fn queue_lengths(&self) -> [usize; 4] {
        [
            self.stages[0].queue_len(),
            self.stages[1].queue_len(),
            self.stages[2].queue_len(),
            self.stages[3].queue_len(),
        ]
    }

    fn cache_location(&mut self, actor: ActorId, server: usize) {
        if self.location_cache.len() >= LOCATION_CACHE_CAP {
            self.location_cache.clear();
        }
        self.location_cache.insert(actor, server);
    }

    fn take_location_hint(&mut self, actor: &ActorId) -> Option<usize> {
        self.location_cache.remove(actor)
    }
}

fn fresh_stages(threads: usize) -> [StagePool<SItem>; 4] {
    [
        StagePool::new(StageKind::Receiver.name(), threads),
        StagePool::new(StageKind::Worker.name(), threads),
        StagePool::new(StageKind::ServerSender.name(), threads),
        StagePool::new(StageKind::ClientSender.name(), threads),
    ]
}

// ---------------------------------------------------------------------
// The shard world.
// ---------------------------------------------------------------------

/// One shard of the simulated cluster: the servers it owns plus shard-local
/// measurement state. Implements [`ShardWorld`] for the conservative
/// runner; fold per-shard metrics and traces with
/// [`ClusterMetrics::merge_from`] / [`Tracer::merge_from`] after the run.
pub struct ShardedCluster {
    shard: u32,
    ctx: Arc<ShardCtx>,
    /// Global server id -> index into `slots` (`usize::MAX` if not ours).
    pub(crate) local_idx: Vec<usize>,
    pub(crate) slots: Vec<ServerSlot>,
    pub(crate) metrics: ClusterMetrics,
    pub(crate) trace: Tracer,
    /// Shard-local telemetry; every shard registers the identical schema
    /// so registries merge by value summation after the run.
    pub(crate) obs: Option<Observability>,
    outbox: Vec<OutMsg<Wire>>,
    pub(crate) dir_ops: Vec<DirOp>,
    pub(crate) sketch_offers: Vec<(u32, ActorId, ActorId)>,
    /// Window-local working copies of state cells touched by this shard's
    /// servers (an actor's host is unique between barriers, so exactly one
    /// shard writes it). Flushed into [`SharedSnap::cells`] at barriers.
    pub(crate) snap_overlay: FxHashMap<u64, (u32, StateCell)>,
    /// Window-local journal appends: `(actor, version, value)`. Flushed
    /// sorted into the shared store at barriers — versions are per-actor
    /// monotone, so the sort is the canonical, layout-invariant order.
    pub(crate) snap_journal_ops: Vec<(u64, u64, u64)>,
    /// Window-local lazy captures: `actor -> (round, version, value)`.
    /// Rounds open and close only at serial points, so every buffered
    /// entry belongs to the currently open round.
    pub(crate) snap_capture_buf: FxHashMap<u64, (u64, u64, u64)>,
    /// Restore-deferral attempt counts (the exponential-backoff input).
    /// Deferred messages re-deliver to the same server, so the counter
    /// stays on one shard.
    pub(crate) snap_defer_attempts: FxHashMap<u64, u32>,
    /// Cross-server wires pushed by this shard's servers (snapshot-only
    /// accounting; the cut's in-flight count is Σ sent − Σ recv).
    pub(crate) snap_wire_sent: u64,
    /// Cross-server wires that arrived at this shard's servers.
    pub(crate) snap_wire_recv: u64,
}

/// Builds the shard worlds for a configuration. `shards` is clamped to
/// `[1, servers]`; servers are dealt round-robin (`server % shards`).
///
/// # Panics
///
/// Panics when the configuration uses a feature the sharded backend does
/// not support (failure detector, hiccups, breakdown recording, request
/// timeouts, migration transfer windows) or when the network delay floor
/// is zero (no conservative lookahead would exist).
pub fn build_sharded(
    config: RuntimeConfig,
    app: Box<dyn ShardApp>,
    shards: usize,
) -> Vec<ShardedCluster> {
    config.validate();
    assert!(
        config.detector.is_none(),
        "sharded runtime does not support failure detectors"
    );
    assert!(
        config.hiccups.is_none(),
        "sharded runtime does not support hiccup injection"
    );
    assert!(
        !config.record_breakdown,
        "sharded runtime does not support latency breakdown recording"
    );
    assert!(
        config.request_timeout.is_none(),
        "sharded runtime does not support request timeouts"
    );
    assert!(
        config.migration_transfer.is_none(),
        "sharded runtime does not support migration transfer windows"
    );
    let lookahead_ns = config.costs.network.base_ns as u64;
    assert!(
        lookahead_ns > 0,
        "sharded runtime needs a positive network delay floor"
    );
    assert!(
        config.retry.base_backoff.as_nanos() >= lookahead_ns,
        "retry base backoff must be at least the network delay floor"
    );
    if let Some(s) = config.snapshot {
        // Restore deferrals re-deliver through the outbox, so the first
        // backoff must already clear the conservative lookahead.
        assert!(
            s.restore_backoff.as_nanos() >= lookahead_ns,
            "snapshot restore backoff must be at least the network delay floor"
        );
    }
    let shards = shards.clamp(1, config.servers);
    let servers = config.servers;
    let series_bin = config.series_bin_ns;
    let trace_cfg = config.trace.clone();
    let seed_mix = mix64(config.seed ^ 0x5aad_ed00_c0ff_ee00);
    let ctx = Arc::new(ShardCtx {
        topo: ShardTopology { servers, shards },
        directory: PhaseCell::new(DenseDirectory::new(servers)),
        failed: PhaseCell::new(vec![false; servers]),
        snap: config
            .snapshot
            .map(|_| PhaseCell::new(SharedSnap::default())),
        app,
        seed_mix,
        lookahead_ns,
        config,
    });
    (0..shards)
        .map(|shard| {
            let slots: Vec<ServerSlot> = (shard..servers)
                .step_by(shards)
                .map(|id| ServerSlot::new(id, &ctx.config))
                .collect();
            let mut local_idx = vec![usize::MAX; servers];
            for (i, slot) in slots.iter().enumerate() {
                local_idx[slot.id] = i;
            }
            let trace = match &trace_cfg {
                Some(tc) => Tracer::new(servers, tc),
                None => Tracer::disabled(),
            };
            let obs = ctx.config.obs.as_ref().map(|o| {
                Observability::with_snapshot(o, servers, series_bin, ctx.config.snapshot.is_some())
            });
            ShardedCluster {
                shard: shard as u32,
                ctx: Arc::clone(&ctx),
                local_idx,
                slots,
                metrics: ClusterMetrics::new(series_bin),
                trace,
                obs,
                outbox: Vec::new(),
                dir_ops: Vec::new(),
                sketch_offers: Vec::new(),
                snap_overlay: FxHashMap::default(),
                snap_journal_ops: Vec::new(),
                snap_capture_buf: FxHashMap::default(),
                snap_defer_attempts: FxHashMap::default(),
                snap_wire_sent: 0,
                snap_wire_recv: 0,
            }
        })
        .collect()
}

// SAFETY: every event scheduled into a shard's engine captures only `Copy`
// message structs, plain indices, or `SRunning` (owned plain data) — all
// `Send`. Shared state is reached through `Arc<ShardCtx>`, which is
// `Send + Sync` by construction.
unsafe impl ShardWorld for ShardedCluster {
    type Msg = Wire;

    fn deliver(&mut self, engine: &mut Engine<Self>, at: Nanos, wire: Wire) {
        debug_assert_eq!(
            self.ctx.topo.shard_of(wire.dst as usize),
            self.shard as usize,
            "wire routed to the wrong shard"
        );
        let dst = wire.dst as usize;
        let msg = wire.msg;
        engine.schedule(at, move |w: &mut ShardedCluster, e| {
            if w.ctx.snap.is_some() {
                // Delivered-not-processed accounting: bumped even when the
                // destination is down, so the counters self-heal across
                // crashes (sent − recv counts on-the-wire only).
                w.snap_wire_recv += 1;
            }
            w.wire_arrive(e, dst, msg)
        });
    }

    fn drain_outbox(&mut self, sink: &mut Vec<OutMsg<Wire>>) {
        sink.append(&mut self.outbox);
    }
}

impl ShardedCluster {
    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// The shared cluster state.
    pub fn shared(&self) -> Arc<ShardCtx> {
        Arc::clone(&self.ctx)
    }

    /// This shard's measurements (merge across shards after a run).
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// This shard's tracer (merge across shards after a run).
    pub fn trace(&self) -> &Tracer {
        &self.trace
    }

    /// True when this shard owns `server`.
    pub fn owns_server(&self, server: usize) -> bool {
        self.local_idx.get(server).is_some_and(|&i| i != usize::MAX)
    }

    /// Global ids of the servers this shard owns, ascending.
    pub fn local_servers(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// Resets latency/counter state for steady-state measurement and
    /// snapshots each local server's busy-core integral. Announces the
    /// reset to the telemetry mirrors first so registry counters stay
    /// monotone.
    pub fn reset_steady_state(&mut self) {
        if let Some(obs) = self.obs.as_mut() {
            obs.note_reset(&self.metrics);
        }
        self.metrics.reset_steady_state();
        for slot in &mut self.slots {
            slot.busy_snapshot = slot.cpu.busy_core_ns();
        }
    }

    /// The telemetry scrape cadence, when configured.
    pub fn obs_interval(&self) -> Option<Nanos> {
        self.obs.as_ref().map(|o| o.interval())
    }

    /// Takes this shard's telemetry out (for post-run cross-shard
    /// merging).
    pub fn take_obs(&mut self) -> Option<Observability> {
        self.obs.take()
    }

    /// Takes one telemetry scrape at `now` (serial phase). Counters and
    /// the latency histogram come from shard-local metrics; gauges are
    /// set only for owned servers and left at zero elsewhere, so the
    /// cross-shard gauge *sum* equals the cluster value. `failed` is the
    /// shared ground-truth liveness vector and `replicas` the directory's
    /// replica-activation count, both read by the caller in the serial
    /// phase.
    pub fn obs_scrape(&mut self, now: Nanos, failed: &[bool], replicas: f64) {
        let Some(mut obs) = self.obs.take() else {
            return;
        };
        let per_server: Vec<(f64, f64)> = (0..failed.len())
            .map(|s| {
                if !self.owns_server(s) {
                    return (0.0, 0.0);
                }
                let queue: usize = self.queue_lengths(s).iter().sum();
                (queue as f64, if failed[s] { 0.0 } else { 1.0 })
            })
            .collect();
        if self.ctx.config.replication.is_some() && self.owns_server(0) {
            // Cluster-wide gauge: registries merge by value summation, so
            // exactly one shard (the owner of server 0) reports it.
            obs.set_replica_activations(replicas);
        }
        obs.scrape(now, &self.metrics, &per_server);
        // No SLO drain here: sharded SLO evaluation runs once over the
        // *merged* series after the run, producing the same bin-aligned
        // alert stream the legacy backend emits online.
        self.obs = Some(obs);
    }

    /// Each local server's CPU utilization over `[since, now]`, measured
    /// from the steady-state snapshots, keyed by global server id. Callers
    /// must reduce across shards in global server order — a float sum in
    /// shard order would make the cluster mean's low bits depend on the
    /// shard split.
    pub fn utilizations(&self, since: Nanos, now: Nanos) -> Vec<(usize, f64)> {
        self.slots
            .iter()
            .map(|s| (s.id, s.cpu.utilization_since(s.busy_snapshot, since, now)))
            .collect()
    }

    /// A snapshot of the shared placement directory, for post-run
    /// inspection (actor counts, server sizes) by benches.
    ///
    /// Call only while the runner is idle — between `run_until` calls or
    /// after the run — never from inside a window phase.
    pub fn directory_snapshot(&self) -> DenseDirectory {
        // SAFETY: no window phase is live on an idle runner, so nothing
        // holds the cell; see the `PhaseCell` discipline in the module docs.
        unsafe { self.ctx.directory.get() }.clone()
    }

    /// True when nothing is queued, running, or joining on this shard.
    pub fn is_drained(&self) -> bool {
        self.outbox.is_empty()
            && self.slots.iter().all(|s| {
                s.running.is_empty() && s.joins.is_empty() && s.stages.iter().all(|st| st.is_idle())
            })
    }

    #[inline]
    fn slot_idx(&self, server: usize) -> usize {
        let idx = self.local_idx[server];
        debug_assert_ne!(
            idx,
            usize::MAX,
            "server {server} not on shard {}",
            self.shard
        );
        idx
    }

    /// Whether `server` is currently failed. Reads the shared flags, which
    /// only change at barriers.
    #[inline]
    fn server_failed(&self, server: usize) -> bool {
        // SAFETY: `failed` is written only from the serial phase; windows
        // and the serial thread both may read.
        let failed = unsafe { self.ctx.failed.get() };
        failed[server]
    }

    /// First live server at or after `preferred` (wrapping).
    fn try_next_live(&self, preferred: usize) -> Option<usize> {
        // SAFETY: as in `server_failed`.
        let failed = unsafe { self.ctx.failed.get() };
        let n = self.ctx.topo.servers;
        (0..n).map(|i| (preferred + i) % n).find(|&s| !failed[s])
    }

    // ------------------------------------------------------------------
    // Message movement (mirrors `Cluster` hop for hop).
    // ------------------------------------------------------------------

    /// A message arrives on the wire at `server` (always local to this
    /// shard) and enters the receiver stage.
    fn wire_arrive(&mut self, engine: &mut Engine<ShardedCluster>, server: usize, mut msg: SMsg) {
        msg.delivered_remotely = true;
        if self.server_failed(server) {
            self.metrics.lost_in_flight += 1;
            if self.trace.enabled() {
                self.trace.record(SpanEvent::instant(
                    msg.request,
                    HopKind::MsgLost,
                    server as u32,
                    0,
                    engine.now(),
                ));
            }
            match msg.kind {
                SKind::Request { .. } => self.schedule_retry(engine, msg, server),
                SKind::Response { .. } => {
                    self.metrics.stale_responses += 1;
                    self.note_stale_response(engine.now(), msg.request, server);
                }
            }
            return;
        }
        let is_fresh_client_request =
            msg.from_actor.is_none() && !msg.forwarded && matches!(msg.kind, SKind::Request { .. });
        if is_fresh_client_request
            && self.slots[self.slot_idx(server)].stages[StageKind::Receiver.index()].queue_len()
                >= self.ctx.config.max_receiver_queue
        {
            self.metrics.rejected += 1;
            if self.trace.enabled() {
                let at = engine.now();
                self.trace.record(SpanEvent::instant(
                    msg.request,
                    HopKind::Shed,
                    server as u32,
                    0,
                    at,
                ));
                self.trace
                    .flight_dump(HopKind::Shed, msg.request, server as u32, at);
            }
            return;
        }
        self.enqueue(
            engine,
            server,
            StageKind::Receiver.index(),
            SItem::Deserialize(msg),
        );
    }

    /// Schedules a backoff retry for a request whose delivery to `dead`
    /// failed. Unlike the sequential cluster (which draws the failover
    /// target from the gateway stream when the timer fires), the target is
    /// picked *now*, deterministically from the message identity, and the
    /// retry ships through the outbox — backoff is always at least the
    /// base backoff, which build validation pins above the lookahead.
    #[cold]
    fn schedule_retry(&mut self, engine: &mut Engine<ShardedCluster>, mut msg: SMsg, dead: usize) {
        let policy = self.ctx.config.retry;
        if msg.attempts >= policy.max_attempts {
            self.metrics.retry_budget_exhausted += 1;
            return;
        }
        msg.attempts += 1;
        let shift = u32::from(msg.attempts - 1).min(20);
        let backoff =
            Nanos::from_nanos(policy.base_backoff.as_nanos().saturating_mul(1u64 << shift))
                .min(policy.max_backoff);
        let jitter = if policy.jitter > 0.0 {
            // Pure hash of (request, attempt): no RNG stream, so the draw
            // cannot depend on cross-server event interleaving.
            let h = mix64(msg.request ^ mix64(self.ctx.seed_mix ^ u64::from(msg.attempts)));
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            Nanos::from_nanos_f64(backoff.as_nanos() as f64 * unit * policy.jitter)
        } else {
            Nanos::ZERO
        };
        let delay = backoff + jitter;
        self.metrics.retries += 1;
        self.metrics.retry_backoff_ns += delay.as_nanos();
        let now = engine.now();
        if self.trace.enabled() {
            self.trace.record(SpanEvent::instant(
                msg.request,
                HopKind::Retry,
                dead as u32,
                u64::from(msg.attempts),
                now,
            ));
        }
        let first = (mix64(
            msg.request ^ mix64(self.ctx.seed_mix.rotate_left(17) ^ u64::from(msg.attempts)),
        ) % self.ctx.topo.servers as u64) as usize;
        // When nobody is live the message bounces off the dead server again
        // and re-enters this retry path with one more attempt consumed.
        let target = self.try_next_live(first).unwrap_or(dead);
        msg.forwarded = true;
        if self.trace.enabled() {
            self.trace.record(SpanEvent {
                request: msg.request,
                kind: HopKind::FailoverRetry,
                server: target as u32,
                stage: NO_STAGE,
                aux: dead as u64,
                t_start: now + delay,
                t_end: now + delay,
            });
        }
        debug_assert!(delay.as_nanos() >= self.ctx.lookahead_ns);
        self.push_wire(now + delay, dead, target, msg);
    }

    /// Queues a server-to-server delivery in the outbox for injection at a
    /// barrier. `src` keys the tie-break sequence; `at` must be at least
    /// one lookahead past the current window.
    fn push_wire(&mut self, at: Nanos, src: usize, dst: usize, msg: SMsg) {
        if self.ctx.snap.is_some() {
            self.snap_wire_sent += 1;
        }
        let idx = self.slot_idx(src);
        let slot = &mut self.slots[idx];
        slot.out_seq += 1;
        self.outbox.push(OutMsg {
            at,
            src_server: src as u32,
            src_seq: slot.out_seq,
            dst_shard: self.ctx.topo.shard_of(dst) as u32,
            msg: Wire {
                dst: dst as u32,
                msg,
            },
        });
    }

    /// Pushes an item into a stage queue and pumps the server.
    fn enqueue(
        &mut self,
        engine: &mut Engine<ShardedCluster>,
        server: usize,
        stage: usize,
        item: SItem,
    ) {
        let now = engine.now();
        let idx = self.slot_idx(server);
        self.slots[idx].stages[stage].push(now, item);
        self.pump(engine, server);
    }

    /// Starts queued items on every stage with a free thread, then re-arms
    /// the CPU completion event.
    fn pump(&mut self, engine: &mut Engine<ShardedCluster>, server: usize) {
        if self.server_failed(server) {
            return;
        }
        let now = engine.now();
        let idx = self.slot_idx(server);
        loop {
            let mut started = false;
            #[allow(clippy::needless_range_loop)]
            for stage in 0..4 {
                while let Some((item, wait)) = self.slots[idx].stages[stage].try_start(now) {
                    if self.trace.enabled() {
                        self.trace.record(SpanEvent {
                            request: item_request(&item),
                            kind: HopKind::QueueWait,
                            server: server as u32,
                            stage: stage as u8,
                            aux: 0,
                            t_start: now.saturating_sub(wait),
                            t_end: now,
                        });
                    }
                    let (cpu_ns, wait_ns, post, request) = self.prepare(now, server, item);
                    let cpu_ns = cpu_ns.max(1.0);
                    let tid = self.slots[idx].cpu.add(now, cpu_ns);
                    self.slots[idx].running.insert(
                        tid,
                        SRunning {
                            stage,
                            post,
                            started: now,
                            cpu_ns,
                            wait_ns,
                            request,
                        },
                    );
                    started = true;
                }
            }
            if !started {
                break;
            }
        }
        self.sync_cpu(engine, server);
    }

    /// Computes a stage item's CPU demand, blocking time, and completion
    /// action. Worker requests invoke the shared application logic with the
    /// *server's* RNG stream.
    fn prepare(&mut self, now: Nanos, server: usize, item: SItem) -> (f64, f64, SPost, u64) {
        let costs = &self.ctx.config.costs;
        match item {
            SItem::Deserialize(msg) => (
                costs.deserialize_ns(msg.bytes),
                0.0,
                SPost::RouteToWorker(msg),
                msg.request,
            ),
            SItem::Execute(msg) => match msg.kind {
                SKind::Request { .. } => {
                    // Hosted = directory entry, or our own window-local
                    // placement not yet flushed to the directory.
                    // SAFETY: window-phase read; writers only at barriers.
                    let dir = unsafe { self.ctx.directory.get() };
                    let dir_primary = dir.server_of(msg.to.0) == Some(server);
                    let mut hosted = match dir.server_of(msg.to.0) {
                        Some(s) => s == server,
                        None => {
                            self.slots[self.local_idx[server]]
                                .dir_overlay
                                .get(&msg.to.0)
                                == Some(&(server as u32))
                        }
                    };
                    // A replica activation executes reads in place; a write
                    // that lands here falls through to the forward path and
                    // reaches the primary (replica sets change only at
                    // barriers, so this check is shard-layout invariant).
                    if !hosted {
                        if let Some(rep) = self.ctx.config.replication {
                            if dir.replica_hosted(msg.to.0, server) {
                                if rep.is_read(u64::from(msg.tag)) {
                                    hosted = true;
                                    self.metrics.replica_reads += 1;
                                    if self.trace.enabled() {
                                        self.trace.record(SpanEvent::instant(
                                            msg.request,
                                            HopKind::ReplicaRead,
                                            server as u32,
                                            msg.to.0,
                                            now,
                                        ));
                                    }
                                } else {
                                    self.metrics.replica_writes += 1;
                                }
                            }
                        }
                    }
                    if !hosted {
                        return (
                            costs.dispatch_fixed_ns,
                            0.0,
                            SPost::Forward(msg),
                            msg.request,
                        );
                    }
                    // Snapshot state attaches only to directory-hosted
                    // primary executions: an activation still pending in a
                    // window-local overlay may lose its placement conflict
                    // at the barrier, so its first-window touches carry no
                    // state (a documented deviation from the sequential
                    // cluster). The gate makes every state touch happen on
                    // the actor's unique host, which is what keeps version
                    // sequences exact across shard layouts.
                    let (snap_cpu, snap_wait) = if self.ctx.snap.is_some() && dir_primary {
                        match self.snapshot_touch(now, server, msg.to.0, msg.tag) {
                            STouch::Proceed {
                                cpu_ns,
                                blocking_ns,
                            } => (cpu_ns, blocking_ns),
                            STouch::Defer(backoff) => {
                                return (
                                    self.ctx.config.costs.dispatch_fixed_ns,
                                    0.0,
                                    SPost::SnapshotDefer { msg, backoff },
                                    msg.request,
                                );
                            }
                        }
                    } else {
                        (0.0, 0.0)
                    };
                    let costs = &self.ctx.config.costs;
                    let local_copy = if !msg.delivered_remotely && msg.from_actor.is_some() {
                        costs.local_copy_ns(msg.bytes)
                    } else {
                        0.0
                    };
                    let ctx = &self.ctx;
                    let slot = &mut self.slots[self.local_idx[server]];
                    let reaction = ctx.app.on_request(msg.to, msg.tag, &mut slot.rng_app);
                    if ctx.config.replication.is_some() {
                        slot.load_sketch.offer(msg.to, reaction.cpu_ns as u64);
                    }
                    (
                        reaction.cpu_ns + local_copy + snap_cpu,
                        reaction.blocking_ns + snap_wait,
                        SPost::ApplyRequest { msg, reaction },
                        msg.request,
                    )
                }
                SKind::Response { .. } => {
                    // Responses execute on the join's owner server by
                    // construction — no hosted check, no forwarding.
                    let local_copy = if !msg.delivered_remotely && msg.from_actor.is_some() {
                        costs.local_copy_ns(msg.bytes)
                    } else {
                        0.0
                    };
                    (
                        self.ctx.app.continuation_cpu_ns() + local_copy,
                        0.0,
                        SPost::ApplyResponse(msg),
                        msg.request,
                    )
                }
            },
            SItem::SerializeRemote { dst, msg } => (
                costs.serialize_ns(msg.bytes),
                0.0,
                SPost::NetSend { dst, msg },
                msg.request,
            ),
            SItem::SerializeClient {
                request,
                root_start,
                bytes,
            } => (
                costs.serialize_ns(bytes),
                0.0,
                SPost::ClientReply {
                    request,
                    root_start,
                    bytes,
                },
                request,
            ),
        }
    }

    /// Re-arms the pending CPU-completion event (identical retarget-in-
    /// place discipline as the sequential cluster).
    fn sync_cpu(&mut self, engine: &mut Engine<ShardedCluster>, server: usize) {
        let idx = self.slot_idx(server);
        let next = self.slots[idx].cpu.next_completion();
        match (self.slots[idx].cpu_event, next) {
            (Some((at, _)), Some(target)) if at == target => {}
            (Some((_, id)), Some(target)) => {
                engine.reschedule(id, target);
                self.slots[idx].cpu_event = Some((target, id));
            }
            (Some((_, id)), None) => {
                engine.cancel(id);
                self.slots[idx].cpu_event = None;
            }
            (None, Some(target)) => {
                let id = engine.schedule_tick(target, Self::cpu_tick, server as u64);
                self.slots[idx].cpu_event = Some((target, id));
            }
            (None, None) => {}
        }
    }

    /// The CPU-completion event in tick form (payload = global server id).
    fn cpu_tick(world: &mut ShardedCluster, engine: &mut Engine<ShardedCluster>, server: u64) {
        world.cpu_done(engine, server as usize);
    }

    /// The CPU-completion event: collect finished compute phases, run
    /// their blocking waits, finish tasks, and pump.
    fn cpu_done(&mut self, engine: &mut Engine<ShardedCluster>, server: usize) {
        if self.server_failed(server) {
            return; // The event raced with a crash; the work is gone.
        }
        let idx = self.slot_idx(server);
        self.slots[idx].cpu_event = None;
        let now = engine.now();
        let done = self.slots[idx].cpu.take_completed(now);
        for tid in done {
            let task = self.slots[idx]
                .running
                .remove(&tid)
                .expect("completed CPU task must be tracked");
            if task.wait_ns > 0.0 {
                let wait = Nanos::from_nanos_f64(task.wait_ns);
                engine.schedule_after(wait, move |w: &mut ShardedCluster, e| {
                    w.task_finished(e, server, task);
                });
            } else {
                self.task_finished(engine, server, task);
            }
        }
        self.pump(engine, server);
    }

    /// A stage task fully finished: free the thread, record the estimator
    /// window, apply the completion action.
    fn task_finished(
        &mut self,
        engine: &mut Engine<ShardedCluster>,
        server: usize,
        task: SRunning,
    ) {
        if self.server_failed(server) {
            return; // A blocking wait outlived its server's crash.
        }
        let now = engine.now();
        let idx = self.slot_idx(server);
        self.slots[idx].stages[task.stage].finish(now);
        let window = &mut self.slots[idx].windows[task.stage];
        window.completions += 1;
        window.sum_wallclock_ns += (now - task.started).as_nanos() as f64;
        window.sum_cpu_ns += task.cpu_ns;
        if self.trace.enabled() {
            self.trace.record(SpanEvent {
                request: task.request,
                kind: HopKind::Service,
                server: server as u32,
                stage: task.stage as u8,
                aux: 0,
                t_start: task.started,
                t_end: now,
            });
        }
        match task.post {
            SPost::RouteToWorker(msg) => {
                self.enqueue(
                    engine,
                    server,
                    StageKind::Worker.index(),
                    SItem::Execute(msg),
                );
            }
            SPost::ApplyRequest { msg, reaction } => {
                self.apply_request(engine, server, msg, reaction);
            }
            SPost::ApplyResponse(msg) => {
                self.apply_response(engine, server, msg);
            }
            SPost::Forward(msg) => {
                self.forward(engine, server, msg);
            }
            SPost::NetSend { dst, msg } => {
                self.net_send(engine, server, dst, msg);
            }
            SPost::ClientReply {
                request,
                root_start,
                bytes,
            } => {
                let delay = self
                    .ctx
                    .config
                    .costs
                    .network
                    .delay(&mut self.slots[idx].rng_net, bytes);
                if self.trace.enabled() {
                    self.trace.record(SpanEvent {
                        request,
                        kind: HopKind::Network,
                        server: server as u32,
                        stage: NO_STAGE,
                        aux: NO_SERVER as u64,
                        t_start: now,
                        t_end: now + delay,
                    });
                }
                // Client-side delivery: stays on this shard, no lookahead
                // constraint.
                engine.schedule_after(delay, move |w: &mut ShardedCluster, e| {
                    w.complete_request(e.now(), request, root_start);
                });
            }
            SPost::SnapshotDefer { mut msg, backoff } => {
                // Re-deliver the execute to this same server through the
                // outbox (the backoff clears the lookahead by build
                // validation). The arrival re-enters the receiver stage —
                // a deferral pays one extra receiver pass here, unlike the
                // sequential cluster's direct worker re-enqueue. Marking
                // it forwarded keeps the redelivery out of the
                // fresh-request admission check.
                msg.forwarded = true;
                debug_assert!(backoff.as_nanos() >= self.ctx.lookahead_ns);
                self.push_wire(now + backoff, server, server, msg);
            }
        }
        self.pump(engine, server);
    }

    /// Puts a server-to-server message on the wire via the outbox. The
    /// network delay floor is the runner's lookahead, so the delivery is
    /// always injectable at a later barrier.
    fn net_send(&mut self, engine: &mut Engine<ShardedCluster>, src: usize, dst: usize, msg: SMsg) {
        let now = engine.now();
        let idx = self.slot_idx(src);
        let delay = self
            .ctx
            .config
            .costs
            .network
            .delay(&mut self.slots[idx].rng_net, msg.bytes);
        if self.trace.enabled() {
            self.trace.record(SpanEvent {
                request: msg.request,
                kind: HopKind::Network,
                server: src as u32,
                stage: NO_STAGE,
                aux: dst as u64,
                t_start: now,
                t_end: now + delay,
            });
        }
        debug_assert!(
            delay.as_nanos() >= self.ctx.lookahead_ns,
            "network delay below the conservative lookahead"
        );
        self.push_wire(now + delay, src, dst, msg);
    }

    /// Applies a request handler's decision.
    fn apply_request(
        &mut self,
        engine: &mut Engine<ShardedCluster>,
        server: usize,
        msg: SMsg,
        reaction: Reaction,
    ) {
        let SKind::Request { reply } = msg.kind else {
            unreachable!("apply_request on a response");
        };
        match reaction.outcome {
            Outcome::Reply { bytes } => {
                self.emit_reply(
                    engine,
                    server,
                    msg.to,
                    reply,
                    bytes,
                    msg.request,
                    msg.root_start,
                    msg.issued_at,
                    msg.call_was_remote,
                );
            }
            Outcome::FanOut { calls, reply_bytes } => {
                if calls.is_empty() {
                    self.emit_reply(
                        engine,
                        server,
                        msg.to,
                        reply,
                        reply_bytes,
                        msg.request,
                        msg.root_start,
                        msg.issued_at,
                        msg.call_was_remote,
                    );
                    return;
                }
                let idx = self.slot_idx(server);
                let handle = self.slots[idx].joins.insert(SJoin {
                    reply,
                    actor: msg.to,
                    remaining: calls.len(),
                    reply_bytes,
                    request: msg.request,
                    root_start: msg.root_start,
                    issued_at: msg.issued_at,
                    call_was_remote: msg.call_was_remote,
                });
                let target = SReply::Join {
                    owner: server as u32,
                    handle,
                    actor: msg.to,
                };
                for call in calls {
                    self.send_request(
                        engine,
                        server,
                        msg.to,
                        call,
                        target,
                        msg.request,
                        msg.root_start,
                    );
                }
            }
        }
    }

    /// Issues an actor-to-actor request.
    #[allow(clippy::too_many_arguments)]
    fn send_request(
        &mut self,
        engine: &mut Engine<ShardedCluster>,
        server: usize,
        from: ActorId,
        call: Call,
        reply: SReply,
        request: u64,
        root_start: Nanos,
    ) {
        let now = engine.now();
        let dst = self.route_request(server, call.to, call.tag, request);
        let remote = dst != server;
        self.note_actor_message(now, server, dst, from, call.to);
        if self.trace.enabled() {
            let kind = if remote {
                HopKind::RemoteDispatch
            } else {
                HopKind::LocalDispatch
            };
            self.trace.record(SpanEvent {
                request,
                kind,
                server: server as u32,
                stage: NO_STAGE,
                aux: dst as u64,
                t_start: now,
                t_end: now,
            });
        }
        let msg = SMsg {
            to: call.to,
            tag: call.tag,
            bytes: call.bytes,
            kind: SKind::Request { reply },
            request,
            root_start,
            issued_at: now,
            delivered_remotely: remote,
            from_actor: Some(from),
            forwarded: false,
            call_was_remote: remote,
            attempts: 0,
            hops: 0,
        };
        if remote {
            self.enqueue(
                engine,
                server,
                StageKind::ServerSender.index(),
                SItem::SerializeRemote { dst, msg },
            );
        } else {
            self.enqueue(
                engine,
                server,
                StageKind::Worker.index(),
                SItem::Execute(msg),
            );
        }
    }

    /// Folds a sub-call response into its join (always on the owner
    /// server); emits the actor's reply when the join completes.
    fn apply_response(&mut self, engine: &mut Engine<ShardedCluster>, server: usize, msg: SMsg) {
        let SKind::Response { owner, handle } = msg.kind else {
            unreachable!("apply_response on a request");
        };
        debug_assert_eq!(owner as usize, server, "response off its owner server");
        let now = engine.now();
        if self.ctx.config.record_remote_call_latency && msg.call_was_remote {
            self.metrics
                .remote_call_latency
                .record((now - msg.issued_at).as_nanos());
        }
        let idx = self.slot_idx(server);
        let completed = match self.slots[idx].joins.get_mut(handle) {
            None => {
                // The join died with a crash of this server's process.
                self.metrics.stale_responses += 1;
                self.note_stale_response(now, msg.request, server);
                return;
            }
            Some(join) => {
                join.remaining -= 1;
                join.remaining == 0
            }
        };
        if completed {
            let join = self.slots[idx].joins.remove(handle).expect("join present");
            self.emit_reply(
                engine,
                server,
                join.actor,
                join.reply,
                join.reply_bytes,
                join.request,
                join.root_start,
                join.issued_at,
                join.call_was_remote,
            );
        }
    }

    /// Sends an actor's reply to its caller (client or awaiting join).
    #[allow(clippy::too_many_arguments)]
    fn emit_reply(
        &mut self,
        engine: &mut Engine<ShardedCluster>,
        server: usize,
        from: ActorId,
        reply: SReply,
        bytes: u64,
        request: u64,
        root_start: Nanos,
        orig_issued_at: Nanos,
        orig_was_remote: bool,
    ) {
        match reply {
            SReply::Client => {
                self.enqueue(
                    engine,
                    server,
                    StageKind::ClientSender.index(),
                    SItem::SerializeClient {
                        request,
                        root_start,
                        bytes,
                    },
                );
            }
            SReply::Join {
                owner,
                handle,
                actor,
            } => {
                let now = engine.now();
                let dst = owner as usize;
                let remote = dst != server;
                self.note_actor_message(now, server, dst, from, actor);
                let msg = SMsg {
                    to: actor,
                    tag: 0,
                    bytes,
                    kind: SKind::Response { owner, handle },
                    request,
                    root_start,
                    issued_at: orig_issued_at,
                    delivered_remotely: remote,
                    from_actor: Some(from),
                    forwarded: false,
                    call_was_remote: orig_was_remote || remote,
                    attempts: 0,
                    hops: 0,
                };
                if remote {
                    self.enqueue(
                        engine,
                        server,
                        StageKind::ServerSender.index(),
                        SItem::SerializeRemote { dst, msg },
                    );
                } else {
                    self.enqueue(
                        engine,
                        server,
                        StageKind::Worker.index(),
                        SItem::Execute(msg),
                    );
                }
            }
        }
    }

    /// Re-routes a request whose target actor is not hosted on `server`.
    fn forward(&mut self, engine: &mut Engine<ShardedCluster>, server: usize, mut msg: SMsg) {
        msg.hops = msg.hops.saturating_add(1);
        if msg.hops > MAX_FORWARD_HOPS {
            self.metrics.forward_loop_drops += 1;
            if self.trace.enabled() {
                self.trace.record(SpanEvent::instant(
                    msg.request,
                    HopKind::MsgLost,
                    server as u32,
                    u64::from(msg.hops),
                    engine.now(),
                ));
            }
            return;
        }
        self.metrics.forwarded_messages += 1;
        msg.forwarded = true;
        let dst = match msg.kind {
            // Client requests reach their gateway unresolved and route
            // here, so the replica-aware path covers them too.
            SKind::Request { .. } => self.route_request(server, msg.to, msg.tag, msg.request),
            SKind::Response { .. } => self.resolve(server, msg.to),
        };
        if self.trace.enabled() {
            self.trace.record(SpanEvent::instant(
                msg.request,
                HopKind::Forward,
                server as u32,
                dst as u64,
                engine.now(),
            ));
        }
        if dst == server {
            self.enqueue(
                engine,
                server,
                StageKind::Worker.index(),
                SItem::Execute(msg),
            );
        } else {
            self.enqueue(
                engine,
                server,
                StageKind::ServerSender.index(),
                SItem::SerializeRemote { dst, msg },
            );
        }
    }

    /// Records an actor-to-actor message in the locality metrics and the
    /// endpoint sketches. The source offer goes in directly (the source is
    /// local); a remote destination's offer is buffered for the barrier so
    /// sketch update order is independent of the shard layout.
    fn note_actor_message(
        &mut self,
        now: Nanos,
        src_server: usize,
        dst_server: usize,
        from: ActorId,
        to: ActorId,
    ) {
        let remote = src_server != dst_server;
        if remote {
            self.metrics.remote_messages += 1;
        } else {
            self.metrics.local_messages += 1;
        }
        self.metrics
            .remote_share_series
            .record(now.as_nanos(), if remote { 1.0 } else { 0.0 });
        let idx = self.slot_idx(src_server);
        self.slots[idx].edge_sketch.offer((from, to), 1);
        if dst_server == src_server {
            self.slots[idx].edge_sketch.offer((to, from), 1);
        } else {
            self.sketch_offers.push((dst_server as u32, to, from));
        }
    }

    /// Routes a request about to be dispatched: read-tagged requests on
    /// replicated actors spread across live activations by the same seeded
    /// rendezvous hash as the sequential cluster; writes (and every request
    /// while replication is off) take the plain [`Self::resolve`] path to
    /// the primary. Replica sets and liveness change only at barriers, so
    /// the choice is shard-layout invariant; no RNG stream is drawn, so
    /// replication-off runs stay byte-identical.
    fn route_request(&mut self, server: usize, actor: ActorId, tag: u32, request: u64) -> usize {
        if let Some(rep) = self.ctx.config.replication {
            if rep.is_read(u64::from(tag)) {
                // SAFETY: window-phase read; writers only at barriers.
                let dir = unsafe { self.ctx.directory.get() };
                if let Some(primary) = dir.server_of(actor.0) {
                    let reps = dir.replicas_of(actor.0);
                    if !reps.is_empty() {
                        // Failed servers are purged from the directory
                        // eagerly (serial phase), so every candidate is
                        // live; the filter is cheap insurance.
                        // SAFETY: as in `server_failed`.
                        let failed = unsafe { self.ctx.failed.get() };
                        let salt = mix64(request.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ actor.0);
                        let choice = std::iter::once(primary as u32)
                            .chain(reps.iter().copied())
                            .filter(|&c| !failed[c as usize])
                            .max_by_key(|&c| {
                                mix64(salt ^ (u64::from(c) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                            });
                        if let Some(c) = choice {
                            return c as usize;
                        }
                    }
                }
            }
        }
        self.resolve(server, actor)
    }

    /// Resolves the hosting server for `actor`, activating it if needed.
    /// Placement is identity-hash based (deterministic without a shared RNG
    /// stream); the new entry is buffered for the next barrier and mirrored
    /// in this server's private overlay.
    fn resolve(&mut self, server: usize, actor: ActorId) -> usize {
        // SAFETY: window-phase read; writers only at barriers.
        let dir = unsafe { self.ctx.directory.get() };
        if let Some(s) = dir.server_of(actor.0) {
            return s;
        }
        let idx = self.local_idx[server];
        if let Some(&s) = self.slots[idx].dir_overlay.get(&actor.0) {
            return s as usize;
        }
        let failed = unsafe { self.ctx.failed.get() };
        let hint = self.slots[idx]
            .take_location_hint(&actor)
            .filter(|&h| !failed[h]);
        let hinted = hint.is_some();
        let preferred = hint.unwrap_or_else(|| {
            (mix64(actor.0 ^ self.ctx.seed_mix) % self.ctx.topo.servers as u64) as usize
        });
        let n = self.ctx.topo.servers;
        let target = (0..n)
            .map(|i| (preferred + i) % n)
            .find(|&s| !failed[s])
            .unwrap_or(preferred);
        self.slots[idx].dir_overlay.insert(actor.0, target as u32);
        self.dir_ops.push(DirOp {
            actor: actor.0,
            target: target as u32,
            hinted,
            src: server as u32,
        });
        target
    }

    /// Completes a client request: the response reached the client.
    fn complete_request(&mut self, now: Nanos, request: u64, root_start: Nanos) {
        self.metrics.completed += 1;
        if self.trace.enabled() {
            self.trace.record(SpanEvent::instant(
                request,
                HopKind::ClientDone,
                NO_SERVER,
                0,
                now,
            ));
        }
        let total = (now - root_start).as_nanos();
        self.metrics.e2e_latency.record(total);
        self.metrics
            .latency_series
            .record(now.as_nanos(), total as f64);
        if let Some(obs) = self.obs.as_mut() {
            obs.observe_latency(total);
        }
    }

    /// Records a stale-response trace instant.
    #[cold]
    #[inline(never)]
    fn note_stale_response(&mut self, now: Nanos, request: u64, server: usize) {
        if self.trace.enabled() {
            self.trace.record(SpanEvent::instant(
                request,
                HopKind::StaleResponse,
                server as u32,
                0,
                now,
            ));
        }
    }

    // ------------------------------------------------------------------
    // Snapshots & stateful recovery (the window-phase half; the round
    // lifecycle lives in the serial-phase helpers below).
    // ------------------------------------------------------------------

    /// The snapshot subsystem's pre-handler hook for a directory-hosted
    /// request at `server`: rehydrates the actor's state cell from the
    /// durable store if the in-memory copy died with a crash (deferring
    /// with backoff while the store server is down), lazily captures the
    /// pre-write state into the open round, and applies write-tagged
    /// requests to the versioned cell. Draws no RNG. Shared snapshot
    /// state is only *read* here — every mutation lands in this shard's
    /// window-local buffers, flushed sorted at the next barrier.
    fn snapshot_touch(&mut self, now: Nanos, server: usize, actor: u64, tag: u32) -> STouch {
        let cfg = self.ctx.config.snapshot.expect("guarded by caller");
        // SAFETY: window-phase read; writers only in the serial phase.
        let snap = unsafe { self.ctx.snap.as_ref().expect("guarded by caller").get() };
        // SAFETY: as above.
        let failed = unsafe { self.ctx.failed.get() };
        let mut cpu_ns = 0.0;
        let mut blocking_ns = 0.0;
        let mut restore_ev = None;
        let mut replayed = 0u64;
        // The working copy: this window's overlay entry, else the shared
        // cell as of the last barrier (the host is unique between
        // barriers, so nobody else writes this actor concurrently).
        let mut cell_state: Option<StateCell> = match self.snap_overlay.get(&actor) {
            Some(&(_, cell)) => Some(cell),
            None => snap.cells.get(&actor).map(|&(_, cell)| cell),
        };
        if cell_state.is_none() {
            if let Some(plan) = snap.store.restore(actor) {
                // The in-memory cell died with a crash: rehydrate from
                // the last complete snapshot plus the journal tail —
                // unless the store server is down, in which case the
                // execute defers rather than serving lost state.
                if failed[cfg.store_server as usize] {
                    let attempts = self.snap_defer_attempts.entry(actor).or_insert(0);
                    *attempts = attempts.saturating_add(1);
                    let backoff = cfg.defer_backoff(*attempts);
                    self.metrics.restores_deferred += 1;
                    return STouch::Defer(backoff);
                }
                self.snap_defer_attempts.remove(&actor);
                cell_state = Some(StateCell {
                    version: plan.version,
                    value: plan.value,
                });
                replayed = plan.replayed;
                blocking_ns += cfg.restore_base_ns as f64
                    + cfg.restore_per_entry_ns as f64 * plan.replayed as f64;
                restore_ev = Some((plan.round, plan.version));
            }
        }
        let is_write = cfg.is_write(u64::from(tag));
        if cell_state.is_none() && is_write {
            cell_state = Some(StateCell::default());
        }
        let mut capture_ev = None;
        let mut write_ev = None;
        if let Some(mut cell) = cell_state {
            if is_write {
                // Lazy capture: the first post-cut write at a marked
                // server snapshots the pre-write state, making the round
                // a consistent cut without ever stalling the actor.
                if let Some(round) = snap.round.as_ref() {
                    if round.marked[server]
                        && cell.version > 0
                        && !round.captured.contains_key(&actor)
                        && !self.snap_capture_buf.contains_key(&actor)
                    {
                        self.snap_capture_buf
                            .insert(actor, (round.id, cell.version, cell.value));
                        capture_ev = Some((round.id, cell.version));
                        cpu_ns += cfg.capture_cpu_ns;
                    }
                }
                let version = cell.apply_write(actor);
                self.snap_journal_ops.push((actor, version, cell.value));
                cpu_ns += cfg.journal_cpu_ns;
                write_ev = Some(version);
            }
            // Every touch refreshes the overlay entry, which self-heals
            // the host hint at the barrier flush.
            self.snap_overlay.insert(actor, (server as u32, cell));
        }
        if restore_ev.is_some() {
            self.metrics.restores += 1;
            self.metrics.restore_replayed += replayed;
        }
        if capture_ev.is_some() {
            self.metrics.snap_captures += 1;
            self.metrics.snap_bytes += cfg.state_bytes;
        }
        if write_ev.is_some() {
            self.metrics.state_writes += 1;
        }
        if self.trace.enabled() {
            // Lifecycle events in causal order: restore before capture
            // before the write itself, all at the touch timestamp.
            if let Some((round, version)) = restore_ev {
                self.trace.record(SpanEvent::instant(
                    actor,
                    HopKind::Restore,
                    server as u32,
                    (round << 40) | version,
                    now,
                ));
            }
            if let Some((round, version)) = capture_ev {
                self.trace.record(SpanEvent::instant(
                    actor,
                    HopKind::SnapCapture,
                    server as u32,
                    (round << 40) | version,
                    now,
                ));
            }
            if let Some(version) = write_ev {
                self.trace.record(SpanEvent::instant(
                    actor,
                    HopKind::StateWrite,
                    server as u32,
                    version,
                    now,
                ));
            }
        }
        STouch::Proceed {
            cpu_ns,
            blocking_ns,
        }
    }

    /// Runs `f` against the shared durable snapshot store (`None` without
    /// `config.snapshot`) — what verification harnesses inspect.
    ///
    /// Call only while the runner is idle — between `run_until` calls or
    /// after the run — never from inside a window phase (the same
    /// contract as [`Self::directory_snapshot`]).
    pub fn with_snapshot_store<R>(&self, f: impl FnOnce(&SnapshotStore) -> R) -> Option<R> {
        self.ctx.snap.as_ref().map(|cell| {
            // SAFETY: no window phase is live on an idle runner.
            f(&unsafe { cell.get() }.store)
        })
    }

    /// The in-memory state cell of `actor`, if the snapshot subsystem is
    /// on and the actor currently has one. Same idle-runner contract as
    /// [`Self::with_snapshot_store`].
    pub fn shared_state_cell(&self, actor: u64) -> Option<StateCell> {
        self.ctx.snap.as_ref().and_then(|cell| {
            // SAFETY: no window phase is live on an idle runner.
            unsafe { cell.get() }.cells.get(&actor).map(|&(_, c)| c)
        })
    }

    // ------------------------------------------------------------------
    // ActOp hooks (serial-phase; driven through `GlobalCtx` helpers or
    // directly by the thread agent on the owning cell).
    // ------------------------------------------------------------------

    /// Drains the per-stage observation windows of a local server.
    pub fn drain_stage_stats(&mut self, now: Nanos, server: usize) -> [StageReport; 4] {
        let idx = self.slot_idx(server);
        let mut out = [StageReport {
            arrivals: 0,
            completions: 0,
            window: Nanos::ZERO,
            sum_wallclock_ns: 0.0,
            sum_cpu_ns: 0.0,
            mean_queue_len: 0.0,
        }; 4];
        for (i, report) in out.iter_mut().enumerate() {
            let pool_stats = self.slots[idx].stages[i].drain_stats(now);
            let window = std::mem::take(&mut self.slots[idx].windows[i]);
            *report = StageReport {
                arrivals: pool_stats.arrivals,
                completions: window.completions,
                window: pool_stats.window,
                sum_wallclock_ns: window.sum_wallclock_ns,
                sum_cpu_ns: window.sum_cpu_ns,
                mean_queue_len: pool_stats.mean_queue_len(),
            };
        }
        out
    }

    /// Current thread allocation of a local server, in stage order.
    pub fn thread_allocation(&self, server: usize) -> [usize; 4] {
        self.slots[self.slot_idx(server)].thread_allocation()
    }

    /// Current queue lengths of a local server, in stage order.
    pub fn queue_lengths(&self, server: usize) -> [usize; 4] {
        self.slots[self.slot_idx(server)].queue_lengths()
    }

    /// Reconfigures a local server's per-stage thread allocation.
    pub fn set_stage_threads(
        &mut self,
        engine: &mut Engine<ShardedCluster>,
        server: usize,
        allocation: [usize; 4],
    ) {
        let now = engine.now();
        let idx = self.slot_idx(server);
        for (i, &threads) in allocation.iter().enumerate() {
            self.slots[idx].stages[i].set_threads(now, threads);
        }
        let total: usize = allocation.iter().sum();
        self.slots[idx].cpu.set_configured_threads(now, total);
        self.pump(engine, server);
    }
}

/// Request key of a stage item (for trace spans).
fn item_request(item: &SItem) -> u64 {
    match item {
        SItem::Deserialize(m) | SItem::Execute(m) => m.request,
        SItem::SerializeRemote { msg, .. } => msg.request,
        SItem::SerializeClient { request, .. } => *request,
    }
}

// ---------------------------------------------------------------------
// Serial-phase helpers. Holding `&mut GlobalCtx` proves the caller is on
// the serial thread, which is what makes the internal `PhaseCell`
// accesses sound — these functions are the safe API over that discipline.
// ---------------------------------------------------------------------

type Ctx<'a, 'b> = &'a mut GlobalCtx<'b, ShardedCluster>;

fn shared_of(ctx: Ctx<'_, '_>) -> Arc<ShardCtx> {
    ctx.cell(0).world.shared()
}

/// Installs the barrier hook that flushes buffered shared-state effects.
/// Call once on a fresh runner, before running.
pub fn install_sharded_hooks(runner: &mut ConservativeRunner<ShardedCluster>) {
    runner.set_barrier_hook(barrier_flush);
}

/// The barrier hook: applies buffered directory placements (sorted,
/// place-if-vacant, hinted ops first) and cross-server sketch offers
/// (sorted, aggregated), then clears every server's placement overlay.
pub fn barrier_flush(ctx: &mut GlobalCtx<'_, ShardedCluster>) {
    let shared = shared_of(ctx);
    let mut ops: Vec<DirOp> = Vec::new();
    let mut offers: Vec<(u32, ActorId, ActorId)> = Vec::new();
    for cell in ctx.cells() {
        ops.append(&mut cell.world.dir_ops);
        offers.append(&mut cell.world.sketch_offers);
        for slot in &mut cell.world.slots {
            slot.dir_overlay.clear();
        }
    }
    if !ops.is_empty() {
        ops.sort_unstable_by_key(|o| (o.actor, !o.hinted, o.target, o.src));
        // SAFETY: serial phase; no window reader is live.
        let dir = unsafe { shared.directory.get_mut() };
        for op in ops {
            if dir.server_of(op.actor).is_none() {
                dir.place(op.actor, op.target as usize);
            }
        }
    }
    if !offers.is_empty() {
        offers.sort_unstable();
        let mut i = 0;
        while i < offers.len() {
            let (dst, to, from) = offers[i];
            let mut j = i + 1;
            while j < offers.len() && offers[j] == (dst, to, from) {
                j += 1;
            }
            let count = (j - i) as u64;
            let cell = ctx.cell(shared.topo.shard_of(dst as usize));
            let idx = cell.world.local_idx[dst as usize];
            cell.world.slots[idx].edge_sketch.offer((to, from), count);
            i = j;
        }
    }
    flush_snap_ops(ctx, &shared);
}

/// Applies every shard's buffered snapshot effects to the shared state,
/// in sorted (layout-invariant) order: overlay cells replace their shared
/// entries, journal appends land in the durable store, and lazy captures
/// join the open round. Runs inside the barrier hook, so every
/// serial-phase global event observes current shared snapshot state.
fn flush_snap_ops(ctx: &mut GlobalCtx<'_, ShardedCluster>, shared: &ShardCtx) {
    let Some(snap_cell) = shared.snap.as_ref() else {
        return;
    };
    let mut cells: Vec<(u64, u32, StateCell)> = Vec::new();
    let mut journal: Vec<(u64, u64, u64)> = Vec::new();
    let mut captures: Vec<(u64, u64, u64, u64)> = Vec::new();
    for cell in ctx.cells() {
        cells.extend(
            cell.world
                .snap_overlay
                .drain()
                .map(|(a, (host, st))| (a, host, st)),
        );
        journal.append(&mut cell.world.snap_journal_ops);
        captures.extend(
            cell.world
                .snap_capture_buf
                .drain()
                .map(|(a, (round, ver, val))| (a, round, ver, val)),
        );
    }
    if cells.is_empty() && journal.is_empty() && captures.is_empty() {
        return;
    }
    // An actor's host is unique between barriers, so each actor appears
    // in at most one shard's buffers; sorting makes the apply order
    // independent of both shard layout and map iteration order.
    cells.sort_unstable_by_key(|&(a, ..)| a);
    journal.sort_unstable();
    captures.sort_unstable();
    // SAFETY: serial phase; no window reader is live.
    let snap = unsafe { snap_cell.get_mut() };
    for (a, host, st) in cells {
        snap.cells.insert(a, (host, st));
    }
    for (a, version, value) in journal {
        snap.store.append(a, version, value);
    }
    if let Some(round) = snap.round.as_mut() {
        let cfg = shared.config.snapshot.expect("snap state implies config");
        for (a, rid, ver, val) in captures {
            // Rounds open and close only at serial points, so a buffered
            // capture can only belong to the still-open round; a stale id
            // means the round aborted mid-window and the capture dies.
            if rid == round.id {
                round.capture(a, ver, val, cfg.state_bytes);
            }
        }
    }
}

/// Submits a client request at `at >= ctx.now` through a uniformly random
/// live gateway. `request` is the caller-minted global serial; the two RNG
/// streams belong to the (serial-phase) workload driver.
#[allow(clippy::too_many_arguments)]
pub fn submit_client_request_sharded(
    ctx: &mut GlobalCtx<'_, ShardedCluster>,
    at: Nanos,
    to: ActorId,
    tag: u32,
    bytes: u64,
    request: u64,
    rng_gateway: &mut DetRng,
    rng_net: &mut DetRng,
) {
    let shared = shared_of(ctx);
    let n = shared.topo.servers;
    let first = rng_gateway.below(n);
    // SAFETY: serial phase.
    let failed = unsafe { shared.failed.get() };
    let gateway = (0..n).map(|i| (first + i) % n).find(|&s| !failed[s]);
    let Some(gateway) = gateway else {
        // Total cluster loss: shed at admission (attributed to shard 0).
        let cell = ctx.cell(0);
        cell.world.metrics.submitted += 1;
        cell.world.metrics.rejected += 1;
        cell.world.metrics.shed_no_live += 1;
        if cell.world.trace.enabled() {
            cell.world
                .trace
                .record(SpanEvent::instant(request, HopKind::Shed, NO_SERVER, 0, at));
        }
        return;
    };
    let delay = shared.config.costs.network.delay(rng_net, bytes);
    let msg = SMsg {
        to,
        tag,
        bytes,
        kind: SKind::Request {
            reply: SReply::Client,
        },
        request,
        root_start: at,
        issued_at: at,
        delivered_remotely: true,
        from_actor: None,
        forwarded: false,
        call_was_remote: false,
        attempts: 0,
        hops: 0,
    };
    let cell = ctx.cell(shared.topo.shard_of(gateway));
    cell.world.metrics.submitted += 1;
    if cell.world.trace.enabled() {
        cell.world.trace.record(SpanEvent::instant(
            request,
            HopKind::GatewayAdmit,
            gateway as u32,
            0,
            at,
        ));
        cell.world.trace.record(SpanEvent {
            request,
            kind: HopKind::Network,
            server: gateway as u32,
            stage: NO_STAGE,
            aux: 0,
            t_start: at,
            t_end: at + delay,
        });
    }
    cell.engine
        .schedule(at + delay, move |w: &mut ShardedCluster, e| {
            w.wire_arrive(e, gateway, msg)
        });
}

/// Migrates an actor (instant commit — transfer windows are unsupported):
/// deactivation plus opportunistic re-placement, exactly as the sequential
/// cluster's `commit_migration`.
pub fn migrate_actor_sharded(ctx: Ctx<'_, '_>, now: Nanos, actor: ActorId, to: usize) {
    let shared = shared_of(ctx);
    let from = {
        // SAFETY: serial phase.
        let dir = unsafe { shared.directory.get_mut() };
        let Some(from) = dir.server_of(actor.0) else {
            return;
        };
        if from == to {
            return;
        }
        if dir.is_replicated(actor.0) {
            // Replicated actors pin their primary: the replica set would
            // dangle across a re-placement (same rule as the sequential
            // cluster's `migrate_actor`).
            return;
        }
        dir.remove(actor.0);
        from
    };
    {
        let cell = ctx.cell(shared.topo.shard_of(from));
        if cell.world.trace.enabled() {
            cell.world.trace.record(SpanEvent::instant(
                actor.0,
                HopKind::Migration,
                from as u32,
                to as u64,
                now,
            ));
        }
        let idx = cell.world.local_idx[from];
        cell.world.slots[idx].cache_location(actor, to);
        cell.world.slots[idx]
            .edge_sketch
            .retain(|&(local, _)| local != actor);
        cell.world.metrics.migrations += 1;
        cell.world.metrics.migration_series.mark(now.as_nanos());
    }
    let cell = ctx.cell(shared.topo.shard_of(to));
    let idx = cell.world.local_idx[to];
    cell.world.slots[idx].cache_location(actor, to);
    if let Some(snap_cell) = shared.snap.as_ref() {
        // Keep the state cell's host hint current so a crash of `to`
        // drops it. The hint is best-effort (a stale one costs at worst a
        // spurious exact restore), but migrations are serial-phase so we
        // update it for free.
        // SAFETY: serial phase.
        if let Some(entry) = unsafe { snap_cell.get_mut() }.cells.get_mut(&actor.0) {
            entry.0 = to as u32;
        }
    }
}

/// Applies an exchange outcome from the pairwise partition protocol.
pub fn apply_exchange_sharded(
    ctx: Ctx<'_, '_>,
    now: Nanos,
    initiator: usize,
    responder: usize,
    outcome: &ExchangeOutcome<ActorId>,
) {
    for actor in &outcome.accepted {
        migrate_actor_sharded(ctx, now, *actor, responder);
    }
    for actor in &outcome.returned {
        migrate_actor_sharded(ctx, now, *actor, initiator);
    }
    let shared = shared_of(ctx);
    let ns = now.as_nanos();
    for server in [initiator, responder] {
        let cell = ctx.cell(shared.topo.shard_of(server));
        let idx = cell.world.local_idx[server];
        cell.world.slots[idx].last_exchange_ns = Some(ns);
    }
}

/// A server's partition view: its hosted actors with their sampled edges,
/// sorted for determinism (the candidate-set input).
pub fn sharded_partition_view(
    ctx: Ctx<'_, '_>,
    server: usize,
) -> Vec<(ActorId, Vec<(ActorId, u64)>)> {
    let shared = shared_of(ctx);
    // SAFETY: serial phase.
    let dir = unsafe { shared.directory.get() };
    let cell = ctx.cell(shared.topo.shard_of(server));
    let idx = cell.world.local_idx[server];
    let sketch = &cell.world.slots[idx].edge_sketch;
    let mut by_actor: FxHashMap<ActorId, Vec<(ActorId, u64)>> = FxHashMap::default();
    for entry in sketch.iter_entries() {
        let (local, peer) = entry.item;
        if dir.server_of(local.0) == Some(server) {
            by_actor.entry(local).or_default().push((peer, entry.count));
        }
    }
    let mut out: Vec<(ActorId, Vec<(ActorId, u64)>)> = by_actor.into_iter().collect();
    out.sort_unstable_by_key(|(a, _)| *a);
    for (_, edges) in &mut out {
        edges.sort_unstable_by_key(|&(peer, _)| peer);
    }
    out
}

/// Actors hosted per server (directory view).
pub fn sharded_server_sizes(ctx: Ctx<'_, '_>) -> Vec<usize> {
    let shared = shared_of(ctx);
    // SAFETY: serial phase.
    unsafe { shared.directory.get() }.sizes().to_vec()
}

/// Where an actor currently lives (directory view).
pub fn sharded_locate(ctx: Ctx<'_, '_>, actor: ActorId) -> Option<usize> {
    let shared = shared_of(ctx);
    // SAFETY: serial phase.
    unsafe { shared.directory.get() }.server_of(actor.0)
}

/// Installs the sharded telemetry scraper: a self-rescheduling global
/// event every scrape-interval that scrapes every shard's registry in the
/// serial phase, so frames carry identical timestamps across shards and
/// merge deterministically regardless of the shard count. A no-op without
/// `config.obs`; the horizon keeps the global queue drainable.
pub fn install_sharded_scrapers(runner: &mut ConservativeRunner<ShardedCluster>, horizon: Nanos) {
    let Some(interval) = runner.cells().first().and_then(|c| c.world.obs_interval()) else {
        return;
    };
    let first = runner.now() + interval;
    if first > horizon {
        return;
    }
    runner.schedule_global(first, move |ctx| {
        sharded_scrape_tick(ctx, interval, horizon)
    });
}

/// One global scrape tick: reads the shared liveness vector once, scrapes
/// every shard, and reschedules itself while within the horizon.
fn sharded_scrape_tick(ctx: Ctx<'_, '_>, interval: Nanos, horizon: Nanos) {
    let now = ctx.now;
    let shared = shared_of(ctx);
    // SAFETY: serial phase.
    let failed = unsafe { shared.failed.get() }.clone();
    // SAFETY: serial phase.
    let replicas = unsafe { shared.directory.get() }.replica_count() as f64;
    for cell in ctx.cells() {
        cell.world.obs_scrape(now, &failed, replicas);
    }
    let next = now + interval;
    if next <= horizon {
        ctx.schedule_global(next, move |ctx| sharded_scrape_tick(ctx, interval, horizon));
    }
}

/// Installs the sharded hot-actor replication controller: a
/// self-rescheduling global event every `check_interval` that runs the
/// split/drop decision kernel for every server in id order from the serial
/// phase. Splits and drops commit instantly (the sharded backend has no
/// transfer windows), mutating the shared directory between windows — so
/// replica sets, like placements, only ever change at barriers and routing
/// stays shard-layout invariant. A no-op when `config.replication` is
/// `None`; the horizon keeps the global queue drainable.
pub fn install_replication_sharded(
    runner: &mut ConservativeRunner<ShardedCluster>,
    horizon: Nanos,
) {
    let Some(rep) = runner
        .cells()
        .first()
        .and_then(|c| c.world.shared().config.replication)
    else {
        return;
    };
    let first = runner.now() + rep.check_interval;
    if first > horizon {
        return;
    }
    let cooldowns: FxHashMap<u64, Nanos> = FxHashMap::default();
    runner.schedule_global(first, move |ctx| {
        sharded_replication_tick(ctx, rep, cooldowns, horizon)
    });
}

/// One global replication tick: the sharded twin of the sequential
/// cluster's `replication_tick`, run for every live server in id order.
/// The per-actor cooldown map travels through the reschedule chain; an
/// actor's decisions happen only at its primary's turn, so one cluster-wide
/// map behaves exactly like the legacy per-server maps.
fn sharded_replication_tick(
    ctx: Ctx<'_, '_>,
    rep: ReplicationConfig,
    mut cooldowns: FxHashMap<u64, Nanos>,
    horizon: Nanos,
) {
    let now = ctx.now;
    let shared = shared_of(ctx);
    let n = shared.topo.servers;
    let window_capacity_ns =
        rep.check_interval.as_nanos() * shared.config.costs.cores_per_server as u64;
    for server in 0..n {
        // SAFETY: serial phase.
        if unsafe { shared.failed.get() }[server] {
            continue;
        }
        let shard = shared.topo.shard_of(server);
        // Candidates: sustained heavy hitters primaried here (by
        // guaranteed sketch weight), plus every already-replicated actor
        // primaried here (so idle celebrities shrink back).
        let candidates: Vec<u64> = {
            let cell = ctx.cell(shard);
            let idx = cell.world.local_idx[server];
            // SAFETY: serial phase.
            let dir = unsafe { shared.directory.get() };
            let mut c: Vec<u64> = cell.world.slots[idx]
                .load_sketch
                .sustained_heavy_hitters(rep.min_load_ns)
                .map(|e| e.item.0)
                .filter(|&a| dir.server_of(a) == Some(server))
                .collect();
            c.extend(dir.replicated_primaried_on(server));
            c.sort_unstable();
            c.dedup();
            c
        };
        for a in candidates {
            if cooldowns.get(&a).is_some_and(|&until| until > now) {
                continue;
            }
            let (observed, replicas) = {
                let cell = ctx.cell(shard);
                let idx = cell.world.local_idx[server];
                // SAFETY: serial phase.
                let dir = unsafe { shared.directory.get() };
                (
                    cell.world.slots[idx].load_sketch.lower_bound(&ActorId(a)),
                    dir.replicas_of(a).len(),
                )
            };
            match decide_split(&rep.thresholds, observed, window_capacity_ns, replicas) {
                SplitDecision::Split => {
                    if let Some(to) = sharded_split_target(&shared, a, replicas, server) {
                        // SAFETY: serial phase.
                        unsafe { shared.directory.get_mut() }.add_replica(a, to);
                        let cell = ctx.cell(shard);
                        cell.world.metrics.splits += 1;
                        if cell.world.trace.enabled() {
                            // Lifecycle event: `request` carries the actor
                            // id, `server` the primary, `aux` the replica.
                            cell.world.trace.record(SpanEvent::instant(
                                a,
                                HopKind::Split,
                                server as u32,
                                to as u64,
                                now,
                            ));
                        }
                        cooldowns.insert(a, now + rep.cooldown);
                    }
                }
                SplitDecision::Drop => {
                    // Deterministic victim: the highest replica server id.
                    let victim = {
                        // SAFETY: serial phase.
                        let dir = unsafe { shared.directory.get() };
                        *dir.replicas_of(a).last().expect("Drop implies replicas") as usize
                    };
                    // SAFETY: serial phase.
                    if unsafe { shared.directory.get_mut() }.drop_replica(a, victim) {
                        let cell = ctx.cell(shard);
                        cell.world.metrics.replica_drops += 1;
                        if cell.world.trace.enabled() {
                            cell.world.trace.record(SpanEvent::instant(
                                a,
                                HopKind::ReplicaDrop,
                                server as u32,
                                victim as u64,
                                now,
                            ));
                        }
                        cooldowns.insert(a, now + rep.cooldown);
                    }
                }
                SplitDecision::Hold => {}
            }
        }
        let cell = ctx.cell(shard);
        let idx = cell.world.local_idx[server];
        cell.world.slots[idx].load_sketch.clear();
    }
    let next = now + rep.check_interval;
    if next <= horizon {
        ctx.schedule_global(next, move |ctx| {
            sharded_replication_tick(ctx, rep, cooldowns, horizon)
        });
    }
}

/// Rendezvous split destination over the eligible servers (not the
/// primary, not already a replica, live), keyed by the current replica
/// count — the sequential cluster's `split_target` with ground-truth
/// liveness in place of suspicion. Call only from the serial phase (reads
/// the shared directory and liveness flags).
fn sharded_split_target(
    shared: &ShardCtx,
    a: u64,
    replicas: usize,
    primary: usize,
) -> Option<usize> {
    // SAFETY: serial phase, per the caller contract.
    let dir = unsafe { shared.directory.get() };
    // SAFETY: as above.
    let failed = unsafe { shared.failed.get() };
    let salt = mix64(a ^ (replicas as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut best: Option<(u64, usize)> = None;
    for (c, &down) in failed.iter().enumerate().take(shared.topo.servers) {
        if c == primary || down || dir.replica_hosted(a, c) {
            continue;
        }
        let score = mix64(salt ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if best.is_none_or(|(s, _)| score > s) {
            best = Some((score, c));
        }
    }
    best.map(|(_, c)| c)
}

/// Installs the sharded snapshot coordinator: a self-rescheduling global
/// event every [`SnapshotConfig::interval`] that begins an asynchronous
/// snapshot round from the serial phase, with the sweep-and-commit
/// scheduled `capture_window` later. A no-op without `config.snapshot`;
/// the horizon keeps the global queue drainable. Rounds are skipped
/// (never queued) while the store server is down, so the loop survives
/// chaos and resumes by itself on recovery.
pub fn install_snapshots_sharded(runner: &mut ConservativeRunner<ShardedCluster>, horizon: Nanos) {
    let Some(cfg) = runner
        .cells()
        .first()
        .and_then(|c| c.world.shared().config.snapshot)
    else {
        return;
    };
    let first = runner.now() + cfg.interval;
    if first > horizon {
        return;
    }
    runner.schedule_global(first, move |ctx| sharded_snapshot_begin(ctx, cfg, horizon));
}

/// Begins one snapshot round. The serial point is the cut: every live
/// server joins at once (the legacy backend's marker propagation
/// collapses to an instantaneous barrier cut — a documented deviation),
/// and the in-flight count is the wire-counter difference at this
/// instant. Skipped while a round is still open or the store server is
/// down.
fn sharded_snapshot_begin(ctx: Ctx<'_, '_>, cfg: SnapshotConfig, horizon: Nanos) {
    let now = ctx.now;
    let shared = shared_of(ctx);
    let coord = cfg.store_server as usize;
    let store_shard = shared.topo.shard_of(coord);
    // SAFETY: serial phase.
    let failed: Vec<bool> = unsafe { shared.failed.get() }.clone();
    let mut sent = 0u64;
    let mut recv = 0u64;
    for cell in ctx.cells() {
        sent += cell.world.snap_wire_sent;
        recv += cell.world.snap_wire_recv;
    }
    let begun = {
        let snap_cell = shared.snap.as_ref().expect("installed with snapshots");
        // SAFETY: serial phase.
        let snap = unsafe { snap_cell.get_mut() };
        if snap.round.is_some() || failed[coord] {
            None
        } else {
            snap.rounds_started += 1;
            let id = snap.rounds_started;
            snap.round = Some(SRound {
                id,
                begun_at: now,
                marked: failed.iter().map(|&f| !f).collect(),
                in_flight: sent - recv,
                captured: FxHashMap::default(),
                bytes: 0,
            });
            Some(id)
        }
    };
    match begun {
        None => ctx.cell(store_shard).world.metrics.snap_rounds_skipped += 1,
        Some(id) => {
            let w = &mut ctx.cell(store_shard).world;
            w.metrics.snap_rounds_started += 1;
            if w.trace.enabled() {
                // Lifecycle events: `request` carries the round id. All
                // markers land at the cut instant.
                w.trace.record(SpanEvent::instant(
                    id,
                    HopKind::SnapBegin,
                    coord as u32,
                    0,
                    now,
                ));
                for (s, &down) in failed.iter().enumerate() {
                    if !down {
                        w.trace.record(SpanEvent::instant(
                            id,
                            HopKind::SnapMarker,
                            s as u32,
                            0,
                            now,
                        ));
                    }
                }
            }
            ctx.schedule_global(now + cfg.capture_window, move |ctx| {
                sharded_snapshot_sweep(ctx, cfg, id)
            });
        }
    }
    let next = now + cfg.interval;
    if next <= horizon {
        ctx.schedule_global(next, move |ctx| sharded_snapshot_begin(ctx, cfg, horizon));
    }
}

/// The capture window of `round_id` elapsed: capture every
/// still-untouched state cell at its current value (the barrier hook has
/// already flushed this window's buffered captures into the round),
/// commit the round to the durable store, and account it. A no-op when a
/// crash aborted the round.
fn sharded_snapshot_sweep(ctx: Ctx<'_, '_>, cfg: SnapshotConfig, round_id: u64) {
    let now = ctx.now;
    let shared = shared_of(ctx);
    let store_shard = shared.topo.shard_of(cfg.store_server as usize);
    let result = {
        let snap_cell = shared
            .snap
            .as_ref()
            .expect("sweep only scheduled with snapshots");
        // SAFETY: serial phase.
        let snap = unsafe { snap_cell.get_mut() };
        if snap.round.as_ref().map(|r| r.id) != Some(round_id) {
            None // Aborted by a crash.
        } else {
            let mut round = snap.round.take().expect("checked above");
            // Sweep stragglers in actor order so the capture trace is
            // deterministic regardless of map iteration order.
            let mut remaining: Vec<u64> = snap.cells.keys().copied().collect();
            remaining.sort_unstable();
            let mut swept: Vec<(u64, u32, u64)> = Vec::new();
            for actor in remaining {
                let (host, cell) = snap.cells[&actor];
                if cell.version == 0 {
                    continue; // Never written: nothing to snapshot.
                }
                if round.capture(actor, cell.version, cell.value, cfg.state_bytes) {
                    swept.push((actor, host, cell.version));
                }
            }
            let captures = round.sorted_captures();
            snap.store.commit(round_id, &captures);
            (
                swept,
                captures.len() as u64,
                round.in_flight,
                round.begun_at,
            )
                .into()
        }
    };
    let Some((swept, capture_count, in_flight, begun_at)) = result else {
        return;
    };
    let w = &mut ctx.cell(store_shard).world;
    w.metrics.snap_rounds_completed += 1;
    w.metrics.snap_captures += swept.len() as u64;
    w.metrics.snap_bytes += swept.len() as u64 * cfg.state_bytes;
    w.metrics.snap_inflight += in_flight;
    if let Some(obs) = w.obs.as_mut() {
        obs.observe_snap_round(now.saturating_sub(begun_at).as_nanos());
    }
    if w.trace.enabled() {
        for (actor, host, version) in swept {
            // Lifecycle event: `request` carries the actor id, `aux`
            // packs (round, captured version).
            w.trace.record(SpanEvent::instant(
                actor,
                HopKind::SnapCapture,
                host,
                (round_id << 40) | version,
                now,
            ));
        }
        w.trace.record(SpanEvent::instant(
            round_id,
            HopKind::SnapComplete,
            cfg.store_server,
            capture_count,
            now,
        ));
    }
}

/// Whether a server is currently failed.
pub fn sharded_is_failed(ctx: Ctx<'_, '_>, server: usize) -> bool {
    let shared = shared_of(ctx);
    // SAFETY: serial phase.
    let failed = unsafe { shared.failed.get() };
    failed[server]
}

/// Nanosecond timestamp of a server's last exchange (the cooldown input).
pub fn sharded_last_exchange(ctx: Ctx<'_, '_>, server: usize) -> Option<u64> {
    let shared = shared_of(ctx);
    let cell = ctx.cell(shared.topo.shard_of(server));
    let idx = cell.world.local_idx[server];
    cell.world.slots[idx].last_exchange_ns
}

/// Stamps the exchange cooldown on both parties of a policy round that
/// issued migrations outside `apply_exchange_sharded`.
pub fn sharded_note_exchange(ctx: Ctx<'_, '_>, now: Nanos, p: usize, q: usize) {
    let shared = shared_of(ctx);
    let ns = now.as_nanos();
    for server in [p, q] {
        let cell = ctx.cell(shared.topo.shard_of(server));
        let idx = cell.world.local_idx[server];
        cell.world.slots[idx].last_exchange_ns = Some(ns);
    }
}

/// The measured migration-cost signals (cluster-wide, summed over shards
/// in shard order). Sharded migrations commit instantly, so the stall
/// term and its transfer-window prior are structurally zero — the
/// cost-aware objective still charges repair traffic.
pub fn sharded_cost_signals(ctx: Ctx<'_, '_>) -> actop_partition::CostSignals {
    let shared = shared_of(ctx);
    let mut signals = actop_partition::CostSignals {
        remote_cost_ns: shared.config.costs.remote_overhead_ns(600).max(0.0) as u64,
        ..actop_partition::CostSignals::default()
    };
    for cell in ctx.cells() {
        let m = &cell.world.metrics;
        signals.migrations += m.migrations;
        signals.stall_ns += m.migration_stall_ns;
        signals.repair_msgs += m.directory_repairs + m.stale_responses + m.forwarded_messages;
    }
    signals
}

/// Runs `f` against the shared placement directory (read-only). The
/// `GlobalCtx` parameter is the serial-phase proof; the closure form lets
/// protocol code (e.g. candidate-set scoring) do many lookups without
/// re-proving the phase per call.
pub fn with_directory_sharded<R>(ctx: Ctx<'_, '_>, f: impl FnOnce(&DenseDirectory) -> R) -> R {
    let shared = shared_of(ctx);
    // SAFETY: serial phase.
    let dir = unsafe { shared.directory.get() };
    f(dir)
}

/// Multiplies one server's edge-sketch counters by `factor` (the
/// per-agent aging step).
pub fn sharded_age_sketch(ctx: Ctx<'_, '_>, server: usize, factor: f64) {
    let shared = shared_of(ctx);
    let cell = ctx.cell(shared.topo.shard_of(server));
    let idx = cell.world.local_idx[server];
    cell.world.slots[idx].edge_sketch.scale(factor);
}

/// Multiplies every server's edge-sketch counters by `factor`.
pub fn sharded_age_sketches(ctx: Ctx<'_, '_>, factor: f64) {
    for cell in ctx.cells() {
        for slot in &mut cell.world.slots {
            slot.edge_sketch.scale(factor);
        }
    }
}

/// Crashes a server: queues, running tasks, sketches, caches, and joins
/// are lost; its directory entries are purged (the whole cluster learns
/// instantly, the legacy oracle). Virtual actors re-activate elsewhere on
/// their next message.
pub fn fail_server_sharded(ctx: Ctx<'_, '_>, server: usize) {
    let shared = shared_of(ctx);
    {
        // SAFETY: serial phase.
        let failed = unsafe { shared.failed.get_mut() };
        if failed[server] {
            return;
        }
        failed[server] = true;
    }
    let now = ctx.now;
    if let Some(snap_cell) = shared.snap.as_ref() {
        let cfg = shared.config.snapshot.expect("snap cell implies config");
        // SAFETY: serial phase.
        let snap = unsafe { snap_cell.get_mut() };
        // In-memory state hosted on the dead server is gone; survivors
        // rehydrate from the durable store on next touch. Dropped in
        // actor order so any future ordering-sensitive consumer sees a
        // canonical sequence.
        let mut dead: Vec<u64> = snap
            .cells
            .iter()
            .filter(|(_, &(host, _))| host as usize == server)
            .map(|(&a, _)| a)
            .collect();
        dead.sort_unstable();
        for actor in dead {
            snap.cells.remove(&actor);
        }
        // A crash punctures the open cut: the round aborts and never
        // commits (mirrors the legacy marker protocol, where a dead
        // participant can no longer ack its marker).
        if let Some(round) = snap.round.take() {
            let w = &mut ctx
                .cell(shared.topo.shard_of(cfg.store_server as usize))
                .world;
            w.metrics.snap_rounds_aborted += 1;
            if w.trace.enabled() {
                w.trace.record(SpanEvent::instant(
                    round.id,
                    HopKind::SnapAbort,
                    server as u32,
                    0,
                    now,
                ));
            }
        }
    }
    {
        // SAFETY: serial phase.
        let dir = unsafe { shared.directory.get_mut() };
        if dir.has_replicas() {
            // Replica activations hosted on the crashed server die with
            // it, and so does every replica of an actor whose primary it
            // hosted (the primary's deactivation discards the whole set)
            // — all recorded as explicit drops, attributed to the shard
            // owning each actor's primary, so the merged trace tells the
            // same complete replica-lifetime story as the legacy backend.
            let mut drops: Vec<(u64, u32, u32)> = Vec::new();
            for actor in dir.replicas_on(server) {
                let primary = dir
                    .server_of(actor)
                    .expect("replicated actor has a primary");
                drops.push((actor, primary as u32, server as u32));
            }
            for actor in dir.vertices_on(server) {
                for &r in dir.replicas_of(actor) {
                    drops.push((actor, server as u32, r));
                }
            }
            for &(actor, _, replica) in &drops {
                dir.drop_replica(actor, replica as usize);
            }
            for (actor, primary, replica) in drops {
                let cell = ctx.cell(shared.topo.shard_of(primary as usize));
                cell.world.metrics.replica_drops += 1;
                if cell.world.trace.enabled() {
                    cell.world.trace.record(SpanEvent::instant(
                        actor,
                        HopKind::ReplicaDrop,
                        primary,
                        u64::from(replica),
                        now,
                    ));
                }
            }
        }
        for actor in dir.vertices_on(server) {
            dir.remove(actor);
        }
    }
    let cell = ctx.cell(shared.topo.shard_of(server));
    cell.world.metrics.server_failures += 1;
    if cell.world.trace.enabled() {
        cell.world.trace.record(SpanEvent::instant(
            0,
            HopKind::ServerFail,
            server as u32,
            0,
            now,
        ));
        cell.world
            .trace
            .flight_dump(HopKind::ServerFail, 0, server as u32, now);
    }
    let idx = cell.world.local_idx[server];
    if let Some((_, id)) = cell.world.slots[idx].cpu_event.take() {
        cell.engine.cancel(id);
    }
    let config = shared.config.clone();
    cell.world.slots[idx].reset_process(&config);
}

/// Brings a crashed server back as a fresh, empty process.
pub fn recover_server_sharded(ctx: Ctx<'_, '_>, server: usize) {
    let shared = shared_of(ctx);
    // SAFETY: serial phase.
    let failed = unsafe { shared.failed.get_mut() };
    failed[server] = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use actop_sim::ConservativeRunner;

    /// Requests fan out to a couple of peer actors; peers reply directly.
    struct FanApp;

    impl ShardApp for FanApp {
        fn on_request(&self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction {
            if tag == 1 {
                let fan = 2 + rng.below(2);
                let calls = (0..fan)
                    .map(|j| Call {
                        to: ActorId(100 + (actor.0 * 7 + j as u64) % 9),
                        tag: 0,
                        bytes: 64,
                    })
                    .collect();
                Reaction::fan_out(4_000.0 + rng.below(2_000) as f64, calls, 128)
            } else {
                Reaction::reply(2_000.0 + rng.below(1_000) as f64, 64)
            }
        }
    }

    fn test_config(servers: usize) -> RuntimeConfig {
        let mut config = RuntimeConfig::paper_testbed(11);
        config.servers = servers;
        config.record_remote_call_latency = true;
        config.series_bin_ns = 10_000_000;
        config
    }

    fn run_case(shards: usize, threads: usize, requests: u64) -> ClusterMetrics {
        let config = test_config(6);
        let lookahead = sharded_lookahead(&config);
        let series_bin = config.series_bin_ns;
        let worlds = build_sharded(config, Box::new(FanApp), shards);
        let mut runner = ConservativeRunner::new(worlds, lookahead);
        install_sharded_hooks(&mut runner);
        let mut rng_gw = DetRng::stream(42, 0x90);
        let mut rng_net = DetRng::stream(42, 0x91);
        runner.schedule_global(Nanos::ZERO, move |ctx| {
            for i in 0..requests {
                let at = Nanos::from_micros(20 * i);
                submit_client_request_sharded(
                    ctx,
                    at,
                    ActorId(1 + i % 5),
                    1,
                    256,
                    i,
                    &mut rng_gw,
                    &mut rng_net,
                );
            }
        });
        runner.run_until(Nanos::from_millis(300), threads);
        let mut merged = ClusterMetrics::new(series_bin);
        for cell in runner.cells() {
            merged.merge_from(cell.world.metrics());
        }
        merged
    }

    fn run_chaos_case(shards: usize, threads: usize) -> ClusterMetrics {
        let config = test_config(6);
        let lookahead = sharded_lookahead(&config);
        let series_bin = config.series_bin_ns;
        let worlds = build_sharded(config, Box::new(FanApp), shards);
        let mut runner = ConservativeRunner::new(worlds, lookahead);
        install_sharded_hooks(&mut runner);
        let mut rng_gw = DetRng::stream(9, 0x90);
        let mut rng_net = DetRng::stream(9, 0x91);
        runner.schedule_global(Nanos::ZERO, move |ctx| {
            for i in 0..400u64 {
                let at = Nanos::from_micros(100 * i);
                submit_client_request_sharded(
                    ctx,
                    at,
                    ActorId(1 + i % 8),
                    1,
                    256,
                    i,
                    &mut rng_gw,
                    &mut rng_net,
                );
            }
        });
        // Crash two servers on (for shards > 1) different shards, then
        // recover one of them mid-run.
        runner.schedule_global(Nanos::from_millis(8), |ctx| {
            fail_server_sharded(ctx, 2);
            fail_server_sharded(ctx, 3);
        });
        runner.schedule_global(Nanos::from_millis(25), |ctx| {
            recover_server_sharded(ctx, 2);
        });
        runner.run_until(Nanos::from_millis(120), threads);
        let mut merged = ClusterMetrics::new(series_bin);
        for cell in runner.cells() {
            merged.merge_from(cell.world.metrics());
        }
        merged
    }

    fn counters(m: &ClusterMetrics) -> Vec<u64> {
        vec![
            m.submitted,
            m.completed,
            m.rejected,
            m.stale_responses,
            m.remote_messages,
            m.local_messages,
            m.forwarded_messages,
            m.retries,
            m.retry_budget_exhausted,
            m.lost_in_flight,
            m.server_failures,
            m.e2e_latency.count(),
            m.remote_call_latency.count(),
            m.e2e_latency.quantile(0.5),
            m.e2e_latency.max(),
        ]
    }

    #[test]
    fn topology_round_robin() {
        let topo = ShardTopology {
            servers: 10,
            shards: 4,
        };
        assert_eq!(topo.shard_of(0), 0);
        assert_eq!(topo.shard_of(5), 1);
        assert_eq!(topo.shard_of(7), 3);
    }

    #[test]
    fn build_deals_servers_round_robin() {
        let worlds = build_sharded(test_config(10), Box::new(FanApp), 4);
        assert_eq!(worlds.len(), 4);
        assert_eq!(worlds[1].local_servers(), vec![1, 5, 9]);
        assert!(worlds[1].owns_server(5));
        assert!(!worlds[1].owns_server(4));
    }

    #[test]
    #[should_panic(expected = "does not support request timeouts")]
    fn build_rejects_unsupported_features() {
        let mut config = test_config(4);
        config.request_timeout = Some(Nanos::from_millis(100));
        let _ = build_sharded(config, Box::new(FanApp), 2);
    }

    #[test]
    fn sequential_run_completes_requests() {
        let m = run_case(1, 1, 200);
        assert_eq!(m.submitted, 200);
        assert_eq!(m.completed, 200, "all requests drain in a healthy run");
        assert_eq!(m.rejected, 0);
        assert!(m.remote_messages > 0, "fan-outs cross servers");
        assert!(m.e2e_latency.quantile(0.5) > 0);
    }

    #[test]
    fn results_identical_across_shard_counts_and_threads() {
        let base = run_case(1, 1, 200);
        for (shards, threads) in [(2, 2), (3, 3), (6, 2)] {
            let m = run_case(shards, threads, 200);
            assert_eq!(
                counters(&base),
                counters(&m),
                "shards={shards} threads={threads} diverged"
            );
            assert_eq!(base.e2e_latency.summary(), m.e2e_latency.summary());
            assert_eq!(
                base.latency_series.bins(),
                m.latency_series.bins(),
                "latency series diverged at shards={shards}"
            );
            assert_eq!(
                base.remote_share_series.bins(),
                m.remote_share_series.bins()
            );
        }
    }

    #[test]
    fn chaos_results_identical_across_shard_counts() {
        let base = run_chaos_case(1, 1);
        assert_eq!(base.server_failures, 2);
        assert!(base.lost_in_flight > 0, "crashes lose in-flight messages");
        assert!(
            base.completed < base.submitted,
            "some requests die with the crashed servers"
        );
        for (shards, threads) in [(2, 2), (5, 3)] {
            let m = run_chaos_case(shards, threads);
            assert_eq!(
                counters(&base),
                counters(&m),
                "chaos shards={shards} threads={threads} diverged"
            );
            assert_eq!(base.e2e_latency.summary(), m.e2e_latency.summary());
        }
    }

    /// A chaos run with snapshots on: the store server itself crashes
    /// mid-round (forcing an abort, skipped rounds, and deferred
    /// restores) and recovers, so every snapshot code path executes.
    /// Returns the merged metrics plus the durable per-actor version sum
    /// — the store's view of "transitions that happened".
    fn run_snap_chaos_case(shards: usize, threads: usize) -> (ClusterMetrics, u64) {
        let mut config = test_config(6);
        config.snapshot = Some(SnapshotConfig {
            interval: Nanos::from_millis(10),
            capture_window: Nanos::from_millis(6),
            ..SnapshotConfig::default()
        });
        let lookahead = sharded_lookahead(&config);
        let series_bin = config.series_bin_ns;
        let worlds = build_sharded(config, Box::new(FanApp), shards);
        let mut runner = ConservativeRunner::new(worlds, lookahead);
        install_sharded_hooks(&mut runner);
        install_snapshots_sharded(&mut runner, Nanos::from_millis(120));
        let mut rng_gw = DetRng::stream(9, 0x90);
        let mut rng_net = DetRng::stream(9, 0x91);
        runner.schedule_global(Nanos::ZERO, move |ctx| {
            for i in 0..500u64 {
                let at = Nanos::from_micros(150 * i);
                submit_client_request_sharded(
                    ctx,
                    at,
                    ActorId(1 + i % 8),
                    1,
                    256,
                    i,
                    &mut rng_gw,
                    &mut rng_net,
                );
            }
        });
        // Crash the store server (0) inside the round that began at
        // 10 ms (sweep due at 16 ms) plus an ordinary server; recover
        // the store at 29 ms so the 30 ms round runs again.
        runner.schedule_global(Nanos::from_millis(14), |ctx| {
            fail_server_sharded(ctx, 0);
            fail_server_sharded(ctx, 3);
        });
        runner.schedule_global(Nanos::from_millis(29), |ctx| {
            recover_server_sharded(ctx, 0);
        });
        runner.run_until(Nanos::from_millis(120), threads);
        let mut merged = ClusterMetrics::new(series_bin);
        for cell in runner.cells() {
            merged.merge_from(cell.world.metrics());
        }
        let version_sum = runner.cells()[0]
            .world
            .with_snapshot_store(|store| {
                (0..200)
                    .map(|a| store.restore(a).map_or(0, |p| p.version))
                    .sum()
            })
            .expect("snapshots on");
        (merged, version_sum)
    }

    fn snap_counters(m: &ClusterMetrics) -> Vec<u64> {
        let mut c = counters(m);
        c.extend([
            m.state_writes,
            m.restores,
            m.restore_replayed,
            m.restores_deferred,
            m.snap_rounds_started,
            m.snap_rounds_completed,
            m.snap_rounds_aborted,
            m.snap_rounds_skipped,
            m.snap_captures,
            m.snap_bytes,
            m.snap_inflight,
        ]);
        c
    }

    #[test]
    fn snapshot_chaos_recovers_state_and_exercises_every_path() {
        let (m, version_sum) = run_snap_chaos_case(1, 1);
        assert_eq!(m.server_failures, 2);
        assert!(
            m.snap_rounds_completed >= 4,
            "rounds {}",
            m.snap_rounds_completed
        );
        assert!(m.snap_rounds_aborted >= 1, "the punctured round aborted");
        assert!(
            m.snap_rounds_skipped >= 1,
            "rounds skip while the store is down"
        );
        assert!(m.snap_captures > 0, "state was checkpointed");
        assert!(m.restores > 0, "lost actors rehydrated");
        assert!(
            m.restores_deferred > 0,
            "touches while the store was down deferred"
        );
        assert!(m.state_writes > 0);
        // Zero lost, zero duplicated transitions: the durable journal's
        // per-actor version count equals the writes the cluster executed.
        assert_eq!(version_sum, m.state_writes);
    }

    #[test]
    fn snapshot_chaos_identical_across_shard_counts() {
        let base = run_snap_chaos_case(1, 1);
        for (shards, threads) in [(2, 2), (5, 3)] {
            let m = run_snap_chaos_case(shards, threads);
            assert_eq!(
                snap_counters(&base.0),
                snap_counters(&m.0),
                "snapshot chaos shards={shards} threads={threads} diverged"
            );
            assert_eq!(base.1, m.1, "durable state diverged at shards={shards}");
            assert_eq!(base.0.e2e_latency.summary(), m.0.e2e_latency.summary());
        }
    }

    #[test]
    fn snapshot_off_runs_are_unchanged() {
        // The snapshot hook must not perturb a run when disabled: the
        // plain chaos case (snapshot = None) is the baseline everything
        // in `chaos_results_identical_across_shard_counts` pins.
        let m = run_chaos_case(1, 1);
        assert_eq!(m.state_writes, 0);
        assert_eq!(m.snap_rounds_started, 0);
    }

    #[test]
    #[should_panic(expected = "snapshot restore backoff")]
    fn build_rejects_sub_lookahead_restore_backoff() {
        let mut config = test_config(4);
        config.snapshot = Some(SnapshotConfig {
            restore_backoff: Nanos::from_nanos(1),
            ..SnapshotConfig::default()
        });
        let _ = build_sharded(config, Box::new(FanApp), 2);
    }

    #[test]
    fn migration_helpers_move_actors_and_leave_hints() {
        let config = test_config(4);
        let lookahead = sharded_lookahead(&config);
        let worlds = build_sharded(config, Box::new(FanApp), 2);
        let mut runner = ConservativeRunner::new(worlds, lookahead);
        install_sharded_hooks(&mut runner);
        runner.schedule_global(Nanos::ZERO, |ctx| {
            let shared = ctx.cell(0).world.shared();
            // SAFETY: serial phase (inside a global event).
            unsafe { shared.directory.get_mut() }.place(7, 1);
            migrate_actor_sharded(ctx, Nanos::ZERO, ActorId(7), 2);
            assert_eq!(
                sharded_locate(ctx, ActorId(7)),
                None,
                "migration deactivates"
            );
            let to_cell = ctx.cell(0); // server 2 lives on shard 0 of 2
            let idx = to_cell.world.local_idx[2];
            assert_eq!(
                to_cell.world.slots[idx].location_cache.get(&ActorId(7)),
                Some(&2),
                "destination caches the intended location"
            );
        });
        runner.run_until(Nanos::from_micros(10), 1);
        let migrations: u64 = runner
            .cells()
            .iter()
            .map(|c| c.world.metrics().migrations)
            .sum();
        assert_eq!(migrations, 1);
    }
}
