//! Cluster-wide measurement state.

use actop_metrics::{BinnedSeries, Breakdown, LatencyHistogram};

/// Everything the evaluation section measures, accumulated during a run.
#[derive(Debug)]
pub struct ClusterMetrics {
    /// End-to-end client request latency (Fig. 10b, 10d, 11).
    pub e2e_latency: LatencyHistogram,
    /// Remote actor-to-actor call latency (Fig. 10c): from call issue to
    /// reply processed, for calls that crossed servers.
    pub remote_call_latency: LatencyHistogram,
    /// Per-stage latency breakdown (Fig. 4), when enabled.
    pub breakdown: Breakdown,
    /// Actor-to-actor messages that crossed servers.
    pub remote_messages: u64,
    /// Actor-to-actor messages delivered locally.
    pub local_messages: u64,
    /// Messages re-routed because the target actor was not where the
    /// sender expected (activation races, migrations, gateway hops).
    pub forwarded_messages: u64,
    /// Remote share over time: one sample per actor-to-actor message
    /// (1 = remote, 0 = local), binned (Fig. 10a).
    pub remote_share_series: BinnedSeries,
    /// Actor migrations over time (Fig. 10a).
    pub migration_series: BinnedSeries,
    /// Total actor migrations.
    pub migrations: u64,
    /// Total transfer-window time actors spent pinned at their source
    /// during migrations, nanoseconds — the stall the migration-cost-aware
    /// objective charges against a candidate move. Zero when migrations
    /// are instantaneous.
    pub migration_stall_ns: u64,
    /// Client requests submitted.
    pub submitted: u64,
    /// Client requests completed.
    pub completed: u64,
    /// Client requests rejected by overload shedding.
    pub rejected: u64,
    /// Client requests that timed out (responses lost to a failure).
    pub timed_out: u64,
    /// Responses that arrived for an already-abandoned join (their request
    /// timed out or the join was lost to a crash).
    pub stale_responses: u64,
    /// Server failures injected.
    pub server_failures: u64,
    /// End-to-end latency over time: one sample per completion, so each
    /// bin's count is goodput and each bin's mean is latency — the series
    /// SLO-violation analysis reads.
    pub latency_series: BinnedSeries,
    /// Transport retries scheduled after a delivery died (crashed
    /// destination or dropped packet).
    pub retries: u64,
    /// Total backoff delay spent by those retries, nanoseconds.
    pub retry_backoff_ns: u64,
    /// Messages whose retry budget ran out (the root request resolves via
    /// its client timeout).
    pub retry_budget_exhausted: u64,
    /// Client requests shed at admission because no live server remained.
    /// Also counted in `rejected`, so request conservation stays
    /// `completed + rejected + timed_out == submitted`.
    pub shed_no_live: u64,
    /// Messages that died in flight because their destination crashed
    /// while they were on the wire.
    pub lost_in_flight: u64,
    /// Messages dropped by an injected link fault.
    pub net_dropped: u64,
    /// Heartbeats put on the wire.
    pub heartbeats_sent: u64,
    /// Heartbeats dropped by an injected link fault.
    pub heartbeats_dropped: u64,
    /// Suspicion transitions: a detector marked a peer suspected.
    pub suspicions: u64,
    /// Suspicion transitions cleared (heartbeat heard again).
    pub unsuspicions: u64,
    /// Directory entries dropped because the entry's host was suspected
    /// (the actor re-placed on a trusted server).
    pub directory_repairs: u64,
    /// Directory repairs whose suspected host was in fact alive — the
    /// cost of false suspicion (stragglers, lossy links).
    pub false_suspicion_repairs: u64,
    /// In-flight migrations aborted by a crash of either endpoint.
    pub migrations_aborted: u64,
    /// Messages dropped by the forward-loop hop cap (split-brain routing
    /// flaps; the root request resolves via its client timeout).
    pub forward_loop_drops: u64,
    /// Request branches cancelled because their root request was already
    /// resolved (timed out or shed) when the handler's decision landed.
    pub zombie_branches: u64,
    /// SLO alert episodes opened by the telemetry engine. Lifecycle
    /// counts: an alert that opened during warmup still happened.
    pub slo_alerts_opened: u64,
    /// SLO alert episodes closed by the telemetry engine.
    pub slo_alerts_closed: u64,
    /// False-suspicion repairs over time (one mark per repair whose
    /// suspected host was in fact alive) — the series detector-health
    /// SLOs read.
    pub false_suspicion_series: BinnedSeries,
    /// Hot-actor splits committed (a replica activation added).
    pub splits: u64,
    /// In-flight splits aborted by a crash of either endpoint.
    pub splits_aborted: u64,
    /// Replica activations dropped (demand cooled, host crashed, or host
    /// came under suspicion).
    pub replica_drops: u64,
    /// Read-mostly requests executed at a replica instead of the primary.
    pub replica_reads: u64,
    /// Write requests that arrived at a replica and were forwarded to the
    /// primary. Structurally zero under rendezvous routing — a nonzero
    /// value flags a routing bug.
    pub replica_writes: u64,
    /// Snapshot rounds the coordinator opened.
    pub snap_rounds_started: u64,
    /// Snapshot rounds that committed as complete restore sources.
    pub snap_rounds_completed: u64,
    /// Snapshot rounds aborted by a mid-round crash.
    pub snap_rounds_aborted: u64,
    /// Snapshot rounds skipped (a round was still open, or the store
    /// server was down).
    pub snap_rounds_skipped: u64,
    /// Per-actor state captures taken into snapshot rounds.
    pub snap_captures: u64,
    /// Bytes of actor state captured into snapshot rounds.
    pub snap_bytes: u64,
    /// Messages counted in flight across committed snapshot cuts.
    pub snap_inflight: u64,
    /// State-mutating requests applied to durable actor cells.
    pub state_writes: u64,
    /// Re-placed actors rehydrated from the snapshot store.
    pub restores: u64,
    /// Journal entries replayed on top of snapshots during restores.
    pub restore_replayed: u64,
    /// Restores deferred because the snapshot store's server was down.
    pub restores_deferred: u64,
}

impl ClusterMetrics {
    /// Creates empty metrics with the given time-series bin width.
    pub fn new(series_bin_ns: u64) -> Self {
        ClusterMetrics {
            e2e_latency: LatencyHistogram::new(),
            remote_call_latency: LatencyHistogram::new(),
            breakdown: Breakdown::new(),
            remote_messages: 0,
            local_messages: 0,
            forwarded_messages: 0,
            remote_share_series: BinnedSeries::new(series_bin_ns),
            migration_series: BinnedSeries::new(series_bin_ns),
            migrations: 0,
            migration_stall_ns: 0,
            submitted: 0,
            completed: 0,
            rejected: 0,
            timed_out: 0,
            stale_responses: 0,
            server_failures: 0,
            latency_series: BinnedSeries::new(series_bin_ns),
            retries: 0,
            retry_backoff_ns: 0,
            retry_budget_exhausted: 0,
            shed_no_live: 0,
            lost_in_flight: 0,
            net_dropped: 0,
            heartbeats_sent: 0,
            heartbeats_dropped: 0,
            suspicions: 0,
            unsuspicions: 0,
            directory_repairs: 0,
            false_suspicion_repairs: 0,
            migrations_aborted: 0,
            forward_loop_drops: 0,
            zombie_branches: 0,
            slo_alerts_opened: 0,
            slo_alerts_closed: 0,
            false_suspicion_series: BinnedSeries::new(series_bin_ns),
            splits: 0,
            splits_aborted: 0,
            replica_drops: 0,
            replica_reads: 0,
            replica_writes: 0,
            snap_rounds_started: 0,
            snap_rounds_completed: 0,
            snap_rounds_aborted: 0,
            snap_rounds_skipped: 0,
            snap_captures: 0,
            snap_bytes: 0,
            snap_inflight: 0,
            state_writes: 0,
            restores: 0,
            restore_replayed: 0,
            restores_deferred: 0,
        }
    }

    /// Fraction of actor-to-actor messages that were remote.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.remote_messages + self.local_messages;
        if total == 0 {
            0.0
        } else {
            self.remote_messages as f64 / total as f64
        }
    }

    /// Resets the latency/counter state but keeps the time series (used to
    /// exclude warmup from steady-state measurements while still plotting
    /// convergence from time zero).
    pub fn reset_steady_state(&mut self) {
        self.e2e_latency.clear();
        self.remote_call_latency.clear();
        self.breakdown = Breakdown::new();
        self.remote_messages = 0;
        self.local_messages = 0;
        self.forwarded_messages = 0;
        self.submitted = 0;
        self.completed = 0;
        self.rejected = 0;
        self.timed_out = 0;
        self.stale_responses = 0;
        self.retries = 0;
        self.retry_backoff_ns = 0;
        self.retry_budget_exhausted = 0;
        self.shed_no_live = 0;
        self.lost_in_flight = 0;
        self.net_dropped = 0;
        self.directory_repairs = 0;
        self.false_suspicion_repairs = 0;
        self.forward_loop_drops = 0;
        self.zombie_branches = 0;
        self.replica_reads = 0;
        self.replica_writes = 0;
        self.state_writes = 0;
        self.restores = 0;
        self.restore_replayed = 0;
        self.restores_deferred = 0;
        // Heartbeat traffic, suspicion transitions, migration aborts,
        // split/replica-drop counts and snapshot-round counts are
        // cluster-lifecycle counts, not request-scoped: they survive the
        // warmup reset like the time series do.
    }

    /// Folds another shard's metrics into this one: histograms and time
    /// series merge, counters sum. The per-stage `breakdown` is *not*
    /// merged — the sharded runtime does not support breakdown recording,
    /// so there is nothing to fold.
    pub fn merge_from(&mut self, other: &ClusterMetrics) {
        self.e2e_latency.merge(&other.e2e_latency);
        self.remote_call_latency.merge(&other.remote_call_latency);
        self.remote_share_series
            .merge_from(&other.remote_share_series);
        self.migration_series.merge_from(&other.migration_series);
        self.latency_series.merge_from(&other.latency_series);
        self.remote_messages += other.remote_messages;
        self.local_messages += other.local_messages;
        self.forwarded_messages += other.forwarded_messages;
        self.migrations += other.migrations;
        self.migration_stall_ns += other.migration_stall_ns;
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.timed_out += other.timed_out;
        self.stale_responses += other.stale_responses;
        self.server_failures += other.server_failures;
        self.retries += other.retries;
        self.retry_backoff_ns += other.retry_backoff_ns;
        self.retry_budget_exhausted += other.retry_budget_exhausted;
        self.shed_no_live += other.shed_no_live;
        self.lost_in_flight += other.lost_in_flight;
        self.net_dropped += other.net_dropped;
        self.heartbeats_sent += other.heartbeats_sent;
        self.heartbeats_dropped += other.heartbeats_dropped;
        self.suspicions += other.suspicions;
        self.unsuspicions += other.unsuspicions;
        self.directory_repairs += other.directory_repairs;
        self.false_suspicion_repairs += other.false_suspicion_repairs;
        self.migrations_aborted += other.migrations_aborted;
        self.forward_loop_drops += other.forward_loop_drops;
        self.zombie_branches += other.zombie_branches;
        self.slo_alerts_opened += other.slo_alerts_opened;
        self.slo_alerts_closed += other.slo_alerts_closed;
        self.false_suspicion_series
            .merge_from(&other.false_suspicion_series);
        self.splits += other.splits;
        self.splits_aborted += other.splits_aborted;
        self.replica_drops += other.replica_drops;
        self.replica_reads += other.replica_reads;
        self.replica_writes += other.replica_writes;
        self.snap_rounds_started += other.snap_rounds_started;
        self.snap_rounds_completed += other.snap_rounds_completed;
        self.snap_rounds_aborted += other.snap_rounds_aborted;
        self.snap_rounds_skipped += other.snap_rounds_skipped;
        self.snap_captures += other.snap_captures;
        self.snap_bytes += other.snap_bytes;
        self.snap_inflight += other.snap_inflight;
        self.state_writes += other.state_writes;
        self.restores += other.restores;
        self.restore_replayed += other.restore_replayed;
        self.restores_deferred += other.restores_deferred;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_fraction() {
        let mut m = ClusterMetrics::new(1_000);
        assert_eq!(m.remote_fraction(), 0.0);
        m.remote_messages = 9;
        m.local_messages = 1;
        assert!((m.remote_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn reset_keeps_series() {
        let mut m = ClusterMetrics::new(1_000);
        m.e2e_latency.record(5);
        m.migration_series.mark(10);
        m.submitted = 3;
        m.reset_steady_state();
        assert!(m.e2e_latency.is_empty());
        assert_eq!(m.submitted, 0);
        assert_eq!(m.migration_series.len(), 1, "series survives reset");
    }

    #[test]
    fn merge_sums_counters_and_series() {
        let mut a = ClusterMetrics::new(1_000);
        a.submitted = 3;
        a.remote_messages = 2;
        a.e2e_latency.record(5);
        a.latency_series.record(10, 5.0);
        let mut b = ClusterMetrics::new(1_000);
        b.submitted = 4;
        b.local_messages = 6;
        b.e2e_latency.record(9);
        b.latency_series.record(2_500, 9.0);
        a.merge_from(&b);
        assert_eq!(a.submitted, 7);
        assert_eq!(a.remote_messages, 2);
        assert_eq!(a.local_messages, 6);
        assert_eq!(a.e2e_latency.count(), 2);
        assert_eq!(a.latency_series.bins()[0].count, 1);
        assert_eq!(a.latency_series.bins()[2].count, 1);
    }

    #[test]
    fn reset_scopes_fault_counters() {
        let mut m = ClusterMetrics::new(1_000);
        m.retries = 4;
        m.shed_no_live = 2;
        m.heartbeats_sent = 100;
        m.suspicions = 3;
        m.migrations_aborted = 1;
        m.splits = 2;
        m.replica_drops = 1;
        m.replica_reads = 40;
        m.snap_rounds_completed = 5;
        m.snap_captures = 12;
        m.state_writes = 30;
        m.restores = 2;
        m.reset_steady_state();
        assert_eq!(m.retries, 0, "request-scoped: reset with warmup");
        assert_eq!(m.shed_no_live, 0, "request-scoped: reset with warmup");
        assert_eq!(m.replica_reads, 0, "request-scoped: reset with warmup");
        assert_eq!(m.state_writes, 0, "request-scoped: reset with warmup");
        assert_eq!(m.restores, 0, "request-scoped: reset with warmup");
        assert_eq!(m.heartbeats_sent, 100, "lifecycle: survives");
        assert_eq!(m.suspicions, 3, "lifecycle: survives");
        assert_eq!(m.migrations_aborted, 1, "lifecycle: survives");
        assert_eq!(m.splits, 2, "lifecycle: survives");
        assert_eq!(m.replica_drops, 1, "lifecycle: survives");
        assert_eq!(m.snap_rounds_completed, 5, "lifecycle: survives");
        assert_eq!(m.snap_captures, 12, "lifecycle: survives");
    }
}
