//! An Orleans-like distributed virtual-actor runtime on a simulated cluster.
//!
//! This crate is the substrate the paper's optimizations plug into. It
//! reproduces the parts of Orleans that matter to ActOp:
//!
//! * **Virtual actors** — actors are identities ([`ActorId`]); the runtime
//!   activates them on demand, places them by a pluggable
//!   [`PlacementPolicy`], and migrates them transparently (deactivation +
//!   opportunistic re-placement driven by per-server location caches,
//!   §4.3).
//! * **SEDA servers** — each server runs the paper's stage pipeline
//!   (receiver → worker → server sender / client sender), every stage with
//!   its own queue and reconfigurable thread pool, all threads sharing the
//!   server's cores under processor sharing (Fig. 2/3).
//! * **RPC vs LPC** — calls to remote actors pay serialization CPU on both
//!   sides plus a network hop; local calls pay only an argument deep copy
//!   (§2, §3).
//! * **Join semantics** — an actor handles a request by replying directly
//!   or by fanning calls out to other actors and replying once all
//!   sub-replies arrive, which is exactly the call shape of the paper's
//!   Halo Presence service.
//! * **Measurement** — end-to-end request latency, remote-call latency,
//!   per-stage latency breakdown (Fig. 4), remote/local message counts,
//!   migration rates, and CPU utilization.
//!
//! Applications implement [`AppLogic`]; workload drivers inject client
//! requests with [`Cluster::submit_client_request`] from scheduled engine
//! events. The ActOp controllers (crate `actop-core`) run as periodic
//! events against the hooks exposed here: [`Cluster::partition_view`],
//! [`Cluster::apply_exchange`], [`Cluster::drain_stage_stats`], and
//! [`Cluster::set_stage_threads`].

pub mod app;
pub mod cluster;
pub mod config;
pub mod detector;
pub mod ids;
pub mod metrics;
pub mod obs;
pub mod placement;
pub(crate) mod proto;
pub mod server;
pub mod sharded;
pub mod table;

pub use actop_partition::{
    CostSignals, MigrationCostConfig, RepartitionPolicyKind, SplitThresholds,
};
pub use actop_snapshot::{SnapshotConfig, SnapshotStore, StateCell};
pub use actop_trace::{TraceConfig, Tracer};
pub use app::{AppLogic, Call, Outcome, Reaction};
pub use cluster::{Cluster, LinkFault, MAX_FORWARD_HOPS};
pub use config::{ObsConfig, ReplicationConfig, RetryPolicy, RuntimeConfig};
pub use detector::{DetectorConfig, FailureDetector, RtSuspicionConfig, Transition};
pub use ids::{ActorId, RequestId, StageKind};
pub use metrics::ClusterMetrics;
pub use obs::{DetectorAccuracy, Observability, SloTransition};
pub use placement::PlacementPolicy;
pub use sharded::{
    build_sharded, install_replication_sharded, install_sharded_scrapers,
    install_snapshots_sharded, sharded_lookahead, ShardApp, ShardCtx, ShardTopology,
    ShardedCluster,
};
