//! Placement policies for new actor activations (§3).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use actop_sim::DetRng;

use crate::ids::ActorId;

/// Where to activate an actor that has no current activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Uniform random server — Orleans' default: balanced, oblivious to
    /// communication locality.
    Random,
    /// Hash of the actor identity — deterministic consistent-hash-style
    /// placement, equally oblivious.
    Hash,
    /// The server that originated the first call — good when the callee is
    /// exclusively used by its first caller, skewed otherwise (§3).
    Local,
}

impl PlacementPolicy {
    /// Chooses a server for a brand-new activation.
    ///
    /// `origin` is the server the triggering call came from (`None` for a
    /// client request arriving from outside the cluster — those fall back
    /// to random placement under `Local` too, as there is no hosting
    /// server yet).
    pub fn choose(
        self,
        actor: ActorId,
        origin: Option<usize>,
        servers: usize,
        rng: &mut DetRng,
    ) -> usize {
        match self {
            PlacementPolicy::Random => rng.below(servers),
            PlacementPolicy::Hash => {
                let mut hasher = DefaultHasher::new();
                actor.hash(&mut hasher);
                (hasher.finish() % servers as u64) as usize
            }
            PlacementPolicy::Local => origin.unwrap_or_else(|| rng.below(servers)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_covers_all_servers() {
        let mut rng = DetRng::new(1);
        let mut seen = [false; 4];
        for i in 0..200 {
            seen[PlacementPolicy::Random.choose(ActorId(i), None, 4, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hash_is_deterministic() {
        let mut rng = DetRng::new(1);
        let a = PlacementPolicy::Hash.choose(ActorId(42), None, 8, &mut rng);
        let b = PlacementPolicy::Hash.choose(ActorId(42), Some(3), 8, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn local_uses_origin_when_known() {
        let mut rng = DetRng::new(1);
        assert_eq!(
            PlacementPolicy::Local.choose(ActorId(1), Some(5), 8, &mut rng),
            5
        );
        let fallback = PlacementPolicy::Local.choose(ActorId(1), None, 8, &mut rng);
        assert!(fallback < 8);
    }
}
