//! The application-logic interface.
//!
//! An application maps each `(actor, message tag)` to a [`Reaction`]: how
//! much CPU the handler burns, how long it blocks on synchronous calls (if
//! any), and what it does — reply immediately, or fan calls out to other
//! actors and reply once every sub-reply has arrived. This models the
//! Orleans programming pattern the paper's services use (e.g. a Halo game
//! actor broadcasting to its eight players and gathering their replies).

use actop_sim::DetRng;

use crate::ids::ActorId;

/// One outgoing call issued by a handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Call {
    /// Callee actor.
    pub to: ActorId,
    /// Application tag delivered to the callee.
    pub tag: u32,
    /// Argument payload size in bytes (drives serialization/copy costs).
    pub bytes: u64,
}

/// What the handler does after its compute phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Reply to the caller with a payload of `bytes`.
    Reply {
        /// Response payload size in bytes.
        bytes: u64,
    },
    /// Issue `calls` concurrently, await all replies, then reply to the
    /// caller with `reply_bytes`.
    FanOut {
        /// The concurrent sub-calls.
        calls: Vec<Call>,
        /// Response payload size once every sub-reply arrived.
        reply_bytes: u64,
    },
}

/// A handler's full reaction to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// CPU nanoseconds of application logic.
    pub cpu_ns: f64,
    /// Nanoseconds blocked on synchronous calls (holds the worker thread
    /// but not a core); 0 for fully asynchronous handlers.
    pub blocking_ns: f64,
    /// What happens after processing.
    pub outcome: Outcome,
}

impl Reaction {
    /// A handler that computes for `cpu_ns` and replies with `bytes`.
    pub fn reply(cpu_ns: f64, bytes: u64) -> Self {
        Reaction {
            cpu_ns,
            blocking_ns: 0.0,
            outcome: Outcome::Reply { bytes },
        }
    }

    /// A handler that computes for `cpu_ns`, fans out `calls`, and replies
    /// with `reply_bytes` after the join.
    pub fn fan_out(cpu_ns: f64, calls: Vec<Call>, reply_bytes: u64) -> Self {
        Reaction {
            cpu_ns,
            blocking_ns: 0.0,
            outcome: Outcome::FanOut { calls, reply_bytes },
        }
    }
}

/// Application logic: the behavior of every actor in the service.
///
/// Handlers must be deterministic given the provided RNG stream; all
/// randomness must come from `rng` so runs stay reproducible.
pub trait AppLogic {
    /// Handles a request delivered to `actor`.
    fn on_request(&mut self, actor: ActorId, tag: u32, rng: &mut DetRng) -> Reaction;

    /// CPU nanoseconds to process one response continuation (gathering a
    /// sub-reply). Defaults to a small fixed cost.
    fn continuation_cpu_ns(&self) -> f64 {
        3_000.0
    }
}

/// A trivial application used by tests: every request costs a fixed CPU
/// time and replies immediately (the §3 counter microbenchmark).
#[derive(Debug, Clone, Copy)]
pub struct FixedCostApp {
    /// Handler CPU cost in nanoseconds.
    pub cpu_ns: f64,
    /// Reply payload bytes.
    pub reply_bytes: u64,
}

impl AppLogic for FixedCostApp {
    fn on_request(&mut self, _actor: ActorId, _tag: u32, _rng: &mut DetRng) -> Reaction {
        Reaction::reply(self.cpu_ns, self.reply_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaction_constructors() {
        let r = Reaction::reply(1000.0, 64);
        assert_eq!(r.outcome, Outcome::Reply { bytes: 64 });
        assert_eq!(r.blocking_ns, 0.0);
        let calls = vec![Call {
            to: ActorId(1),
            tag: 2,
            bytes: 128,
        }];
        let f = Reaction::fan_out(2000.0, calls.clone(), 256);
        assert_eq!(
            f.outcome,
            Outcome::FanOut {
                calls,
                reply_bytes: 256
            }
        );
    }

    #[test]
    fn fixed_cost_app_replies() {
        let mut app = FixedCostApp {
            cpu_ns: 5_000.0,
            reply_bytes: 100,
        };
        let mut rng = DetRng::new(1);
        let r = app.on_request(ActorId(1), 0, &mut rng);
        assert_eq!(r.cpu_ns, 5_000.0);
        assert_eq!(r.outcome, Outcome::Reply { bytes: 100 });
        assert!(app.continuation_cpu_ns() > 0.0);
    }
}
