//! The cluster: servers, the placement directory, message routing, and
//! request/join bookkeeping.
//!
//! [`Cluster`] is the discrete-event world. Workload drivers inject client
//! requests; every subsequent hop — deserialization, worker execution,
//! serialization, network transfer — is an engine event driven by the
//! server's processor-sharing CPU and stage thread pools. The ActOp
//! controllers interact with the cluster only through the public hooks at
//! the bottom of this file, mirroring how ActOp integrates with Orleans as
//! a runtime extension rather than application code.

use actop_metrics::TimelineSample;
use actop_partition::{decide_split, CostSignals, DenseDirectory, ExchangeOutcome, SplitDecision};
use actop_sim::{mix64, CostAttr, DetRng, Engine, Nanos, Subsystem};
use actop_sketch::fxmap::{fx_map_with_capacity, FxHashMap};
use actop_snapshot::{OpenRound, SnapshotConfig, SnapshotStore, StateCell};
use actop_trace::{HopKind, SpanEvent, Tracer, NO_SERVER, NO_STAGE, PROC_LABEL, QUEUE_LABEL};

use crate::app::{AppLogic, Call, Outcome, Reaction};
use crate::config::{HiccupModel, ReplicationConfig, RuntimeConfig};
use crate::detector::{DetectorConfig, FailureDetector, Transition};
use crate::ids::{ActorId, CallId, RequestId, StageKind};
use crate::metrics::ClusterMetrics;
use crate::obs::{DetectorAccuracy, Observability, SloTransition};
use crate::proto::{
    Message, MsgKind, PendingJoin, PostAction, ReplyTarget, RequestMeta, RunningTask, StageItem,
};
use crate::server::Server;
use crate::table::SlabTable;

/// Per-stage observation drained by the thread-allocation controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageReport {
    /// Events that arrived at the stage during the window.
    pub arrivals: u64,
    /// Events whose processing finished during the window.
    pub completions: u64,
    /// Window length.
    pub window: Nanos,
    /// Sum of per-event wallclock processing time, nanoseconds.
    pub sum_wallclock_ns: f64,
    /// Sum of per-event CPU demand, nanoseconds.
    pub sum_cpu_ns: f64,
    /// Time-average queue length over the window.
    pub mean_queue_len: f64,
}

// Breakdown component labels (Fig. 4) are shared with the trace exporter's
// decomposition — `QUEUE_LABEL` / `PROC_LABEL` come from `actop-trace` so
// the two accountings can never drift apart.

/// An injected network degradation on one server pair (symmetric). Applied
/// to every message and heartbeat crossing the pair while installed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Added to every delivery's network delay.
    pub extra_delay: Nanos,
    /// Probability a delivery is dropped outright (drawn from the fault
    /// RNG stream).
    pub drop_prob: f64,
}

/// Messages re-routed more than this many times are dropped: under
/// split-brain suspicion two servers can each believe the other hosts an
/// actor, and the cap converts the resulting ping-pong into a loss the
/// client timeout resolves. Public so the trace invariant checker
/// (`actop-verify`) enforces the same bound on recorded forward chains.
pub const MAX_FORWARD_HOPS: u8 = 32;

/// Normalizes a server pair into the symmetric link-fault key.
#[inline]
fn link_key(a: usize, b: usize) -> (u32, u32) {
    (a.min(b) as u32, a.max(b) as u32)
}

/// Runtime state of the snapshot subsystem (`config.snapshot`).
struct SnapState {
    cfg: SnapshotConfig,
    /// The durable store: per-actor write-ahead journals plus the latest
    /// committed snapshot per actor. Its *data* survives every crash
    /// (stable storage); only access is gated on the store server being
    /// up.
    store: SnapshotStore,
    /// In-memory state cells: actor -> (hosting server, cell). A crash
    /// drops the dead server's cells; restore rebuilds them from the
    /// store. The host hint self-heals at the next touch, so stale hints
    /// after a migration cost at worst a spurious (exact) restore.
    cells: FxHashMap<u64, (u32, StateCell)>,
    /// The open snapshot round, if any.
    round: Option<OpenRound>,
    /// Rounds begun so far — also the round-id source (ids start at 1).
    rounds_started: u64,
    /// Per-actor count of consecutive deferred restores (store down),
    /// driving the deterministic exponential backoff.
    defer_attempts: FxHashMap<u64, u32>,
    /// Per-directed-link sent counters (`src * n + dst`), server-server
    /// payload messages only — the marker-sequencing feed.
    link_sent: Vec<u64>,
    /// Per-directed-link delivered counters, same indexing.
    link_recv: Vec<u64>,
}

/// What the snapshot subsystem decided about a hosted request.
enum SnapTouch {
    /// Serve it; the request pays this much extra CPU (journal/capture)
    /// and blocking time (restore fetch + replay).
    Proceed { cpu_ns: f64, blocking_ns: f64 },
    /// The actor needs a restore but the store server is down: defer the
    /// execute by this backoff.
    Defer(Nanos),
}

/// The simulated cluster (the discrete-event world type).
pub struct Cluster {
    /// Static configuration.
    pub config: RuntimeConfig,
    /// The servers.
    pub servers: Vec<Server>,
    /// The distributed placement directory (actor -> hosting server):
    /// a dense, hash-free table resolved on every message delivery.
    pub directory: DenseDirectory,
    /// Cluster-wide measurements.
    pub metrics: ClusterMetrics,
    /// Causal request tracer + flight recorder (disabled unless
    /// `config.trace` is set; every hook is then a single branch).
    pub trace: Tracer,
    /// Telemetry: metric registry + SLO engine (`config.obs`); `None`
    /// keeps every telemetry hook at a single branch.
    pub obs: Option<Observability>,
    /// Detector-accuracy tallies, fed by
    /// [`Cluster::install_accuracy_sampler`].
    pub detector_accuracy: DetectorAccuracy,
    /// Cluster-side cost attribution (`config.cost_attr`); the engine
    /// carries its own accumulator for heap work, merged at report time.
    attr: CostAttr,
    app: Box<dyn AppLogic>,
    rng_place: DetRng,
    rng_net: DetRng,
    rng_app: DetRng,
    rng_gateway: DetRng,
    /// Fault-path randomness (drop decisions, retry jitter). A dedicated
    /// stream: fault-free runs draw nothing from it, so enabling the fault
    /// machinery does not perturb the default streams.
    rng_fault: DetRng,
    /// Heartbeat network-delay randomness. Dedicated for the same reason:
    /// heartbeats exist only when the detector is configured.
    rng_hb: DetRng,
    failed: Vec<bool>,
    /// Heartbeat-based failure detector (`config.detector`); `None` keeps
    /// the legacy oracle where routing consults `failed` directly.
    detector: Option<FailureDetector>,
    /// Snapshot/restore subsystem (`config.snapshot`); `None` keeps every
    /// snapshot hook at a single branch and draws nothing, so
    /// snapshot-off runs stay byte-identical.
    snap: Option<SnapState>,
    /// Installed link degradations, keyed by normalized server pair.
    link_faults: FxHashMap<(u32, u32), LinkFault>,
    /// Migrations currently in transfer (`config.migration_transfer`):
    /// actor id -> (source, destination). A crash of either endpoint
    /// aborts the entry; the actor stays at its source.
    migrations_in_flight: FxHashMap<u64, (u32, u32)>,
    /// Hot-actor splits currently in transfer: actor id -> (primary,
    /// replica destination). Same abort discipline as migrations: a
    /// crash of either endpoint kills the entry and no replica appears.
    splits_in_flight: FxHashMap<u64, (u32, u32)>,
    /// In-flight fan-out joins, keyed by [`CallId`] slab handle.
    joins: SlabTable<PendingJoin>,
    /// In-flight client requests, keyed by [`RequestId`] slab handle.
    requests: SlabTable<RequestMeta>,
}

impl Cluster {
    /// Builds a cluster from a configuration and the application logic.
    pub fn new(config: RuntimeConfig, app: Box<dyn AppLogic>) -> Self {
        config.validate();
        let servers = (0..config.servers)
            .map(|id| {
                Server::new(
                    id,
                    &config.costs,
                    config.initial_threads_per_stage,
                    config.sketch_capacity,
                )
            })
            .collect();
        let trace = match &config.trace {
            Some(tc) => Tracer::new(config.servers, tc),
            None => Tracer::disabled(),
        };
        let obs = config.obs.as_ref().map(|o| {
            Observability::with_snapshot(
                o,
                config.servers,
                config.series_bin_ns,
                config.snapshot.is_some(),
            )
        });
        let snap = config.snapshot.map(|cfg| SnapState {
            cfg,
            store: SnapshotStore::new(),
            cells: fx_map_with_capacity(0),
            round: None,
            rounds_started: 0,
            defer_attempts: fx_map_with_capacity(0),
            link_sent: vec![0; config.servers * config.servers],
            link_recv: vec![0; config.servers * config.servers],
        });
        Cluster {
            servers,
            directory: DenseDirectory::new(config.servers),
            metrics: ClusterMetrics::new(config.series_bin_ns),
            trace,
            obs,
            detector_accuracy: DetectorAccuracy::default(),
            attr: if config.cost_attr {
                CostAttr::enabled()
            } else {
                CostAttr::default()
            },
            app,
            rng_place: DetRng::stream(config.seed, 0x01),
            rng_net: DetRng::stream(config.seed, 0x02),
            rng_app: DetRng::stream(config.seed, 0x03),
            rng_gateway: DetRng::stream(config.seed, 0x04),
            rng_fault: DetRng::stream(config.seed, 0x05),
            rng_hb: DetRng::stream(config.seed, 0x06),
            failed: vec![false; config.servers],
            detector: config.detector.map(|d| {
                FailureDetector::with_rt(config.servers, d.suspect_after, Nanos::ZERO, d.rt)
            }),
            snap,
            link_faults: fx_map_with_capacity(0),
            migrations_in_flight: fx_map_with_capacity(0),
            splits_in_flight: fx_map_with_capacity(0),
            joins: SlabTable::new(),
            requests: SlabTable::new(),
            config,
        }
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    // ------------------------------------------------------------------
    // Client request injection.
    // ------------------------------------------------------------------

    /// Submits a client request to `to` with application `tag` and payload
    /// `bytes`. The request enters the cluster through a uniformly random
    /// gateway server (clients connect to arbitrary gateways, as in
    /// Orleans) and the response is recorded when it reaches the client.
    pub fn submit_client_request(
        &mut self,
        engine: &mut Engine<Cluster>,
        to: ActorId,
        tag: u32,
        bytes: u64,
    ) -> RequestId {
        let now = engine.now();
        self.metrics.submitted += 1;
        let first = self.rng_gateway.below(self.servers.len());
        let Some(gateway) = self.try_next_live(first) else {
            // Total cluster loss: no gateway accepts the connection. Shed
            // at admission instead of panicking; the returned id is
            // already resolved (stale), like any shed request's.
            self.metrics.rejected += 1;
            self.metrics.shed_no_live += 1;
            let rid = RequestId(self.requests.insert(RequestMeta {
                start: now,
                accounted_ns: 0.0,
                gateway: NO_SERVER,
            }));
            self.requests.remove(rid.0);
            if self.trace.enabled() {
                self.trace
                    .record(SpanEvent::instant(rid.0, HopKind::Shed, NO_SERVER, 0, now));
            }
            return rid;
        };
        let rid = RequestId(self.requests.insert(RequestMeta {
            start: now,
            accounted_ns: 0.0,
            gateway: gateway as u32,
        }));
        if self.trace.enabled() {
            self.record_span(SpanEvent::instant(
                rid.0,
                HopKind::GatewayAdmit,
                gateway as u32,
                0,
                now,
            ));
        }
        if let Some(timeout) = self.config.request_timeout {
            engine.schedule_after(timeout, move |c: &mut Cluster, e| {
                if let Some(meta) = c.requests.remove(rid.0) {
                    c.metrics.timed_out += 1;
                    // Abandon the request's outstanding joins so late
                    // branches cannot resurrect it and the tables drain
                    // (rare bulk purge; never runs on completed requests).
                    c.joins.retain(|j| j.request != rid);
                    if c.trace.enabled() {
                        let at = e.now();
                        c.record_span(SpanEvent::instant(
                            rid.0,
                            HopKind::Timeout,
                            meta.gateway,
                            0,
                            at,
                        ));
                        c.trace
                            .flight_dump(HopKind::Timeout, rid.0, meta.gateway, at);
                    }
                }
            });
        }
        let msg = Message {
            to,
            tag,
            bytes,
            kind: MsgKind::Request {
                reply_to: ReplyTarget::Client(rid),
            },
            request: rid,
            issued_at: now,
            delivered_remotely: true,
            from_actor: None,
            forwarded: false,
            call_was_remote: false,
            attempts: 0,
            hops: 0,
        };
        let delay = self.config.costs.network.delay(&mut self.rng_net, bytes);
        self.account(rid, "Network", delay.as_nanos() as f64);
        if self.trace.enabled() {
            self.record_span(SpanEvent {
                request: rid.0,
                kind: HopKind::Network,
                server: gateway as u32,
                stage: NO_STAGE,
                aux: 0,
                t_start: now,
                t_end: now + delay,
            });
        }
        engine.schedule_after(delay, move |c: &mut Cluster, e| {
            c.wire_arrive(e, gateway, msg)
        });
        rid
    }

    // ------------------------------------------------------------------
    // Message movement.
    // ------------------------------------------------------------------

    /// A message arrives on the wire at `server` and enters the receiver
    /// stage. Client-originated requests are shed when the receiver queue
    /// is over the overload bound.
    fn wire_arrive(&mut self, engine: &mut Engine<Cluster>, server: usize, mut msg: Message) {
        msg.delivered_remotely = true;
        if self.failed[server] {
            // The destination crashed while the message was on the wire.
            // The sender's transport observes the broken delivery and
            // retries requests with backoff against a live server (the
            // virtual actor re-activates there); responses are lost, and
            // the root request eventually times out.
            self.metrics.lost_in_flight += 1;
            if self.trace.enabled() {
                self.record_span(SpanEvent::instant(
                    msg.request.0,
                    HopKind::MsgLost,
                    server as u32,
                    0,
                    engine.now(),
                ));
            }
            match msg.kind {
                MsgKind::Request { .. } => self.schedule_retry(engine, msg, server),
                MsgKind::Response { .. } => {
                    self.metrics.stale_responses += 1;
                    self.note_stale_response(engine.now(), msg.request, server);
                }
            }
            return;
        }
        let is_fresh_client_request = msg.from_actor.is_none()
            && !msg.forwarded
            && matches!(msg.kind, MsgKind::Request { .. });
        if is_fresh_client_request
            && self.servers[server].stages[StageKind::Receiver.index()].queue_len()
                >= self.config.max_receiver_queue
        {
            self.metrics.rejected += 1;
            self.requests.remove(msg.request.0);
            if self.trace.enabled() {
                let at = engine.now();
                self.record_span(SpanEvent::instant(
                    msg.request.0,
                    HopKind::Shed,
                    server as u32,
                    0,
                    at,
                ));
                self.trace
                    .flight_dump(HopKind::Shed, msg.request.0, server as u32, at);
            }
            return;
        }
        self.enqueue(
            engine,
            server,
            StageKind::Receiver.index(),
            StageItem::Deserialize(msg),
        );
    }

    /// Schedules a backoff retry for a request whose delivery to `dead`
    /// failed (crash or drop): exponential backoff with deterministic
    /// jitter, bounded by the per-message attempt budget. The retry
    /// re-enters through a live server's receiver, where the virtual actor
    /// re-activates. Exhausting the budget leaves the root request to its
    /// client timeout.
    #[cold]
    fn schedule_retry(&mut self, engine: &mut Engine<Cluster>, mut msg: Message, dead: usize) {
        if self.requests.get(msg.request.0).is_none() {
            // The root request already resolved (timed out / shed): the
            // branch is a zombie, let it die.
            self.metrics.zombie_branches += 1;
            return;
        }
        let policy = self.config.retry;
        if msg.attempts >= policy.max_attempts {
            self.metrics.retry_budget_exhausted += 1;
            return;
        }
        msg.attempts += 1;
        let shift = u32::from(msg.attempts - 1).min(20);
        let backoff =
            Nanos::from_nanos(policy.base_backoff.as_nanos().saturating_mul(1u64 << shift))
                .min(policy.max_backoff);
        let jitter = if policy.jitter > 0.0 {
            Nanos::from_nanos_f64(
                backoff.as_nanos() as f64 * self.rng_fault.uniform(0.0, policy.jitter),
            )
        } else {
            Nanos::ZERO
        };
        let delay = backoff + jitter;
        self.metrics.retries += 1;
        self.metrics.retry_backoff_ns += delay.as_nanos();
        if self.trace.enabled() {
            self.record_span(SpanEvent::instant(
                msg.request.0,
                HopKind::Retry,
                dead as u32,
                u64::from(msg.attempts),
                engine.now(),
            ));
        }
        engine.schedule_after(delay, move |c: &mut Cluster, e| {
            if c.requests.get(msg.request.0).is_none() {
                c.metrics.zombie_branches += 1;
                return;
            }
            let first = c.rng_gateway.below(c.servers.len());
            match c.try_next_live(first) {
                Some(retry) => {
                    let mut m = msg;
                    m.forwarded = true;
                    if c.trace.enabled() {
                        c.record_span(SpanEvent::instant(
                            m.request.0,
                            HopKind::FailoverRetry,
                            retry as u32,
                            dead as u64,
                            e.now(),
                        ));
                    }
                    c.enqueue(
                        e,
                        retry,
                        StageKind::Receiver.index(),
                        StageItem::Deserialize(m),
                    );
                }
                // Still nobody alive: keep backing off until the budget
                // runs out or a server recovers.
                None => c.schedule_retry(e, msg, dead),
            }
        });
    }

    /// Pushes an item into a stage queue and pumps the server.
    fn enqueue(
        &mut self,
        engine: &mut Engine<Cluster>,
        server: usize,
        stage: usize,
        item: StageItem,
    ) {
        let now = engine.now();
        self.servers[server].stages[stage].push(now, item);
        self.pump(engine, server);
    }

    /// Starts queued items on every stage with a free thread, then
    /// re-arms the CPU completion event.
    fn pump(&mut self, engine: &mut Engine<Cluster>, server: usize) {
        if self.failed[server] {
            return;
        }
        let now = engine.now();
        loop {
            let mut started = false;
            #[allow(clippy::needless_range_loop)]
            for stage in 0..4 {
                while let Some((item, wait)) = self.servers[server].stages[stage].try_start(now) {
                    if self.config.record_breakdown {
                        let rid = item_request(&item);
                        self.account(rid, QUEUE_LABEL[stage], wait.as_nanos() as f64);
                    }
                    if self.trace.enabled() {
                        self.record_span(SpanEvent {
                            request: item_request(&item).0,
                            kind: HopKind::QueueWait,
                            server: server as u32,
                            stage: stage as u8,
                            aux: 0,
                            t_start: now.saturating_sub(wait),
                            t_end: now,
                        });
                    }
                    let (cpu_ns, wait_ns, post, request) = self.prepare(now, server, item);
                    let cpu_ns = cpu_ns.max(1.0);
                    let tid = self.servers[server].cpu.add(now, cpu_ns);
                    self.servers[server].running.insert(
                        tid,
                        RunningTask {
                            stage,
                            post,
                            started: now,
                            cpu_ns,
                            wait_ns,
                            request,
                        },
                    );
                    started = true;
                }
            }
            if !started {
                break;
            }
        }
        self.sync_cpu(engine, server);
    }

    /// Computes a stage item's CPU demand, blocking time, and completion
    /// action. For worker requests this invokes the application handler
    /// (its decision is captured now and applied when the compute phase
    /// ends).
    fn prepare(
        &mut self,
        now: Nanos,
        server: usize,
        item: StageItem,
    ) -> (f64, f64, PostAction, RequestId) {
        let costs = &self.config.costs;
        match item {
            StageItem::Deserialize(msg) => (
                costs.deserialize_ns(msg.bytes),
                0.0,
                PostAction::RouteToWorker(msg),
                msg.request,
            ),
            StageItem::Execute(msg) => {
                let primary = self.directory.server_of(msg.to.0) == Some(server);
                let mut hosted = primary;
                if !hosted
                    && self.config.replication.is_some()
                    && self.directory.replica_hosted(msg.to.0, server)
                {
                    // A replica activation: read-tagged requests and join
                    // continuations execute here; writes fall through to
                    // the forward path (primary-routed).
                    hosted = match msg.kind {
                        MsgKind::Request { .. } => {
                            let read = self
                                .config
                                .replication
                                .as_ref()
                                .expect("checked above")
                                .is_read(u64::from(msg.tag));
                            if read {
                                self.metrics.replica_reads += 1;
                                if self.trace.enabled() {
                                    self.record_span(SpanEvent::instant(
                                        msg.request.0,
                                        HopKind::ReplicaRead,
                                        server as u32,
                                        msg.to.0,
                                        now,
                                    ));
                                }
                            } else {
                                self.metrics.replica_writes += 1;
                            }
                            read
                        }
                        MsgKind::Response { .. } => true,
                    };
                }
                if !hosted {
                    return (
                        self.config.costs.dispatch_fixed_ns,
                        0.0,
                        PostAction::Forward(msg),
                        msg.request,
                    );
                }
                let costs = &self.config.costs;
                let local_copy = if !msg.delivered_remotely && msg.from_actor.is_some() {
                    costs.local_copy_ns(msg.bytes)
                } else {
                    0.0
                };
                match msg.kind {
                    MsgKind::Request { .. } => {
                        // Snapshot hook: restore-or-defer dead state, then
                        // capture + journal writes — before the handler
                        // runs (and before any RNG draw, so a deferred
                        // execute replays identically).
                        let (snap_cpu, snap_wait) = if self.snap.is_some() && primary {
                            match self.snapshot_touch(now, server, msg.to.0, msg.tag) {
                                SnapTouch::Proceed {
                                    cpu_ns,
                                    blocking_ns,
                                } => (cpu_ns, blocking_ns),
                                SnapTouch::Defer(backoff) => {
                                    return (
                                        self.config.costs.dispatch_fixed_ns,
                                        0.0,
                                        PostAction::SnapshotDefer { msg, backoff },
                                        msg.request,
                                    );
                                }
                            }
                        } else {
                            (0.0, 0.0)
                        };
                        let reaction = self.app.on_request(msg.to, msg.tag, &mut self.rng_app);
                        if self.config.replication.is_some() {
                            // Feed the split detector: service demand per
                            // activation over the current window.
                            self.servers[server]
                                .load_sketch
                                .offer(msg.to, reaction.cpu_ns as u64);
                        }
                        (
                            reaction.cpu_ns + local_copy + snap_cpu,
                            reaction.blocking_ns + snap_wait,
                            PostAction::ApplyRequest { msg, reaction },
                            msg.request,
                        )
                    }
                    MsgKind::Response { .. } => (
                        self.app.continuation_cpu_ns() + local_copy,
                        0.0,
                        PostAction::ApplyResponse(msg),
                        msg.request,
                    ),
                }
            }
            StageItem::SerializeRemote { dst, msg } => (
                costs.serialize_ns(msg.bytes),
                0.0,
                PostAction::NetSend { dst, msg },
                msg.request,
            ),
            StageItem::SerializeClient { request, bytes } => (
                costs.serialize_ns(bytes),
                0.0,
                PostAction::ClientReply { request, bytes },
                request,
            ),
        }
    }

    /// Re-arms the pending CPU-completion event to the CPU's current next
    /// completion time.
    ///
    /// Each server keeps exactly one provisional completion event alive.
    /// Under processor sharing, every runnable-set change moves the next
    /// completion time, so this is the hottest queue operation in the
    /// simulator: the event is retargeted in place with
    /// [`Engine::reschedule`] (and scheduled as an allocation-free tick),
    /// never cancelled-and-reboxed.
    fn sync_cpu(&mut self, engine: &mut Engine<Cluster>, server: usize) {
        let next = self.servers[server].cpu.next_completion();
        match (self.servers[server].cpu_event, next) {
            (Some((at, _)), Some(target)) if at == target => {}
            (Some((_, id)), Some(target)) => {
                engine.reschedule(id, target);
                self.servers[server].cpu_event = Some((target, id));
            }
            (Some((_, id)), None) => {
                engine.cancel(id);
                self.servers[server].cpu_event = None;
            }
            (None, Some(target)) => {
                let id = engine.schedule_tick(target, Self::cpu_tick, server as u64);
                self.servers[server].cpu_event = Some((target, id));
            }
            (None, None) => {}
        }
    }

    /// The CPU-completion event in tick form (payload = server index), so
    /// arming a provisional completion never allocates.
    fn cpu_tick(cluster: &mut Cluster, engine: &mut Engine<Cluster>, server: u64) {
        cluster.cpu_done(engine, server as usize);
    }

    /// The CPU-completion event: collect finished compute phases, run their
    /// blocking waits (if any), finish tasks, and pump.
    fn cpu_done(&mut self, engine: &mut Engine<Cluster>, server: usize) {
        if self.failed[server] {
            return; // The event raced with a crash; the work is gone.
        }
        self.servers[server].cpu_event = None;
        let now = engine.now();
        let done = self.servers[server].cpu.take_completed(now);
        for tid in done {
            let task = self.servers[server]
                .running
                .remove(&tid)
                .expect("completed CPU task must be tracked");
            if task.wait_ns > 0.0 {
                let wait = Nanos::from_nanos_f64(task.wait_ns);
                engine.schedule_after(wait, move |c: &mut Cluster, e| {
                    c.task_finished(e, server, task);
                });
            } else {
                self.task_finished(engine, server, task);
            }
        }
        self.pump(engine, server);
    }

    /// A stage task fully finished (compute + blocking wait): free the
    /// thread, record the estimator window, apply the completion action.
    fn task_finished(&mut self, engine: &mut Engine<Cluster>, server: usize, task: RunningTask) {
        if self.failed[server] {
            return; // A blocking wait outlived its server's crash.
        }
        let now = engine.now();
        self.servers[server].stages[task.stage].finish(now);
        let window = &mut self.servers[server].windows[task.stage];
        window.completions += 1;
        window.sum_wallclock_ns += (now - task.started).as_nanos() as f64;
        window.sum_cpu_ns += task.cpu_ns;
        if self.config.record_breakdown {
            self.account(
                task.request,
                PROC_LABEL[task.stage],
                (now - task.started).as_nanos() as f64,
            );
        }
        if self.trace.enabled() {
            self.record_span(SpanEvent {
                request: task.request.0,
                kind: HopKind::Service,
                server: server as u32,
                stage: task.stage as u8,
                aux: 0,
                t_start: task.started,
                t_end: now,
            });
        }
        match task.post {
            PostAction::RouteToWorker(msg) => {
                self.enqueue(
                    engine,
                    server,
                    StageKind::Worker.index(),
                    StageItem::Execute(msg),
                );
            }
            PostAction::ApplyRequest { msg, reaction } => {
                self.apply_request(engine, server, msg, reaction);
            }
            PostAction::ApplyResponse(msg) => {
                self.apply_response(engine, server, msg);
            }
            PostAction::Forward(msg) => {
                self.forward(engine, server, msg);
            }
            PostAction::NetSend { dst, msg } => {
                self.net_send(engine, server, dst, msg);
            }
            PostAction::ClientReply { request, bytes } => {
                let delay = self.config.costs.network.delay(&mut self.rng_net, bytes);
                self.account(request, "Network", delay.as_nanos() as f64);
                if self.trace.enabled() {
                    self.record_span(SpanEvent {
                        request: request.0,
                        kind: HopKind::Network,
                        server: server as u32,
                        stage: NO_STAGE,
                        aux: NO_SERVER as u64,
                        t_start: now,
                        t_end: now + delay,
                    });
                }
                engine.schedule_after(delay, move |c: &mut Cluster, e| {
                    c.complete_request(e.now(), request);
                });
            }
            PostAction::SnapshotDefer { msg, backoff } => {
                self.snapshot_defer(engine, server, msg, backoff);
            }
        }
        self.pump(engine, server);
    }

    /// Puts a server-to-server message on the wire: draws the network
    /// delay, then applies any installed link fault (drop or extra delay)
    /// on the pair. The base delay is always drawn first so fault-free
    /// pairs consume the net RNG stream exactly as before.
    fn net_send(&mut self, engine: &mut Engine<Cluster>, src: usize, dst: usize, msg: Message) {
        let now = engine.now();
        let mut delay = self
            .config
            .costs
            .network
            .delay(&mut self.rng_net, msg.bytes);
        if let Some(fault) = self.link_fault(src, dst) {
            if fault.drop_prob > 0.0 && self.rng_fault.chance(fault.drop_prob) {
                self.metrics.net_dropped += 1;
                if self.trace.enabled() {
                    self.record_span(SpanEvent::instant(
                        msg.request.0,
                        HopKind::MsgLost,
                        dst as u32,
                        src as u64,
                        now,
                    ));
                }
                match msg.kind {
                    MsgKind::Request { .. } => self.schedule_retry(engine, msg, dst),
                    // A dropped response is silently lost; the root
                    // request resolves via its client timeout.
                    MsgKind::Response { .. } => {}
                }
                return;
            }
            delay += fault.extra_delay;
        }
        self.account(msg.request, "Network", delay.as_nanos() as f64);
        if self.trace.enabled() {
            self.record_span(SpanEvent {
                request: msg.request.0,
                kind: HopKind::Network,
                server: src as u32,
                stage: NO_STAGE,
                aux: dst as u64,
                t_start: now,
                t_end: now + delay,
            });
        }
        if let Some(snap) = self.snap.as_mut() {
            let n = self.servers.len();
            snap.link_sent[src * n + dst] += 1;
        }
        engine.schedule_after(delay, move |c: &mut Cluster, e| {
            if let Some(snap) = c.snap.as_mut() {
                // Delivered (not processed): on-the-wire accounting only,
                // so queue losses in a crash never skew the counters.
                let n = c.servers.len();
                snap.link_recv[src * n + dst] += 1;
            }
            if !c.failed[dst] && matches!(msg.kind, MsgKind::Response { .. }) {
                // Service-time suspicion feed: a response delivery is an
                // observed ack of the call issued at `msg.issued_at`.
                // Inert (no state, no draws) unless `detector.rt` is set.
                let rt = e.now().saturating_sub(msg.issued_at).as_nanos();
                if let Some(d) = c.detector.as_mut() {
                    d.note_service_ack(dst, src, rt);
                }
            }
            c.wire_arrive(e, dst, msg);
        });
    }

    /// Applies a request handler's decision.
    fn apply_request(
        &mut self,
        engine: &mut Engine<Cluster>,
        server: usize,
        msg: Message,
        reaction: Reaction,
    ) {
        let MsgKind::Request { reply_to } = msg.kind else {
            unreachable!("apply_request on a response");
        };
        if self.requests.get(msg.request.0).is_none() {
            // The root request resolved (timed out / shed) while this
            // branch sat in queues or retries. Dropping it here keeps
            // abandoned requests from minting fresh joins after the
            // timeout purge, so the call tables always drain.
            self.metrics.zombie_branches += 1;
            return;
        }
        match reaction.outcome {
            Outcome::Reply { bytes } => {
                self.emit_reply(
                    engine,
                    server,
                    msg.to,
                    reply_to,
                    bytes,
                    msg.request,
                    msg.issued_at,
                    msg.call_was_remote,
                );
            }
            Outcome::FanOut { calls, reply_bytes } => {
                if calls.is_empty() {
                    self.emit_reply(
                        engine,
                        server,
                        msg.to,
                        reply_to,
                        reply_bytes,
                        msg.request,
                        msg.issued_at,
                        msg.call_was_remote,
                    );
                    return;
                }
                let cid = CallId(self.joins.insert(PendingJoin {
                    reply_to,
                    actor: msg.to,
                    remaining: calls.len(),
                    reply_bytes,
                    request: msg.request,
                    issued_at: msg.issued_at,
                    call_was_remote: msg.call_was_remote,
                }));
                for call in calls {
                    self.send_request(
                        engine,
                        server,
                        msg.to,
                        call,
                        ReplyTarget::Join(cid),
                        msg.request,
                    );
                }
            }
        }
    }

    /// Issues an actor-to-actor request.
    fn send_request(
        &mut self,
        engine: &mut Engine<Cluster>,
        server: usize,
        from: ActorId,
        call: Call,
        reply_to: ReplyTarget,
        request: RequestId,
    ) {
        let now = engine.now();
        let dst = self.route_request(now, call.to, call.tag, request, server);
        let remote = dst != server;
        self.note_actor_message(now, server, dst, from, call.to);
        if self.trace.enabled() {
            let kind = if remote {
                HopKind::RemoteDispatch
            } else {
                HopKind::LocalDispatch
            };
            self.record_span(SpanEvent {
                request: request.0,
                kind,
                server: server as u32,
                stage: NO_STAGE,
                aux: dst as u64,
                t_start: now,
                t_end: now,
            });
        }
        let msg = Message {
            to: call.to,
            tag: call.tag,
            bytes: call.bytes,
            kind: MsgKind::Request { reply_to },
            request,
            issued_at: now,
            delivered_remotely: remote,
            from_actor: Some(from),
            forwarded: false,
            call_was_remote: remote,
            attempts: 0,
            hops: 0,
        };
        if remote {
            self.enqueue(
                engine,
                server,
                StageKind::ServerSender.index(),
                StageItem::SerializeRemote { dst, msg },
            );
        } else {
            self.enqueue(
                engine,
                server,
                StageKind::Worker.index(),
                StageItem::Execute(msg),
            );
        }
    }

    /// Folds a sub-call response into its join; emits the actor's own reply
    /// when the join completes.
    fn apply_response(&mut self, engine: &mut Engine<Cluster>, server: usize, msg: Message) {
        let MsgKind::Response { target } = msg.kind else {
            unreachable!("apply_response on a request");
        };
        let now = engine.now();
        if self.config.record_remote_call_latency && msg.call_was_remote {
            self.metrics
                .remote_call_latency
                .record((now - msg.issued_at).as_nanos());
        }
        let Some(join) = self.joins.get_mut(target.0) else {
            // The join was lost (crash) or abandoned (timeout).
            self.metrics.stale_responses += 1;
            self.note_stale_response(now, msg.request, server);
            return;
        };
        join.remaining -= 1;
        if join.remaining == 0 {
            let join = self.joins.remove(target.0).expect("join present");
            self.emit_reply(
                engine,
                server,
                join.actor,
                join.reply_to,
                join.reply_bytes,
                join.request,
                join.issued_at,
                join.call_was_remote,
            );
        }
    }

    /// Sends an actor's reply to its caller (client or awaiting join).
    #[allow(clippy::too_many_arguments)]
    fn emit_reply(
        &mut self,
        engine: &mut Engine<Cluster>,
        server: usize,
        from: ActorId,
        reply_to: ReplyTarget,
        bytes: u64,
        request: RequestId,
        orig_issued_at: Nanos,
        orig_was_remote: bool,
    ) {
        match reply_to {
            ReplyTarget::Client(rid) => {
                self.enqueue(
                    engine,
                    server,
                    StageKind::ClientSender.index(),
                    StageItem::SerializeClient {
                        request: rid,
                        bytes,
                    },
                );
            }
            ReplyTarget::Join(cid) => {
                let Some(join) = self.joins.get(cid.0) else {
                    self.metrics.stale_responses += 1;
                    self.note_stale_response(engine.now(), request, server);
                    return;
                };
                let target_actor = join.actor;
                let now = engine.now();
                let dst = self.resolve(now, target_actor, Some(server));
                let remote = dst != server;
                self.note_actor_message(now, server, dst, from, target_actor);
                let msg = Message {
                    to: target_actor,
                    tag: 0,
                    bytes,
                    kind: MsgKind::Response { target: cid },
                    request,
                    issued_at: orig_issued_at,
                    delivered_remotely: remote,
                    from_actor: Some(from),
                    forwarded: false,
                    call_was_remote: orig_was_remote || remote,
                    attempts: 0,
                    hops: 0,
                };
                if remote {
                    self.enqueue(
                        engine,
                        server,
                        StageKind::ServerSender.index(),
                        StageItem::SerializeRemote { dst, msg },
                    );
                } else {
                    self.enqueue(
                        engine,
                        server,
                        StageKind::Worker.index(),
                        StageItem::Execute(msg),
                    );
                }
            }
        }
    }

    /// Re-routes a message whose target actor is not hosted on `server`
    /// (gateway hops, stale deliveries after migration).
    fn forward(&mut self, engine: &mut Engine<Cluster>, server: usize, mut msg: Message) {
        msg.hops = msg.hops.saturating_add(1);
        if msg.hops > MAX_FORWARD_HOPS {
            // Routing ping-pong (split-brain suspicion): cut the loop and
            // let the client timeout resolve the request.
            self.metrics.forward_loop_drops += 1;
            if self.trace.enabled() {
                self.record_span(SpanEvent::instant(
                    msg.request.0,
                    HopKind::MsgLost,
                    server as u32,
                    u64::from(msg.hops),
                    engine.now(),
                ));
            }
            return;
        }
        self.metrics.forwarded_messages += 1;
        msg.forwarded = true;
        let dst = match msg.kind {
            MsgKind::Request { .. } => {
                self.route_request(engine.now(), msg.to, msg.tag, msg.request, server)
            }
            MsgKind::Response { .. } => self.resolve(engine.now(), msg.to, Some(server)),
        };
        if self.trace.enabled() {
            self.record_span(SpanEvent::instant(
                msg.request.0,
                HopKind::Forward,
                server as u32,
                dst as u64,
                engine.now(),
            ));
        }
        if dst == server {
            self.enqueue(
                engine,
                server,
                StageKind::Worker.index(),
                StageItem::Execute(msg),
            );
        } else {
            self.enqueue(
                engine,
                server,
                StageKind::ServerSender.index(),
                StageItem::SerializeRemote { dst, msg },
            );
        }
    }

    /// Records an actor-to-actor message in the locality metrics and both
    /// endpoint servers' edge sketches.
    fn note_actor_message(
        &mut self,
        now: Nanos,
        src_server: usize,
        dst_server: usize,
        from: ActorId,
        to: ActorId,
    ) {
        let remote = src_server != dst_server;
        if remote {
            self.metrics.remote_messages += 1;
        } else {
            self.metrics.local_messages += 1;
        }
        self.metrics
            .remote_share_series
            .record(now.as_nanos(), if remote { 1.0 } else { 0.0 });
        let t = self.attr.begin(Subsystem::Sketch);
        self.servers[src_server].edge_sketch.offer((from, to), 1);
        self.servers[dst_server].edge_sketch.offer((to, from), 1);
        self.attr.end(Subsystem::Sketch, t);
    }

    /// Routes a request about to be dispatched: read-tagged requests on
    /// replicated actors spread across live activations by seeded
    /// rendezvous hashing; writes (and everything else, including every
    /// request while replication is off) take the plain [`Cluster::resolve`]
    /// path to the primary.
    fn route_request(
        &mut self,
        now: Nanos,
        actor: ActorId,
        tag: u32,
        request: RequestId,
        origin: usize,
    ) -> usize {
        if let Some(rep) = self.config.replication {
            if self.directory.has_replicas() && rep.is_read(u64::from(tag)) {
                if let Some(dst) = self.route_read(now, actor, request, origin) {
                    return dst;
                }
            }
        }
        self.resolve(now, actor, Some(origin))
    }

    /// Rendezvous selection over the live activations of a replicated
    /// actor. `None` when the actor is unsplit (or no candidate survives
    /// suspicion filtering) — the caller falls back to `resolve`.
    ///
    /// Selection is a pure hash of `(request, actor, candidate)`: each
    /// request lands on a stable activation (forward chains terminate) and
    /// the population of requests spreads near-uniformly, with no RNG
    /// stream drawn — replication-off runs stay byte-identical.
    ///
    /// Liveness is the origin's *suspicion*, exactly as in `resolve`: a
    /// suspected replica is dropped from the directory at routing time —
    /// the replica-set mirror of the `DirRepair` path for primaries.
    fn route_read(
        &mut self,
        now: Nanos,
        actor: ActorId,
        request: RequestId,
        origin: usize,
    ) -> Option<usize> {
        let primary = self.directory.server_of(actor.0)?;
        let reps = self.directory.replicas_of(actor.0);
        if reps.is_empty() {
            return None;
        }
        let reps: Vec<u32> = reps.to_vec();
        let mut candidates: Vec<u32> = Vec::with_capacity(reps.len() + 1);
        if origin == primary || !self.suspects(origin, primary, now) {
            candidates.push(primary as u32);
        }
        for r in reps {
            let rs = r as usize;
            if origin != rs && self.suspects(origin, rs, now) {
                self.directory.drop_replica(actor.0, rs);
                self.metrics.replica_drops += 1;
                if self.trace.enabled() {
                    // Lifecycle event: `request` carries the actor id,
                    // `server` the primary, `aux` the dropped replica.
                    self.record_span(SpanEvent::instant(
                        actor.0,
                        HopKind::ReplicaDrop,
                        primary as u32,
                        u64::from(r),
                        now,
                    ));
                }
            } else {
                candidates.push(r);
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let salt = mix64(request.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ actor.0);
        candidates
            .into_iter()
            .max_by_key(|&c| mix64(salt ^ (u64::from(c) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .map(|c| c as usize)
    }

    /// Resolves the hosting server for `actor`, activating it if needed:
    /// the directory wins; otherwise the origin server's location hint
    /// (left by a migration, §4.3); otherwise the placement policy.
    ///
    /// Liveness knowledge is the origin server's *suspicion* (its failure
    /// detector under `config.detector`, ground truth otherwise): a
    /// directory entry pointing at a suspected host is repaired — dropped
    /// so the actor re-places — and hints/targets on suspected servers are
    /// skipped. False suspicion therefore causes real, counted damage.
    fn resolve(&mut self, now: Nanos, actor: ActorId, origin: Option<usize>) -> usize {
        let t = self.attr.begin(Subsystem::Routing);
        let target = self.resolve_inner(now, actor, origin);
        self.attr.end(Subsystem::Routing, t);
        target
    }

    /// [`Cluster::resolve`] without the cost-attribution wrapper.
    fn resolve_inner(&mut self, now: Nanos, actor: ActorId, origin: Option<usize>) -> usize {
        if let Some(server) = self.directory.server_of(actor.0) {
            let repair = match origin {
                Some(o) if o != server => self.suspects(o, server, now),
                _ => false,
            };
            if !repair {
                return server;
            }
            self.metrics.directory_repairs += 1;
            if !self.failed[server] {
                self.metrics.false_suspicion_repairs += 1;
                self.metrics.false_suspicion_series.mark(now.as_nanos());
            }
            if self.trace.enabled() {
                // Lifecycle event: `request` carries the actor id,
                // `server` the observer, `aux` the suspected host.
                self.record_span(SpanEvent::instant(
                    actor.0,
                    HopKind::DirRepair,
                    origin.expect("repair implies an origin") as u32,
                    server as u64,
                    now,
                ));
            }
            self.directory.remove(actor.0);
            // Fall through: re-place on a trusted server.
        }
        let mut hinted = None;
        if let Some(o) = origin {
            if let Some(hint) = self.servers[o].take_location_hint(&actor) {
                if !self.suspects(o, hint, now) {
                    hinted = Some(hint);
                }
            }
        }
        let preferred = hinted.unwrap_or_else(|| {
            self.config.placement.choose(
                actor,
                origin.filter(|&o| !self.failed[o]),
                self.servers.len(),
                &mut self.rng_place,
            )
        });
        let target = match (origin, self.detector.is_some()) {
            (Some(o), true) => self.next_unsuspected(o, preferred, now),
            // No detector (or no observer): ground truth, as before. The
            // fallback to `preferred` is unreachable while any caller is
            // itself a live server, but sheds gracefully instead of
            // panicking if that ever changes.
            _ => self.try_next_live(preferred).unwrap_or(preferred),
        };
        self.directory.place(actor.0, target);
        target
    }

    /// Whether `observer` currently distrusts `peer`: the failure
    /// detector's suspicion when configured (transitions are counted and
    /// traced here), ground truth otherwise.
    fn suspects(&mut self, observer: usize, peer: usize, now: Nanos) -> bool {
        if self.detector.is_none() {
            return self.failed[peer];
        }
        let t = self.attr.begin(Subsystem::Detector);
        let (suspected, transition) = self
            .detector
            .as_mut()
            .expect("checked above")
            .check(observer, peer, now);
        self.attr.end(Subsystem::Detector, t);
        if let Some(tr) = transition {
            self.note_suspicion_transition(tr, observer, peer, now);
        }
        suspected
    }

    /// Counts and traces a suspicion-state transition.
    fn note_suspicion_transition(
        &mut self,
        t: Transition,
        observer: usize,
        peer: usize,
        at: Nanos,
    ) {
        match t {
            Transition::Suspected => {
                self.metrics.suspicions += 1;
                if self.trace.enabled() {
                    // Lifecycle event: `request` carries the suspected
                    // server id, `server` the observer.
                    self.record_span(SpanEvent::instant(
                        peer as u64,
                        HopKind::Suspect,
                        observer as u32,
                        0,
                        at,
                    ));
                    self.trace
                        .flight_dump(HopKind::Suspect, peer as u64, observer as u32, at);
                }
            }
            Transition::Cleared => {
                self.metrics.unsuspicions += 1;
                if self.trace.enabled() {
                    self.record_span(SpanEvent::instant(
                        peer as u64,
                        HopKind::Unsuspect,
                        observer as u32,
                        0,
                        at,
                    ));
                }
            }
        }
    }

    /// The first server at or after `preferred` (wrapping) that `observer`
    /// does not suspect; `preferred` itself when the observer suspects the
    /// whole cluster (desperation beats deadlock — the delivery will fail
    /// and retry).
    fn next_unsuspected(&mut self, observer: usize, preferred: usize, now: Nanos) -> usize {
        let n = self.servers.len();
        for i in 0..n {
            let s = (preferred + i) % n;
            if !self.suspects(observer, s, now) {
                return s;
            }
        }
        preferred
    }

    /// Completes a client request: the response reached the client.
    fn complete_request(&mut self, now: Nanos, request: RequestId) {
        let Some(meta) = self.requests.remove(request.0) else {
            return;
        };
        self.metrics.completed += 1;
        if self.trace.enabled() {
            self.record_span(SpanEvent::instant(
                request.0,
                HopKind::ClientDone,
                NO_SERVER,
                0,
                now,
            ));
        }
        let total = (now - meta.start).as_nanos();
        self.metrics.e2e_latency.record(total);
        self.metrics
            .latency_series
            .record(now.as_nanos(), total as f64);
        if let Some(obs) = self.obs.as_mut() {
            obs.observe_latency(total);
        }
        if self.config.record_breakdown {
            let other = (total as f64 - meta.accounted_ns).max(0.0);
            self.metrics.breakdown.add("Other", other);
            self.metrics.breakdown.finish_request();
        }
    }

    /// Records a stale-response trace instant (the join or request the
    /// response targeted is gone — crash, timeout, or shed).
    #[cold]
    #[inline(never)]
    fn note_stale_response(&mut self, now: Nanos, request: RequestId, server: usize) {
        if self.trace.enabled() {
            self.record_span(SpanEvent::instant(
                request.0,
                HopKind::StaleResponse,
                server as u32,
                0,
                now,
            ));
        }
    }

    /// Attributes `ns` of a request's latency to a named component.
    fn account(&mut self, request: RequestId, component: &'static str, ns: f64) {
        if !self.config.record_breakdown {
            return;
        }
        self.metrics.breakdown.add(component, ns);
        if let Some(meta) = self.requests.get_mut(request.0) {
            meta.accounted_ns += ns;
        }
    }

    // ------------------------------------------------------------------
    // ActOp hooks (what the controllers drive).
    // ------------------------------------------------------------------

    /// The server's partition view: its hosted actors with their sampled
    /// edges, sorted by actor for determinism. This is the input the
    /// distributed partitioner's candidate-set selection consumes.
    pub fn partition_view(&self, server: usize) -> Vec<(ActorId, Vec<(ActorId, u64)>)> {
        let sketch = &self.servers[server].edge_sketch;
        let mut by_actor: FxHashMap<ActorId, Vec<(ActorId, u64)>> =
            fx_map_with_capacity(sketch.len());
        for entry in sketch.iter_entries() {
            let (local, peer) = entry.item;
            if self.directory.server_of(local.0) == Some(server) {
                by_actor.entry(local).or_default().push((peer, entry.count));
            }
        }
        let mut out: Vec<(ActorId, Vec<(ActorId, u64)>)> = by_actor.into_iter().collect();
        out.sort_unstable_by_key(|(a, _)| *a);
        for (_, edges) in &mut out {
            edges.sort_unstable_by_key(|&(peer, _)| peer);
        }
        out
    }

    /// Actors hosted per server (the balance-constraint input).
    pub fn server_sizes(&self) -> Vec<usize> {
        self.directory.sizes().to_vec()
    }

    /// Where an actor currently lives (directory view).
    pub fn locate(&self, actor: ActorId) -> Option<usize> {
        self.directory.server_of(actor.0)
    }

    /// The measured migration-cost signals the cost-aware repartitioning
    /// objective consumes: cumulative migrations and transfer-window
    /// stall, an upper bound on move-attributable repair traffic, the
    /// configured transfer window (the estimate's prior), and the CPU
    /// overhead of one remote message at a typical payload (the exchange
    /// rate from stall time into score units).
    pub fn migration_cost_signals(&self) -> CostSignals {
        CostSignals {
            migrations: self.metrics.migrations,
            stall_ns: self.metrics.migration_stall_ns,
            repair_msgs: self.metrics.directory_repairs
                + self.metrics.stale_responses
                + self.metrics.forwarded_messages,
            transfer_ns: self.config.migration_transfer.map_or(0, |t| t.as_nanos()),
            remote_cost_ns: self.config.costs.remote_overhead_ns(600).max(0.0) as u64,
        }
    }

    /// Applies an exchange outcome from the pairwise protocol: accepted
    /// actors migrate initiator → responder, returned actors the other way.
    ///
    /// `now` is passed explicitly (rather than read from the engine) so
    /// controller code can stamp the exchange with its own window time.
    pub fn apply_exchange(
        &mut self,
        engine: &mut Engine<Cluster>,
        now: Nanos,
        initiator: usize,
        responder: usize,
        outcome: &ExchangeOutcome<ActorId>,
    ) {
        for actor in &outcome.accepted {
            self.migrate_actor(engine, now, *actor, responder);
        }
        for actor in &outcome.returned {
            self.migrate_actor(engine, now, *actor, initiator);
        }
        let ns = now.as_nanos();
        self.servers[initiator].last_exchange_ns = Some(ns);
        self.servers[responder].last_exchange_ns = Some(ns);
    }

    /// Migrates an actor. With `config.migration_transfer` unset the move
    /// commits instantly (the legacy model); otherwise the actor stays at
    /// its source for the transfer window and commits when it elapses — a
    /// crash of either endpoint during the window aborts the move cleanly
    /// back to the source (see [`Cluster::fail_server`]).
    pub fn migrate_actor(
        &mut self,
        engine: &mut Engine<Cluster>,
        now: Nanos,
        actor: ActorId,
        to: usize,
    ) {
        let Some(from) = self.directory.server_of(actor.0) else {
            return;
        };
        if from == to {
            return;
        }
        // Replicated actors pin their primary: their load moves by
        // splitting and dropping replicas, not by migration (and a
        // deactivation would discard the whole replica set).
        if self.directory.is_replicated(actor.0)
            || (!self.splits_in_flight.is_empty() && self.splits_in_flight.contains_key(&actor.0))
        {
            return;
        }
        match self.config.migration_transfer {
            None => self.commit_migration(now, actor, from, to),
            Some(transfer) => {
                if self.migrations_in_flight.contains_key(&actor.0)
                    || self.failed[from]
                    || self.failed[to]
                {
                    return;
                }
                self.migrations_in_flight
                    .insert(actor.0, (from as u32, to as u32));
                engine.schedule_after(transfer, move |c: &mut Cluster, e| {
                    c.finish_migration(e.now(), actor);
                });
            }
        }
    }

    /// A migration transfer window elapsed: commit unless a crash aborted
    /// it (entry gone) or the actor moved on in the meantime.
    fn finish_migration(&mut self, now: Nanos, actor: ActorId) {
        let Some((from, to)) = self.migrations_in_flight.remove(&actor.0) else {
            return; // Aborted by fail_server.
        };
        if self.directory.server_of(actor.0) == Some(from as usize)
            && !self.directory.is_replicated(actor.0)
        {
            self.commit_migration(now, actor, from as usize, to as usize);
            // The actor sat pinned at its source for the whole transfer
            // window — the stall the cost-aware objective charges moves.
            if let Some(transfer) = self.config.migration_transfer {
                self.metrics.migration_stall_ns += transfer.as_nanos();
            }
        }
    }

    /// Commits a migration by deactivation + opportunistic re-placement
    /// (§4.3): the directory entry is dropped and both the old and the new
    /// server cache the intended location; the next message re-activates
    /// the actor — at the intended server when it originates from either of
    /// the two, at the originating server otherwise.
    fn commit_migration(&mut self, now: Nanos, actor: ActorId, from: usize, to: usize) {
        if self.trace.enabled() {
            // Lifecycle event: bypasses request sampling; `request` carries
            // the actor id, `aux` the destination server.
            self.record_span(SpanEvent::instant(
                actor.0,
                HopKind::Migration,
                from as u32,
                to as u64,
                now,
            ));
        }
        self.directory.remove(actor.0);
        self.servers[from].cache_location(actor, to);
        self.servers[to].cache_location(actor, to);
        if let Some(snap) = self.snap.as_mut() {
            // The state cell travels with the activation (the transfer
            // window already modeled the copy); the hint self-heals at
            // the next touch if re-activation lands elsewhere.
            if let Some(entry) = snap.cells.get_mut(&actor.0) {
                entry.0 = to as u32;
            }
        }
        self.servers[from]
            .edge_sketch
            .retain(|&(local, _)| local != actor);
        self.metrics.migrations += 1;
        self.metrics.migration_series.mark(now.as_nanos());
    }

    /// Adds a read replica of `actor` on `to` (a hot-actor split). With
    /// `config.migration_transfer` unset the replica materializes
    /// instantly; otherwise after the transfer window — the same state
    /// copy a migration pays — during which a crash of either endpoint
    /// aborts the split cleanly (see [`Cluster::fail_server`]).
    pub fn split_actor(
        &mut self,
        engine: &mut Engine<Cluster>,
        now: Nanos,
        actor: ActorId,
        to: usize,
    ) {
        let Some(from) = self.directory.server_of(actor.0) else {
            return;
        };
        if from == to
            || self.directory.replica_hosted(actor.0, to)
            || self.splits_in_flight.contains_key(&actor.0)
            || self.migrations_in_flight.contains_key(&actor.0)
            || self.failed[to]
        {
            return;
        }
        match self.config.migration_transfer {
            None => self.commit_split(now, actor, from, to),
            Some(transfer) => {
                self.splits_in_flight
                    .insert(actor.0, (from as u32, to as u32));
                engine.schedule_after(transfer, move |c: &mut Cluster, e| {
                    c.finish_split(e.now(), actor);
                });
            }
        }
    }

    /// A split transfer window elapsed: commit unless a crash aborted it
    /// (entry gone), the primary moved, or the replica already exists.
    fn finish_split(&mut self, now: Nanos, actor: ActorId) {
        let Some((from, to)) = self.splits_in_flight.remove(&actor.0) else {
            return; // Aborted by fail_server.
        };
        if self.directory.server_of(actor.0) == Some(from as usize)
            && !self.directory.replica_hosted(actor.0, to as usize)
        {
            self.commit_split(now, actor, from as usize, to as usize);
        }
    }

    /// Commits a split: the replica activation appears in the directory
    /// and rendezvous routing starts spreading reads over it.
    fn commit_split(&mut self, now: Nanos, actor: ActorId, from: usize, to: usize) {
        if self.trace.enabled() {
            // Lifecycle event: `request` carries the actor id, `server`
            // the primary, `aux` the replica's server.
            self.record_span(SpanEvent::instant(
                actor.0,
                HopKind::Split,
                from as u32,
                to as u64,
                now,
            ));
        }
        self.directory.add_replica(actor.0, to);
        self.metrics.splits += 1;
    }

    /// Drops the replica activation of `actor` on `server` (a no-op when
    /// absent, so crash cleanup can sweep unconditionally).
    pub fn drop_replica_actor(&mut self, now: Nanos, actor: ActorId, server: usize) {
        let primary = self.directory.server_of(actor.0);
        if self.directory.drop_replica(actor.0, server) {
            self.metrics.replica_drops += 1;
            if self.trace.enabled() {
                // Lifecycle event: same field conventions as `Split`.
                self.record_span(SpanEvent::instant(
                    actor.0,
                    HopKind::ReplicaDrop,
                    primary.map_or(NO_SERVER, |p| p as u32),
                    server as u64,
                    now,
                ));
            }
        }
    }

    /// Number of splits currently in transfer.
    pub fn splits_in_flight(&self) -> usize {
        self.splits_in_flight.len()
    }

    /// Drains the per-stage observation windows of a server.
    pub fn drain_stage_stats(&mut self, now: Nanos, server: usize) -> [StageReport; 4] {
        let mut out = [StageReport {
            arrivals: 0,
            completions: 0,
            window: Nanos::ZERO,
            sum_wallclock_ns: 0.0,
            sum_cpu_ns: 0.0,
            mean_queue_len: 0.0,
        }; 4];
        for (i, report) in out.iter_mut().enumerate() {
            let pool_stats = self.servers[server].stages[i].drain_stats(now);
            let window = std::mem::take(&mut self.servers[server].windows[i]);
            *report = StageReport {
                arrivals: pool_stats.arrivals,
                completions: window.completions,
                window: pool_stats.window,
                sum_wallclock_ns: window.sum_wallclock_ns,
                sum_cpu_ns: window.sum_cpu_ns,
                mean_queue_len: pool_stats.mean_queue_len(),
            };
        }
        out
    }

    /// Reconfigures a server's per-stage thread allocation, in stage order.
    pub fn set_stage_threads(
        &mut self,
        engine: &mut Engine<Cluster>,
        server: usize,
        allocation: [usize; 4],
    ) {
        let now = engine.now();
        for (i, &threads) in allocation.iter().enumerate() {
            self.servers[server].stages[i].set_threads(now, threads);
        }
        // The multithreading-overhead tax follows the configured total.
        let total: usize = allocation.iter().sum();
        self.servers[server].cpu.set_configured_threads(now, total);
        // Extra threads may unblock queued work immediately (and the CPU
        // completion event must be re-armed for the new rates).
        self.pump(engine, server);
    }

    /// Multiplies every server's edge-sketch counters by `factor`, aging
    /// out stale communication history.
    pub fn age_edge_sketches(&mut self, factor: f64) {
        for server in &mut self.servers {
            server.edge_sketch.scale(factor);
        }
    }

    /// Snapshot of a server's cumulative busy core-nanoseconds (pair two
    /// snapshots to compute utilization over a window).
    pub fn busy_core_ns(&self, server: usize) -> f64 {
        self.servers[server].cpu.busy_core_ns()
    }

    /// Mean CPU utilization across all servers over `[since, now]`, given
    /// the per-server snapshots taken at `since`.
    pub fn mean_utilization(&self, snapshots: &[f64], since: Nanos, now: Nanos) -> f64 {
        assert_eq!(snapshots.len(), self.servers.len(), "snapshot per server");
        let sum: f64 = self
            .servers
            .iter()
            .zip(snapshots)
            .map(|(s, &snap)| s.cpu.utilization_since(snap, since, now))
            .sum();
        sum / self.servers.len() as f64
    }

    /// Installs the configured stop-the-world pause model (if any):
    /// schedules an independent pause/resume loop per server until
    /// `horizon`. Call once after constructing the engine; a no-op when
    /// `config.hiccups` is `None`. The horizon keeps the event queue
    /// drainable — without it the pause loop would keep the simulation
    /// alive forever.
    pub fn install_hiccups(&self, engine: &mut Engine<Cluster>, horizon: Nanos) {
        let Some(model) = self.config.hiccups else {
            return;
        };
        for server in 0..self.servers.len() {
            let rng = DetRng::stream(self.config.seed, 0x500 + server as u64);
            schedule_next_hiccup(engine, server, model, rng, horizon);
        }
    }

    /// Installs the per-server timeline sampler: every
    /// [`actop_trace::TraceConfig::timeline_bin`] it snapshots each
    /// server's queue depths, busy/configured threads, and busy-core
    /// utilization over the elapsed bin into the tracer's timeline. A
    /// no-op when tracing is disabled, so it never perturbs untraced
    /// runs; the horizon keeps the event queue drainable.
    pub fn install_timeline_sampler(&self, engine: &mut Engine<Cluster>, horizon: Nanos) {
        if !self.trace.enabled() || self.trace.timeline_bin() == Nanos::ZERO {
            return;
        }
        let bin = self.trace.timeline_bin();
        let prev: Vec<f64> = self.servers.iter().map(|s| s.cpu.busy_core_ns()).collect();
        schedule_next_timeline_sample(engine, bin, prev, horizon);
    }

    /// Installs the heartbeat loops backing the failure detector: every
    /// server emits a round of heartbeats to all peers each
    /// [`DetectorConfig::heartbeat_interval`], staggered so the cluster
    /// does not beat in lockstep, until `horizon` (which keeps the event
    /// queue drainable). A no-op without `config.detector`. Crashed
    /// servers skip emission but keep their loop, so emission resumes by
    /// itself after [`Cluster::recover_server`].
    pub fn install_heartbeats(&self, engine: &mut Engine<Cluster>, horizon: Nanos) {
        let Some(dc) = self.config.detector else {
            return;
        };
        let n = self.servers.len();
        for server in 0..n {
            let phase =
                Nanos::from_nanos(dc.heartbeat_interval.as_nanos() * server as u64 / n as u64);
            schedule_heartbeat(engine, server, dc, phase, horizon);
        }
    }

    /// Emits one heartbeat round from `server` to every peer. Emission
    /// lags by the configured CPU cost scaled by the sender's *current
    /// slowdown*: a loaded, straggling, or gray-failing server heartbeats
    /// late — the mechanism that turns CPU faults into false suspicion.
    fn emit_heartbeats(&mut self, engine: &mut Engine<Cluster>, server: usize, dc: DetectorConfig) {
        let lag =
            Nanos::from_nanos_f64(dc.heartbeat_process_ns * self.servers[server].cpu.slowdown());
        for peer in 0..self.servers.len() {
            if peer == server {
                continue;
            }
            let mut delay = lag
                + self
                    .config
                    .costs
                    .network
                    .delay(&mut self.rng_hb, dc.heartbeat_bytes);
            if let Some(fault) = self.link_fault(server, peer) {
                if fault.drop_prob > 0.0 && self.rng_fault.chance(fault.drop_prob) {
                    self.metrics.heartbeats_dropped += 1;
                    continue;
                }
                delay += fault.extra_delay;
            }
            self.metrics.heartbeats_sent += 1;
            engine.schedule_after(delay, move |c: &mut Cluster, e| {
                if c.failed[peer] {
                    return; // A dead process hears nothing.
                }
                let at = e.now();
                let transition = c.detector.as_mut().and_then(|d| d.heard(peer, server, at));
                if let Some(t) = transition {
                    c.note_suspicion_transition(t, peer, server, at);
                }
            });
        }
    }

    /// Installs the hot-actor split detector: every
    /// [`ReplicationConfig::check_interval`] each server scans its load
    /// sketch for actors whose sustained service demand exceeds the
    /// configured fraction of one server's capacity and splits them
    /// (or drops replicas of actors that cooled down), staggered across
    /// servers like heartbeats, until `horizon`. A no-op without
    /// `config.replication`.
    pub fn install_replication(&self, engine: &mut Engine<Cluster>, horizon: Nanos) {
        let Some(rep) = self.config.replication else {
            return;
        };
        let n = self.servers.len();
        for server in 0..n {
            let phase = Nanos::from_nanos(rep.check_interval.as_nanos() * server as u64 / n as u64);
            schedule_replication_tick(engine, server, rep, fx_map_with_capacity(0), phase, horizon);
        }
    }

    /// One split-detection tick on `server`: scan the window's load
    /// sketch, decide split/drop/hold per hot actor primaried here, and
    /// reset the window. `cooldowns` carries each actor's
    /// no-decisions-before time across ticks.
    fn replication_tick(
        &mut self,
        engine: &mut Engine<Cluster>,
        server: usize,
        rep: &ReplicationConfig,
        cooldowns: &mut FxHashMap<u64, Nanos>,
    ) {
        if self.failed[server] {
            return; // Sketch state died with the process; nothing to scan.
        }
        let now = engine.now();
        let window_capacity_ns =
            rep.check_interval.as_nanos() * self.config.costs.cores_per_server as u64;
        // Candidates: this window's sustained heavy hitters primaried
        // here, plus every replicated actor primaried here (so cooled
        // actors that fell out of the sketch still get drop decisions).
        let mut candidates: Vec<u64> = self.servers[server]
            .load_sketch
            .sustained_heavy_hitters(rep.min_load_ns)
            .map(|e| e.item.0)
            .filter(|&a| self.directory.server_of(a) == Some(server))
            .collect();
        candidates.extend(self.directory.replicated_primaried_on(server));
        candidates.sort_unstable();
        candidates.dedup();
        for a in candidates {
            if cooldowns.get(&a).is_some_and(|&until| now < until) {
                continue;
            }
            let observed = self.servers[server].load_sketch.lower_bound(&ActorId(a));
            let replicas = self.directory.replicas_of(a).len();
            match decide_split(&rep.thresholds, observed, window_capacity_ns, replicas) {
                SplitDecision::Split => {
                    if let Some(to) = self.split_target(a, replicas, now, server) {
                        self.split_actor(engine, now, ActorId(a), to);
                        cooldowns.insert(a, now + rep.cooldown);
                    }
                }
                SplitDecision::Drop => {
                    // Deterministic victim: the highest replica server id.
                    if let Some(&victim) = self.directory.replicas_of(a).last() {
                        self.drop_replica_actor(now, ActorId(a), victim as usize);
                        cooldowns.insert(a, now + rep.cooldown);
                    }
                }
                SplitDecision::Hold => {}
            }
        }
        self.servers[server].load_sketch.clear();
    }

    /// Picks the replica destination for a split of `a` by rendezvous
    /// over the eligible servers (not the primary, not already a replica,
    /// not distrusted by the primary), keyed by the current replica count
    /// so successive splits spread deterministically.
    fn split_target(
        &mut self,
        a: u64,
        replicas: usize,
        now: Nanos,
        primary: usize,
    ) -> Option<usize> {
        let salt = mix64(a ^ (replicas as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut best: Option<(u64, usize)> = None;
        for c in 0..self.servers.len() {
            if c == primary || self.directory.replica_hosted(a, c) || self.suspects(primary, c, now)
            {
                continue;
            }
            let score = mix64(salt ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, c));
            }
        }
        best.map(|(_, c)| c)
    }

    // ------------------------------------------------------------------
    // Asynchronous snapshots & stateful recovery.
    // ------------------------------------------------------------------

    /// Installs the periodic snapshot coordinator: every
    /// [`SnapshotConfig::interval`] the store server begins an
    /// asynchronous marker round over the live cluster, and
    /// `capture_window` later the round sweeps the untouched remainder
    /// and commits. A no-op without `config.snapshot`; the horizon keeps
    /// the event queue drainable. Rounds are skipped (never queued) while
    /// the store server is down, so the loop survives chaos and resumes
    /// by itself on recovery.
    pub fn install_snapshots(&self, engine: &mut Engine<Cluster>, horizon: Nanos) {
        let Some(snap) = &self.snap else {
            return;
        };
        schedule_snapshot_round(engine, snap.cfg.interval, horizon);
    }

    /// Begins one snapshot round: the store server (the coordinator)
    /// marks itself, markers ride to every live peer, and the sweep that
    /// commits the round is scheduled `capture_window` out. Skipped while
    /// a round is still open or the store server is down.
    fn snapshot_begin(&mut self, engine: &mut Engine<Cluster>) {
        let now = engine.now();
        let n = self.servers.len();
        let snap = self.snap.as_mut().expect("guarded by install");
        let cfg = snap.cfg;
        let coord = cfg.store_server as usize;
        if snap.round.is_some() || self.failed[coord] {
            self.metrics.snap_rounds_skipped += 1;
            return;
        }
        snap.rounds_started += 1;
        let id = snap.rounds_started;
        let mut round = OpenRound::new(id, now, n);
        round.mark(coord, &snap.link_sent, &snap.link_recv);
        snap.round = Some(round);
        self.metrics.snap_rounds_started += 1;
        if self.trace.enabled() {
            // Lifecycle events: `request` carries the round id.
            self.record_span(SpanEvent::instant(
                id,
                HopKind::SnapBegin,
                coord as u32,
                0,
                now,
            ));
            self.record_span(SpanEvent::instant(
                id,
                HopKind::SnapMarker,
                coord as u32,
                0,
                now,
            ));
        }
        // Markers ride the mean network delay: the snapshot machinery
        // must not draw from the shared RNG streams, or enabling it
        // would perturb snapshot-off-identical workload behavior.
        let marker_delay = self.config.costs.network.mean_delay(0);
        for peer in 0..n {
            if peer == coord || self.failed[peer] {
                continue;
            }
            engine.schedule_after(marker_delay, move |c: &mut Cluster, e| {
                c.snapshot_marker(e.now(), id, peer);
            });
        }
        engine.schedule_after(cfg.capture_window, move |c: &mut Cluster, e| {
            c.snapshot_sweep(e.now(), id);
        });
    }

    /// A snapshot marker reaches `server`: it snapshots its per-link
    /// send/receive counters (the round's in-flight accounting) and joins
    /// the cut. Late markers — the round aborted in the meantime — are
    /// ignored, as are markers to a server that crashed in flight.
    fn snapshot_marker(&mut self, now: Nanos, round_id: u64, server: usize) {
        if self.failed[server] {
            return; // Crashed since the marker was sent; the round aborts.
        }
        let Some(snap) = self.snap.as_mut() else {
            return;
        };
        let Some(round) = snap.round.as_mut() else {
            return;
        };
        if round.id != round_id || !round.mark(server, &snap.link_sent, &snap.link_recv) {
            return;
        }
        if self.trace.enabled() {
            self.record_span(SpanEvent::instant(
                round_id,
                HopKind::SnapMarker,
                server as u32,
                0,
                now,
            ));
        }
    }

    /// The capture window of round `round_id` elapsed: capture every
    /// still-untouched state cell at its current value, commit the round
    /// to the durable store (truncating the journals it covers), and
    /// account the round. A no-op when a crash aborted the round.
    fn snapshot_sweep(&mut self, now: Nanos, round_id: u64) {
        let (swept, captures, in_flight, begun_at, cfg) = {
            let snap = self
                .snap
                .as_mut()
                .expect("sweep only scheduled with snapshots");
            let cfg = snap.cfg;
            if snap.round.as_ref().map(|r| r.id) != Some(round_id) {
                return; // Aborted by a crash.
            }
            let mut round = snap.round.take().expect("checked above");
            // Sweep stragglers in actor order so the capture trace is
            // deterministic regardless of map iteration order.
            let mut remaining: Vec<u64> = snap.cells.keys().copied().collect();
            remaining.sort_unstable();
            let mut swept: Vec<(u64, u32, u64)> = Vec::new();
            for actor in remaining {
                let (host, cell) = snap.cells[&actor];
                if cell.version == 0 {
                    continue; // Never written: nothing to snapshot.
                }
                if round.capture(actor, cell.version, cell.value, cfg.state_bytes) {
                    swept.push((actor, host, cell.version));
                }
            }
            let captures = round.sorted_captures();
            snap.store.commit(round_id, &captures);
            (swept, captures, round.in_flight(), round.begun_at, cfg)
        };
        self.metrics.snap_rounds_completed += 1;
        self.metrics.snap_captures += swept.len() as u64;
        self.metrics.snap_bytes += swept.len() as u64 * cfg.state_bytes;
        self.metrics.snap_inflight += in_flight;
        let duration = now.saturating_sub(begun_at);
        if let Some(obs) = self.obs.as_mut() {
            obs.observe_snap_round(duration.as_nanos());
        }
        if self.trace.enabled() {
            for (actor, host, version) in swept {
                // Lifecycle event: `request` carries the actor id, `aux`
                // packs (round, captured version).
                self.record_span(SpanEvent::instant(
                    actor,
                    HopKind::SnapCapture,
                    host,
                    (round_id << 40) | version,
                    now,
                ));
            }
            self.record_span(SpanEvent::instant(
                round_id,
                HopKind::SnapComplete,
                cfg.store_server,
                captures.len() as u64,
                now,
            ));
        }
    }

    /// The snapshot subsystem's pre-handler hook for a request hosted at
    /// `server`: rehydrates the actor's state cell from the durable store
    /// if the in-memory copy died with a crash (deferring with backoff
    /// while the store server is down), lazily captures the pre-write
    /// state into an open round, and applies write-tagged requests to the
    /// versioned cell, journaling each transition. Draws no RNG.
    fn snapshot_touch(&mut self, now: Nanos, server: usize, actor: u64, tag: u32) -> SnapTouch {
        let store_down = {
            let snap = self.snap.as_ref().expect("guarded by caller");
            self.failed[snap.cfg.store_server as usize]
        };
        let snap = self.snap.as_mut().expect("guarded by caller");
        let cfg = snap.cfg;
        let mut cpu_ns = 0.0;
        let mut blocking_ns = 0.0;
        let mut restore_ev = None;
        let mut capture_ev = None;
        let mut write_ev = None;
        let mut replayed = 0u64;
        if let Some(entry) = snap.cells.get_mut(&actor) {
            // In-memory state exists; self-heal the host hint (it can be
            // stale after a migration whose re-activation landed off the
            // intended destination).
            entry.0 = server as u32;
        } else if let Some(plan) = snap.store.restore(actor) {
            // The in-memory cell died with a crash: rehydrate from the
            // last complete snapshot plus the journal tail — unless the
            // store server is down, in which case the execute defers.
            if store_down {
                let attempts = snap.defer_attempts.entry(actor).or_insert(0);
                *attempts = attempts.saturating_add(1);
                let backoff = cfg.defer_backoff(*attempts);
                self.metrics.restores_deferred += 1;
                return SnapTouch::Defer(backoff);
            }
            snap.defer_attempts.remove(&actor);
            snap.cells.insert(
                actor,
                (
                    server as u32,
                    StateCell {
                        version: plan.version,
                        value: plan.value,
                    },
                ),
            );
            replayed = plan.replayed;
            blocking_ns +=
                cfg.restore_base_ns as f64 + cfg.restore_per_entry_ns as f64 * plan.replayed as f64;
            restore_ev = Some((plan.round, plan.version));
        }
        if cfg.is_write(u64::from(tag)) {
            let entry = snap
                .cells
                .entry(actor)
                .or_insert((server as u32, StateCell::default()));
            // Lazy capture: the first post-marker write at a marked
            // server snapshots the pre-write state, making the round a
            // consistent cut without ever stalling the actor.
            if let Some(round) = snap.round.as_mut() {
                if round.marked[server]
                    && entry.1.version > 0
                    && round.capture(actor, entry.1.version, entry.1.value, cfg.state_bytes)
                {
                    capture_ev = Some((round.id, entry.1.version));
                    cpu_ns += cfg.capture_cpu_ns;
                }
            }
            let version = entry.1.apply_write(actor);
            let value = entry.1.value;
            snap.store.append(actor, version, value);
            cpu_ns += cfg.journal_cpu_ns;
            write_ev = Some(version);
        }
        if restore_ev.is_some() {
            self.metrics.restores += 1;
            self.metrics.restore_replayed += replayed;
        }
        if capture_ev.is_some() {
            self.metrics.snap_captures += 1;
            self.metrics.snap_bytes += cfg.state_bytes;
        }
        if write_ev.is_some() {
            self.metrics.state_writes += 1;
        }
        if self.trace.enabled() {
            // Lifecycle events in causal order: restore before capture
            // before the write itself, all at the touch timestamp.
            if let Some((round, version)) = restore_ev {
                self.record_span(SpanEvent::instant(
                    actor,
                    HopKind::Restore,
                    server as u32,
                    (round << 40) | version,
                    now,
                ));
            }
            if let Some((round, version)) = capture_ev {
                self.record_span(SpanEvent::instant(
                    actor,
                    HopKind::SnapCapture,
                    server as u32,
                    (round << 40) | version,
                    now,
                ));
            }
            if let Some(version) = write_ev {
                self.record_span(SpanEvent::instant(
                    actor,
                    HopKind::StateWrite,
                    server as u32,
                    version,
                    now,
                ));
            }
        }
        SnapTouch::Proceed {
            cpu_ns,
            blocking_ns,
        }
    }

    /// Re-runs a hosted execute whose restore found the store server
    /// down: after the deterministic backoff the message re-enters this
    /// server's worker stage — or the failover retry path, if the server
    /// crashed while waiting.
    #[cold]
    fn snapshot_defer(
        &mut self,
        engine: &mut Engine<Cluster>,
        server: usize,
        msg: Message,
        backoff: Nanos,
    ) {
        engine.schedule_after(backoff, move |c: &mut Cluster, e| {
            if c.requests.get(msg.request.0).is_none() {
                c.metrics.zombie_branches += 1;
                return;
            }
            if c.failed[server] {
                c.schedule_retry(e, msg, server);
                return;
            }
            c.enqueue(
                e,
                server,
                StageKind::Worker.index(),
                StageItem::Execute(msg),
            );
        });
    }

    /// Read-only view of the durable snapshot store (`None` without
    /// `config.snapshot`) — what verification harnesses inspect.
    pub fn snapshot_store(&self) -> Option<&SnapshotStore> {
        self.snap.as_ref().map(|s| &s.store)
    }

    /// The in-memory state cell of `actor`, if the snapshot subsystem is
    /// on and the actor currently has one.
    pub fn state_cell(&self, actor: u64) -> Option<StateCell> {
        self.snap
            .as_ref()
            .and_then(|s| s.cells.get(&actor).map(|&(_, cell)| cell))
    }

    /// The lowest-numbered actor whose in-memory state cell disagrees with
    /// its durable image, as `(actor, memory version, durable version)` —
    /// `None` when every live cell matches the store, or snapshots are
    /// off. The store is ground truth under crash recovery (the journal is
    /// appended in the same touch that bumps the cell), so any divergence
    /// means a restore served lost or duplicated transitions. This is the
    /// check behind the chaos `crash_restore` audit fault.
    pub fn state_divergence(&self) -> Option<(u64, u64, u64)> {
        let snap = self.snap.as_ref()?;
        let mut actors: Vec<u64> = snap.cells.keys().copied().collect();
        actors.sort_unstable();
        for actor in actors {
            let (_, cell) = snap.cells[&actor];
            let durable = snap.store.restore(actor).map_or(0, |p| p.version);
            if cell.version != durable {
                return Some((actor, cell.version, durable));
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Telemetry (metric scrapes, SLO alerting, cost attribution).
    // ------------------------------------------------------------------

    /// Records a span through the cost-attribution wrapper. Call sites
    /// guard on `trace.enabled()` first, so tracer op counts equal spans
    /// recorded.
    #[inline]
    fn record_span(&mut self, ev: SpanEvent) {
        let t = self.attr.begin(Subsystem::Tracer);
        self.trace.record(ev);
        self.attr.end(Subsystem::Tracer, t);
    }

    /// Installs the sim-time metric scraper: every `config.obs`
    /// scrape-interval the registry mirrors the cluster counters, samples
    /// the per-server gauges, snapshots a frame, and feeds newly closed
    /// series bins to the SLO engine (online alerting). A no-op without
    /// `config.obs`; the horizon keeps the event queue drainable. Pair
    /// with [`Cluster::finalize_obs`] after the run.
    pub fn install_scraper(&self, engine: &mut Engine<Cluster>, horizon: Nanos) {
        let Some(obs) = &self.obs else {
            return;
        };
        schedule_scrape(engine, obs.interval(), horizon);
    }

    /// Takes one telemetry scrape at `now`. Driven by
    /// [`Cluster::install_scraper`]; public so harnesses with bespoke
    /// cadences can scrape directly.
    pub fn obs_scrape(&mut self, now: Nanos) {
        let Some(mut obs) = self.obs.take() else {
            return;
        };
        let t = self.attr.begin(Subsystem::Scrape);
        let per_server: Vec<(f64, f64)> = self
            .servers
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let queue: usize = s.queue_lengths().iter().sum();
                (queue as f64, if self.failed[i] { 0.0 } else { 1.0 })
            })
            .collect();
        if self.config.replication.is_some() {
            obs.set_replica_activations(self.directory.replica_count() as f64);
        }
        obs.scrape(now, &self.metrics, &per_server);
        for tr in obs.drain_slos(now, &self.metrics) {
            self.note_slo_transition(tr);
        }
        self.attr.end(Subsystem::Scrape, t);
        self.obs = Some(obs);
    }

    /// Feeds any series bins closed after the last scrape to the SLO
    /// engine. Call once when the run's horizon is reached.
    pub fn finalize_obs(&mut self, now: Nanos) {
        let Some(mut obs) = self.obs.take() else {
            return;
        };
        for tr in obs.drain_slos(now, &self.metrics) {
            self.note_slo_transition(tr);
        }
        self.obs = Some(obs);
    }

    /// Tallies an SLO alert transition and records its lifecycle trace
    /// event. The event timestamp is the close time of the bin that
    /// caused the transition, so online (legacy) and merge-time (sharded)
    /// evaluation emit identical events.
    pub(crate) fn note_slo_transition(&mut self, tr: SloTransition) {
        if tr.open {
            self.metrics.slo_alerts_opened += 1;
        } else {
            self.metrics.slo_alerts_closed += 1;
        }
        if self.trace.enabled() {
            // Lifecycle event: `request` carries the SLO spec index,
            // `aux` the series bin.
            self.record_span(SpanEvent::instant(
                tr.spec as u64,
                if tr.open {
                    HopKind::SloOpen
                } else {
                    HopKind::SloClose
                },
                NO_SERVER,
                tr.bin,
                Nanos::from_nanos(tr.t_ns),
            ));
        }
    }

    /// Adopts a registry merged across shard telemetry and evaluates the
    /// SLOs once over this (shell) cluster's merged series up to `now` —
    /// the sharded counterpart of online alerting. Alert tallies land in
    /// `metrics` and lifecycle trace events in `trace`, with the same
    /// bin-aligned timestamps the legacy path emits.
    pub fn adopt_merged_obs(&mut self, mut obs: Observability, now: Nanos) {
        let transitions = obs.drain_slos(now, &self.metrics);
        self.obs = Some(obs);
        for tr in transitions {
            self.note_slo_transition(tr);
        }
    }

    /// Resets steady-state measurement at the warmup boundary: announces
    /// the reset to the telemetry mirrors (registry counters must stay
    /// monotone) and then clears the request-scoped metrics.
    pub fn reset_steady_state(&mut self) {
        if let Some(obs) = self.obs.as_mut() {
            obs.note_reset(&self.metrics);
        }
        self.metrics.reset_steady_state();
    }

    /// Installs the detector-accuracy sampler: every `every` over
    /// `[start, until]`, each live observer's suspicion of every peer is
    /// compared against ground truth and tallied into
    /// [`Cluster::detector_accuracy`]. Read-only probes — the detector's
    /// transition state is untouched.
    pub fn install_accuracy_sampler(
        &self,
        engine: &mut Engine<Cluster>,
        start: Nanos,
        until: Nanos,
        every: Nanos,
    ) {
        schedule_accuracy_sample(engine, start, until, every);
    }

    /// The cluster-side cost-attribution accumulator (routing, sketch,
    /// detector, tracer, scrape). Merge into the engine's report for the
    /// full picture.
    pub fn cost_attr(&self) -> &CostAttr {
        &self.attr
    }

    // ------------------------------------------------------------------
    // Fault injection (what chaos plans drive).
    // ------------------------------------------------------------------

    /// Scales a server's CPU service rate: `< 1.0` makes it a straggler
    /// (or, near zero, a gray failure — it accepts messages and services
    /// them at a crawl); `1.0` restores full speed. Takes effect
    /// immediately, including for work already in progress.
    pub fn set_server_rate_factor(
        &mut self,
        engine: &mut Engine<Cluster>,
        server: usize,
        factor: f64,
    ) {
        let now = engine.now();
        self.servers[server].cpu.set_rate_factor(now, factor);
        self.sync_cpu(engine, server);
    }

    /// A server's current CPU rate factor.
    pub fn server_rate_factor(&self, server: usize) -> f64 {
        self.servers[server].cpu.rate_factor()
    }

    /// Installs (or replaces) a symmetric link degradation between `a` and
    /// `b`: every message and heartbeat crossing the pair pays
    /// `extra_delay` and is dropped with `drop_prob`.
    pub fn set_link_fault(&mut self, a: usize, b: usize, fault: LinkFault) {
        assert!(a != b, "a link fault needs two distinct servers");
        assert!(
            (0.0..=1.0).contains(&fault.drop_prob),
            "drop probability out of range"
        );
        self.link_faults.insert(link_key(a, b), fault);
    }

    /// Removes the link fault between `a` and `b` (no-op if none).
    pub fn clear_link_fault(&mut self, a: usize, b: usize) {
        self.link_faults.remove(&link_key(a, b));
    }

    /// The installed fault on the `a`–`b` link, if any.
    pub fn link_fault(&self, a: usize, b: usize) -> Option<LinkFault> {
        if self.link_faults.is_empty() {
            return None; // Fast path: fault-free runs never hash.
        }
        self.link_faults.get(&link_key(a, b)).copied()
    }

    /// Read-only probe of the failure detector: whether `observer` would
    /// suspect `peer` at `now`. `None` without a detector. Does not touch
    /// transition state, so accuracy samplers can compare suspicion with
    /// [`Cluster::is_failed`] ground truth without perturbing the run.
    pub fn detector_suspects(&self, observer: usize, peer: usize, now: Nanos) -> Option<bool> {
        self.detector
            .as_ref()
            .map(|d| d.would_suspect(observer, peer, now))
    }

    /// Number of migrations currently in transfer.
    pub fn migrations_in_flight(&self) -> usize {
        self.migrations_in_flight.len()
    }

    /// The first live server at or after `preferred` (wrapping), or `None`
    /// when every server has failed — callers shed instead of panicking on
    /// total cluster loss.
    pub fn try_next_live(&self, preferred: usize) -> Option<usize> {
        let n = self.servers.len();
        (0..n)
            .map(|i| (preferred + i) % n)
            .find(|&s| !self.failed[s])
    }

    /// Whether a server is currently failed.
    pub fn is_failed(&self, server: usize) -> bool {
        self.failed[server]
    }

    /// Crashes a server: its activations, queued messages, and in-progress
    /// work are lost. Virtual actors re-activate on a live server at their
    /// next message (Orleans' fault-tolerance model, §2); requests whose
    /// state died with the server complete via the client timeout.
    pub fn fail_server(&mut self, engine: &mut Engine<Cluster>, server: usize) {
        if self.failed[server] {
            return;
        }
        self.failed[server] = true;
        self.metrics.server_failures += 1;
        let at = engine.now();
        if self.trace.enabled() {
            self.record_span(SpanEvent::instant(
                0,
                HopKind::ServerFail,
                server as u32,
                0,
                at,
            ));
            self.trace
                .flight_dump(HopKind::ServerFail, 0, server as u32, at);
        }
        // Abort in-flight migrations touching the crashed server: the
        // transfer dies with an endpoint and the actor stays at its source
        // (where the source's own directory entry still points).
        if !self.migrations_in_flight.is_empty() {
            let mut aborted: Vec<u64> = self
                .migrations_in_flight
                .iter()
                .filter(|&(_, &(from, to))| from as usize == server || to as usize == server)
                .map(|(&actor, _)| actor)
                .collect();
            aborted.sort_unstable(); // Deterministic abort/trace order.
            for actor in aborted {
                let (from, to) = self
                    .migrations_in_flight
                    .remove(&actor)
                    .expect("collected above");
                self.metrics.migrations_aborted += 1;
                if self.trace.enabled() {
                    // Lifecycle event: `request` carries the actor id,
                    // `server` the source, `aux` the destination.
                    self.record_span(SpanEvent::instant(
                        actor,
                        HopKind::MigrationAbort,
                        from,
                        u64::from(to),
                        at,
                    ));
                }
            }
        }
        // Abort in-flight splits touching the crashed server, with the
        // same discipline: the transfer dies with an endpoint and no
        // replica ever appears.
        if !self.splits_in_flight.is_empty() {
            let mut aborted: Vec<u64> = self
                .splits_in_flight
                .iter()
                .filter(|&(_, &(from, to))| from as usize == server || to as usize == server)
                .map(|(&actor, _)| actor)
                .collect();
            aborted.sort_unstable(); // Deterministic abort/trace order.
            for actor in aborted {
                let (from, to) = self
                    .splits_in_flight
                    .remove(&actor)
                    .expect("collected above");
                self.metrics.splits_aborted += 1;
                if self.trace.enabled() {
                    // Lifecycle event: `request` carries the actor id,
                    // `server` the primary, `aux` the replica destination.
                    self.record_span(SpanEvent::instant(
                        actor,
                        HopKind::SplitAbort,
                        from,
                        u64::from(to),
                        at,
                    ));
                }
            }
        }
        // Snapshot subsystem: any crash aborts the open round — the dead
        // server was part of the cut, so the round can never commit as a
        // consistent one — and the dead server's in-memory state cells
        // die with it. Their durable journals and snapshots survive in
        // the store; restore replays them at the next touch.
        if self.snap.is_some() {
            let aborted = {
                let snap = self.snap.as_mut().expect("checked above");
                let mut dead: Vec<u64> = snap
                    .cells
                    .iter()
                    .filter(|&(_, &(host, _))| host as usize == server)
                    .map(|(&actor, _)| actor)
                    .collect();
                dead.sort_unstable(); // Deterministic drop order.
                for actor in dead {
                    snap.cells.remove(&actor);
                }
                snap.round.take().map(|r| r.id)
            };
            if let Some(id) = aborted {
                self.metrics.snap_rounds_aborted += 1;
                if self.trace.enabled() {
                    // Lifecycle event: `request` carries the round id,
                    // `server` the crash that killed it.
                    self.record_span(SpanEvent::instant(
                        id,
                        HopKind::SnapAbort,
                        server as u32,
                        0,
                        at,
                    ));
                }
            }
        }
        // With the legacy oracle the whole cluster learns of the crash
        // instantly: drop every activation the server hosted. (No location
        // hints: the server crashed, it had no chance to leave forwarding
        // state.) With a failure detector, knowledge travels through
        // missed heartbeats instead — stale directory entries linger until
        // suspicion repairs them, which is exactly the detection-lag cost
        // the chaos benchmarks measure.
        if self.detector.is_none() {
            if self.directory.has_replicas() {
                // Replica activations hosted on the crashed server die
                // with it, and so does every replica of an actor whose
                // primary it hosted (the primary's deactivation discards
                // the whole set) — all recorded as explicit drops so the
                // trace tells a complete replica-lifetime story.
                for actor in self.directory.replicas_on(server) {
                    self.drop_replica_actor(at, ActorId(actor), server);
                }
                for actor in self.directory.vertices_on(server) {
                    for r in self.directory.replicas_of(actor).to_vec() {
                        self.drop_replica_actor(at, ActorId(actor), r as usize);
                    }
                }
            }
            for actor in self.directory.vertices_on(server) {
                self.directory.remove(actor);
            }
        }
        // Lose in-memory state: queues, running tasks, sketches, caches.
        let threads = self.servers[server].thread_allocation();
        if let Some((_, id)) = self.servers[server].cpu_event.take() {
            engine.cancel(id);
        }
        let fresh = Server::new(
            server,
            &self.config.costs,
            self.config.initial_threads_per_stage,
            self.config.sketch_capacity,
        );
        self.servers[server] = fresh;
        let _ = threads; // The replacement process boots with defaults.
    }

    /// Brings a crashed server back (a fresh, empty process) at `now`. New
    /// activations flow to it through the placement policy; the partition
    /// agent rebalances actors onto it over time. The fresh process's
    /// detector rows are reset so it trusts every peer for one grace
    /// period instead of mass-suspecting the cluster at boot; peers keep
    /// suspecting *it* until its heartbeats resume.
    pub fn recover_server(&mut self, now: Nanos, server: usize) {
        self.failed[server] = false;
        if let Some(d) = self.detector.as_mut() {
            d.reset_observer(server, now);
        }
    }

    /// True when no request is in flight anywhere (drained).
    pub fn is_drained(&self) -> bool {
        self.requests.is_empty()
            && self.joins.is_empty()
            && self
                .servers
                .iter()
                .all(|s| s.running.is_empty() && s.stages.iter().all(|st| st.is_idle()))
    }
}

/// Schedules a server's next heartbeat round `delay` from now and, when
/// it fires, the one after — the same self-rescheduling, horizon-bounded
/// shape as the hiccup loop. The loop survives the server's crash (a dead
/// server just skips emission) so heartbeats resume on recovery.
fn schedule_heartbeat(
    engine: &mut Engine<Cluster>,
    server: usize,
    dc: DetectorConfig,
    delay: Nanos,
    horizon: Nanos,
) {
    if engine.now() + delay > horizon {
        return;
    }
    engine.schedule_after(delay, move |c: &mut Cluster, e| {
        if !c.failed[server] {
            c.emit_heartbeats(e, server, dc);
        }
        schedule_heartbeat(e, server, dc, dc.heartbeat_interval, horizon);
    });
}

/// Schedules a server's next split-detection tick `delay` from now and,
/// when it fires, the one after — the same self-rescheduling,
/// horizon-bounded shape as the heartbeat loop. The per-actor cooldown
/// map travels through the closure chain, so it needs no cluster field.
fn schedule_replication_tick(
    engine: &mut Engine<Cluster>,
    server: usize,
    rep: ReplicationConfig,
    mut cooldowns: FxHashMap<u64, Nanos>,
    delay: Nanos,
    horizon: Nanos,
) {
    if engine.now() + delay > horizon {
        return;
    }
    engine.schedule_after(delay, move |c: &mut Cluster, e| {
        c.replication_tick(e, server, &rep, &mut cooldowns);
        schedule_replication_tick(e, server, rep, cooldowns, rep.check_interval, horizon);
    });
}

/// Schedules the next snapshot round `delay` from now and, when it fires,
/// the one after — the same self-rescheduling, horizon-bounded shape as
/// the heartbeat loop. The loop outlives crashes (a round is simply
/// skipped while the store server is down), so rounds resume on recovery.
fn schedule_snapshot_round(engine: &mut Engine<Cluster>, delay: Nanos, horizon: Nanos) {
    if engine.now() + delay > horizon {
        return;
    }
    engine.schedule_after(delay, move |c: &mut Cluster, e| {
        c.snapshot_begin(e);
        let interval = c
            .snap
            .as_ref()
            .expect("loop only installed with snapshots")
            .cfg
            .interval;
        schedule_snapshot_round(e, interval, horizon);
    });
}

/// Schedules the next telemetry scrape `interval` from now and, when it
/// fires, the one after — the same self-rescheduling, horizon-bounded
/// shape as the heartbeat loop.
fn schedule_scrape(engine: &mut Engine<Cluster>, interval: Nanos, horizon: Nanos) {
    if engine.now() + interval > horizon {
        return;
    }
    engine.schedule_after(interval, move |c: &mut Cluster, e| {
        c.obs_scrape(e.now());
        schedule_scrape(e, interval, horizon);
    });
}

/// Schedules a detector-accuracy sample at absolute time `at` and, when it
/// fires, the next one `every` later while it stays within `until`.
fn schedule_accuracy_sample(engine: &mut Engine<Cluster>, at: Nanos, until: Nanos, every: Nanos) {
    engine.schedule(at, move |c: &mut Cluster, e| {
        let now = e.now();
        let t = c.attr.begin(Subsystem::Detector);
        c.detector_accuracy.samples += 1;
        let n = c.server_count();
        for obs in 0..n {
            if c.is_failed(obs) {
                continue; // A dead observer routes nothing.
            }
            for peer in 0..n {
                if peer == obs {
                    continue;
                }
                let suspected = c.detector_suspects(obs, peer, now).unwrap_or(false);
                match (suspected, c.is_failed(peer)) {
                    (true, true) => c.detector_accuracy.true_suspect += 1,
                    (true, false) => c.detector_accuracy.false_suspect += 1,
                    (false, true) => c.detector_accuracy.missed_failure += 1,
                    (false, false) => c.detector_accuracy.true_clear += 1,
                }
            }
        }
        c.attr.end(Subsystem::Detector, t);
        let next = at + every;
        if next <= until {
            schedule_accuracy_sample(e, next, until, every);
        }
    });
}

/// Schedules the next pause for `server` and, when it fires, the resume.
fn schedule_next_hiccup(
    engine: &mut Engine<Cluster>,
    server: usize,
    model: HiccupModel,
    mut rng: DetRng,
    horizon: Nanos,
) {
    let gap = Nanos::from_secs_f64(rng.exp(model.mean_interval.as_secs_f64()));
    if engine.now() + gap >= horizon {
        return;
    }
    engine.schedule_after(gap, move |c: &mut Cluster, e| {
        let pause = Nanos::from_nanos(
            rng.range_inclusive(
                model.min_pause.as_nanos(),
                model
                    .max_pause
                    .as_nanos()
                    .max(model.min_pause.as_nanos() + 1),
            ),
        );
        if !c.failed[server] {
            let now = e.now();
            c.servers[server].cpu.pause(now);
            c.sync_cpu(e, server);
        }
        engine_resume(e, server, pause);
        schedule_next_hiccup(e, server, model, rng, horizon);
    });
}

/// Schedules the next timeline sample and, when it fires, the one after:
/// the same self-rescheduling shape as the hiccup loop. `prev` carries the
/// per-server busy-core snapshots from the previous sample, so each bin's
/// utilization is exact.
fn schedule_next_timeline_sample(
    engine: &mut Engine<Cluster>,
    bin: Nanos,
    prev: Vec<f64>,
    horizon: Nanos,
) {
    if engine.now() + bin > horizon {
        return;
    }
    engine.schedule_after(bin, move |c: &mut Cluster, e| {
        let now = e.now();
        let since = now.saturating_sub(bin);
        let mut next_prev = Vec::with_capacity(c.servers.len());
        for (i, &prev_busy) in prev.iter().enumerate() {
            // Scope the `c.servers` borrow so the timeline push can
            // re-borrow `c` mutably.
            let s = &c.servers[i];
            next_prev.push(s.cpu.busy_core_ns());
            let sample = TimelineSample {
                at_ns: now.as_nanos(),
                server: i as u32,
                queue_len: s.queue_lengths().map(|q| q as u32),
                busy_threads: [
                    s.stages[0].busy() as u32,
                    s.stages[1].busy() as u32,
                    s.stages[2].busy() as u32,
                    s.stages[3].busy() as u32,
                ],
                threads: s.thread_allocation().map(|t| t as u32),
                utilization: s.cpu.utilization_since(prev_busy, since, now),
            };
            c.trace.timeline.push(sample);
        }
        schedule_next_timeline_sample(e, bin, next_prev, horizon);
    });
}

/// Schedules the resume event ending a pause.
fn engine_resume(engine: &mut Engine<Cluster>, server: usize, pause: Nanos) {
    engine.schedule_after(pause, move |c: &mut Cluster, e| {
        if !c.failed[server] && c.servers[server].cpu.is_paused() {
            let now = e.now();
            c.servers[server].cpu.resume(now);
            c.pump(e, server);
        }
    });
}

/// The root request of a queued stage item (for breakdown accounting).
fn item_request(item: &StageItem) -> RequestId {
    match item {
        StageItem::Deserialize(m) | StageItem::Execute(m) => m.request,
        StageItem::SerializeRemote { msg, .. } => msg.request,
        StageItem::SerializeClient { request, .. } => *request,
    }
}
