//! Identifiers used across the runtime.

use std::fmt;

/// A virtual actor identity. Actors are *virtual*: an id is valid before
/// any activation exists, and the runtime activates it on first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u64);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor-{}", self.0)
    }
}

/// An end-to-end client request.
///
/// The value is an *opaque slab handle* into the cluster's in-flight
/// request table (generation in the high 32 bits, slot in the low 32), not
/// a sequential counter: ids are unique among live requests, and a stale
/// id resolves to nothing, but slots are reused so values recur across a
/// run. Treat it as an identity token only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(pub u64);

/// A pending fan-out join awaiting sub-call replies.
///
/// Like [`RequestId`], an opaque generation-tagged slab handle into the
/// cluster's join table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CallId(pub u64);

/// The four SEDA stages of a server (§2, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Deserializes inbound remote messages and client requests.
    Receiver,
    /// Executes application logic (and response continuations).
    Worker,
    /// Serializes and sends messages to other servers.
    ServerSender,
    /// Serializes and sends responses back to clients.
    ClientSender,
}

impl StageKind {
    /// All stages, in pipeline order.
    pub const ALL: [StageKind; 4] = [
        StageKind::Receiver,
        StageKind::Worker,
        StageKind::ServerSender,
        StageKind::ClientSender,
    ];

    /// Stable index of the stage within a server's stage array.
    pub fn index(self) -> usize {
        match self {
            StageKind::Receiver => 0,
            StageKind::Worker => 1,
            StageKind::ServerSender => 2,
            StageKind::ClientSender => 3,
        }
    }

    /// Display name used in metrics and benches.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Receiver => "receiver",
            StageKind::Worker => "worker",
            StageKind::ServerSender => "server-sender",
            StageKind::ClientSender => "client-sender",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_stable_and_distinct() {
        let mut seen = [false; 4];
        for stage in StageKind::ALL {
            assert!(!seen[stage.index()]);
            seen[stage.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn actor_display() {
        assert_eq!(ActorId(7).to_string(), "actor-7");
    }
}
