//! Slab-backed, generation-tagged call tables for the routing hot path.
//!
//! The cluster's `joins` and `requests` tables used to be
//! `HashMap<u64, _>` keyed by a monotonically increasing counter — one
//! SipHash per resolve on the per-message path. [`SlabTable`] replaces
//! them with the pattern PR 1 established for the event heap: a slab with
//! a freelist, addressed by a handle packing `(generation << 32 | slot)`.
//! Resolving a handle is an array index plus a generation compare; a
//! handle whose slot has since been freed (and possibly reused) fails the
//! generation check and resolves to `None`, exactly like a missing
//! `HashMap` key — the property the request-timeout and stale-response
//! paths rely on.
//!
//! Handles are *not* sequential: slots are reused aggressively, so the
//! table stays as small as the peak number of concurrently live entries.
//! Nothing on the steady-state path allocates — `insert` only grows the
//! slab when the live population hits a new high-water mark.

/// One slab slot: the live value (if any) and the slot's reuse count.
#[derive(Debug, Clone, Default)]
struct Slot<T> {
    /// Incremented on every free, so stale handles never alias.
    generation: u32,
    value: Option<T>,
}

/// A slab with freelist and generation-tagged `u64` handles.
#[derive(Debug, Clone, Default)]
pub struct SlabTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

/// Packs a slot index and generation into a handle.
#[inline]
fn handle(slot: u32, generation: u32) -> u64 {
    ((generation as u64) << 32) | slot as u64
}

/// The slot index of a handle.
#[inline]
fn slot_of(handle: u64) -> usize {
    (handle & 0xffff_ffff) as usize
}

/// The generation of a handle.
#[inline]
fn gen_of(handle: u64) -> u32 {
    (handle >> 32) as u32
}

impl<T> SlabTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        SlabTable {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a value, returning its handle.
    pub fn insert(&mut self, value: T) -> u64 {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.value.is_none(), "freelist slot still occupied");
            s.value = Some(value);
            handle(slot, s.generation)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slab slot fits u32");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            handle(slot, 0)
        }
    }

    /// Resolves a handle to its value: an index plus a generation check.
    #[inline]
    pub fn get(&self, h: u64) -> Option<&T> {
        let s = self.slots.get(slot_of(h))?;
        if s.generation != gen_of(h) {
            return None;
        }
        s.value.as_ref()
    }

    /// Mutable resolve.
    #[inline]
    pub fn get_mut(&mut self, h: u64) -> Option<&mut T> {
        let s = self.slots.get_mut(slot_of(h))?;
        if s.generation != gen_of(h) {
            return None;
        }
        s.value.as_mut()
    }

    /// Removes and returns the value for a live handle; `None` when the
    /// handle is stale (slot freed, possibly reused under a newer
    /// generation) — the caller-visible behavior of a missing map key.
    pub fn remove(&mut self, h: u64) -> Option<T> {
        let slot = slot_of(h);
        let s = self.slots.get_mut(slot)?;
        if s.generation != gen_of(h) {
            return None;
        }
        let value = s.value.take()?;
        // Wrapping: a handle must survive 2^32 reuses of its slot to
        // alias, far beyond any plausible in-flight lifetime.
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        Some(value)
    }

    /// Drops every live entry for which `keep` returns false, freeing its
    /// slot (generation bumped, handle invalidated). Scans slots in index
    /// order, so freelist contents stay deterministic. O(slots) — meant
    /// for rare bulk purges (a request timing out abandons all its joins),
    /// never the per-message path.
    pub fn retain(&mut self, mut keep: impl FnMut(&mut T) -> bool) {
        for (slot, s) in self.slots.iter_mut().enumerate() {
            let drop_it = match s.value.as_mut() {
                Some(v) => !keep(v),
                None => false,
            };
            if drop_it {
                s.value = None;
                s.generation = s.generation.wrapping_add(1);
                self.free.push(slot as u32);
                self.live -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: SlabTable<&str> = SlabTable::new();
        let a = t.insert("a");
        let b = t.insert("b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), Some(&"a"));
        assert_eq!(t.get_mut(b).map(|v| *v), Some("b"));
        assert_eq!(t.remove(a), Some("a"));
        assert_eq!(t.get(a), None, "removed handle resolves to nothing");
        assert_eq!(t.remove(a), None, "double remove is a no-op");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.remove(b), Some("b"));
        assert!(t.is_empty());
    }

    #[test]
    fn reused_slot_does_not_alias_stale_handle() {
        let mut t: SlabTable<u32> = SlabTable::new();
        let a = t.insert(1);
        t.remove(a);
        let b = t.insert(2); // Reuses slot 0 under generation 1.
        assert_eq!(super::slot_of(a), super::slot_of(b));
        assert_ne!(a, b);
        assert_eq!(t.get(a), None, "stale generation must miss");
        assert_eq!(t.get(b), Some(&2));
        assert_eq!(t.remove(a), None);
        assert_eq!(t.get(b), Some(&2), "stale remove must not free the slot");
    }

    #[test]
    fn freelist_bounds_slab_growth() {
        let mut t: SlabTable<u64> = SlabTable::new();
        for round in 0..100u64 {
            let hs: Vec<u64> = (0..4).map(|i| t.insert(round * 4 + i)).collect();
            for h in hs {
                assert!(t.remove(h).is_some());
            }
        }
        assert!(t.slots.len() <= 4, "slab grew past peak live population");
        assert!(t.is_empty());
    }

    #[test]
    fn out_of_range_handle_misses() {
        let t: SlabTable<u8> = SlabTable::new();
        assert_eq!(t.get(12345), None);
    }

    #[test]
    fn retain_frees_and_invalidates() {
        let mut t: SlabTable<u32> = SlabTable::new();
        let odd = t.insert(1);
        let even = t.insert(2);
        let odd2 = t.insert(3);
        t.retain(|v| *v % 2 == 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(odd), None);
        assert_eq!(t.get(odd2), None);
        assert_eq!(t.get(even), Some(&2));
        // Freed slots are reusable and do not alias the dropped handles.
        let fresh = t.insert(9);
        assert_ne!(fresh, odd);
        assert_ne!(fresh, odd2);
        assert_eq!(t.get(odd), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn retain_all_or_nothing() {
        let mut t: SlabTable<u32> = SlabTable::new();
        let hs: Vec<u64> = (0..5).map(|i| t.insert(i)).collect();
        t.retain(|_| true);
        assert_eq!(t.len(), 5);
        for (i, h) in hs.iter().enumerate() {
            assert_eq!(t.get(*h), Some(&(i as u32)));
        }
        t.retain(|_| false);
        assert!(t.is_empty());
        for h in hs {
            assert_eq!(t.get(h), None);
        }
    }

    mod props {
        use super::super::SlabTable;
        use proptest::prelude::*;
        use std::collections::HashMap;

        proptest! {
            /// Differential vs the `HashMap<u64, V>` the cluster's call
            /// tables used to be: live handles resolve to their value,
            /// dead handles (including every handle whose slot was since
            /// reused) behave exactly like missing map keys, and the live
            /// count always agrees.
            #[test]
            fn slab_matches_hashmap_and_never_aliases(
                ops in proptest::collection::vec((any::<bool>(), any::<u16>()), 0..300),
            ) {
                let mut slab: SlabTable<u64> = SlabTable::new();
                let mut reference: HashMap<u64, u64> = HashMap::new();
                let mut issued: Vec<u64> = Vec::new(); // every handle ever returned
                let mut next_value = 0u64;
                for (is_insert, pick) in ops {
                    if is_insert || issued.is_empty() {
                        let h = slab.insert(next_value);
                        prop_assert!(
                            !issued.contains(&h),
                            "handle {h} issued twice — generation aliasing"
                        );
                        reference.insert(h, next_value);
                        issued.push(h);
                        next_value += 1;
                    } else {
                        // Remove an arbitrary previously issued handle —
                        // often already dead, exercising stale paths.
                        let h = issued[pick as usize % issued.len()];
                        prop_assert_eq!(slab.remove(h), reference.remove(&h));
                    }
                    prop_assert_eq!(slab.len(), reference.len());
                    prop_assert_eq!(slab.is_empty(), reference.is_empty());
                    for h in &issued {
                        prop_assert_eq!(slab.get(*h), reference.get(h));
                    }
                }
            }
        }
    }
}
