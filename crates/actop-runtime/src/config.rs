//! Runtime configuration.

use actop_obs::{SloKind, SloSpec};
use actop_partition::{RepartitionPolicyKind, SplitThresholds};
use actop_sim::{CostModel, Nanos};
use actop_snapshot::SnapshotConfig;
use actop_trace::TraceConfig;

use crate::detector::DetectorConfig;
use crate::placement::PlacementPolicy;

/// Telemetry configuration: typed metric scraping on a sim-time cadence
/// plus declarative SLO alerting over the cluster's binned series.
///
/// `None` (the default) leaves every telemetry hook at a single branch and
/// draws no randomness, so golden-fingerprint tests are unaffected.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Sim-time interval between registry scrapes.
    pub scrape_interval: Nanos,
    /// Ring-buffer capacity for retained scrape frames; when a run
    /// produces more scrapes than this, the oldest frames drop (and the
    /// drop count is reported).
    pub ring_capacity: usize,
    /// Declarative SLOs, evaluated online as series bins close. Latency
    /// and goodput objectives read the end-to-end latency series;
    /// rate-ceiling objectives read the false-suspicion series.
    pub slos: Vec<SloSpec>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            scrape_interval: Nanos::from_secs(1),
            ring_capacity: 4096,
            slos: vec![SloSpec::new(
                "latency_mean_100ms",
                SloKind::MeanLatencyBelowMs(100.0),
            )],
        }
    }
}

/// Stop-the-world pause model (.NET garbage collection and similar
/// runtime hiccups). The paper's heavy latency tails (baseline p99 of
/// 736 ms against a 41 ms median) ride on such pauses; the simulator can
/// reproduce them with this optional model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiccupModel {
    /// Mean interval between pauses per server (exponential).
    pub mean_interval: Nanos,
    /// Minimum pause duration (uniform draw).
    pub min_pause: Nanos,
    /// Maximum pause duration.
    pub max_pause: Nanos,
}

impl HiccupModel {
    /// A .NET-era server-GC profile: a pause every ~2 s on average,
    /// lasting 20–80 ms.
    pub fn dotnet_gc() -> Self {
        HiccupModel {
            mean_interval: Nanos::from_secs(2),
            min_pause: Nanos::from_millis(20),
            max_pause: Nanos::from_millis(80),
        }
    }
}

/// Transport retry policy: what a sender does when a delivery dies with a
/// crashed destination or a dropped packet. Exponential backoff with
/// deterministic jitter and a per-message attempt budget; an exhausted
/// budget leaves the root request to its client timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First backoff delay; attempt `k` waits `base * 2^(k-1)`.
    pub base_backoff: Nanos,
    /// Backoff cap.
    pub max_backoff: Nanos,
    /// Jitter as a fraction of the backoff, drawn deterministically from
    /// the fault RNG stream (`0.0` disables jitter).
    pub jitter: f64,
    /// Retry budget per message. `0` disables retries entirely.
    pub max_attempts: u8,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff: Nanos::from_millis(1),
            max_backoff: Nanos::from_millis(50),
            jitter: 0.5,
            max_attempts: 4,
        }
    }
}

/// Hot-actor replication: split read-mostly hotspots across replicas
/// instead of migrating them (the celebrity / flash-crowd regime, where
/// one actor's demand exceeds any single server's capacity).
///
/// `None` (the default) keeps the single-activation model and every hot
/// path at one branch, so golden-fingerprint tests are unaffected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationConfig {
    /// Bitmask of read-only application tags: bit `t` set means requests
    /// with `tag == t` are side-effect-free and may execute at any
    /// replica. Tags ≥ 64 are always treated as writes.
    pub read_tags: u64,
    /// Split/drop thresholds (capacity fraction, hysteresis, replica cap).
    pub thresholds: SplitThresholds,
    /// Sim-time interval between per-server hot-actor checks. Also the
    /// detection window the load sketch accumulates over.
    pub check_interval: Nanos,
    /// Minimum interval between decisions for one actor. Replica churn is
    /// as costly as migration churn; a cooldown of several windows rides
    /// out flash-crowd ramps.
    pub cooldown: Nanos,
    /// Ignore sketch entries below this guaranteed service demand per
    /// window — noise floor for the heavy-hitter scan.
    pub min_load_ns: u64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            read_tags: 0b1,
            thresholds: SplitThresholds::default(),
            check_interval: Nanos::from_secs(1),
            cooldown: Nanos::from_secs(3),
            min_load_ns: 1_000_000,
        }
    }
}

impl ReplicationConfig {
    /// True if requests with this tag are read-only under the mask.
    #[inline]
    pub fn is_read(&self, tag: u64) -> bool {
        tag < 64 && (self.read_tags >> tag) & 1 == 1
    }
}

/// Configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of servers (the paper's testbed: 10).
    pub servers: usize,
    /// The cost model (cores, serialization, network, context switching).
    pub costs: CostModel,
    /// Placement policy for new activations.
    pub placement: PlacementPolicy,
    /// Initial threads per SEDA stage. Orleans' default is one thread per
    /// stage per core (§3), i.e. `cores_per_server`.
    pub initial_threads_per_stage: usize,
    /// Run seed; all randomness derives from it.
    pub seed: u64,
    /// Record the per-stage latency breakdown (Fig. 4). Off by default —
    /// it adds per-event accounting.
    pub record_breakdown: bool,
    /// Record remote-call (server-to-server) latencies (Fig. 10c).
    pub record_remote_call_latency: bool,
    /// Capacity of each server's Space-Saving edge sketch (§4.3).
    pub sketch_capacity: usize,
    /// A server rejects new client requests when its receiver queue exceeds
    /// this length (overload shedding; drives the peak-throughput
    /// experiment).
    pub max_receiver_queue: usize,
    /// Width of the time bins used by rate-over-time metrics, nanoseconds.
    pub series_bin_ns: u64,
    /// Client-request timeout. Required for failure-injection runs: a
    /// request whose response was lost to a server crash completes as
    /// `timed_out` instead of leaking. `None` disables timeouts.
    pub request_timeout: Option<Nanos>,
    /// Optional stop-the-world pause model (GC hiccups). `None` disables
    /// pauses (the calibrated default; see DESIGN.md §5).
    pub hiccups: Option<HiccupModel>,
    /// Optional causal request tracing + flight recorder. `None` (the
    /// default) leaves every instrumentation hook at a single branch.
    pub trace: Option<TraceConfig>,
    /// Optional heartbeat-based failure detector. `None` (the default)
    /// keeps the legacy instant-membership model: routing consults ground
    /// truth and `fail_server` purges the directory synchronously. `Some`
    /// makes failure knowledge travel through heartbeats — routing
    /// consults per-server *suspicion*, with detection lag and false
    /// positives. Pair with [`Cluster::install_heartbeats`].
    ///
    /// [`Cluster::install_heartbeats`]: crate::Cluster::install_heartbeats
    pub detector: Option<DetectorConfig>,
    /// Transport retry policy for deliveries that die with a crashed
    /// destination or a dropped packet.
    pub retry: RetryPolicy,
    /// Optional migration transfer time. `None` (the default) keeps
    /// migrations instantaneous; `Some` holds the actor at its source for
    /// the transfer window, during which a crash of either endpoint
    /// aborts the migration cleanly back to the source.
    pub migration_transfer: Option<Nanos>,
    /// Optional telemetry: metric scrapes + SLO alerting. `None` (the
    /// default) disables all of it. Pair with
    /// [`Cluster::install_scraper`](crate::Cluster::install_scraper) (or
    /// the sharded equivalent) to drive scrapes on sim time.
    pub obs: Option<ObsConfig>,
    /// Optional hot-actor replication: detect actors whose sustained
    /// demand exceeds a fraction of one server's capacity and split them
    /// across read replicas. `None` (the default) keeps the
    /// single-activation model. Pair with
    /// [`Cluster::install_replication`](crate::Cluster::install_replication)
    /// (or the sharded equivalent) to drive detection ticks.
    pub replication: Option<ReplicationConfig>,
    /// Optional asynchronous actor snapshots + stateful crash recovery.
    /// `None` (the default) gives actors no durable state and keeps every
    /// snapshot hook at a single branch, so golden-fingerprint tests are
    /// unaffected. `Some` gives each touched actor a versioned state cell
    /// mutated by write-tagged requests, journals every write durably,
    /// runs coordinator-initiated non-blocking snapshot rounds, and
    /// rehydrates re-placed actors after a crash. Pair with
    /// [`Cluster::install_snapshots`](crate::Cluster::install_snapshots)
    /// (or the sharded equivalent) to drive rounds on sim time.
    pub snapshot: Option<SnapshotConfig>,
    /// Opt-in coarse cost attribution: exact per-subsystem op counts plus
    /// sampled wall time for routing, sketch, detector, tracer and scrape
    /// work (heap costs live on the engine). Off by default — wall
    /// sampling is machine-dependent and excluded from deterministic
    /// artifacts.
    pub cost_attr: bool,
    /// Which online repartitioning policy the partition agent drives
    /// (`ACTOP_POLICY` in the bench harness). The default is the paper's
    /// pairwise exchange protocol, byte-identical to the pre-policy
    /// runtime.
    pub repartition: RepartitionPolicyKind,
}

impl RuntimeConfig {
    /// The paper's testbed shape: ten 8-core servers, Orleans default
    /// thread allocation, random placement.
    pub fn paper_testbed(seed: u64) -> Self {
        let costs = CostModel::calibrated();
        RuntimeConfig {
            servers: 10,
            initial_threads_per_stage: costs.cores_per_server,
            costs,
            placement: PlacementPolicy::Random,
            seed,
            record_breakdown: false,
            record_remote_call_latency: false,
            sketch_capacity: 16_384,
            max_receiver_queue: 20_000,
            series_bin_ns: 60 * 1_000_000_000, // One-minute bins, as Fig. 10a.
            request_timeout: None,
            hiccups: None,
            trace: None,
            detector: None,
            retry: RetryPolicy::default(),
            migration_transfer: None,
            obs: None,
            replication: None,
            snapshot: None,
            cost_attr: false,
            repartition: RepartitionPolicyKind::default(),
        }
    }

    /// A single-server configuration (Heartbeat / counter experiments).
    pub fn single_server(seed: u64) -> Self {
        RuntimeConfig {
            servers: 1,
            ..Self::paper_testbed(seed)
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate settings; configurations are build-time inputs,
    /// not runtime data.
    pub fn validate(&self) {
        assert!(self.servers > 0, "need at least one server");
        assert!(self.initial_threads_per_stage > 0, "need threads per stage");
        assert!(self.sketch_capacity > 0, "need a sketch capacity");
        assert!(self.max_receiver_queue > 0, "need a queue bound");
        assert!(self.series_bin_ns > 0, "need a series bin width");
        assert!(
            (0.0..=1.0).contains(&self.retry.jitter),
            "retry jitter must be a fraction"
        );
        if let Some(o) = &self.obs {
            assert!(o.scrape_interval > Nanos::ZERO, "need a scrape interval");
            assert!(o.ring_capacity > 0, "need frame ring capacity");
        }
        if let Some(r) = self.replication {
            r.thresholds.validate();
            assert!(r.check_interval > Nanos::ZERO, "need a check interval");
            assert!(
                r.cooldown >= r.check_interval,
                "a cooldown shorter than one window cannot damp churn"
            );
        }
        if let Some(s) = self.snapshot {
            s.validate(self.servers);
            if let Some(r) = self.replication {
                assert!(
                    s.write_tags & r.read_tags == 0,
                    "a tag cannot be both a snapshot write and a replication read"
                );
            }
        }
        if let Some(d) = self.detector {
            assert!(
                d.heartbeat_interval > Nanos::ZERO,
                "need a heartbeat interval"
            );
            assert!(
                d.suspect_after >= d.heartbeat_interval,
                "suspecting inside one heartbeat interval flaps constantly"
            );
            assert!(
                d.heartbeat_process_ns >= 0.0,
                "negative heartbeat emission cost"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let cfg = RuntimeConfig::paper_testbed(1);
        cfg.validate();
        assert_eq!(cfg.servers, 10);
        assert_eq!(cfg.costs.cores_per_server, 8);
        assert_eq!(cfg.initial_threads_per_stage, 8);
        assert_eq!(cfg.placement, PlacementPolicy::Random);
    }

    #[test]
    fn single_server_overrides_count() {
        let cfg = RuntimeConfig::single_server(1);
        cfg.validate();
        assert_eq!(cfg.servers, 1);
    }
}
