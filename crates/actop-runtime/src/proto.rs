//! Internal message-protocol types.
//!
//! These never appear in the public API: applications speak [`crate::app`]
//! types, and workload drivers speak [`crate::cluster::Cluster`] methods.

use actop_sim::Nanos;

use crate::app::Reaction;
use crate::ids::{ActorId, CallId, RequestId};

/// Whom a reply goes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplyTarget {
    /// The external client that issued the root request.
    Client(RequestId),
    /// A pending fan-out join at some actor.
    Join(CallId),
}

/// Message kind: a request to be handled or a response to a pending call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MsgKind {
    /// Invoke the target actor's handler; reply to `reply_to`.
    Request {
        /// Reply destination.
        reply_to: ReplyTarget,
    },
    /// A sub-call's reply, to be folded into the join `target`.
    Response {
        /// The join this response resolves into.
        target: CallId,
    },
}

/// A message traveling between actors (or from a client gateway).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Message {
    /// Destination actor.
    pub to: ActorId,
    /// Application tag (requests only; 0 for responses).
    pub tag: u32,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Request or response.
    pub kind: MsgKind,
    /// The root client request this message descends from.
    pub request: RequestId,
    /// When the logical call was issued (for remote-call latency).
    pub issued_at: Nanos,
    /// Whether this delivery crossed servers (drives deserialize cost and
    /// the local-copy rule).
    pub delivered_remotely: bool,
    /// The sending actor, if any (`None` for client-originated requests).
    pub from_actor: Option<ActorId>,
    /// True once the message has been forwarded at least once (forwarded
    /// hops are excluded from edge statistics and the remote-share metric).
    pub forwarded: bool,
    /// True when the *original* call crossed servers — propagated into the
    /// response so remote-call latency is attributed correctly.
    pub call_was_remote: bool,
    /// Transport delivery attempts consumed by backoff retries (crashed
    /// destinations, dropped packets). Bounds the retry budget per message.
    pub attempts: u8,
    /// Times this message has been re-routed (forwards, failovers). Caps
    /// forward loops under split-brain routing: saturates and the message
    /// is dropped rather than ping-ponging forever.
    pub hops: u8,
}

/// An item sitting in a SEDA stage queue.
#[derive(Debug, Clone)]
pub(crate) enum StageItem {
    /// Receiver: deserialize an inbound message.
    Deserialize(Message),
    /// Worker: execute a request handler or a response continuation.
    Execute(Message),
    /// Server sender: serialize and transmit to another server.
    SerializeRemote {
        /// Destination server.
        dst: usize,
        /// The message to ship.
        msg: Message,
    },
    /// Client sender: serialize a response back to the client.
    SerializeClient {
        /// The completed request.
        request: RequestId,
        /// Response payload size.
        bytes: u64,
    },
}

/// What happens when a stage task's compute (and blocking wait) finishes.
#[derive(Debug, Clone)]
pub(crate) enum PostAction {
    /// Receiver finished deserializing: hand the message to the worker.
    RouteToWorker(Message),
    /// Worker finished a request handler: apply its reaction.
    ApplyRequest {
        /// The processed request message.
        msg: Message,
        /// The handler's decision (captured when the task started).
        reaction: Reaction,
    },
    /// Worker finished a response continuation: fold into the join.
    ApplyResponse(Message),
    /// Worker found the target actor is not hosted here: re-route.
    Forward(Message),
    /// Server sender finished serializing: put the message on the wire.
    NetSend {
        /// Destination server.
        dst: usize,
        /// The message on the wire.
        msg: Message,
    },
    /// Client sender finished serializing: the response leaves the cluster.
    ClientReply {
        /// The completed request.
        request: RequestId,
        /// Response payload size (drives the network delay).
        bytes: u64,
    },
    /// Worker found the target actor needs a snapshot restore but the
    /// store server is down: re-run the execute after a deterministic
    /// backoff instead of serving with lost state.
    SnapshotDefer {
        /// The message whose execution is deferred.
        msg: Message,
        /// Deterministic backoff before the re-run.
        backoff: Nanos,
    },
}

/// A task currently executing on a server's CPU.
#[derive(Debug, Clone)]
pub(crate) struct RunningTask {
    /// Stage index the task belongs to.
    pub stage: usize,
    /// Action to apply at completion.
    pub post: PostAction,
    /// When the task started (thread picked it up).
    pub started: Nanos,
    /// Pure CPU demand, nanoseconds.
    pub cpu_ns: f64,
    /// Synchronous blocking time after compute, nanoseconds.
    pub wait_ns: f64,
    /// Root request, for breakdown accounting.
    pub request: RequestId,
}

/// A pending fan-out join.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingJoin {
    /// Whom to reply to when the join completes.
    pub reply_to: ReplyTarget,
    /// The actor that issued the fan-out (the reply comes "from" it).
    pub actor: ActorId,
    /// Outstanding sub-replies.
    pub remaining: usize,
    /// Reply payload size.
    pub reply_bytes: u64,
    /// Root request.
    pub request: RequestId,
    /// When the original request handler issued the fan-out.
    pub issued_at: Nanos,
    /// Whether the original inbound call was remote.
    pub call_was_remote: bool,
}

/// Per-request bookkeeping for end-to-end latency and breakdown residuals.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RequestMeta {
    /// Submission time at the client.
    pub start: Nanos,
    /// Nanoseconds already attributed to named breakdown components.
    pub accounted_ns: f64,
    /// The gateway server the request entered through (names the flight
    /// ring to dump when the request times out).
    pub gateway: u32,
}
