//! Per-server state: the SEDA pipeline, the shared CPU, and local caches.

use actop_sim::{CostModel, CpuTaskId, EventId, Nanos, PsCpu, StagePool};
use actop_sketch::{FxHashMap, SpaceSaving};

use crate::ids::{ActorId, StageKind};
use crate::proto::{RunningTask, StageItem};

/// Per-stage measurement window: wallclock and CPU time of completed
/// events, feeding the §5.4 estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageWindow {
    /// Events completed in the window.
    pub completions: u64,
    /// Sum of per-event wallclock time (start to finish), nanoseconds.
    pub sum_wallclock_ns: f64,
    /// Sum of per-event CPU demand, nanoseconds.
    pub sum_cpu_ns: f64,
}

/// One simulated Orleans server.
pub struct Server {
    /// Server index.
    pub id: usize,
    /// The shared-core processor all stage threads run on.
    pub cpu: PsCpu,
    /// The four SEDA stages, indexed by [`StageKind::index`].
    pub(crate) stages: [StagePool<StageItem>; 4],
    /// The pending CPU-completion event, if any.
    pub(crate) cpu_event: Option<(Nanos, EventId)>,
    /// Tasks currently on the CPU (or in their blocking wait). Fx-hashed:
    /// iteration order is never observed, only point lookups.
    pub(crate) running: FxHashMap<CpuTaskId, RunningTask>,
    /// The server's heavy-edge sample: `(local actor, peer actor) -> msgs`.
    pub edge_sketch: SpaceSaving<(ActorId, ActorId)>,
    /// Location hints left behind by migrations (§4.3). Fx-hashed for the
    /// same reason as `running`.
    pub(crate) location_cache: FxHashMap<ActorId, usize>,
    /// Per-stage estimator windows.
    pub(crate) windows: [StageWindow; 4],
    /// Nanosecond timestamp of the last exchange this server took part in
    /// (the §4.2 cooldown).
    pub last_exchange_ns: Option<u64>,
    /// Per-actor service-demand sample over the current replication
    /// detection window: `actor -> cpu ns`. Offered only when hot-actor
    /// replication is enabled; cleared at every detection tick.
    pub load_sketch: SpaceSaving<ActorId>,
}

/// Bound on location-cache entries; reaching it evicts the whole cache
/// ("old cached location values are evicted in order to maintain low space
/// overhead", §4.3).
const LOCATION_CACHE_CAP: usize = 65_536;

impl Server {
    /// Creates a server with every stage at `threads_per_stage` threads.
    pub fn new(
        id: usize,
        costs: &CostModel,
        threads_per_stage: usize,
        sketch_capacity: usize,
    ) -> Self {
        let mut cpu = PsCpu::new(costs.cores_per_server, costs.ctx_switch_coeff);
        cpu.set_configured_threads(Nanos::ZERO, 4 * threads_per_stage);
        Server {
            id,
            cpu,
            stages: [
                StagePool::new(StageKind::Receiver.name(), threads_per_stage),
                StagePool::new(StageKind::Worker.name(), threads_per_stage),
                StagePool::new(StageKind::ServerSender.name(), threads_per_stage),
                StagePool::new(StageKind::ClientSender.name(), threads_per_stage),
            ],
            cpu_event: None,
            running: FxHashMap::default(),
            edge_sketch: SpaceSaving::new(sketch_capacity),
            location_cache: FxHashMap::default(),
            windows: [StageWindow::default(); 4],
            last_exchange_ns: None,
            load_sketch: SpaceSaving::new(sketch_capacity),
        }
    }

    /// Current thread allocation, in stage order.
    pub fn thread_allocation(&self) -> [usize; 4] {
        [
            self.stages[0].threads(),
            self.stages[1].threads(),
            self.stages[2].threads(),
            self.stages[3].threads(),
        ]
    }

    /// Current queue lengths, in stage order.
    pub fn queue_lengths(&self) -> [usize; 4] {
        [
            self.stages[0].queue_len(),
            self.stages[1].queue_len(),
            self.stages[2].queue_len(),
            self.stages[3].queue_len(),
        ]
    }

    /// Inserts a location hint, evicting everything when the cache is full.
    pub(crate) fn cache_location(&mut self, actor: ActorId, server: usize) {
        if self.location_cache.len() >= LOCATION_CACHE_CAP {
            self.location_cache.clear();
        }
        self.location_cache.insert(actor, server);
    }

    /// Looks up (and consumes) a location hint.
    pub(crate) fn take_location_hint(&mut self, actor: &ActorId) -> Option<usize> {
        self.location_cache.remove(actor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_server_shape() {
        let costs = CostModel::calibrated();
        let s = Server::new(3, &costs, 8, 128);
        assert_eq!(s.id, 3);
        assert_eq!(s.thread_allocation(), [8, 8, 8, 8]);
        assert_eq!(s.queue_lengths(), [0, 0, 0, 0]);
        assert_eq!(s.cpu.cores(), costs.cores_per_server);
    }

    #[test]
    fn location_cache_hint_roundtrip() {
        let costs = CostModel::calibrated();
        let mut s = Server::new(0, &costs, 1, 16);
        s.cache_location(ActorId(7), 4);
        assert_eq!(s.take_location_hint(&ActorId(7)), Some(4));
        assert_eq!(s.take_location_hint(&ActorId(7)), None, "hint consumed");
    }
}
