//! Heartbeat-based failure detection.
//!
//! Real clusters have no oracle: a server learns that a peer died only by
//! *not hearing from it*. [`FailureDetector`] keeps, per (observer, peer)
//! pair, the sim-time of the last heartbeat heard; a peer silent for
//! longer than [`DetectorConfig::suspect_after`] is *suspected*. Routing
//! and forwarding consult suspicion, not ground truth, so detection lag,
//! false suspicion under stragglers (a loaded server heartbeats late),
//! and flapping become real, measurable effects.
//!
//! The detector is a fixed-timeout detector — the degenerate phi-accrual
//! detector with a single threshold. State is two flat `n × n` vectors
//! (last-heard time and cached suspicion), so a suspicion check on the
//! per-message routing path is two array reads. Suspicion transitions are
//! detected lazily at [`FailureDetector::check`] time and eagerly at
//! [`FailureDetector::heard`] time, and reported to the caller so the
//! cluster can count and trace them.

use actop_sim::Nanos;

/// Heartbeat / suspicion tuning. See DESIGN.md §9 for the defaults'
/// rationale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// How often every live server sends a heartbeat to every peer.
    pub heartbeat_interval: Nanos,
    /// Silence longer than this marks a peer suspected. Should be several
    /// heartbeat intervals so one delayed or dropped heartbeat does not
    /// flap the detector.
    pub suspect_after: Nanos,
    /// Heartbeat payload size (drives the network-model delay draw).
    pub heartbeat_bytes: u64,
    /// Baseline CPU time to emit a heartbeat round, nanoseconds. The
    /// actual emission lag is this value scaled by the sender's current
    /// CPU slowdown, so stragglers and gray-failing servers heartbeat
    /// late — the mechanism behind false suspicion.
    pub heartbeat_process_ns: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            heartbeat_interval: Nanos::from_millis(10),
            suspect_after: Nanos::from_millis(50),
            heartbeat_bytes: 64,
            heartbeat_process_ns: 20_000.0,
        }
    }
}

/// A suspicion-state transition observed by a detector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The peer crossed the silence threshold and is now suspected.
    Suspected,
    /// A heartbeat arrived from a suspected peer; the suspicion cleared.
    Cleared,
}

/// Per-server pairwise suspicion state (flat `n × n`).
#[derive(Debug, Clone)]
pub struct FailureDetector {
    n: usize,
    suspect_after: Nanos,
    /// `[observer * n + peer]`: when `observer` last heard from `peer`.
    last_heard: Vec<Nanos>,
    /// `[observer * n + peer]`: cached suspicion state, updated on
    /// `check`/`heard` so transitions are reported exactly once.
    suspected: Vec<bool>,
}

impl FailureDetector {
    /// Creates a detector for `n` servers. Every pair starts with a full
    /// grace period from `now` (boot counts as having just heard).
    pub fn new(n: usize, suspect_after: Nanos, now: Nanos) -> Self {
        FailureDetector {
            n,
            suspect_after,
            last_heard: vec![now; n * n],
            suspected: vec![false; n * n],
        }
    }

    #[inline]
    fn idx(&self, observer: usize, peer: usize) -> usize {
        observer * self.n + peer
    }

    /// Records a heartbeat from `peer` heard at `observer`. Returns
    /// [`Transition::Cleared`] when this un-suspects the peer.
    pub fn heard(&mut self, observer: usize, peer: usize, now: Nanos) -> Option<Transition> {
        let i = self.idx(observer, peer);
        self.last_heard[i] = self.last_heard[i].max(now);
        if self.suspected[i] {
            self.suspected[i] = false;
            Some(Transition::Cleared)
        } else {
            None
        }
    }

    /// Whether `observer` suspects `peer` at `now`, updating the cached
    /// state; a newly crossed threshold is reported as a transition. A
    /// server never suspects itself.
    pub fn check(
        &mut self,
        observer: usize,
        peer: usize,
        now: Nanos,
    ) -> (bool, Option<Transition>) {
        if observer == peer {
            return (false, None);
        }
        let i = self.idx(observer, peer);
        let silent = now.saturating_sub(self.last_heard[i]) > self.suspect_after;
        let transition = match (self.suspected[i], silent) {
            (false, true) => Some(Transition::Suspected),
            (true, false) => Some(Transition::Cleared),
            _ => None,
        };
        self.suspected[i] = silent;
        (silent, transition)
    }

    /// Read-only suspicion probe (no transition bookkeeping) — for
    /// accuracy sampling against ground truth without perturbing the
    /// detector's own event stream.
    pub fn would_suspect(&self, observer: usize, peer: usize, now: Nanos) -> bool {
        if observer == peer {
            return false;
        }
        now.saturating_sub(self.last_heard[self.idx(observer, peer)]) > self.suspect_after
    }

    /// Resets an observer's rows after it recovers from a crash: a fresh
    /// process trusts every peer for one grace period instead of mass-
    /// suspecting the cluster the instant it boots.
    pub fn reset_observer(&mut self, observer: usize, now: Nanos) {
        for peer in 0..self.n {
            let i = self.idx(observer, peer);
            self.last_heard[i] = now;
            self.suspected[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn silence_crosses_threshold_exactly_once() {
        let mut d = FailureDetector::new(3, ms(50), Nanos::ZERO);
        assert_eq!(d.check(0, 1, ms(50)), (false, None), "at threshold: fine");
        assert_eq!(
            d.check(0, 1, ms(51)),
            (true, Some(Transition::Suspected)),
            "past threshold: suspected"
        );
        assert_eq!(d.check(0, 1, ms(60)), (true, None), "no repeat transition");
    }

    #[test]
    fn heartbeat_clears_suspicion() {
        let mut d = FailureDetector::new(2, ms(50), Nanos::ZERO);
        assert!(d.check(0, 1, ms(100)).0);
        assert_eq!(d.heard(0, 1, ms(100)), Some(Transition::Cleared));
        assert_eq!(d.check(0, 1, ms(120)), (false, None));
        // A second heartbeat with no suspicion outstanding is silent.
        assert_eq!(d.heard(0, 1, ms(130)), None);
    }

    #[test]
    fn suspicion_is_per_observer() {
        let mut d = FailureDetector::new(3, ms(50), Nanos::ZERO);
        d.heard(0, 2, ms(80));
        assert!(!d.check(0, 2, ms(100)).0, "observer 0 heard recently");
        assert!(d.check(1, 2, ms(100)).0, "observer 1 did not");
    }

    #[test]
    fn never_suspects_self() {
        let mut d = FailureDetector::new(2, ms(1), Nanos::ZERO);
        assert_eq!(d.check(1, 1, ms(1_000)), (false, None));
        assert!(!d.would_suspect(1, 1, ms(1_000)));
    }

    #[test]
    fn would_suspect_matches_check_without_mutation() {
        let mut d = FailureDetector::new(2, ms(50), Nanos::ZERO);
        assert!(d.would_suspect(0, 1, ms(60)));
        // The probe did not consume the transition.
        assert_eq!(d.check(0, 1, ms(60)), (true, Some(Transition::Suspected)));
    }

    #[test]
    fn reset_observer_restores_grace() {
        let mut d = FailureDetector::new(2, ms(50), Nanos::ZERO);
        assert!(d.check(0, 1, ms(200)).0);
        d.reset_observer(0, ms(200));
        assert_eq!(d.check(0, 1, ms(210)), (false, None));
        assert!(d.check(0, 1, ms(300)).0, "grace period is not immunity");
    }

    #[test]
    fn stale_heartbeat_does_not_rewind_last_heard() {
        let mut d = FailureDetector::new(2, ms(50), Nanos::ZERO);
        d.heard(0, 1, ms(100));
        d.heard(0, 1, ms(40)); // Reordered delivery must not rewind.
        assert!(!d.would_suspect(0, 1, ms(120)));
        assert!(d.would_suspect(0, 1, ms(151)));
    }
}
