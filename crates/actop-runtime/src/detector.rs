//! Heartbeat-based failure detection.
//!
//! Real clusters have no oracle: a server learns that a peer died only by
//! *not hearing from it*. [`FailureDetector`] keeps, per (observer, peer)
//! pair, the sim-time of the last heartbeat heard; a peer silent for
//! longer than [`DetectorConfig::suspect_after`] is *suspected*. Routing
//! and forwarding consult suspicion, not ground truth, so detection lag,
//! false suspicion under stragglers (a loaded server heartbeats late),
//! and flapping become real, measurable effects.
//!
//! The detector is a fixed-timeout detector — the degenerate phi-accrual
//! detector with a single threshold. State is two flat `n × n` vectors
//! (last-heard time and cached suspicion), so a suspicion check on the
//! per-message routing path is two array reads. Suspicion transitions are
//! detected lazily at [`FailureDetector::check`] time and eagerly at
//! [`FailureDetector::heard`] time, and reported to the caller so the
//! cluster can count and trace them.

use actop_sim::Nanos;

/// Heartbeat / suspicion tuning. See DESIGN.md §9 for the defaults'
/// rationale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// How often every live server sends a heartbeat to every peer.
    pub heartbeat_interval: Nanos,
    /// Silence longer than this marks a peer suspected. Should be several
    /// heartbeat intervals so one delayed or dropped heartbeat does not
    /// flap the detector.
    pub suspect_after: Nanos,
    /// Heartbeat payload size (drives the network-model delay draw).
    pub heartbeat_bytes: u64,
    /// Baseline CPU time to emit a heartbeat round, nanoseconds. The
    /// actual emission lag is this value scaled by the sender's current
    /// CPU slowdown, so stragglers and gray-failing servers heartbeat
    /// late — the mechanism behind false suspicion.
    pub heartbeat_process_ns: f64,
    /// Optional response-time suspicion channel for gray failures:
    /// servers whose heartbeats stay timely while their *service* grinds
    /// (GC storms, saturated CPUs) are invisible to the silence detector.
    /// `None` (the default) disables the channel and keeps the detector
    /// byte-identical to the silence-only detector.
    pub rt: Option<RtSuspicionConfig>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            heartbeat_interval: Nanos::from_millis(10),
            suspect_after: Nanos::from_millis(50),
            heartbeat_bytes: 64,
            heartbeat_process_ns: 20_000.0,
            rt: None,
        }
    }
}

/// Response-time suspicion tuning: each observer keeps an EWMA of the
/// round-trip times of service acks it receives from each peer; an ack
/// slower than `factor ×` the expectation (with a floor against cold
/// starts) flags the peer as *anomalous*, which ORs into suspicion. A
/// subsequent timely ack clears the flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtSuspicionConfig {
    /// EWMA smoothing weight for each new sample.
    pub alpha: f64,
    /// An ack slower than `factor × EWMA` is anomalous.
    pub factor: f64,
    /// Never flag acks faster than this, regardless of the EWMA — guards
    /// against hair-trigger suspicion while the expectation is still
    /// microsecond-scale.
    pub floor_ns: u64,
    /// Samples an observer must fold in per peer before the channel can
    /// flag — a cold EWMA is not an expectation.
    pub min_samples: u32,
}

impl Default for RtSuspicionConfig {
    fn default() -> Self {
        RtSuspicionConfig {
            alpha: 0.1,
            factor: 8.0,
            floor_ns: 20_000_000,
            min_samples: 16,
        }
    }
}

/// A suspicion-state transition observed by a detector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The peer crossed the silence threshold and is now suspected.
    Suspected,
    /// A heartbeat arrived from a suspected peer; the suspicion cleared.
    Cleared,
}

/// Per-server pairwise suspicion state (flat `n × n`).
#[derive(Debug, Clone)]
pub struct FailureDetector {
    n: usize,
    suspect_after: Nanos,
    /// `[observer * n + peer]`: when `observer` last heard from `peer`.
    last_heard: Vec<Nanos>,
    /// `[observer * n + peer]`: cached suspicion state, updated on
    /// `check`/`heard` so transitions are reported exactly once.
    suspected: Vec<bool>,
    /// Response-time channel, when configured. Disabled, the anomaly
    /// vector stays all-false and every path below reduces to the
    /// silence-only detector.
    rt: Option<RtSuspicionConfig>,
    /// `[observer * n + peer]`: EWMA of service-ack round-trip time.
    rt_ewma: Vec<f64>,
    /// `[observer * n + peer]`: samples folded into the EWMA.
    rt_samples: Vec<u32>,
    /// `[observer * n + peer]`: latest ack was anomalously slow.
    rt_anomaly: Vec<bool>,
}

impl FailureDetector {
    /// Creates a detector for `n` servers. Every pair starts with a full
    /// grace period from `now` (boot counts as having just heard).
    pub fn new(n: usize, suspect_after: Nanos, now: Nanos) -> Self {
        Self::with_rt(n, suspect_after, now, None)
    }

    /// Creates a detector with the optional response-time channel.
    pub fn with_rt(
        n: usize,
        suspect_after: Nanos,
        now: Nanos,
        rt: Option<RtSuspicionConfig>,
    ) -> Self {
        FailureDetector {
            n,
            suspect_after,
            last_heard: vec![now; n * n],
            suspected: vec![false; n * n],
            rt,
            rt_ewma: vec![0.0; n * n],
            rt_samples: vec![0; n * n],
            rt_anomaly: vec![false; n * n],
        }
    }

    #[inline]
    fn idx(&self, observer: usize, peer: usize) -> usize {
        observer * self.n + peer
    }

    /// Records a heartbeat from `peer` heard at `observer`. Returns
    /// [`Transition::Cleared`] when this un-suspects the peer. A timely
    /// heartbeat does *not* clear a response-time anomaly — heartbeating
    /// on schedule while service grinds is exactly the gray-failure shape
    /// the channel exists to catch.
    pub fn heard(&mut self, observer: usize, peer: usize, now: Nanos) -> Option<Transition> {
        let i = self.idx(observer, peer);
        self.last_heard[i] = self.last_heard[i].max(now);
        if self.suspected[i] && !self.rt_anomaly[i] {
            self.suspected[i] = false;
            Some(Transition::Cleared)
        } else {
            None
        }
    }

    /// Folds one observed service-ack round-trip time into `observer`'s
    /// expectation of `peer`, flagging (or clearing) a response-time
    /// anomaly. A no-op when the channel is not configured. The caller
    /// picks up any resulting suspicion transition at the next `check`.
    pub fn note_service_ack(&mut self, observer: usize, peer: usize, rt_ns: u64) {
        let Some(cfg) = self.rt else { return };
        if observer == peer {
            return;
        }
        let i = self.idx(observer, peer);
        let expectation = (self.rt_ewma[i] * cfg.factor).max(cfg.floor_ns as f64);
        if self.rt_samples[i] >= cfg.min_samples {
            self.rt_anomaly[i] = rt_ns as f64 > expectation;
        }
        if self.rt_samples[i] == 0 {
            self.rt_ewma[i] = rt_ns as f64;
        } else {
            self.rt_ewma[i] += cfg.alpha * (rt_ns as f64 - self.rt_ewma[i]);
        }
        self.rt_samples[i] = self.rt_samples[i].saturating_add(1);
    }

    /// Whether `observer` suspects `peer` at `now`, updating the cached
    /// state; a newly crossed threshold is reported as a transition. A
    /// server never suspects itself.
    pub fn check(
        &mut self,
        observer: usize,
        peer: usize,
        now: Nanos,
    ) -> (bool, Option<Transition>) {
        if observer == peer {
            return (false, None);
        }
        let i = self.idx(observer, peer);
        let silent = now.saturating_sub(self.last_heard[i]) > self.suspect_after;
        let suspect = silent || self.rt_anomaly[i];
        let transition = match (self.suspected[i], suspect) {
            (false, true) => Some(Transition::Suspected),
            (true, false) => Some(Transition::Cleared),
            _ => None,
        };
        self.suspected[i] = suspect;
        (suspect, transition)
    }

    /// Read-only suspicion probe (no transition bookkeeping) — for
    /// accuracy sampling against ground truth without perturbing the
    /// detector's own event stream.
    pub fn would_suspect(&self, observer: usize, peer: usize, now: Nanos) -> bool {
        if observer == peer {
            return false;
        }
        let i = self.idx(observer, peer);
        now.saturating_sub(self.last_heard[i]) > self.suspect_after || self.rt_anomaly[i]
    }

    /// Resets an observer's rows after it recovers from a crash: a fresh
    /// process trusts every peer for one grace period instead of mass-
    /// suspecting the cluster the instant it boots. Response-time
    /// expectations reset too — the reborn process has no history.
    pub fn reset_observer(&mut self, observer: usize, now: Nanos) {
        for peer in 0..self.n {
            let i = self.idx(observer, peer);
            self.last_heard[i] = now;
            self.suspected[i] = false;
            self.rt_ewma[i] = 0.0;
            self.rt_samples[i] = 0;
            self.rt_anomaly[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn silence_crosses_threshold_exactly_once() {
        let mut d = FailureDetector::new(3, ms(50), Nanos::ZERO);
        assert_eq!(d.check(0, 1, ms(50)), (false, None), "at threshold: fine");
        assert_eq!(
            d.check(0, 1, ms(51)),
            (true, Some(Transition::Suspected)),
            "past threshold: suspected"
        );
        assert_eq!(d.check(0, 1, ms(60)), (true, None), "no repeat transition");
    }

    #[test]
    fn heartbeat_clears_suspicion() {
        let mut d = FailureDetector::new(2, ms(50), Nanos::ZERO);
        assert!(d.check(0, 1, ms(100)).0);
        assert_eq!(d.heard(0, 1, ms(100)), Some(Transition::Cleared));
        assert_eq!(d.check(0, 1, ms(120)), (false, None));
        // A second heartbeat with no suspicion outstanding is silent.
        assert_eq!(d.heard(0, 1, ms(130)), None);
    }

    #[test]
    fn suspicion_is_per_observer() {
        let mut d = FailureDetector::new(3, ms(50), Nanos::ZERO);
        d.heard(0, 2, ms(80));
        assert!(!d.check(0, 2, ms(100)).0, "observer 0 heard recently");
        assert!(d.check(1, 2, ms(100)).0, "observer 1 did not");
    }

    #[test]
    fn never_suspects_self() {
        let mut d = FailureDetector::new(2, ms(1), Nanos::ZERO);
        assert_eq!(d.check(1, 1, ms(1_000)), (false, None));
        assert!(!d.would_suspect(1, 1, ms(1_000)));
    }

    #[test]
    fn would_suspect_matches_check_without_mutation() {
        let mut d = FailureDetector::new(2, ms(50), Nanos::ZERO);
        assert!(d.would_suspect(0, 1, ms(60)));
        // The probe did not consume the transition.
        assert_eq!(d.check(0, 1, ms(60)), (true, Some(Transition::Suspected)));
    }

    #[test]
    fn reset_observer_restores_grace() {
        let mut d = FailureDetector::new(2, ms(50), Nanos::ZERO);
        assert!(d.check(0, 1, ms(200)).0);
        d.reset_observer(0, ms(200));
        assert_eq!(d.check(0, 1, ms(210)), (false, None));
        assert!(d.check(0, 1, ms(300)).0, "grace period is not immunity");
    }

    #[test]
    fn stale_heartbeat_does_not_rewind_last_heard() {
        let mut d = FailureDetector::new(2, ms(50), Nanos::ZERO);
        d.heard(0, 1, ms(100));
        d.heard(0, 1, ms(40)); // Reordered delivery must not rewind.
        assert!(!d.would_suspect(0, 1, ms(120)));
        assert!(d.would_suspect(0, 1, ms(151)));
    }

    fn rt_cfg() -> RtSuspicionConfig {
        RtSuspicionConfig {
            alpha: 0.1,
            factor: 8.0,
            floor_ns: 1_000_000, // 1 ms floor for the tests.
            min_samples: 4,
        }
    }

    #[test]
    fn gray_server_becomes_suspect_via_slow_acks() {
        let mut d = FailureDetector::with_rt(2, ms(50), Nanos::ZERO, Some(rt_cfg()));
        // Healthy expectation: ~100 us acks.
        for _ in 0..10 {
            d.note_service_ack(0, 1, 100_000);
        }
        assert!(!d.would_suspect(0, 1, ms(10)), "timely acks: trusted");
        // Gray failure: heartbeats stay timely but service grinds.
        d.heard(0, 1, ms(10));
        d.note_service_ack(0, 1, 200_000_000); // A 200 ms ack.
        let (suspect, transition) = d.check(0, 1, ms(11));
        assert!(suspect, "slow ack flags the peer despite fresh heartbeats");
        assert_eq!(transition, Some(Transition::Suspected));
        // A timely heartbeat alone cannot clear an rt anomaly.
        assert_eq!(d.heard(0, 1, ms(12)), None);
        assert!(d.would_suspect(0, 1, ms(12)));
        // A fast ack clears it; the next check reports the transition.
        d.note_service_ack(0, 1, 100_000);
        assert_eq!(d.check(0, 1, ms(13)), (false, Some(Transition::Cleared)));
    }

    #[test]
    fn rt_channel_needs_warm_expectation() {
        let mut d = FailureDetector::with_rt(2, ms(50), Nanos::ZERO, Some(rt_cfg()));
        // First samples are slow, but the EWMA is cold: no flag.
        d.note_service_ack(0, 1, 500_000_000);
        d.note_service_ack(0, 1, 500_000_000);
        assert!(!d.would_suspect(0, 1, ms(1)), "below min_samples: no flag");
        // Once warm on slow acks, equally slow acks match expectation.
        for _ in 0..6 {
            d.note_service_ack(0, 1, 500_000_000);
        }
        assert!(!d.would_suspect(0, 1, ms(1)), "consistent latency: no flag");
    }

    #[test]
    fn rt_channel_disabled_is_inert() {
        let mut d = FailureDetector::new(2, ms(50), Nanos::ZERO);
        for _ in 0..20 {
            d.note_service_ack(0, 1, 500_000_000);
        }
        assert!(!d.would_suspect(0, 1, ms(1)));
        assert_eq!(d.check(0, 1, ms(1)), (false, None));
    }

    #[test]
    fn reset_observer_clears_rt_state() {
        let mut d = FailureDetector::with_rt(2, ms(50), Nanos::ZERO, Some(rt_cfg()));
        for _ in 0..10 {
            d.note_service_ack(0, 1, 100_000);
        }
        d.note_service_ack(0, 1, 200_000_000);
        assert!(d.would_suspect(0, 1, ms(1)));
        d.reset_observer(0, ms(1));
        assert!(
            !d.would_suspect(0, 1, ms(2)),
            "reborn observer has no history"
        );
        d.note_service_ack(0, 1, 200_000_000);
        assert!(!d.would_suspect(0, 1, ms(3)), "expectation is cold again");
    }
}
