//! Executing a fault plan against a cluster.

use actop_runtime::{Cluster, LinkFault};
use actop_sim::{Engine, Nanos};

use crate::plan::{Fault, FaultPlan};

/// Schedules every fault of `plan` on the engine, to fire at its absolute
/// plan time offset by `base` (pass `Nanos::ZERO` to anchor the plan at
/// the current clock origin, or the warmup end to anchor it at the
/// measurement window).
///
/// # Panics
///
/// Panics at install time when the plan touches a server outside
/// `cluster.server_count()` — plans are build-time inputs, and a silent
/// skip would fake fault coverage.
pub fn install_plan(
    engine: &mut Engine<Cluster>,
    cluster: &Cluster,
    plan: &FaultPlan,
    base: Nanos,
) {
    if let Some(max) = plan.max_server() {
        assert!(
            (max as usize) < cluster.server_count(),
            "plan '{}' touches server {max} but the cluster has {}",
            plan.name,
            cluster.server_count()
        );
    }
    for e in &plan.events {
        let fault = e.fault;
        engine.schedule(base + e.at, move |c: &mut Cluster, eng| {
            apply_fault(c, eng, fault);
        });
    }
}

/// Applies one fault immediately.
fn apply_fault(c: &mut Cluster, engine: &mut Engine<Cluster>, fault: Fault) {
    match fault {
        Fault::Crash { server } => c.fail_server(engine, server as usize),
        Fault::Recover { server } => c.recover_server(engine.now(), server as usize),
        Fault::Rate { server, factor } => {
            c.set_server_rate_factor(engine, server as usize, factor);
        }
        Fault::Link {
            a,
            b,
            extra_delay,
            drop_prob,
        } => c.set_link_fault(
            a as usize,
            b as usize,
            LinkFault {
                extra_delay,
                drop_prob,
            },
        ),
        Fault::LinkClear { a, b } => c.clear_link_fault(a as usize, b as usize),
        Fault::AssertRestored { server } => {
            // The crash_restore audit: a no-op when snapshots are off
            // (state_divergence returns None) or the server is down again
            // under an overlapping fault — that fault owns the recovery.
            if c.is_failed(server as usize) {
                return;
            }
            if let Some((actor, mem, durable)) = c.state_divergence() {
                panic!(
                    "state not rehydrated after server {server} recovery: \
                     actor {actor} holds version {mem}, store holds {durable}"
                );
            }
        }
    }
}
