//! Chaos testing for the ActOp cluster: seed-derived fault plans executed
//! by the simulation engine.
//!
//! The paper's evaluation leans on Orleans' fault tolerance but never
//! crashes a server; this crate makes failure a first-class, reproducible
//! experiment input. A [`FaultPlan`] is a serializable schedule of
//! faults — server crash/recover windows, CPU stragglers and gray
//! failures (service-rate multipliers), and per-link network degradation
//! (extra delay, drop probability) — installed onto the engine with
//! [`install_plan`]. Paired with the runtime's heartbeat failure detector
//! and backoff-retry transport (`RuntimeConfig::detector` /
//! `RuntimeConfig::retry`), a chaos run measures what the oracle model
//! hid: detection lag, false suspicion under stragglers, retry storms,
//! and recovery time.
//!
//! Everything is deterministic: a chaos run is identified by its
//! `(workload seed, plan)` pair, and the same pair replays byte-for-byte.

pub mod install;
pub mod plan;

pub use install::install_plan;
pub use plan::{CrashWindows, Fault, FaultEvent, FaultPlan};
