//! Fault plans: serializable schedules of cluster faults.
//!
//! A [`FaultPlan`] is data, not code: an ordered list of `(time, fault)`
//! pairs that the sim engine executes against a cluster. Plans are either
//! hand-built from the named constructors (single crash, rolling crashes,
//! straggler, gray failure, partition) or derived deterministically from a
//! seed with [`FaultPlan::random`] — so a chaos run is reproduced by its
//! `(workload seed, plan)` pair alone.
//!
//! Plans serialize to a line-oriented text format (one fault per line,
//! `#` comments) so a failing chaos run's plan can be dumped, committed as
//! a regression input, and replayed byte-for-byte.

use actop_obs::FaultNote;
use actop_sim::{DetRng, Nanos};

/// One injectable fault (or its repair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Crash a server: activations, queues, and in-progress work are lost.
    Crash {
        /// The server to kill.
        server: u32,
    },
    /// Bring a crashed server back as a fresh, empty process.
    Recover {
        /// The server to revive.
        server: u32,
    },
    /// Scale a server's CPU service rate: `< 1.0` is a straggler, near
    /// zero a gray failure (accepts messages, services them at a crawl),
    /// `1.0` restores full speed.
    Rate {
        /// The affected server.
        server: u32,
        /// The service-rate multiplier.
        factor: f64,
    },
    /// Degrade the (symmetric) link between two servers.
    Link {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
        /// Added to every delivery's network delay.
        extra_delay: Nanos,
        /// Probability a delivery is dropped outright.
        drop_prob: f64,
    },
    /// Repair the link between two servers.
    LinkClear {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// Checkpoint-recovery audit point — the closing act of the
    /// [`FaultPlan::crash_restore`] shape. At fire time the run asserts
    /// that every live in-memory state cell agrees with the durable
    /// snapshot store (state rehydrated, zero lost or duplicated
    /// transitions). A no-op when snapshots are off or the audited server
    /// is (again) down under an overlapping fault.
    AssertRestored {
        /// The server whose recovery is being audited.
        server: u32,
    },
}

/// A fault scheduled at a sim time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: Nanos,
    /// What happens.
    pub fault: Fault,
}

/// A named, time-ordered schedule of faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan name (reported in bench output and serialized headers).
    pub name: String,
    /// The schedule, sorted by time (stable for simultaneous faults).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new(name: impl Into<String>) -> Self {
        FaultPlan {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// Appends a fault, keeping the schedule time-sorted (stable: faults
    /// pushed earlier fire earlier among equal times).
    pub fn push(&mut self, at: Nanos, fault: Fault) -> &mut Self {
        self.events.push(FaultEvent { at, fault });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The largest server index any fault touches, if the plan is
    /// non-empty. Use to validate a plan against a cluster size before
    /// installing it.
    pub fn max_server(&self) -> Option<u32> {
        self.events
            .iter()
            .map(|e| match e.fault {
                Fault::Crash { server }
                | Fault::Recover { server }
                | Fault::Rate { server, .. }
                | Fault::AssertRestored { server } => server,
                Fault::Link { a, b, .. } | Fault::LinkClear { a, b } => a.max(b),
            })
            .max()
    }

    /// When the last fault fires (`Nanos::ZERO` for an empty plan).
    pub fn end(&self) -> Nanos {
        self.events.last().map(|e| e.at).unwrap_or(Nanos::ZERO)
    }

    /// Servers down (crashed and not yet recovered) after the whole plan
    /// ran — non-empty means the plan never heals the cluster.
    pub fn unrecovered(&self, servers: usize) -> Vec<u32> {
        let mut down = vec![false; servers];
        for e in &self.events {
            match e.fault {
                Fault::Crash { server } => down[server as usize] = true,
                Fault::Recover { server } => down[server as usize] = false,
                _ => {}
            }
        }
        (0..servers as u32).filter(|&s| down[s as usize]).collect()
    }

    /// Per-server down windows derived from the plan's crash/recover
    /// pairs. Plans are authored relative to their installation time, so
    /// `base` (the offset passed to `install_plan`) shifts every window to
    /// absolute sim time; a crash never recovered inside the plan is
    /// closed at `horizon`. This is the introspection surface the
    /// `actop-verify` invariant checker uses to reject service or
    /// migration activity on a dead server.
    pub fn crash_windows(&self, servers: usize, base: Nanos, horizon: Nanos) -> CrashWindows {
        let mut open: Vec<Option<Nanos>> = vec![None; servers];
        let mut windows: Vec<Vec<(Nanos, Nanos)>> = vec![Vec::new(); servers];
        for e in &self.events {
            let at = base + e.at;
            match e.fault {
                Fault::Crash { server } => {
                    if let Some(slot) = open.get_mut(server as usize) {
                        if slot.is_none() {
                            *slot = Some(at);
                        }
                    }
                }
                Fault::Recover { server } => {
                    if let Some(down) = open.get_mut(server as usize).and_then(Option::take) {
                        windows[server as usize].push((down, at));
                    }
                }
                _ => {}
            }
        }
        for (s, slot) in open.iter_mut().enumerate() {
            if let Some(down) = slot.take() {
                windows[s].push((down, horizon));
            }
        }
        CrashWindows { windows }
    }

    // ------------------------------------------------------------------
    // Named plan shapes (the chaos sweep's vocabulary).
    // ------------------------------------------------------------------

    /// One server crashes at `crash_at` and recovers at `recover_at`.
    pub fn single_crash(server: u32, crash_at: Nanos, recover_at: Nanos) -> Self {
        assert!(crash_at < recover_at, "recovery precedes the crash");
        let mut p = FaultPlan::new("single-crash");
        p.push(crash_at, Fault::Crash { server });
        p.push(recover_at, Fault::Recover { server });
        p
    }

    /// Rolling crashes: each of `servers` in turn is down for `down_for`,
    /// one crash starting every `stagger` from `start`.
    pub fn rolling(servers: &[u32], start: Nanos, stagger: Nanos, down_for: Nanos) -> Self {
        let mut p = FaultPlan::new("rolling-crashes");
        for (i, &server) in servers.iter().enumerate() {
            let at = start + Nanos(stagger.as_nanos() * i as u64);
            p.push(at, Fault::Crash { server });
            p.push(at + down_for, Fault::Recover { server });
        }
        p
    }

    /// One server services at `factor` speed over `[from, until]`.
    pub fn straggler(server: u32, factor: f64, from: Nanos, until: Nanos) -> Self {
        assert!(from < until, "straggler window inverted");
        let mut p = FaultPlan::new("straggler");
        p.push(from, Fault::Rate { server, factor });
        p.push(
            until,
            Fault::Rate {
                server,
                factor: 1.0,
            },
        );
        p
    }

    /// The stateful-recovery shape: `server` crashes at `crash_at`,
    /// recovers at `recover_at`, and at `check_at` the run audits that its
    /// state rehydrated from the durable snapshot store. The audit is what
    /// distinguishes this from [`FaultPlan::single_crash`]: a chaos run
    /// with snapshots enabled fails loudly if recovery served lost or
    /// duplicated state transitions.
    pub fn crash_restore(server: u32, crash_at: Nanos, recover_at: Nanos, check_at: Nanos) -> Self {
        assert!(crash_at < recover_at, "recovery precedes the crash");
        assert!(recover_at < check_at, "audit precedes the recovery");
        let mut p = FaultPlan::new("crash-restore");
        p.push(crash_at, Fault::Crash { server });
        p.push(recover_at, Fault::Recover { server });
        p.push(check_at, Fault::AssertRestored { server });
        p
    }

    /// A gray failure: the server keeps accepting messages but services
    /// them at 2% speed over `[from, until]` — alive to the network, dead
    /// to its users.
    pub fn gray(server: u32, from: Nanos, until: Nanos) -> Self {
        let mut p = Self::straggler(server, 0.02, from, until);
        p.name = "gray-failure".into();
        p
    }

    /// Degrades every link crossing the cut `{0..split} | {split..n}` over
    /// `[from, until]`: `extra_delay` added per delivery, `drop_prob`
    /// dropped — a soft partition.
    pub fn partition(
        split: u32,
        servers: u32,
        extra_delay: Nanos,
        drop_prob: f64,
        from: Nanos,
        until: Nanos,
    ) -> Self {
        assert!(0 < split && split < servers, "degenerate partition cut");
        assert!(from < until, "partition window inverted");
        let mut p = FaultPlan::new("partition");
        for a in 0..split {
            for b in split..servers {
                p.push(
                    from,
                    Fault::Link {
                        a,
                        b,
                        extra_delay,
                        drop_prob,
                    },
                );
                p.push(until, Fault::LinkClear { a, b });
            }
        }
        p
    }

    /// A seed-derived random plan over `[0, horizon]` for `servers`
    /// servers: `count` faults, mixing short crash/recover windows,
    /// crash-restore shapes (crash + recover + rehydration audit), rate
    /// dips, and link degradations. Every fault injected is paired with
    /// its repair inside the horizon, so the plan always heals.
    pub fn random(seed: u64, servers: u32, horizon: Nanos, count: usize) -> Self {
        assert!(servers > 0, "need servers to fault");
        let mut rng = DetRng::stream(seed, 0xC4A05);
        let mut p = FaultPlan::new(format!("random-{seed:#x}"));
        let h = horizon.as_nanos().max(2);
        for _ in 0..count {
            let at = Nanos(rng.range_inclusive(0, h / 2));
            let dur = Nanos(rng.range_inclusive(1, h / 2));
            let server = rng.below(servers as usize) as u32;
            match rng.below(4) {
                0 => {
                    p.push(at, Fault::Crash { server });
                    p.push(at + dur, Fault::Recover { server });
                }
                3 => {
                    // The crash_restore shape: heal, then audit the
                    // rehydrated state a beat after recovery.
                    p.push(at, Fault::Crash { server });
                    p.push(at + dur, Fault::Recover { server });
                    p.push(
                        at + dur + Nanos(1 + dur.as_nanos() / 2),
                        Fault::AssertRestored { server },
                    );
                }
                1 => {
                    let factor = rng.uniform(0.02, 0.75);
                    p.push(at, Fault::Rate { server, factor });
                    p.push(
                        at + dur,
                        Fault::Rate {
                            server,
                            factor: 1.0,
                        },
                    );
                }
                _ => {
                    if servers < 2 {
                        continue;
                    }
                    let mut b = rng.below(servers as usize) as u32;
                    if b == server {
                        b = (b + 1) % servers;
                    }
                    let extra = Nanos(rng.range_inclusive(0, 5_000_000));
                    let drop_prob = rng.uniform(0.0, 0.6);
                    p.push(
                        at,
                        Fault::Link {
                            a: server,
                            b,
                            extra_delay: extra,
                            drop_prob,
                        },
                    );
                    p.push(at + dur, Fault::LinkClear { a: server, b });
                }
            }
        }
        p
    }

    /// The plan rendered as report annotations: crash windows plus rate
    /// and link degradation windows, shifted to absolute sim time by
    /// `base` (the offset passed to `install_plan`). A fault the plan
    /// never repairs stays open (`end_ns: None`).
    pub fn fault_notes(&self, servers: usize, base: Nanos, horizon: Nanos) -> Vec<FaultNote> {
        let mut out = Vec::new();
        let crashes = self.crash_windows(servers, base, horizon);
        for s in 0..servers as u32 {
            for &(from, to) in crashes.server(s) {
                out.push(FaultNote {
                    name: "crash".into(),
                    server: Some(s),
                    start_ns: from.as_nanos(),
                    end_ns: (to < horizon).then(|| to.as_nanos()),
                });
            }
        }
        // Rate degradations: a factor != 1.0 opens a window, the next
        // factor == 1.0 on the same server closes it.
        let mut rate_open: Vec<Option<Nanos>> = vec![None; servers];
        // Link degradations: closed by a LinkClear on the same pair.
        let mut link_open: Vec<((u32, u32), Nanos)> = Vec::new();
        for e in &self.events {
            let at = base + e.at;
            match e.fault {
                Fault::Rate { server, factor } => {
                    let slot = &mut rate_open[server as usize];
                    if factor == 1.0 {
                        if let Some(from) = slot.take() {
                            out.push(FaultNote {
                                name: "rate".into(),
                                server: Some(server),
                                start_ns: from.as_nanos(),
                                end_ns: Some(at.as_nanos()),
                            });
                        }
                    } else if slot.is_none() {
                        *slot = Some(at);
                    }
                }
                Fault::Link { a, b, .. } => {
                    let key = (a.min(b), a.max(b));
                    if !link_open.iter().any(|(k, _)| *k == key) {
                        link_open.push((key, at));
                    }
                }
                Fault::LinkClear { a, b } => {
                    let key = (a.min(b), a.max(b));
                    if let Some(pos) = link_open.iter().position(|(k, _)| *k == key) {
                        let (_, from) = link_open.remove(pos);
                        out.push(FaultNote {
                            name: "link".into(),
                            server: None,
                            start_ns: from.as_nanos(),
                            end_ns: Some(at.as_nanos()),
                        });
                    }
                }
                Fault::Crash { .. } | Fault::Recover { .. } | Fault::AssertRestored { .. } => {}
            }
        }
        for (s, slot) in rate_open.into_iter().enumerate() {
            if let Some(from) = slot {
                out.push(FaultNote {
                    name: "rate".into(),
                    server: Some(s as u32),
                    start_ns: from.as_nanos(),
                    end_ns: None,
                });
            }
        }
        for (_, from) in link_open {
            out.push(FaultNote {
                name: "link".into(),
                server: None,
                start_ns: from.as_nanos(),
                end_ns: None,
            });
        }
        out.sort_by_key(|n| (n.start_ns, n.server));
        out
    }

    // ------------------------------------------------------------------
    // Text serialization.
    // ------------------------------------------------------------------

    /// Serializes the plan to its line format (see module docs).
    pub fn to_text(&self) -> String {
        let mut out = format!("plan {}\n", self.name);
        for e in &self.events {
            let at = e.at.as_nanos();
            match e.fault {
                Fault::Crash { server } => out.push_str(&format!("{at} crash {server}\n")),
                Fault::Recover { server } => out.push_str(&format!("{at} recover {server}\n")),
                Fault::Rate { server, factor } => {
                    out.push_str(&format!("{at} rate {server} {factor}\n"));
                }
                Fault::Link {
                    a,
                    b,
                    extra_delay,
                    drop_prob,
                } => out.push_str(&format!(
                    "{at} link {a} {b} {} {drop_prob}\n",
                    extra_delay.as_nanos()
                )),
                Fault::LinkClear { a, b } => out.push_str(&format!("{at} link-clear {a} {b}\n")),
                Fault::AssertRestored { server } => {
                    out.push_str(&format!("{at} assert-restored {server}\n"));
                }
            }
        }
        out
    }

    /// Parses the line format produced by [`FaultPlan::to_text`].
    /// Whitespace-tolerant; blank lines and `#` comments are skipped.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new("unnamed");
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
            if let Some(name) = line.strip_prefix("plan ") {
                plan.name = name.trim().to_string();
                continue;
            }
            let mut parts = line.split_whitespace();
            let at = Nanos(
                parts
                    .next()
                    .ok_or_else(|| err("missing time"))?
                    .parse::<u64>()
                    .map_err(|_| err("bad time"))?,
            );
            let verb = parts.next().ok_or_else(|| err("missing fault kind"))?;
            let next_u32 = |parts: &mut dyn Iterator<Item = &str>| {
                parts
                    .next()
                    .ok_or_else(|| err("missing field"))?
                    .parse::<u32>()
                    .map_err(|_| err("bad integer"))
            };
            let fault = match verb {
                "crash" => Fault::Crash {
                    server: next_u32(&mut parts)?,
                },
                "recover" => Fault::Recover {
                    server: next_u32(&mut parts)?,
                },
                "rate" => Fault::Rate {
                    server: next_u32(&mut parts)?,
                    factor: parts
                        .next()
                        .ok_or_else(|| err("missing factor"))?
                        .parse::<f64>()
                        .map_err(|_| err("bad factor"))?,
                },
                "link" => Fault::Link {
                    a: next_u32(&mut parts)?,
                    b: next_u32(&mut parts)?,
                    extra_delay: Nanos(
                        parts
                            .next()
                            .ok_or_else(|| err("missing extra delay"))?
                            .parse::<u64>()
                            .map_err(|_| err("bad extra delay"))?,
                    ),
                    drop_prob: parts
                        .next()
                        .ok_or_else(|| err("missing drop probability"))?
                        .parse::<f64>()
                        .map_err(|_| err("bad drop probability"))?,
                },
                "link-clear" => Fault::LinkClear {
                    a: next_u32(&mut parts)?,
                    b: next_u32(&mut parts)?,
                },
                "assert-restored" => Fault::AssertRestored {
                    server: next_u32(&mut parts)?,
                },
                _ => return Err(err("unknown fault kind")),
            };
            if parts.next().is_some() {
                return Err(err("trailing fields"));
            }
            plan.push(at, fault);
        }
        Ok(plan)
    }
}

/// Per-server `[down, up)` windows in absolute sim time, produced by
/// [`FaultPlan::crash_windows`]. Interval queries treat windows as open —
/// an event that touches a window only at its boundary is *not* inside it,
/// because the engine's ordering of same-instant events (a fault and an
/// ordinary event at the same nanosecond) is not part of the invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashWindows {
    /// `windows[s]` are server `s`'s down windows, in time order.
    pub windows: Vec<Vec<(Nanos, Nanos)>>,
}

impl CrashWindows {
    /// Server `s`'s windows (empty for servers the plan never crashes or
    /// indices beyond the cluster).
    pub fn server(&self, server: u32) -> &[(Nanos, Nanos)] {
        self.windows
            .get(server as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True when `at` lies strictly inside one of `server`'s windows.
    pub fn is_down(&self, server: u32, at: Nanos) -> bool {
        self.server(server)
            .iter()
            .any(|&(down, up)| down < at && at < up)
    }

    /// True when the open interval `(from, to)` intersects one of
    /// `server`'s windows (for instants pass `from == to`, which reduces
    /// to [`CrashWindows::is_down`]).
    pub fn overlaps(&self, server: u32, from: Nanos, to: Nanos) -> bool {
        if from == to {
            return self.is_down(server, from);
        }
        self.server(server)
            .iter()
            .any(|&(down, up)| from < up && down < to)
    }

    /// Total number of windows across all servers.
    pub fn total(&self) -> usize {
        self.windows.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn named_shapes_are_sorted_and_heal() {
        let plans = [
            FaultPlan::single_crash(3, ms(100), ms(400)),
            FaultPlan::crash_restore(4, ms(100), ms(400), ms(450)),
            FaultPlan::rolling(&[0, 1, 2], ms(50), ms(200), ms(100)),
            FaultPlan::straggler(1, 0.25, ms(10), ms(500)),
            FaultPlan::gray(2, ms(10), ms(500)),
            FaultPlan::partition(2, 5, ms(1), 0.3, ms(100), ms(300)),
        ];
        for p in &plans {
            assert!(
                p.events.windows(2).all(|w| w[0].at <= w[1].at),
                "{} not sorted",
                p.name
            );
            assert!(p.unrecovered(10).is_empty(), "{} never heals", p.name);
            assert!(p.max_server().unwrap() < 10);
        }
    }

    #[test]
    fn random_plan_is_seed_deterministic_and_heals() {
        let a = FaultPlan::random(7, 10, Nanos::from_secs(5), 12);
        let b = FaultPlan::random(7, 10, Nanos::from_secs(5), 12);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 10, Nanos::from_secs(5), 12);
        assert_ne!(a, c, "different seeds, different plans");
        assert!(a.unrecovered(10).is_empty());
        assert!(!a.events.is_empty());
    }

    #[test]
    fn crash_windows_shift_close_and_query() {
        let mut plan = FaultPlan::new("w");
        plan.push(ms(100), Fault::Crash { server: 1 });
        plan.push(ms(300), Fault::Recover { server: 1 });
        plan.push(ms(400), Fault::Crash { server: 2 }); // Never recovers.
        plan.push(
            ms(50),
            Fault::Rate {
                server: 0,
                factor: 0.5,
            },
        ); // Not a crash.
        let w = plan.crash_windows(4, ms(1000), ms(5000));
        assert_eq!(w.total(), 2);
        assert_eq!(w.server(1), &[(ms(1100), ms(1300))]);
        assert_eq!(w.server(2), &[(ms(1400), ms(5000))], "closed at horizon");
        assert!(w.server(0).is_empty());
        // Open-interval semantics: boundaries are outside.
        assert!(w.is_down(1, ms(1200)));
        assert!(!w.is_down(1, ms(1100)));
        assert!(!w.is_down(1, ms(1300)));
        assert!(w.overlaps(1, ms(1250), ms(1450)));
        assert!(!w.overlaps(1, ms(1300), ms(1450)), "touching boundary");
        assert!(w.overlaps(2, ms(1399), ms(1401)));
        assert!(!w.overlaps(3, Nanos::ZERO, ms(9000)), "unknown server");
    }

    #[test]
    fn random_plans_have_matched_crash_windows() {
        for seed in 0..20 {
            let plan = FaultPlan::random(seed, 6, Nanos::from_secs(4), 10);
            let horizon = Nanos::from_secs(100);
            let w = plan.crash_windows(6, Nanos::ZERO, horizon);
            for per_server in &w.windows {
                for &(down, up) in per_server {
                    assert!(down < up);
                    assert!(up < horizon, "healing plans never hit the horizon");
                }
            }
        }
    }

    #[test]
    fn text_roundtrip() {
        let plan = FaultPlan::random(42, 6, Nanos::from_secs(3), 9);
        let text = plan.to_text();
        let back = FaultPlan::from_text(&text).expect("parse");
        assert_eq!(plan, back);
        // And the format is stable under a second trip.
        assert_eq!(back.to_text(), text);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_fault() -> impl Strategy<Value = Fault> {
            // The vendored proptest shim has no `prop_oneof!`; select the
            // variant by an integer discriminant instead.
            (0u8..6, 0u32..16, 0u32..16, 0u64..10_000_000, 0.0f64..1.0).prop_map(
                |(kind, a, b, extra, p)| match kind {
                    0 => Fault::Crash { server: a },
                    1 => Fault::Recover { server: a },
                    2 => Fault::Rate {
                        server: a,
                        factor: 0.01 + p * 4.0,
                    },
                    3 => Fault::Link {
                        a,
                        b,
                        extra_delay: Nanos(extra),
                        drop_prob: p,
                    },
                    4 => Fault::LinkClear { a, b },
                    _ => Fault::AssertRestored { server: a },
                },
            )
        }

        proptest! {
            /// Any plan survives a text round trip exactly, including f64
            /// fields (Display prints the shortest representation that
            /// parses back to the same bits).
            #[test]
            fn arbitrary_plan_roundtrips(
                name_tag in 0u32..1_000_000,
                events in proptest::collection::vec((0u64..10_000_000_000, arb_fault()), 0..40),
            ) {
                let mut plan = FaultPlan::new(format!("plan-{name_tag}"));
                for (at, fault) in events {
                    plan.push(Nanos(at), fault);
                }
                let text = plan.to_text();
                let back = FaultPlan::from_text(&text).expect("parse own output");
                prop_assert_eq!(&back, &plan);
                prop_assert_eq!(back.to_text(), text);
            }
        }
    }

    #[test]
    fn fault_notes_pair_windows_and_shift_to_absolute_time() {
        let mut p = FaultPlan::new("mixed");
        p.push(Nanos::from_secs(1), Fault::Crash { server: 2 });
        p.push(Nanos::from_secs(3), Fault::Recover { server: 2 });
        p.push(
            Nanos::from_secs(2),
            Fault::Rate {
                server: 1,
                factor: 0.25,
            },
        );
        p.push(
            Nanos::from_secs(4),
            Fault::Rate {
                server: 1,
                factor: 1.0,
            },
        );
        p.push(
            Nanos::from_secs(5),
            Fault::Link {
                a: 0,
                b: 3,
                extra_delay: Nanos::from_micros(500),
                drop_prob: 0.05,
            },
        );
        let base = Nanos::from_secs(10);
        let horizon = Nanos::from_secs(30);
        let notes = p.fault_notes(4, base, horizon);
        assert_eq!(notes.len(), 3);
        assert_eq!(notes[0].name, "crash");
        assert_eq!(notes[0].server, Some(2));
        assert_eq!(notes[0].start_ns, 11_000_000_000);
        assert_eq!(notes[0].end_ns, Some(13_000_000_000));
        assert_eq!(notes[1].name, "rate");
        assert_eq!(notes[1].server, Some(1));
        assert_eq!(notes[1].end_ns, Some(14_000_000_000));
        assert_eq!(notes[2].name, "link");
        assert_eq!(notes[2].server, None);
        assert_eq!(notes[2].end_ns, None, "never cleared stays open");
    }

    #[test]
    fn parser_tolerates_comments_and_rejects_junk() {
        let ok = FaultPlan::from_text("# a comment\nplan demo\n\n5 crash 2\n9 recover 2\n")
            .expect("parse");
        assert_eq!(ok.name, "demo");
        assert_eq!(ok.events.len(), 2);
        assert!(FaultPlan::from_text("5 crash\n").is_err(), "missing field");
        assert!(FaultPlan::from_text("x crash 1\n").is_err(), "bad time");
        assert!(FaultPlan::from_text("5 explode 1\n").is_err(), "bad verb");
        assert!(FaultPlan::from_text("5 crash 1 9\n").is_err(), "trailing");
    }
}
